// Multi-shard serving tests: wire protocol round-trips and rejection
// of malformed payloads, transport contracts (loopback + TCP frame
// validation), ShardServer's global<->local id translation over a
// live connection, ShardRouter scatter/merge identity against a
// single-process RankService, and — the TSan-gated core contract —
// epoch consistency under concurrent republish: racing router queries
// against shard republishes must never merge a torn answer (every
// per-shard contribution uniform in one epoch, the mixed-epoch flag
// exactly when shards answered from different epochs).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "engines/backend.hpp"
#include "engines/oocore_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "runtime/metrics.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "shard/proto.hpp"
#include "shard/router.hpp"
#include "shard/shard_server.hpp"
#include "shard/transport.hpp"

namespace hipa::shard {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Small skewed graph saved as a segmented v3 file (several segments).
std::string make_graph_file(const char* name, vid_t n, eid_t m,
                            std::uint64_t seed) {
  const std::vector<Edge> edges = graph::generate_erdos_renyi(n, m, seed);
  const graph::Graph g = graph::build_graph(n, edges);
  const std::string path = tmp_path(name);
  graph::save_segmented_csr(path, g, /*target_segment_bytes=*/8192);
  return path;
}

/// Reference ranks: the same deterministic streaming engine the shards
/// run, over the whole file.
std::vector<rank_t> reference_ranks(const std::string& path, unsigned iters) {
  engine::NativeBackend backend;
  engine::OocoreOptions oo;
  oo.num_threads = 2;
  engine::OocoreEngine eng(path, oo, backend);
  return eng.run(engine::PageRankOptions(iters)).ranks;
}

// ---------------------------------------------------------------------------
// Protocol round-trips
// ---------------------------------------------------------------------------

TEST(ShardProto, ControlMessagesRoundTrip) {
  const Frame hello = encode_hello(Hello{7});
  EXPECT_EQ(hello.type, MsgType::kHello);
  const auto h = decode_hello(hello);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->client_id, 7u);

  HelloAck ack;
  ack.shard_id = 3;
  ack.range = VertexRange{128, 1024};
  ack.num_vertices_global = 4096;
  ack.epoch = 42;
  ack.topk_k = 64;
  ack.metrics_port = 9464;
  const auto a = decode_hello_ack(encode_hello_ack(ack));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->shard_id, 3u);
  EXPECT_TRUE(a->range == (VertexRange{128, 1024}));
  EXPECT_EQ(a->num_vertices_global, 4096u);
  EXPECT_EQ(a->epoch, 42u);
  EXPECT_EQ(a->topk_k, 64u);
  EXPECT_EQ(a->metrics_port, 9464);

  const auto s =
      decode_status_reply(encode_status_reply(StatusReply{5, 100, 3}));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->epoch, 5u);
  EXPECT_EQ(s->queries_served, 100u);
  EXPECT_EQ(s->republishes, 3u);

  const auto n = decode_republish_notice(
      encode_republish_notice(RepublishNotice{17}));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->epoch, 17u);

  const auto e = decode_error(encode_error(ErrorReply{9, "bad range"}));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->request_id, 9u);
  EXPECT_EQ(e->message, "bad range");

  EXPECT_EQ(encode_status().type, MsgType::kStatus);
  EXPECT_EQ(encode_shutdown().type, MsgType::kShutdown);
}

TEST(ShardProto, QueryBatchRoundTrip) {
  QueryBatch qb;
  qb.request_id = 77;
  qb.queries.push_back(serve::Query::point(12345));
  qb.queries.push_back(serve::Query::batch({1, 99, 7}));
  qb.queries.push_back(serve::Query::top_k(16));
  qb.queries.push_back(serve::Query::top_k(8, VertexRange{100, 500}));

  const auto d = decode_query_batch(encode_query_batch(qb));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->request_id, 77u);
  ASSERT_EQ(d->queries.size(), 4u);
  EXPECT_EQ(d->queries[0].kind, serve::QueryKind::kPoint);
  EXPECT_EQ(d->queries[0].vertex, 12345u);
  EXPECT_EQ(d->queries[1].kind, serve::QueryKind::kBatch);
  EXPECT_EQ(d->queries[1].vertices, (std::vector<vid_t>{1, 99, 7}));
  EXPECT_EQ(d->queries[2].kind, serve::QueryKind::kTopK);
  EXPECT_TRUE(d->queries[2].topk.global());
  EXPECT_EQ(d->queries[2].topk.k, 16u);
  EXPECT_FALSE(d->queries[3].topk.global());
  EXPECT_TRUE(d->queries[3].topk.range == (VertexRange{100, 500}));
}

TEST(ShardProto, AnswerBatchRoundTripBitwise) {
  AnswerBatch ab;
  ab.request_id = 5;
  ab.epoch = 12;
  Answer a1;
  a1.ranks = {0.25f, 1e-9f, 3.5f};
  Answer a2;
  a2.topk = {{42, 0.5f}, {7, 0.25f}};
  ab.answers.push_back(a1);
  ab.answers.push_back(a2);

  const auto d = decode_answer_batch(encode_answer_batch(ab));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->epoch, 12u);
  ASSERT_EQ(d->answers.size(), 2u);
  ASSERT_EQ(d->answers[0].ranks.size(), 3u);
  EXPECT_EQ(std::memcmp(d->answers[0].ranks.data(), a1.ranks.data(),
                        a1.ranks.size() * sizeof(rank_t)),
            0);
  ASSERT_EQ(d->answers[1].topk.size(), 2u);
  EXPECT_EQ(std::memcmp(d->answers[1].topk.data(), a2.topk.data(),
                        a2.topk.size() * sizeof(serve::TopKEntry)),
            0);
}

TEST(ShardProto, RejectsMalformedPayloads) {
  QueryBatch qb;
  qb.request_id = 1;
  qb.queries.push_back(serve::Query::batch({1, 2, 3}));
  Frame f = encode_query_batch(qb);

  // Truncation at every prefix length must fail, never crash.
  for (std::size_t cut = 0; cut < f.payload.size(); ++cut) {
    Frame t;
    t.type = f.type;
    t.payload.assign(f.payload.begin(),
                     f.payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_query_batch(t).has_value()) << "cut=" << cut;
  }
  // Trailing garbage is equally fatal (done() check).
  Frame trail = f;
  trail.payload.push_back(0);
  EXPECT_FALSE(decode_query_batch(trail).has_value());

  // Unknown query kind.
  WireWriter w;
  w.u64(1);  // request id
  w.u32(1);  // one query
  w.u8(200);  // no such kind
  Frame bad;
  bad.type = MsgType::kQueryBatch;
  bad.payload = w.take();
  EXPECT_FALSE(decode_query_batch(bad).has_value());

  // A corrupt element count must not trigger a huge allocation.
  WireWriter w2;
  w2.u64(1);
  w2.u32(1);
  w2.u8(1);  // kBatch
  w2.u32(0xFFFFFFFFu);  // claims 4 billion vertices
  Frame huge;
  huge.type = MsgType::kQueryBatch;
  huge.payload = w2.take();
  EXPECT_FALSE(decode_query_batch(huge).has_value());
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

TEST(ShardTransport, LoopbackRoundTripAndClose) {
  LoopbackListener listener;
  std::unique_ptr<Conn> client = listener.connect();
  ASSERT_NE(client, nullptr);
  std::unique_ptr<Conn> server = listener.accept();
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client->send(encode_hello(Hello{1})));
  Frame f;
  ASSERT_TRUE(server->recv(&f));
  EXPECT_EQ(f.type, MsgType::kHello);
  ASSERT_TRUE(server->send(encode_republish_notice(RepublishNotice{3})));
  ASSERT_TRUE(client->recv(&f));
  EXPECT_EQ(f.type, MsgType::kRepublishNotice);

  // close() unblocks a pending recv on the peer.
  std::thread t([&] {
    Frame g;
    EXPECT_FALSE(server->recv(&g));
  });
  client->close();
  t.join();
  EXPECT_FALSE(client->send(encode_status()));
}

TEST(ShardTransport, TcpRoundTripEphemeralPort) {
  std::unique_ptr<Listener> listener = listen_tcp("127.0.0.1", 0);
  ASSERT_GT(listener->port(), 0);

  std::unique_ptr<Conn> server;
  std::thread t([&] { server = listener->accept(); });
  std::unique_ptr<Conn> client = connect_tcp("127.0.0.1", listener->port());
  t.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  AnswerBatch ab;
  ab.request_id = 11;
  ab.epoch = 2;
  ab.answers.resize(1);
  ab.answers[0].ranks = {0.125f};
  ASSERT_TRUE(server->send(encode_answer_batch(ab)));
  Frame f;
  ASSERT_TRUE(client->recv(&f));
  const auto d = decode_answer_batch(f);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->answers[0].ranks[0], 0.125f);
}

/// Little-endian field writer for handcrafting corrupt frame headers.
void put_le(std::vector<std::uint8_t>& out, std::uint64_t v,
            std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

TEST(ShardTransport, TcpRejectsCorruptFrames) {
  std::unique_ptr<Listener> listener = listen_tcp("127.0.0.1", 0);

  const auto poison = [&](const std::vector<std::uint8_t>& bytes) {
    std::unique_ptr<Conn> server;
    std::thread t([&] { server = listener->accept(); });
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(listener->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0);
    t.join();
    ASSERT_NE(server, nullptr);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    Frame f;
    EXPECT_FALSE(server->recv(&f)) << "poisoned stream must kill recv";
    ::close(fd);
  };

  // Bad magic.
  {
    std::vector<std::uint8_t> b;
    put_le(b, 0xDEADBEEFu, 4);
    put_le(b, 5, 4);
    put_le(b, 0, 8);
    put_le(b, fnv1a(nullptr, 0), 8);
    poison(b);
  }
  // Bad checksum over a real payload.
  {
    const char payload[4] = {'a', 'b', 'c', 'd'};
    std::vector<std::uint8_t> b;
    put_le(b, kFrameMagic, 4);
    put_le(b, 6, 4);  // kStatusReply
    put_le(b, sizeof payload, 8);
    put_le(b, fnv1a(payload, sizeof payload) + 1, 8);
    b.insert(b.end(), payload, payload + sizeof payload);
    poison(b);
  }
  // Absurd length field.
  {
    std::vector<std::uint8_t> b;
    put_le(b, kFrameMagic, 4);
    put_le(b, 5, 4);
    put_le(b, kMaxFramePayload + 1, 8);
    put_le(b, 0, 8);
    poison(b);
  }
}

// ---------------------------------------------------------------------------
// ShardServer over loopback
// ---------------------------------------------------------------------------

TEST(ShardServer, TranslatesIdsAndAnswersOwnedSlice) {
  const vid_t n = 600;
  const std::string path = make_graph_file("shard_server.hcsr", n, 4000, 3);
  const std::vector<rank_t> expect = reference_ranks(path, 10);

  runtime::metrics::MetricsRegistry registry;
  ShardServerOptions opt;
  opt.shard_id = 1;
  opt.range = VertexRange{200, 400};
  opt.graph_path = path;
  opt.iterations = 10;
  opt.topk_k = 8;
  opt.registry = &registry;
  ShardServer server(opt);
  EXPECT_EQ(server.num_vertices_global(), n);
  EXPECT_EQ(server.epoch(), 1u);

  auto listener = std::make_unique<LoopbackListener>();
  LoopbackListener* lp = listener.get();
  server.serve(std::move(listener));
  std::unique_ptr<Conn> conn = lp->connect();
  ASSERT_NE(conn, nullptr);

  ASSERT_TRUE(conn->send(encode_hello(Hello{0})));
  Frame f;
  ASSERT_TRUE(conn->recv(&f));
  const auto ack = decode_hello_ack(f);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->range == (VertexRange{200, 400}));
  EXPECT_EQ(ack->num_vertices_global, n);
  EXPECT_EQ(ack->epoch, 1u);

  // One envelope: owned point + owned batch + global top-k + a ranged
  // top-k that misses the slice entirely (constant empty answer).
  QueryBatch qb;
  qb.request_id = 1;
  qb.queries.push_back(serve::Query::point(250));
  qb.queries.push_back(serve::Query::batch({399, 200, 307}));
  qb.queries.push_back(serve::Query::top_k(4));
  qb.queries.push_back(serve::Query::top_k(4, VertexRange{0, 100}));
  ASSERT_TRUE(conn->send(encode_query_batch(qb)));
  ASSERT_TRUE(conn->recv(&f));
  ASSERT_EQ(f.type, MsgType::kAnswerBatch);
  const auto ab = decode_answer_batch(f);
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(ab->request_id, 1u);
  EXPECT_EQ(ab->epoch, 1u);
  ASSERT_EQ(ab->answers.size(), 4u);

  ASSERT_EQ(ab->answers[0].ranks.size(), 1u);
  EXPECT_EQ(ab->answers[0].ranks[0], expect[250]);
  ASSERT_EQ(ab->answers[1].ranks.size(), 3u);
  EXPECT_EQ(ab->answers[1].ranks[0], expect[399]);
  EXPECT_EQ(ab->answers[1].ranks[1], expect[200]);
  EXPECT_EQ(ab->answers[1].ranks[2], expect[307]);
  // Top-k entries come back with GLOBAL ids inside the owned range.
  ASSERT_EQ(ab->answers[2].topk.size(), 4u);
  for (const serve::TopKEntry& e : ab->answers[2].topk) {
    ASSERT_GE(e.vertex, 200u);
    ASSERT_LT(e.vertex, 400u);
    EXPECT_EQ(e.rank, expect[e.vertex]);
  }
  EXPECT_TRUE(ab->answers[3].ranks.empty());
  EXPECT_TRUE(ab->answers[3].topk.empty());

  // A point outside the owned range fails the whole envelope.
  QueryBatch bad;
  bad.request_id = 2;
  bad.queries.push_back(serve::Query::point(10));
  ASSERT_TRUE(conn->send(encode_query_batch(bad)));
  ASSERT_TRUE(conn->recv(&f));
  ASSERT_EQ(f.type, MsgType::kError);
  const auto err = decode_error(f);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->request_id, 2u);

  // Subscribed connections get republish notices.
  const std::uint64_t e2 = server.republish();
  EXPECT_EQ(e2, 2u);
  ASSERT_TRUE(conn->recv(&f));
  ASSERT_EQ(f.type, MsgType::kRepublishNotice);
  EXPECT_EQ(decode_republish_notice(f)->epoch, 2u);

  // Status probe, then shutdown ends wait().
  ASSERT_TRUE(conn->send(encode_status()));
  ASSERT_TRUE(conn->recv(&f));
  const auto status = decode_status_reply(f);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->epoch, 2u);
  // Rejected envelopes don't count: 4 served, the bad point dropped.
  EXPECT_EQ(status->queries_served, 4u);
  ASSERT_TRUE(conn->send(encode_shutdown()));
  server.wait();
  server.stop();
}

// ---------------------------------------------------------------------------
// Router: identity with a single-process service
// ---------------------------------------------------------------------------

/// A fleet of in-process shards over loopback listeners plus targets
/// for a router. Distinct registries keep per-shard metrics separate.
struct LoopbackFleet {
  std::vector<std::unique_ptr<runtime::metrics::MetricsRegistry>> registries;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<LoopbackListener*> listeners;
  std::vector<ShardTarget> targets;

  void add_shard(const std::string& path, VertexRange range, unsigned iters,
                 unsigned topk_k, bool compute_on_start = true) {
    registries.push_back(
        std::make_unique<runtime::metrics::MetricsRegistry>());
    ShardServerOptions opt;
    opt.shard_id = static_cast<std::uint32_t>(servers.size());
    opt.range = range;
    opt.graph_path = path;
    opt.iterations = iters;
    opt.topk_k = topk_k;
    opt.compute_on_start = compute_on_start;
    opt.registry = registries.back().get();
    servers.push_back(std::make_unique<ShardServer>(opt));
  }

  void serve_all() {
    for (auto& s : servers) {
      auto listener = std::make_unique<LoopbackListener>();
      LoopbackListener* lp = listener.get();
      s->serve(std::move(listener));
      listeners.push_back(lp);
      ShardTarget t;
      t.name = "loopback" + std::to_string(targets.size());
      t.connect = [lp] { return lp->connect(); };
      targets.push_back(std::move(t));
    }
  }
};

TEST(ShardRouter, BitwiseIdenticalToSingleProcess) {
  const vid_t n = 800;
  const std::string path = make_graph_file("router_ident.hcsr", n, 6000, 9);
  constexpr unsigned kIters = 10;
  constexpr unsigned kTopK = 16;

  // Single-process truth: the same engine ranks served whole.
  engine::NativeBackend backend;
  engine::OocoreOptions oo;
  oo.num_threads = 2;
  engine::OocoreEngine eng(path, oo, backend);
  const engine::RunResult truth = eng.run(engine::PageRankOptions(kIters));
  runtime::metrics::MetricsRegistry single_reg;
  serve::StoreOptions so;
  so.num_nodes = 1;
  so.topk_k = kTopK;
  so.registry = &single_reg;
  serve::SnapshotStore store(n, so);
  store.publish(std::span<const rank_t>(truth.ranks));
  serve::ServiceOptions svo;
  svo.registry = &single_reg;
  serve::RankService single(store, svo);

  LoopbackFleet fleet;
  fleet.add_shard(path, VertexRange{0, 256}, kIters, kTopK);
  fleet.add_shard(path, VertexRange{256, 512}, kIters, kTopK);
  fleet.add_shard(path, VertexRange{512, 800}, kIters, kTopK);
  fleet.serve_all();
  ShardRouter router(fleet.targets);
  EXPECT_EQ(router.num_shards(), 3u);
  EXPECT_EQ(router.num_vertices(), n);

  // Batch spanning all shards: bitwise the engine's ranks.
  std::vector<vid_t> vs;
  for (vid_t v = 3; v < n; v += 97) vs.push_back(v);
  const std::vector<serve::Query> queries = {
      serve::Query::batch(vs), serve::Query::top_k(kTopK),
      serve::Query::point(700),
      serve::Query::top_k(8, VertexRange{100, 600})};
  RouterReply reply = router.execute_batch(queries);
  ASSERT_EQ(reply.results.size(), 4u);
  for (const RouterResult& r : reply.results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.mixed_epochs);
    EXPECT_FALSE(r.stale);
    EXPECT_EQ(r.result.epoch, 1u);
  }
  EXPECT_FALSE(reply.mixed_epochs);

  const std::vector<serve::QueryResult> expect =
      single.execute_batch(queries);

  ASSERT_EQ(reply.results[0].result.ranks.size(), expect[0].ranks.size());
  EXPECT_EQ(std::memcmp(reply.results[0].result.ranks.data(),
                        expect[0].ranks.data(),
                        expect[0].ranks.size() * sizeof(rank_t)),
            0);
  ASSERT_EQ(reply.results[1].result.topk.size(), expect[1].topk.size());
  EXPECT_EQ(std::memcmp(reply.results[1].result.topk.data(),
                        expect[1].topk.data(),
                        expect[1].topk.size() * sizeof(serve::TopKEntry)),
            0);
  ASSERT_EQ(reply.results[2].result.ranks.size(), 1u);
  EXPECT_EQ(reply.results[2].result.ranks[0], expect[2].ranks[0]);
  ASSERT_EQ(reply.results[3].result.topk.size(), expect[3].topk.size());
  EXPECT_EQ(std::memcmp(reply.results[3].result.topk.data(),
                        expect[3].topk.data(),
                        expect[3].topk.size() * sizeof(serve::TopKEntry)),
            0);

  // Out-of-universe queries fail without touching the fleet.
  const RouterResult bad = router.execute(serve::Query::point(n));
  EXPECT_FALSE(bad.ok);
  router.stop();
}

TEST(ShardRouter, RejectsBrokenShardMap) {
  const vid_t n = 600;
  const std::string path = make_graph_file("router_gap.hcsr", n, 3000, 4);
  LoopbackFleet fleet;
  fleet.add_shard(path, VertexRange{0, 200}, 4, 8);
  fleet.add_shard(path, VertexRange{300, 600}, 4, 8);  // gap [200, 300)
  fleet.serve_all();
  EXPECT_THROW(ShardRouter{fleet.targets}, Error);
}

// ---------------------------------------------------------------------------
// Epoch consistency under concurrent republish (the tsan contract)
// ---------------------------------------------------------------------------

// Shards republish synthetic slices where every rank encodes the
// publishing epoch (rank == (float)epoch across the whole slice).
// Racing router queries then self-certify: a torn merge — values from
// two epochs inside ONE shard's contribution, or a mixed-epoch merge
// not flagged — is directly visible in the answer bytes.
TEST(ShardRouterRace, EpochConsistentUnderConcurrentRepublish) {
  const vid_t n = 1024;
  const std::string path = make_graph_file("router_race.hcsr", n, 4000, 5);
  constexpr vid_t kSplit = 512;
  constexpr unsigned kTopK = 8;

  LoopbackFleet fleet;
  fleet.add_shard(path, VertexRange{0, kSplit}, 2, kTopK,
                  /*compute_on_start=*/false);
  fleet.add_shard(path, VertexRange{kSplit, n}, 2, kTopK,
                  /*compute_on_start=*/false);
  // Epoch 1 everywhere before the router hellos.
  const std::vector<rank_t> one(kSplit, 1.0f);
  ASSERT_EQ(fleet.servers[0]->publish_slice(one), 1u);
  ASSERT_EQ(fleet.servers[1]->publish_slice(one), 1u);
  fleet.serve_all();
  ShardRouter router(fleet.targets);

  constexpr std::uint64_t kEpochs = 40;
  std::atomic<bool> publishing{true};
  std::thread publisher([&] {
    for (std::uint64_t e = 2; e <= kEpochs; ++e) {
      const std::vector<rank_t> slice(kSplit, static_cast<rank_t>(e));
      ASSERT_EQ(fleet.servers[0]->publish_slice(slice), e);
      ASSERT_EQ(fleet.servers[1]->publish_slice(slice), e);
    }
    publishing.store(false, std::memory_order_release);
  });

  const auto check_uniform = [](std::span<const rank_t> group,
                                std::uint64_t lo, std::uint64_t hi,
                                const char* what) -> std::uint64_t {
    // Every value in one shard's contribution must be the SAME valid
    // epoch — anything else is a torn answer.
    const auto epoch = static_cast<std::uint64_t>(group.front());
    EXPECT_GE(epoch, lo) << what;
    EXPECT_LE(epoch, hi) << what;
    EXPECT_EQ(static_cast<rank_t>(epoch), group.front()) << what;
    for (const rank_t v : group) {
      EXPECT_EQ(v, group.front()) << what << ": torn per-shard answer";
    }
    return epoch;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t floor = 1;  // epochs only move forward per shard
      while (publishing.load(std::memory_order_acquire)) {
        // Batch straddling the shard boundary: positions [0, 3) owned
        // by shard 0, [3, 6) by shard 1.
        const std::vector<vid_t> vs = {5,
                                       100,
                                       static_cast<vid_t>(kSplit - 1),
                                       kSplit,
                                       kSplit + 77,
                                       n - 1};
        const std::vector<serve::Query> qs = {
            serve::Query::batch(vs),
            serve::Query::top_k(4)};
        RouterReply reply = router.execute_batch(qs);
        ASSERT_EQ(reply.results.size(), 2u);
        const RouterResult& batch = reply.results[0];
        const RouterResult& topk = reply.results[1];
        ASSERT_TRUE(batch.ok) << batch.error;
        ASSERT_TRUE(topk.ok) << topk.error;

        ASSERT_EQ(batch.result.ranks.size(), 6u);
        const std::span<const rank_t> ranks(batch.result.ranks);
        const std::uint64_t b0 =
            check_uniform(ranks.subspan(0, 3), floor, kEpochs, "batch/s0");
        const std::uint64_t b1 =
            check_uniform(ranks.subspan(3, 3), floor, kEpochs, "batch/s1");
        EXPECT_EQ(batch.mixed_epochs, b0 != b1)
            << "mixed-epoch merge not flagged (r" << r << ")";
        EXPECT_EQ(batch.result.epoch, std::max(b0, b1))
            << "claimed epoch != evidence in the answer bytes";

        // Top-k entries group by owner range; same uniformity law.
        ASSERT_EQ(topk.result.topk.size(), 4u);
        std::vector<rank_t> g0;
        std::vector<rank_t> g1;
        for (const serve::TopKEntry& e : topk.result.topk) {
          ASSERT_LT(e.vertex, n);
          (e.vertex < kSplit ? g0 : g1).push_back(e.rank);
        }
        std::uint64_t t0 = 0;
        std::uint64_t t1 = 0;
        if (!g0.empty()) {
          t0 = check_uniform(g0, floor, kEpochs, "topk/s0");
        }
        if (!g1.empty()) {
          t1 = check_uniform(g1, floor, kEpochs, "topk/s1");
        }
        if (!g0.empty() && !g1.empty()) {
          EXPECT_EQ(topk.mixed_epochs, t0 != t1);
          EXPECT_EQ(topk.result.epoch, std::max(t0, t1));
        }
        EXPECT_FALSE(topk.stale) << "no shard died in this test";
        // Monotonicity: a later read never sees an older epoch than a
        // completed earlier read established fleet-wide.
        floor = std::max(floor, std::min(b0, b1));
      }
    });
  }
  publisher.join();
  for (std::thread& t : readers) t.join();

  const RouterStats stats = router.stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.republish_notices, 0u);
  router.stop();
}

}  // namespace
}  // namespace hipa::shard
