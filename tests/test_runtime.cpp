// Tests for the native runtime: barrier, persistent team, fork-join.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/affinity.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"

namespace hipa::runtime {
namespace {

TEST(Barrier, SingleThreadPassesThrough) {
  SpinBarrier barrier(1);
  bool sense = false;
  barrier.arrive_and_wait(sense);
  barrier.arrive_and_wait(sense);
  SUCCEED();
}

TEST(Barrier, SynchronizesPhases) {
  constexpr unsigned kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      bool sense = false;
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait(sense);
        // After the barrier every thread of round r has incremented.
        if (counter.load() < (r + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait(sense);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kThreads));
}

TEST(PersistentTeam, RunsEveryThreadOnce) {
  PersistentTeam team(8);
  std::vector<int> hits(8, 0);
  team.run([&](unsigned t) { hits[t]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(PersistentTeam, ReusableAcrossManyDispatches) {
  PersistentTeam team(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 100; ++i) {
    team.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(PersistentTeam, ThreadsKeepIdentity) {
  PersistentTeam team(3);
  std::vector<std::thread::id> first(3);
  std::vector<std::thread::id> second(3);
  team.run([&](unsigned t) { first[t] = std::this_thread::get_id(); });
  team.run([&](unsigned t) { second[t] = std::this_thread::get_id(); });
  // Algorithm 2's whole point: the same threads persist across phases.
  EXPECT_EQ(first, second);
}

TEST(ForkJoin, RunsAllThreads) {
  std::vector<int> hits(6, 0);
  fork_join_run(6, [&](unsigned t) { hits[t] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 6);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(7, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(4, 0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(16, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Affinity, AvailableCpusPositive) {
  EXPECT_GE(available_cpus(), 1u);
}

TEST(Affinity, PinToExistingCpuSucceedsOrFailsGracefully) {
  // On a 1-vCPU box pinning to CPU 0 should succeed; pinning to CPU
  // 4096 must fail without crashing.
  pin_current_thread(0);
  EXPECT_FALSE(pin_current_thread(4096));
}

}  // namespace
}  // namespace hipa::runtime
