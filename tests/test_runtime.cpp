// Tests for the native runtime: barrier, persistent team, fork-join,
// topology discovery, binding maps, and page placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "runtime/affinity.hpp"
#include "runtime/barrier.hpp"
#include "runtime/placement.hpp"
#include "runtime/thread_pool.hpp"

namespace hipa::runtime {
namespace {

TEST(Barrier, SingleThreadPassesThrough) {
  SpinBarrier barrier(1);
  bool sense = false;
  barrier.arrive_and_wait(sense);
  barrier.arrive_and_wait(sense);
  SUCCEED();
}

TEST(Barrier, SynchronizesPhases) {
  constexpr unsigned kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      bool sense = false;
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait(sense);
        // After the barrier every thread of round r has incremented.
        if (counter.load() < (r + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait(sense);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kThreads));
}

TEST(PersistentTeam, RunsEveryThreadOnce) {
  PersistentTeam team(8);
  std::vector<int> hits(8, 0);
  team.run([&](unsigned t) { hits[t]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(PersistentTeam, ReusableAcrossManyDispatches) {
  PersistentTeam team(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 100; ++i) {
    team.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(PersistentTeam, ThreadsKeepIdentity) {
  PersistentTeam team(3);
  std::vector<std::thread::id> first(3);
  std::vector<std::thread::id> second(3);
  team.run([&](unsigned t) { first[t] = std::this_thread::get_id(); });
  team.run([&](unsigned t) { second[t] = std::this_thread::get_id(); });
  // Algorithm 2's whole point: the same threads persist across phases.
  EXPECT_EQ(first, second);
}

TEST(ForkJoin, RunsAllThreads) {
  std::vector<int> hits(6, 0);
  fork_join_run(6, [&](unsigned t) { hits[t] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 6);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(7, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(4, 0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(16, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Affinity, AvailableCpusPositive) {
  EXPECT_GE(available_cpus(), 1u);
}

TEST(Affinity, PinToExistingCpuSucceedsOrFailsGracefully) {
  // On a 1-vCPU box pinning to CPU 0 should succeed; pinning to CPU
  // 4096 must fail without crashing.
  pin_current_thread(0);
  EXPECT_FALSE(pin_current_thread(4096));
}

// ---- topology discovery -----------------------------------------------------

TEST(Topology, ParseCpulist) {
  EXPECT_EQ(parse_cpulist("0-3,8,10-11"),
            (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<unsigned>{5}));
  EXPECT_EQ(parse_cpulist("0-0"), (std::vector<unsigned>{0}));
  EXPECT_EQ(parse_cpulist("7\n"), (std::vector<unsigned>{7}));
  EXPECT_TRUE(parse_cpulist("").empty());
  // Malformed tails keep the valid prefix; inverted ranges stop.
  EXPECT_EQ(parse_cpulist("1,2,x"), (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(parse_cpulist("3-1"), std::vector<unsigned>{});
}

TEST(Topology, DiscoveryInvariants) {
  const HostTopology topo = discover_topology();
  ASSERT_GE(topo.num_nodes(), 1u);
  EXPECT_GE(topo.num_cpus(), 1u);
  std::set<unsigned> seen;
  for (const auto& cpus : topo.node_cpus) {
    ASSERT_FALSE(cpus.empty());  // memory-only nodes must be skipped
    EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
    for (unsigned c : cpus) EXPECT_TRUE(seen.insert(c).second) << c;
  }
}

TEST(Topology, CachedAccessorIsStable) {
  const HostTopology& a = topology();
  const HostTopology& b = topology();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_cpus(), discover_topology().num_cpus());
}

std::set<unsigned> host_cpu_set() {
  std::set<unsigned> all;
  for (const auto& cpus : topology().node_cpus) {
    all.insert(cpus.begin(), cpus.end());
  }
  return all;
}

TEST(Topology, NodeBlockedMapMatchesRequest) {
  const auto all = host_cpu_set();
  // 2 threads on "node 0", 3 on "node 1": thread ids grouped per node.
  const auto map = cpus_node_blocked({2, 3});
  ASSERT_EQ(map.size(), 5u);
  for (unsigned cpu : map) EXPECT_TRUE(all.count(cpu)) << cpu;
  const auto& topo = topology();
  const auto& node0 = topo.node_cpus[0];
  EXPECT_TRUE(std::count(node0.begin(), node0.end(), map[0]) == 1);
}

TEST(Topology, NodeBlockedFallsBackWhenRequestedCpusDontExist) {
  // Ask for far more nodes and threads than any test box has: every
  // entry must still be a real CPU (wrap, never invent).
  const auto all = host_cpu_set();
  const auto map = cpus_node_blocked(
      {available_cpus() + 7, 5, 5, 5, 5, 5, 5, 5});
  ASSERT_EQ(map.size(), available_cpus() + 7 + 7 * 5);
  for (unsigned cpu : map) EXPECT_TRUE(all.count(cpu)) << cpu;
}

TEST(Topology, SpreadMapCoversAndWraps) {
  const auto all = host_cpu_set();
  const auto map = cpus_spread(static_cast<unsigned>(all.size()) * 2 + 3);
  ASSERT_EQ(map.size(), all.size() * 2 + 3);
  for (unsigned cpu : map) EXPECT_TRUE(all.count(cpu)) << cpu;
  // One full lap visits every CPU exactly once.
  std::set<unsigned> lap(map.begin(), map.begin() + all.size());
  EXPECT_EQ(lap, all);
}

// ---- persistent team with explicit pinning ----------------------------------

TEST(PersistentTeam, PinnedTeamStillRunsWhenCpusDontExist) {
  // Pin requests to absurd CPUs must degrade to unpinned execution.
  PersistentTeam team(3, {0, 4096, 9999});
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    team.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(PersistentTeam, ThousandsOfDispatches) {
  // Algorithm 2 reuses ONE team for the whole run; the generation
  // counter must not wedge or skip across thousands of dispatches.
  PersistentTeam team(4);
  std::atomic<std::uint64_t> total{0};
  for (int i = 0; i < 3000; ++i) {
    team.run([&](unsigned t) { total.fetch_add(t + 1); });
  }
  EXPECT_EQ(total.load(), std::uint64_t{3000} * (1 + 2 + 3 + 4));
}

TEST(Barrier, StressManyRounds) {
  constexpr unsigned kThreads = 4;
  constexpr int kRounds = 2000;
  SpinBarrier barrier(kThreads);
  // Per-thread slots written before the barrier, read after it: the
  // barrier's ordering must make every write visible.
  std::vector<std::uint64_t> slot(kThreads, 0);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool sense = false;
      for (int r = 0; r < kRounds; ++r) {
        slot[t] = static_cast<std::uint64_t>(r) + 1;
        barrier.arrive_and_wait(sense);
        for (unsigned u = 0; u < kThreads; ++u) {
          if (slot[u] != static_cast<std::uint64_t>(r) + 1) {
            failed.store(true);
          }
        }
        barrier.arrive_and_wait(sense);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

// ---- page placement ---------------------------------------------------------

TEST(Placement, FirstTouchZeroesOnAnyHost) {
  std::vector<unsigned char> buf(3 * 4096 + 17, 0xAB);
  first_touch_zero_on_node(buf.data(), buf.size(), 0);
  for (unsigned char b : buf) ASSERT_EQ(b, 0);
  std::fill(buf.begin(), buf.end(), 0xCD);
  first_touch_zero_interleaved(buf.data(), buf.size());
  for (unsigned char b : buf) ASSERT_EQ(b, 0);
}

TEST(Placement, FirstTouchOnBogusNodeWraps) {
  std::vector<unsigned char> buf(4096, 0xEE);
  first_touch_zero_on_node(buf.data(), buf.size(), 12345);
  for (unsigned char b : buf) ASSERT_EQ(b, 0);
}

TEST(Placement, BindIsBestEffort) {
  // Either the syscall path is compiled in and succeeds for node 0,
  // or it reports failure — both are acceptable; neither may crash
  // or corrupt the buffer.
  std::vector<unsigned char> buf(8 * 4096, 0x5A);
  const bool bound = bind_pages_to_node(buf.data(), buf.size(), 0);
  const bool inter = interleave_pages(buf.data(), buf.size());
  if (!numa_binding_available()) {
    EXPECT_FALSE(bound);
    EXPECT_FALSE(inter);
  }
  for (unsigned char b : buf) ASSERT_EQ(b, 0x5A);
}

TEST(Placement, SubPageRangesAreNoops) {
  std::vector<unsigned char> buf(64, 0x77);
  bind_pages_to_node(buf.data(), buf.size(), 0);
  interleave_pages(buf.data(), buf.size());
  for (unsigned char b : buf) ASSERT_EQ(b, 0x77);
}

}  // namespace
}  // namespace hipa::runtime
