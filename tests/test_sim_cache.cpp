// Tests for the cache model and NUMA page map.
#include <gtest/gtest.h>

#include "common/aligned_buffer.hpp"
#include "sim/cache.hpp"
#include "sim/machine.hpp"
#include "sim/numa_map.hpp"

namespace hipa::sim {
namespace {

TEST(Cache, HitAfterFill) {
  CacheModel c({1024, 4, 64});  // 4 sets
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsOldest) {
  // One set (size = assoc * line): addresses spaced by set stride all
  // collide.
  CacheModel c({2 * 64, 2, 64});  // 1 set, 2 ways
  const std::uint64_t stride = 64;
  EXPECT_FALSE(c.access(0 * stride));
  EXPECT_FALSE(c.access(1 * stride));
  EXPECT_TRUE(c.access(0 * stride));   // refresh line 0
  EXPECT_FALSE(c.access(2 * stride));  // evicts line 1 (LRU)
  EXPECT_TRUE(c.access(0 * stride));
  EXPECT_FALSE(c.access(1 * stride));  // line 1 was evicted
}

TEST(Cache, WayPartitioningIsolatesSiblings) {
  CacheModel c({4 * 64, 4, 64});  // 1 set, 4 ways
  // Sibling 0 uses ways [0,2), sibling 1 uses ways [2,4).
  EXPECT_FALSE(c.access(0, 0, 2));
  EXPECT_FALSE(c.access(64, 0, 2));
  EXPECT_TRUE(c.access(0, 0, 2));
  // Sibling 1 filling its ways must not evict sibling 0's lines.
  EXPECT_FALSE(c.access(128, 2, 2));
  EXPECT_FALSE(c.access(192, 2, 2));
  EXPECT_FALSE(c.access(256, 2, 2));  // evicts within sibling 1 only
  EXPECT_TRUE(c.access(0, 0, 2));
  EXPECT_TRUE(c.access(64, 0, 2));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  CacheModel c({64 * 64, 4, 64});  // 4 KB
  // Stream 8 KB twice: second pass must still miss (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 8192; a += 64) c.access(a);
  }
  EXPECT_EQ(c.hits(), 0u);
  // Now a working set that fits is all hits on the second pass.
  CacheModel small({64 * 64, 4, 64});
  for (std::uint64_t a = 0; a < 2048; a += 64) small.access(a);
  const auto misses_cold = small.misses();
  for (std::uint64_t a = 0; a < 2048; a += 64) small.access(a);
  EXPECT_EQ(small.misses(), misses_cold);
  EXPECT_EQ(small.hits(), misses_cold);
}

TEST(Cache, FlushDropsEverything) {
  CacheModel c({1024, 4, 64});
  c.access(0);
  EXPECT_TRUE(c.access(0));
  c.flush();
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, GeometryRoundsToPow2Sets) {
  CacheModel c({13'750'000, 11, 64});  // 13.75 MB, odd set count
  const auto& g = c.geometry();
  EXPECT_EQ(g.size_bytes % (std::uint64_t{g.associativity} * g.line_bytes),
            0u);
}

TEST(NumaMap, NodePlacement) {
  NumaMap map(2);
  alignas(4096) static char arr[4096 * 4];
  map.register_range(arr, sizeof arr, Placement::kNode, 1);
  const auto a = reinterpret_cast<std::uint64_t>(arr);
  EXPECT_EQ(map.node_of(a), 1u);
  EXPECT_EQ(map.node_of(a + sizeof(arr) - 1), 1u);
}

TEST(NumaMap, InterleaveAlternatesPages) {
  NumaMap map(2);
  alignas(4096) static char arr[4096 * 4];
  map.register_range(arr, sizeof arr, Placement::kInterleave);
  const auto a = reinterpret_cast<std::uint64_t>(arr);
  const unsigned first = map.node_of(a);
  EXPECT_EQ(map.node_of(a + 4096), 1u - first);
  EXPECT_EQ(map.node_of(a + 8192), first);
  // Within one page the node is constant.
  EXPECT_EQ(map.node_of(a + 100), first);
}

TEST(NumaMap, LaterRegistrationShadows) {
  NumaMap map(2);
  alignas(4096) static char arr[4096 * 2];
  map.register_range(arr, sizeof arr, Placement::kNode, 0);
  map.register_range(arr, 4096, Placement::kNode, 1);
  const auto a = reinterpret_cast<std::uint64_t>(arr);
  EXPECT_EQ(map.node_of(a), 1u);
  EXPECT_EQ(map.node_of(a + 4096), 0u);
}

TEST(NumaMap, ScatterIsDeterministicAndMixed) {
  NumaMap map(2, 99);
  alignas(4096) static char arr[4096 * 64];
  map.register_range(arr, sizeof arr, Placement::kScatter);
  const auto a = reinterpret_cast<std::uint64_t>(arr);
  unsigned node0 = 0;
  for (unsigned p = 0; p < 64; ++p) {
    const unsigned n = map.node_of(a + p * 4096);
    EXPECT_EQ(n, map.node_of(a + p * 4096 + 17));  // stable per page
    node0 += (n == 0);
  }
  // Roughly half the pages on each node.
  EXPECT_GT(node0, 16u);
  EXPECT_LT(node0, 48u);
}

TEST(Cache, AccessDetailedReportsVictim) {
  CacheModel c({2 * 64, 2, 64});  // 1 set, 2 ways
  EXPECT_FALSE(c.access_detailed(0).evicted);     // empty way
  EXPECT_FALSE(c.access_detailed(64).evicted);    // empty way
  const auto r = c.access_detailed(128);          // evicts line 0 (LRU)
  EXPECT_FALSE(r.hit);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_addr, 0u);
}

TEST(Cache, InvalidateDropsLine) {
  CacheModel c({1024, 4, 64});
  c.access(0);
  EXPECT_TRUE(c.invalidate(32));   // same line as addr 0
  EXPECT_FALSE(c.invalidate(0));   // already gone
  EXPECT_FALSE(c.access(0));       // misses again
}

TEST(Cache, InclusiveBackInvalidationViaMachine) {
  // On an inclusive-LLC topology, thrashing the LLC must also evict
  // the line from the private caches: a later re-access misses all
  // the way to DRAM even though L1/L2 alone would have kept it.
  Topology topo = Topology::haswell_2s();
  ASSERT_TRUE(topo.inclusive_llc);
  SimMachine m(topo);
  // Working set far larger than the LLC, streamed after touching one
  // hot line: the hot line gets back-invalidated from L1/L2.
  static AlignedBuffer<char> hot(64);
  static AlignedBuffer<char> wash(64u << 20);  // 64 MB > 20 MB LLC
  m.numa().register_range(hot.data(), 64, Placement::kNode, 0);
  m.numa().register_range(wash.data(), wash.size(), Placement::kNode, 0);
  PlacementVec placement{topo.lcid_of(0, 0, 0)};
  m.run_phase(placement, [&](unsigned, SimMem& mem) {
    (void)mem.load(hot.data());
    mem.stream_read(wash.data(), wash.size());
    (void)mem.load(hot.data());
  });
  // Second hot access must be an LLC miss (DRAM), not an L1/L2 hit:
  // 2 hot loads + wash, all missing DRAM at least once.
  EXPECT_EQ(m.stats().llc_misses, 2u + (wash.size() / 64));
}

TEST(NumaMap, UnregisteredFallsBackToScatter) {
  NumaMap map(4);
  // Unregistered addresses must return *some* valid node.
  EXPECT_LT(map.node_of(0xdeadbeef000ULL), 4u);
}

}  // namespace
}  // namespace hipa::sim
