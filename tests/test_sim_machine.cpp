// Tests for the simulated machine: topology math, placements, phase
// accounting, NUMA locality effects, SMT combining.
#include <gtest/gtest.h>

#include <set>

#include "common/aligned_buffer.hpp"
#include "sim/machine.hpp"

namespace hipa::sim {
namespace {

TEST(Topology, SkylakePreset) {
  const Topology t = Topology::skylake_2s();
  EXPECT_EQ(t.num_nodes, 2u);
  EXPECT_EQ(t.num_physical_cores(), 20u);
  EXPECT_EQ(t.num_logical_cores(), 40u);
  EXPECT_EQ(t.l2.size_bytes, 1024u * 1024u);
  EXPECT_FALSE(t.inclusive_llc);
}

TEST(Topology, HaswellPreset) {
  const Topology t = Topology::haswell_2s();
  EXPECT_EQ(t.l2.size_bytes, 256u * 1024u);
  EXPECT_TRUE(t.inclusive_llc);
  EXPECT_EQ(t.num_logical_cores(), 32u);
}

TEST(Topology, LogicalCoreRoundTrip) {
  const Topology t = Topology::skylake_2s();
  for (unsigned lcid = 0; lcid < t.num_logical_cores(); ++lcid) {
    const LogicalCore lc = t.logical_core(lcid);
    EXPECT_EQ(t.lcid_of(lc.node, lc.phys, lc.smt), lcid);
  }
  // SMT plane 0 occupies the first 20 ids.
  EXPECT_EQ(t.logical_core(0).smt, 0u);
  EXPECT_EQ(t.logical_core(20).smt, 1u);
  EXPECT_EQ(t.phys_index(0), t.phys_index(20));
}

TEST(Topology, ScaledShrinksCaches) {
  const Topology t = Topology::skylake_2s().scaled(8);
  EXPECT_EQ(t.l2.size_bytes, 128u * 1024u);
  EXPECT_EQ(t.num_logical_cores(), 40u);  // cores unchanged
}

TEST(Machine, PlacementNodeBlocked) {
  SimMachine m(Topology::skylake_2s());
  const std::vector<unsigned> per_node = {12, 3};
  const auto p = m.placement_node_blocked(per_node);
  ASSERT_EQ(p.size(), 15u);
  const Topology& t = m.topology();
  // First 10 threads on node 0 plane 0, next 2 on node 0 plane 1.
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_EQ(t.logical_core(p[i]).node, 0u);
    EXPECT_EQ(t.logical_core(p[i]).smt, 0u);
  }
  EXPECT_EQ(t.logical_core(p[10]).smt, 1u);
  for (unsigned i = 12; i < 15; ++i) {
    EXPECT_EQ(t.logical_core(p[i]).node, 1u);
  }
  // All distinct.
  EXPECT_EQ(std::set<unsigned>(p.begin(), p.end()).size(), p.size());
}

TEST(Machine, PlacementSpreadUsesPhysicalFirst) {
  SimMachine m(Topology::skylake_2s());
  const auto p = m.placement_spread(20);
  const Topology& t = m.topology();
  std::set<unsigned> phys;
  for (unsigned lcid : p) {
    EXPECT_EQ(t.logical_core(lcid).smt, 0u);
    phys.insert(t.phys_index(lcid));
  }
  EXPECT_EQ(phys.size(), 20u);
  // Alternates nodes.
  EXPECT_NE(t.logical_core(p[0]).node, t.logical_core(p[1]).node);
}

TEST(Machine, PlacementRandomDistinctAndDeterministic) {
  SimMachine a(Topology::skylake_2s(), {}, 5);
  SimMachine b(Topology::skylake_2s(), {}, 5);
  const auto pa = a.placement_random(33);
  const auto pb = b.placement_random(33);
  EXPECT_EQ(pa, pb);
  EXPECT_EQ(std::set<unsigned>(pa.begin(), pa.end()).size(), 33u);
}

TEST(Machine, PhaseCountsAccessesAndCycles) {
  SimMachine m(Topology::skylake_2s());
  AlignedBuffer<float> data(1024);
  m.numa().register_range(data.data(), 1024 * 4, Placement::kNode, 0);
  const auto placement = m.placement_spread(2);
  m.run_phase(placement, [&](unsigned, SimMem& mem) {
    for (int i = 0; i < 100; ++i) {
      (void)mem.load(data.data() + i);
    }
  });
  const SimStats& s = m.stats();
  EXPECT_EQ(s.loads, 200u);
  EXPECT_EQ(s.phases, 1u);
  EXPECT_GT(s.total_cycles, 0u);
  // 100 floats = 7 lines; each thread misses them in its own L1/L2 but
  // the second thread can hit the shared LLC only if on the same node.
  EXPECT_GE(s.l1_misses, 7u);
}

TEST(Machine, LocalVsRemoteLatency) {
  const Topology topo = Topology::skylake_2s();
  AlignedBuffer<float> data(1u << 16);

  auto run_on_node = [&](unsigned data_node) {
    SimMachine m(topo);
    m.numa().register_range(data.data(), data.size() * 4, Placement::kNode,
                            data_node);
    // One thread on node 0 streaming the data once (cold caches).
    PlacementVec placement{m.topology().lcid_of(0, 0, 0)};
    m.run_phase(placement, [&](unsigned, SimMem& mem) {
      mem.stream_read(data.data(), data.size());
    });
    return m.stats();
  };

  const SimStats local = run_on_node(0);
  const SimStats remote = run_on_node(1);
  EXPECT_EQ(local.dram_remote_bytes, 0u);
  EXPECT_EQ(remote.dram_local_bytes, 0u);
  EXPECT_GT(remote.dram_remote_bytes, 0u);
  // Remote run must cost noticeably more cycles (latency 500 vs 200).
  EXPECT_GT(remote.total_cycles, local.total_cycles * 3 / 2);
}

TEST(Machine, SmtSiblingsShareCore) {
  const Topology topo = Topology::skylake_2s();
  AlignedBuffer<float> data(1u << 14);

  auto run = [&](bool same_core) {
    SimMachine m(topo);
    m.numa().register_range(data.data(), data.size() * 4, Placement::kNode,
                            0);
    PlacementVec placement;
    placement.push_back(topo.lcid_of(0, 0, 0));
    placement.push_back(same_core ? topo.lcid_of(0, 0, 1)
                                  : topo.lcid_of(0, 1, 0));
    m.run_phase(placement, [&](unsigned, SimMem& mem) {
      mem.work(1'000'000);
    });
    return m.stats().total_cycles;
  };

  // Pure-compute threads on one physical core serialize partially; on
  // two cores they overlap fully.
  EXPECT_GT(run(true), run(false));
}

TEST(Machine, ThreadEventAccounting) {
  SimMachine m(Topology::skylake_2s());
  const auto before = m.stats().total_cycles;
  m.charge_thread_creations(10);
  m.charge_thread_migrations(4, true);
  EXPECT_EQ(m.stats().thread_creations, 10u);
  EXPECT_EQ(m.stats().thread_migrations, 4u);
  EXPECT_GT(m.stats().total_cycles, before);
}

TEST(Machine, ResetClearsState) {
  SimMachine m(Topology::skylake_2s());
  AlignedBuffer<float> data(64);
  const auto placement = m.placement_spread(1);
  m.run_phase(placement, [&](unsigned, SimMem& mem) {
    (void)mem.load(data.data());
  });
  EXPECT_GT(m.stats().total_cycles, 0u);
  m.reset();
  EXPECT_EQ(m.stats().total_cycles, 0u);
  EXPECT_EQ(m.stats().loads, 0u);
  // Caches flushed: the same access misses again.
  m.run_phase(placement, [&](unsigned, SimMem& mem) {
    (void)mem.load(data.data());
  });
  EXPECT_EQ(m.stats().l1_misses, 1u);
}

TEST(Machine, BandwidthFloorBindsHeavyPhases) {
  // Many threads each streaming a distinct slice: per-core latency
  // time is small, so with a crippled DRAM bandwidth the phase must be
  // bound by the bandwidth floor instead.
  Topology topo = Topology::skylake_2s();
  CostModel cost;
  cost.dram_bw_per_node = 0.05;  // absurdly slow DRAM
  SimMachine slow(topo, cost);
  SimMachine fast(topo);  // default bandwidth
  constexpr unsigned kThreads = 20;
  constexpr std::size_t kPerThread = 1u << 16;
  AlignedBuffer<float> data(kThreads * kPerThread);
  for (SimMachine* m : {&slow, &fast}) {
    m->numa().register_range(data.data(), data.size() * 4,
                             Placement::kInterleave);
    const auto placement = m->placement_spread(kThreads);
    m->run_phase(placement, [&](unsigned t, SimMem& mem) {
      mem.stream_read(data.data() + t * kPerThread, kPerThread);
    });
  }
  // Same work, same counters — only the bandwidth floor differs.
  EXPECT_EQ(slow.stats().dram_bytes(), fast.stats().dram_bytes());
  EXPECT_GT(slow.stats().total_cycles, 2 * fast.stats().total_cycles);
}

TEST(Machine, SecondsUsesFrequency) {
  SimMachine m(Topology::skylake_2s());
  m.charge_cycles(2'200'000'000ULL);  // one second at 2.2 GHz
  EXPECT_NEAR(m.seconds(), 1.0, 1e-9);
}


TEST(Machine, PhaseLogRecordsAnatomy) {
  SimMachine m(Topology::skylake_2s());
  m.set_phase_log(true);
  AlignedBuffer<float> data(1u << 16);
  m.numa().register_range(data.data(), data.size() * 4, Placement::kNode,
                          0);
  const auto placement = m.placement_spread(4);
  m.run_phase(placement, [&](unsigned t, SimMem& mem) {
    mem.stream_read(data.data() + t * 1024, 1024);
    mem.work(1000);
  });
  ASSERT_EQ(m.phase_log().size(), 1u);
  const PhaseRecord& r = m.phase_log().front();
  EXPECT_EQ(r.threads, 4u);
  EXPECT_GT(r.t_core, 0u);
  EXPECT_GT(r.t_avg, 0u);
  EXPECT_GE(r.t_core, r.t_avg);
  EXPECT_GE(r.penalty, 1.0);
  EXPECT_GE(r.cycles, r.t_core);
  m.reset();
  EXPECT_TRUE(m.phase_log().empty());
}

TEST(Machine, RejectsOversubscribedCore) {
  SimMachine m(Topology::skylake_2s());
  const unsigned lcid = m.topology().lcid_of(0, 0, 0);
  PlacementVec placement{lcid, lcid, lcid};  // 3 threads, 2 SMT contexts
  EXPECT_THROW(
      m.run_phase(placement, [](unsigned, SimMem&) {}),
      Error);
}

}  // namespace
}  // namespace hipa::sim
