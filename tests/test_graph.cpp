// Unit tests for src/graph: CSR invariants, builder options, transpose,
// I/O round-trips, statistics, reordering.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"

namespace hipa::graph {
namespace {

std::vector<Edge> diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
  return {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}};
}

TEST(Csr, BuildBasics) {
  const CsrGraph g = build_csr(4, diamond());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(Csr, RejectsOutOfRangeEdge) {
  const std::vector<Edge> bad = {{0, 7}};
  EXPECT_THROW(build_csr(4, bad), Error);
}

TEST(Csr, TransposeRoundTrip) {
  const CsrGraph g = build_csr(4, diamond());
  const CsrGraph t = g.transpose();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  // In-degree of 3 is 2 (from 1 and 2).
  EXPECT_EQ(t.degree(3), 2u);
  const CsrGraph back = t.transpose();
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (vid_t v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Csr, CountEdgesWithin) {
  const CsrGraph g = build_csr(4, diamond());
  EXPECT_EQ(g.count_edges_within({0, 4}), 5u);
  EXPECT_EQ(g.count_edges_within({0, 3}), 2u);  // 0->1, 0->2
  EXPECT_EQ(g.count_edges_within({2, 2}), 0u);
}

TEST(Builder, RemoveSelfLoops) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}};
  BuildOptions opts;
  opts.remove_self_loops = true;
  const CsrGraph g = build_csr(2, edges, opts);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, RemoveDuplicates) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 2}, {1, 2}, {1, 2}};
  BuildOptions opts;
  opts.remove_duplicates = true;
  const CsrGraph g = build_csr(3, edges, opts);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, Symmetrize) {
  const std::vector<Edge> edges = {{0, 1}};
  BuildOptions opts;
  opts.symmetrize = true;
  const CsrGraph g = build_csr(2, edges, opts);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, SortedNeighbors) {
  const std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}};
  const CsrGraph g = build_csr(4, edges);
  const auto n = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(GraphBundle, FromOut) {
  const Graph g = build_graph(4, diamond());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.in.degree(3), 2u);
  EXPECT_EQ(g.out.degree(0), 2u);
}

TEST(Io, EdgeListRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hipa_el_test.txt";
  const std::vector<Edge> edges = diamond();
  write_edge_list(path, 4, edges);
  const EdgeListFile loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices, 4u);
  ASSERT_EQ(loaded.edges.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i], edges[i]);
  }
  std::remove(path.c_str());
}

TEST(Io, EdgeListSkipsComments) {
  const std::string path = ::testing::TempDir() + "/hipa_el_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n% another\n1 2\n\n3 4\n", f);
  std::fclose(f);
  const EdgeListFile loaded = read_edge_list(path);
  EXPECT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.num_vertices, 5u);
  std::remove(path.c_str());
}

TEST(Io, BinaryCsrRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hipa_test.hcsr";
  const CsrGraph g = build_csr(4, diamond());
  save_csr(path, g);
  const CsrGraph loaded = load_csr(path);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (vid_t v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/hipa_garbage.hcsr";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a csr file at all, just text", f);
  std::fclose(f);
  EXPECT_THROW(load_csr(path), Error);
  std::remove(path.c_str());
}

namespace {

/// Runs `fn`, expecting it to throw hipa::Error; returns the message.
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected hipa::Error, none thrown";
  return {};
}

void write_file(const std::string& path, const void* data,
                std::size_t bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data, 1, bytes, f), bytes);
  std::fclose(f);
}

void write_text(const std::string& path, const char* text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(text, f);
  std::fclose(f);
}

std::vector<char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

}  // namespace

TEST(Io, BinaryRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "/hipa_trunc.hcsr";
  save_csr(path, build_csr(4, diamond()));
  std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 10u);
  bytes.resize(bytes.size() - 10);  // chop the payload tail
  write_file(path, bytes.data(), bytes.size());
  const std::string msg = error_message([&] { (void)load_csr(path); });
  EXPECT_NE(msg.find("size mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsForeignMagic) {
  const std::string path = ::testing::TempDir() + "/hipa_foreign.hcsr";
  // Plausibly sized binary file with the wrong magic: must be named
  // as a foreign format, not as a truncation.
  std::vector<char> bytes(64, '\x7f');
  write_file(path, bytes.data(), bytes.size());
  const std::string msg = error_message([&] { (void)load_csr(path); });
  EXPECT_NE(msg.find("foreign"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsChecksumMismatch) {
  const std::string path = ::testing::TempDir() + "/hipa_cksum.hcsr";
  save_csr(path, build_csr(4, diamond()));
  std::vector<char> bytes = slurp(path);
  ASSERT_GE(bytes.size(), 32u);
  bytes[24] ^= 0x01;  // flip one bit inside the v2 checksum word
  write_file(path, bytes.data(), bytes.size());
  const std::string msg = error_message([&] { (void)load_csr(path); });
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsCorruptedCounts) {
  const std::string path = ::testing::TempDir() + "/hipa_counts.hcsr";
  save_csr(path, build_csr(4, diamond()));
  std::vector<char> bytes = slurp(path);
  bytes[8] ^= 0x01;  // vertex-count word: checksum must catch it
  write_file(path, bytes.data(), bytes.size());
  EXPECT_THROW((void)load_csr(path), Error);
  std::remove(path.c_str());
}

TEST(Io, BinaryAcceptsV1Header) {
  // A v1 file is the 24-byte checksum-free header + payload. Build it
  // by hand so the reader keeps accepting pre-v2 artifacts.
  const std::string path = ::testing::TempDir() + "/hipa_v1.hcsr";
  const CsrGraph g = build_csr(4, diamond());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::uint64_t magic = 0x48435352'00000001ULL;
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  std::fwrite(&magic, 1, 8, f);
  std::fwrite(&v, 1, 8, f);
  std::fwrite(&e, 1, 8, f);
  std::fwrite(g.offsets().data(), 1, g.offsets().size_bytes(), f);
  std::fwrite(g.targets().data(), 1, g.targets().size_bytes(), f);
  std::fclose(f);
  const CsrGraph loaded = load_csr(path);
  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (vid_t u = 0; u < 4; ++u) {
    const auto a = g.neighbors(u);
    const auto b = loaded.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(Io, EdgeListRejectsNegativeId) {
  const std::string path = ::testing::TempDir() + "/hipa_el_neg.txt";
  write_text(path, "0 1\n-3 4\n");
  const std::string msg =
      error_message([&] { (void)read_edge_list(path); });
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Io, EdgeListRejectsOverflowingId) {
  const std::string path = ::testing::TempDir() + "/hipa_el_ovf.txt";
  // kInvalidVid (2^32 - 1) and anything past it must be refused:
  // they'd silently wrap a 64-bit parse into a bogus vid_t.
  write_text(path, "1 2\n3 4\n7 4294967295\n");
  const std::string msg =
      error_message([&] { (void)read_edge_list(path); });
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("overflows"), std::string::npos) << msg;
  write_text(path, "1 99999999999999999999\n");
  EXPECT_THROW((void)read_edge_list(path), Error);
  std::remove(path.c_str());
}

TEST(Io, EdgeListRejectsNonNumericToken) {
  const std::string path = ::testing::TempDir() + "/hipa_el_alpha.txt";
  write_text(path, "0 1\n2 x\n");
  const std::string msg =
      error_message([&] { (void)read_edge_list(path); });
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("malformed"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Io, EdgeListRejectsMissingField) {
  const std::string path = ::testing::TempDir() + "/hipa_el_short.txt";
  write_text(path, "0 1\n1 2\n5\n");
  const std::string msg =
      error_message([&] { (void)read_edge_list(path); });
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Io, EdgeListRejectsTrailingGarbage) {
  const std::string path = ::testing::TempDir() + "/hipa_el_trail.txt";
  write_text(path, "0 1 weight=0.5\n");
  const std::string msg =
      error_message([&] { (void)read_edge_list(path); });
  EXPECT_NE(msg.find(":1:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Stats, DegreeStats) {
  const CsrGraph g = build_csr(4, diamond());
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 5.0 / 4.0);
  EXPECT_GT(s.skew_vertex_fraction_for_90pct_edges, 0.0);
}

TEST(Stats, PartitionEdgeStats) {
  // Two partitions of 2 vertices: {0,1} and {2,3}.
  const CsrGraph g = build_csr(4, diamond());
  const PartitionEdgeStats s = partition_edge_stats(g, 2);
  EXPECT_EQ(s.num_partitions, 2u);
  // 0->1 intra; 2->3 intra; 0->2, 1->3, 3->0 inter.
  EXPECT_EQ(s.intra_edges_total, 2u);
  EXPECT_EQ(s.inter_edges_total, 3u);
  EXPECT_EQ(s.intra_edges_total + s.inter_edges_total, g.num_edges());
  // 0->2 and 1->3 and 3->0 have distinct (src, dst-partition) pairs.
  EXPECT_EQ(s.compressed_inter_total, 3u);
}

TEST(Stats, CompressionCollapsesSharedTargets) {
  // v0 -> {2, 3}: both in partition 1 => one compressed inter-edge.
  const std::vector<Edge> edges = {{0, 2}, {0, 3}};
  const CsrGraph g = build_csr(4, edges);
  const PartitionEdgeStats s = partition_edge_stats(g, 2);
  EXPECT_EQ(s.inter_edges_total, 2u);
  EXPECT_EQ(s.compressed_inter_total, 1u);
}

TEST(Reorder, IdentityPermutation) {
  const auto p = identity_permutation(5);
  EXPECT_TRUE(is_valid_permutation(p));
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(p[v], v);
}

TEST(Reorder, DegreeSortPutsHubsFirst) {
  const CsrGraph g = build_csr(4, diamond());
  const auto p = degree_sort_permutation(g);
  ASSERT_TRUE(is_valid_permutation(p));
  // Vertex 0 has the highest out-degree (2) => new id 0.
  EXPECT_EQ(p[0], 0u);
}

TEST(Reorder, HubClusterSeparatesHotCold) {
  const CsrGraph g = build_csr(4, diamond());
  const auto p = hub_cluster_permutation(g);
  ASSERT_TRUE(is_valid_permutation(p));
  // avg degree = 1.25; only vertex 0 (deg 2) is hot.
  EXPECT_EQ(p[0], 0u);
}

TEST(Reorder, ApplyPermutationPreservesStructure) {
  const Graph g = build_graph(4, diamond());
  const auto p = degree_sort_permutation(g.out);
  const Graph h = apply_permutation(g, p);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Degree multiset must be preserved.
  std::vector<vid_t> dg;
  std::vector<vid_t> dh;
  for (vid_t v = 0; v < 4; ++v) {
    dg.push_back(g.out.degree(v));
    dh.push_back(h.out.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(Reorder, RejectsInvalidPermutation) {
  EXPECT_FALSE(is_valid_permutation({0, 0, 1}));
  EXPECT_FALSE(is_valid_permutation({0, 5, 1}));
  EXPECT_TRUE(is_valid_permutation({2, 0, 1}));
}

}  // namespace
}  // namespace hipa::graph
