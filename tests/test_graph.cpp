// Unit tests for src/graph: CSR invariants, builder options, transpose,
// I/O round-trips, statistics, reordering.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"

namespace hipa::graph {
namespace {

std::vector<Edge> diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
  return {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}};
}

TEST(Csr, BuildBasics) {
  const CsrGraph g = build_csr(4, diamond());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(Csr, RejectsOutOfRangeEdge) {
  const std::vector<Edge> bad = {{0, 7}};
  EXPECT_THROW(build_csr(4, bad), Error);
}

TEST(Csr, TransposeRoundTrip) {
  const CsrGraph g = build_csr(4, diamond());
  const CsrGraph t = g.transpose();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  // In-degree of 3 is 2 (from 1 and 2).
  EXPECT_EQ(t.degree(3), 2u);
  const CsrGraph back = t.transpose();
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (vid_t v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Csr, CountEdgesWithin) {
  const CsrGraph g = build_csr(4, diamond());
  EXPECT_EQ(g.count_edges_within({0, 4}), 5u);
  EXPECT_EQ(g.count_edges_within({0, 3}), 2u);  // 0->1, 0->2
  EXPECT_EQ(g.count_edges_within({2, 2}), 0u);
}

TEST(Builder, RemoveSelfLoops) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}};
  BuildOptions opts;
  opts.remove_self_loops = true;
  const CsrGraph g = build_csr(2, edges, opts);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, RemoveDuplicates) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 2}, {1, 2}, {1, 2}};
  BuildOptions opts;
  opts.remove_duplicates = true;
  const CsrGraph g = build_csr(3, edges, opts);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, Symmetrize) {
  const std::vector<Edge> edges = {{0, 1}};
  BuildOptions opts;
  opts.symmetrize = true;
  const CsrGraph g = build_csr(2, edges, opts);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, SortedNeighbors) {
  const std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}};
  const CsrGraph g = build_csr(4, edges);
  const auto n = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(GraphBundle, FromOut) {
  const Graph g = build_graph(4, diamond());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.in.degree(3), 2u);
  EXPECT_EQ(g.out.degree(0), 2u);
}

TEST(Io, EdgeListRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hipa_el_test.txt";
  const std::vector<Edge> edges = diamond();
  write_edge_list(path, 4, edges);
  const EdgeListFile loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices, 4u);
  ASSERT_EQ(loaded.edges.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i], edges[i]);
  }
  std::remove(path.c_str());
}

TEST(Io, EdgeListSkipsComments) {
  const std::string path = ::testing::TempDir() + "/hipa_el_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n% another\n1 2\n\n3 4\n", f);
  std::fclose(f);
  const EdgeListFile loaded = read_edge_list(path);
  EXPECT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.num_vertices, 5u);
  std::remove(path.c_str());
}

TEST(Io, BinaryCsrRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hipa_test.hcsr";
  const CsrGraph g = build_csr(4, diamond());
  save_csr(path, g);
  const CsrGraph loaded = load_csr(path);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (vid_t v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/hipa_garbage.hcsr";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a csr file at all, just text", f);
  std::fclose(f);
  EXPECT_THROW(load_csr(path), Error);
  std::remove(path.c_str());
}

TEST(Stats, DegreeStats) {
  const CsrGraph g = build_csr(4, diamond());
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 5.0 / 4.0);
  EXPECT_GT(s.skew_vertex_fraction_for_90pct_edges, 0.0);
}

TEST(Stats, PartitionEdgeStats) {
  // Two partitions of 2 vertices: {0,1} and {2,3}.
  const CsrGraph g = build_csr(4, diamond());
  const PartitionEdgeStats s = partition_edge_stats(g, 2);
  EXPECT_EQ(s.num_partitions, 2u);
  // 0->1 intra; 2->3 intra; 0->2, 1->3, 3->0 inter.
  EXPECT_EQ(s.intra_edges_total, 2u);
  EXPECT_EQ(s.inter_edges_total, 3u);
  EXPECT_EQ(s.intra_edges_total + s.inter_edges_total, g.num_edges());
  // 0->2 and 1->3 and 3->0 have distinct (src, dst-partition) pairs.
  EXPECT_EQ(s.compressed_inter_total, 3u);
}

TEST(Stats, CompressionCollapsesSharedTargets) {
  // v0 -> {2, 3}: both in partition 1 => one compressed inter-edge.
  const std::vector<Edge> edges = {{0, 2}, {0, 3}};
  const CsrGraph g = build_csr(4, edges);
  const PartitionEdgeStats s = partition_edge_stats(g, 2);
  EXPECT_EQ(s.inter_edges_total, 2u);
  EXPECT_EQ(s.compressed_inter_total, 1u);
}

TEST(Reorder, IdentityPermutation) {
  const auto p = identity_permutation(5);
  EXPECT_TRUE(is_valid_permutation(p));
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(p[v], v);
}

TEST(Reorder, DegreeSortPutsHubsFirst) {
  const CsrGraph g = build_csr(4, diamond());
  const auto p = degree_sort_permutation(g);
  ASSERT_TRUE(is_valid_permutation(p));
  // Vertex 0 has the highest out-degree (2) => new id 0.
  EXPECT_EQ(p[0], 0u);
}

TEST(Reorder, HubClusterSeparatesHotCold) {
  const CsrGraph g = build_csr(4, diamond());
  const auto p = hub_cluster_permutation(g);
  ASSERT_TRUE(is_valid_permutation(p));
  // avg degree = 1.25; only vertex 0 (deg 2) is hot.
  EXPECT_EQ(p[0], 0u);
}

TEST(Reorder, ApplyPermutationPreservesStructure) {
  const Graph g = build_graph(4, diamond());
  const auto p = degree_sort_permutation(g.out);
  const Graph h = apply_permutation(g, p);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Degree multiset must be preserved.
  std::vector<vid_t> dg;
  std::vector<vid_t> dh;
  for (vid_t v = 0; v < 4; ++v) {
    dg.push_back(g.out.degree(v));
    dh.push_back(h.out.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(Reorder, RejectsInvalidPermutation) {
  EXPECT_FALSE(is_valid_permutation({0, 0, 1}));
  EXPECT_FALSE(is_valid_permutation({0, 5, 1}));
  EXPECT_TRUE(is_valid_permutation({2, 0, 1}));
}

}  // namespace
}  // namespace hipa::graph
