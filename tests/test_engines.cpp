// Engine correctness: every methodology (HiPa, p-PR, v-PR, GPOP,
// Polymer) must compute the same PageRank as the serial reference, on
// both the native and the simulated backend, across graph shapes and
// configurations. Also checks the NUMA behaviors the paper claims.
#include <gtest/gtest.h>

#include <vector>

#include "algos/pagerank.hpp"
#include "engines/pcpm_engine.hpp"
#include "engines/polymer_engine.hpp"
#include "engines/vpr_engine.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace hipa {
namespace {

using algo::Method;

graph::Graph test_graph(std::uint64_t seed, vid_t n = 2000,
                        eid_t m = 16000) {
  return graph::build_graph(
      n, graph::generate_zipf({.num_vertices = n, .num_edges = m,
                               .seed = seed}));
}

constexpr double kTolPerVertex = 1e-6;

void expect_close(const std::vector<rank_t>& got,
                  const std::vector<rank_t>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  const double d = algo::l1_distance(got, want);
  EXPECT_LT(d, kTolPerVertex * static_cast<double>(want.size())) << label;
}

// ---- parameterized: every method × both backends ---------------------------

class MethodCorrectness : public ::testing::TestWithParam<Method> {};

TEST_P(MethodCorrectness, SimMatchesReference) {
  const Method m = GetParam();
  const graph::Graph g = test_graph(77);
  const auto want = algo::pagerank_reference(g, 8);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 8;
  params.scale_denom = 64;
  const auto got = algo::run_method_sim(m, g, machine, params).ranks;
  expect_close(got, want, algo::method_name(m));
}

TEST_P(MethodCorrectness, NativeMatchesReference) {
  const Method m = GetParam();
  const graph::Graph g = test_graph(78);
  const auto want = algo::pagerank_reference(g, 8);
  algo::MethodParams params;
  params.pr.iterations = 8;
  params.scale_denom = 64;
  params.threads = 4;
  const auto got = algo::run_method_native(m, g, params).ranks;
  expect_close(got, want, algo::method_name(m));
}

TEST_P(MethodCorrectness, ReportsPlausibleStats) {
  const Method m = GetParam();
  const graph::Graph g = test_graph(79);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 4;
  params.scale_denom = 64;
  const auto report = algo::run_method_sim(m, g, machine, params).report;
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.stats.total_cycles, 0u);
  EXPECT_GT(report.stats.loads, g.num_edges());  // at least one read/edge
  EXPECT_GT(report.stats.dram_bytes(), 0u);
  EXPECT_EQ(report.iterations, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodCorrectness,
                         ::testing::ValuesIn(algo::all_methods().begin(),
                                             algo::all_methods().end()),
                         [](const auto& param_info) {
                           std::string name =
                               algo::method_name(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- configuration sweeps ---------------------------------------------------

class HipaConfigSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(HipaConfigSweep, CorrectAcrossThreadAndPartitionSizes) {
  const auto [threads, part_bytes] = GetParam();
  const graph::Graph g = test_graph(101, 1500, 12000);
  const auto want = algo::pagerank_reference(g, 6);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(threads, 2, part_bytes);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  const auto got = eng.run({6, 0.85f}).ranks;
  expect_close(got, want, "hipa");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HipaConfigSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 40u),
                       ::testing::Values<std::uint64_t>(256, 1024, 16384)));

TEST(PcpmEngine, FcfsModeIsCorrect) {
  const graph::Graph g = test_graph(55);
  const auto want = algo::pagerank_reference(g, 5);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::ppr(8, 2, 2048);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  const auto got = eng.run({5, 0.85f}).ranks;
  expect_close(got, want, "ppr-fcfs");
}

TEST(PcpmEngine, SinglePartitionGraph) {
  // Partition larger than the whole graph: one partition, still correct.
  const graph::Graph g = test_graph(56, 300, 2000);
  const auto want = algo::pagerank_reference(g, 5);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(4, 2, 1u << 22);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  const auto got = eng.run({5, 0.85f}).ranks;
  expect_close(got, want, "one-partition");
}

TEST(PcpmEngine, DanglingVerticesHandled) {
  // Vertices with no out-edges must contribute nothing (paper Eq. 1).
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {3, 0}};
  // Vertex 4 is fully isolated; vertex 3 has out- but no in-edges.
  const graph::Graph g = graph::build_graph(5, edges);
  const auto want = algo::pagerank_reference(g, 10);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(2, 2, 8);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  const auto got = eng.run({10, 0.85f}).ranks;
  expect_close(got, want, "dangling");
}

TEST(PcpmEngine, ZeroIterationsKeepsInitialRanks) {
  const graph::Graph g = test_graph(57, 100, 500);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(2, 2, 64);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  const auto got = eng.run({0, 0.85f}).ranks;
  for (rank_t r : got) EXPECT_FLOAT_EQ(r, 0.01f);
}

// ---- compact destination encoding ------------------------------------------

// The compact (16-bit partition-local) and wide (32-bit global)
// destination encodings perform identical arithmetic in identical
// order, so the ranks must be *bitwise* identical — not just close.
std::vector<rank_t> run_hipa_with_encoding(const graph::Graph& g,
                                           pcp::DstEncoding enc,
                                           std::uint64_t part_bytes,
                                           bool* was_compact = nullptr) {
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(8, 2, part_bytes);
  opt.dst_encoding = enc;
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  if (was_compact != nullptr) *was_compact = eng.bins().compact();
  const auto got = eng.run({8, 0.85f}).ranks;
  return got;
}

void expect_bitwise_equal(const std::vector<rank_t>& a,
                          const std::vector<rank_t>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at vertex " << i;
  }
}

TEST(DstEncoding, GoldenRanksMatchOnRmat) {
  const auto edges = graph::generate_rmat(
      {.scale = 11, .edge_factor = 8, .seed = 7});
  const graph::Graph g = graph::build_graph(1u << 11, edges);
  bool compact = false;
  const auto c = run_hipa_with_encoding(g, pcp::DstEncoding::kCompact, 1024,
                                        &compact);
  const auto w = run_hipa_with_encoding(g, pcp::DstEncoding::kWide, 1024);
  EXPECT_TRUE(compact);
  expect_bitwise_equal(c, w, "rmat compact-vs-wide");
  expect_close(c, algo::pagerank_reference(g, 8), "rmat vs reference");
}

TEST(DstEncoding, GoldenRanksMatchOnErdosRenyi) {
  const auto edges = graph::generate_erdos_renyi(3000, 24000, 11);
  const graph::Graph g = graph::build_graph(3000, edges);
  const auto c = run_hipa_with_encoding(g, pcp::DstEncoding::kCompact, 2048);
  const auto w = run_hipa_with_encoding(g, pcp::DstEncoding::kWide, 2048);
  expect_bitwise_equal(c, w, "erdos-renyi compact-vs-wide");
  expect_close(c, algo::pagerank_reference(g, 8), "erdos-renyi vs reference");
}

TEST(DstEncoding, GoldenRanksMatchOnZipf) {
  const graph::Graph g = test_graph(404, 4000, 32000);
  const auto c = run_hipa_with_encoding(g, pcp::DstEncoding::kCompact, 4096);
  const auto w = run_hipa_with_encoding(g, pcp::DstEncoding::kWide, 4096);
  expect_bitwise_equal(c, w, "zipf compact-vs-wide");
  expect_close(c, algo::pagerank_reference(g, 8), "zipf vs reference");
}

TEST(DstEncoding, AutoFallsBackToWideWhenPartitionTooLarge) {
  // A partition budget spanning > 2^15 vertices forces the 32-bit
  // fallback; the engine must still be correct.
  const vid_t n = pcp::PcpmBins::kMaxCompactPartition + 500;
  const graph::Graph g = graph::build_graph(
      n, graph::generate_zipf({.num_vertices = n, .num_edges = 80000,
                               .seed = 9}));
  bool compact = true;
  const auto got = run_hipa_with_encoding(
      g, pcp::DstEncoding::kAuto, std::uint64_t{n} * sizeof(rank_t),
      &compact);
  EXPECT_FALSE(compact);
  expect_close(got, algo::pagerank_reference(g, 8), "wide-fallback");
}

TEST(DstEncoding, NativeBackendBitwiseMatchToo) {
  const graph::Graph g = test_graph(405, 1500, 12000);
  engine::PageRankOptions pr{8, 0.85f};
  std::vector<rank_t> c, w;
  {
    engine::NativeBackend backend;
    auto opt = engine::PcpmOptions::hipa(4, 1, 1024);
    opt.dst_encoding = pcp::DstEncoding::kCompact;
    engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
    EXPECT_TRUE(eng.bins().compact());
    c = eng.run(pr).ranks;
  }
  {
    engine::NativeBackend backend;
    auto opt = engine::PcpmOptions::hipa(4, 1, 1024);
    opt.dst_encoding = pcp::DstEncoding::kWide;
    engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
    EXPECT_FALSE(eng.bins().compact());
    w = eng.run(pr).ranks;
  }
  expect_bitwise_equal(c, w, "native compact-vs-wide");
}

// ---- the paper's NUMA claims ------------------------------------------------

TEST(NumaBehavior, HipaKeepsTrafficMostlyLocal) {
  const graph::Graph g = test_graph(200, 20000, 200000);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 3;
  params.scale_denom = 64;
  const auto hipa = algo::run_method_sim(Method::kHipa, g, machine, params).report;
  // Paper §4.4: ~85% of HiPa's traffic stays node-local.
  EXPECT_LT(hipa.stats.remote_fraction(), 0.35);
}

TEST(NumaBehavior, ObliviousPprIsHalfRemote) {
  const graph::Graph g = test_graph(200, 20000, 200000);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 3;
  params.scale_denom = 64;
  const auto ppr = algo::run_method_sim(Method::kPpr, g, machine, params).report;
  // Interleaved data on 2 nodes: ~50% remote (paper Fig. 5: 48.9%).
  EXPECT_GT(ppr.stats.remote_fraction(), 0.35);
  EXPECT_LT(ppr.stats.remote_fraction(), 0.65);
}

TEST(NumaBehavior, HipaBeatsPprOnRemoteAccesses) {
  const graph::Graph g = test_graph(201, 20000, 200000);
  sim::SimMachine m1(sim::Topology::skylake_2s().scaled(64));
  sim::SimMachine m2(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 3;
  params.scale_denom = 64;
  const auto hipa = algo::run_method_sim(Method::kHipa, g, m1, params).report;
  const auto ppr = algo::run_method_sim(Method::kPpr, g, m2, params).report;
  // Paper: 1.87x-3.90x fewer remote accesses than the best alternative.
  EXPECT_LT(hipa.stats.dram_remote_bytes, ppr.stats.dram_remote_bytes);
}

TEST(NumaBehavior, PersistentThreadsMigrateLessThanPerPhase) {
  const graph::Graph g = test_graph(202, 5000, 40000);
  sim::SimMachine m1(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 10;
  params.scale_denom = 64;
  const auto hipa = algo::run_method_sim(Method::kHipa, g, m1, params).report;
  // Algorithm 2: creations bounded by team size, not iterations.
  EXPECT_LE(hipa.stats.thread_creations, 40u);
  EXPECT_LE(hipa.stats.thread_migrations, 40u);

  sim::SimMachine m2(sim::Topology::skylake_2s().scaled(64));
  const auto ppr = algo::run_method_sim(Method::kPpr, g, m2, params).report;
  // Algorithm 1: a fresh team per phase.
  EXPECT_GT(ppr.stats.thread_creations, hipa.stats.thread_creations * 5);
}

TEST(NumaBehavior, VertexCentricMovesMoreBytesThanPartitionCentric) {
  // Sized so the contribution vector (4·V bytes) clearly exceeds the
  // scaled LLC — otherwise v-PR's random pulls would all hit in cache
  // and mask the effect the paper measures.
  const graph::Graph g = test_graph(203, 150000, 1200000);
  sim::SimMachine m1(sim::Topology::skylake_2s().scaled(64));
  sim::SimMachine m2(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 3;
  params.scale_denom = 64;
  const auto hipa = algo::run_method_sim(Method::kHipa, g, m1, params).report;
  const auto vpr = algo::run_method_sim(Method::kVpr, g, m2, params).report;
  // Paper Fig. 5: partition-centric MApE ~9.6 vs v-PR ~47.
  EXPECT_LT(hipa.stats.mape(g.num_edges()) * 1.5,
            vpr.stats.mape(g.num_edges()));
}

// ---- engine-level unit behavior --------------------------------------------

TEST(VprEngine, NativeAndSimAgree) {
  const graph::Graph g = test_graph(301, 800, 6000);
  algo::MethodParams params;
  params.pr.iterations = 7;
  params.threads = 3;
  const auto native_ranks =
      algo::run_method_native(Method::kVpr, g, params).ranks;
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  const auto sim_ranks =
      algo::run_method_sim(Method::kVpr, g, machine, params).ranks;
  expect_close(native_ranks, sim_ranks, "vpr native-vs-sim");
}

TEST(PolymerEngine, WorksWithUnevenThreadSplit) {
  const graph::Graph g = test_graph(302, 900, 7000);
  const auto want = algo::pagerank_reference(g, 6);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  engine::PolymerOptions opt;
  opt.num_threads = 5;  // 3 + 2 across two nodes
  opt.num_nodes = 2;
  engine::PolymerEngine<engine::SimBackend> eng(g, opt, backend);
  const auto got = eng.run({6, 0.85f}).ranks;
  expect_close(got, want, "polymer-uneven");
}

TEST(Report, PreprocessingTimeIsTracked) {
  const graph::Graph g = test_graph(303, 3000, 30000);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(8, 2, 1024);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  EXPECT_GT(eng.preprocessing_seconds(), 0.0);
  const auto report = eng.run({2, 0.85f}).report;
  EXPECT_EQ(report.preprocessing_seconds, eng.preprocessing_seconds());
  EXPECT_GT(report.seconds, 0.0);
}

}  // namespace
}  // namespace hipa
