// Tests for the PCPM bins: the compressed message structure must be a
// lossless re-encoding of the graph, and the per-node slice helpers
// must tile the arrays exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "pcp/bins.hpp"

namespace hipa::pcp {
namespace {

using graph::build_csr;
using graph::CsrGraph;
using part::CachePartitioning;

/// Decode bins back into an edge multiset, walking the flag-packed
/// destination lists exactly the way a gather kernel does — under
/// either encoding (compact entries add the destination partition's
/// first vertex id back to the 15-bit local offset).
std::multiset<std::pair<vid_t, vid_t>> decode(
    const PcpmBins& bins, const CachePartitioning& parts) {
  std::multiset<std::pair<vid_t, vid_t>> edges;
  const auto src = bins.src_list();
  for (const PairInfo& pr : bins.pairs()) {
    eid_t msg = 0;
    vid_t s = kInvalidVid;
    const vid_t vbase = parts.range(pr.dst_part).begin;
    for (eid_t j = pr.dst_off; j < pr.dst_off + pr.dst_count; ++j) {
      bool starts = false;
      vid_t d = kInvalidVid;
      if (bins.compact()) {
        const std::uint16_t packed = bins.dst_list16()[j];
        starts = PcpmBins::is_msg_start(packed);
        d = vbase + PcpmBins::local_offset(packed);
      } else {
        const vid_t packed = bins.dst_list()[j];
        starts = PcpmBins::is_msg_start(packed);
        d = PcpmBins::dst_vertex(packed);
      }
      if (starts) {
        s = src[pr.src_off + msg];
        ++msg;
      }
      edges.emplace(s, d);
    }
    EXPECT_EQ(msg, pr.msg_count);
  }
  return edges;
}

std::multiset<std::pair<vid_t, vid_t>> graph_edges(const CsrGraph& g) {
  std::multiset<std::pair<vid_t, vid_t>> edges;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t u : g.neighbors(v)) edges.emplace(v, u);
  }
  return edges;
}

TEST(Bins, LosslessOnTinyGraph) {
  const CsrGraph g =
      build_csr(8, {{0, 1}, {0, 5}, {0, 6}, {3, 7}, {5, 0}, {7, 7}});
  const CachePartitioning parts(8, 4 * 4, 4);  // 4 vertices/partition
  const PcpmBins bins = build_bins(g, parts);
  EXPECT_EQ(bins.total_dests(), g.num_edges());
  EXPECT_EQ(decode(bins, parts), graph_edges(g));
}

TEST(Bins, CompressionMatchesPaperSemantics) {
  // v0 -> {4,5,6}: three inter-edges into partition 1 collapse to one
  // message (paper Fig. 4).
  const CsrGraph g = build_csr(8, {{0, 4}, {0, 5}, {0, 6}});
  const CachePartitioning parts(8, 4 * 4, 4);
  const PcpmBins bins = build_bins(g, parts);
  EXPECT_EQ(bins.total_messages(), 1u);
  EXPECT_EQ(bins.total_dests(), 3u);
  EXPECT_DOUBLE_EQ(bins.compression_ratio(), 3.0);
}

TEST(Bins, MessageCountMatchesStatsModule) {
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 10, .num_edges = 1 << 13, .seed = 21});
  const CsrGraph g = build_csr(1 << 10, edges);
  const vid_t per_part = 128;
  const CachePartitioning parts(1 << 10, per_part * 4, 4);
  const PcpmBins bins = build_bins(g, parts);
  const auto s = graph::partition_edge_stats(g, per_part);
  // Messages = compressed inter pairs + intra (v, own-partition) pairs.
  eid_t intra_msgs = 0;
  {
    std::vector<vid_t> last(parts.num_partitions(), kInvalidVid);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const auto p = parts.partition_of(v);
      for (vid_t u : g.neighbors(v)) {
        if (parts.partition_of(u) == p && last[p] != v) {
          last[p] = v;
          ++intra_msgs;
        }
      }
    }
  }
  EXPECT_EQ(bins.total_messages(), s.compressed_inter_total + intra_msgs);
}

TEST(Bins, PairsSortedBySrcThenDst) {
  const auto edges = graph::generate_erdos_renyi(512, 4096, 5);
  const CsrGraph g = build_csr(512, edges);
  const CachePartitioning parts(512, 64 * 4, 4);
  const PcpmBins bins = build_bins(g, parts);
  for (std::size_t k = 1; k < bins.pairs().size(); ++k) {
    const auto& a = bins.pairs()[k - 1];
    const auto& b = bins.pairs()[k];
    EXPECT_TRUE(a.src_part < b.src_part ||
                (a.src_part == b.src_part && a.dst_part < b.dst_part));
  }
}

TEST(Bins, FlagCountMatchesMessageCount) {
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 10, .num_edges = 1 << 13, .seed = 8});
  const CsrGraph g = build_csr(1 << 10, edges);
  const CachePartitioning parts(1 << 10, 64 * 4, 4);
  const PcpmBins bins = build_bins(g, parts);
  eid_t flags = 0;
  if (bins.compact()) {
    for (std::uint16_t packed : bins.dst_list16()) {
      if (PcpmBins::is_msg_start(packed)) ++flags;
    }
  } else {
    for (vid_t packed : bins.dst_list()) {
      if (PcpmBins::is_msg_start(packed)) ++flags;
    }
  }
  EXPECT_EQ(flags, bins.total_messages());
  // Every pair's slice must begin with a flagged entry (both encodings
  // rely on this: the gather's message index may start at -1 and is
  // always bumped before the first value read).
  for (const PairInfo& pr : bins.pairs()) {
    ASSERT_GT(pr.dst_count, 0u);
    if (bins.compact()) {
      EXPECT_TRUE(PcpmBins::is_msg_start(bins.dst_list16()[pr.dst_off]));
    } else {
      EXPECT_TRUE(PcpmBins::is_msg_start(bins.dst_list()[pr.dst_off]));
    }
  }
}

TEST(Bins, SlicesTileTheArrays) {
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 11, .num_edges = 1 << 14, .seed = 13});
  const CsrGraph g = build_csr(1 << 11, edges);
  const CachePartitioning parts(1 << 11, 256 * 4, 4);
  const PcpmBins bins = build_bins(g, parts);
  const std::uint32_t num_parts = parts.num_partitions();
  // Split partitions in two "nodes" at every possible boundary: the two
  // slices must exactly tile [0, total).
  for (std::uint32_t cut : {num_parts / 3, num_parts / 2, num_parts - 1}) {
    const auto [a0, a1] = bins.src_slice(0, cut);
    const auto [b0, b1] = bins.src_slice(cut, num_parts);
    EXPECT_EQ(a0, 0u);
    EXPECT_EQ(a1, b0);
    EXPECT_EQ(b1, bins.total_messages());
    const auto [m0, m1] = bins.msg_slice(0, cut);
    const auto [n0, n1] = bins.msg_slice(cut, num_parts);
    EXPECT_EQ(m0, 0u);
    EXPECT_EQ(m1, n0);
    EXPECT_EQ(n1, bins.total_messages());
    const auto [d0, d1] = bins.dst_slice(0, cut);
    const auto [e0, e1] = bins.dst_slice(cut, num_parts);
    EXPECT_EQ(d0, 0u);
    EXPECT_EQ(d1, e0);
    EXPECT_EQ(e1, bins.total_dests());
  }
}

TEST(Bins, LargerPartitionsCompressBetter) {
  // Paper §4.3/§4.5: compression improves with partition size.
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 12, .num_edges = 1 << 15, .seed = 31});
  const CsrGraph g = build_csr(1 << 12, edges);
  const PcpmBins small = build_bins(g, CachePartitioning(1 << 12, 64 * 4, 4));
  const PcpmBins large =
      build_bins(g, CachePartitioning(1 << 12, 1024 * 4, 4));
  EXPECT_GT(large.compression_ratio(), small.compression_ratio());
  EXPECT_LT(large.total_messages(), small.total_messages());
}

TEST(Bins, AutoPicksCompactForSmallPartitions) {
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 10, .num_edges = 1 << 13, .seed = 5});
  const CsrGraph g = build_csr(1 << 10, edges);
  const CachePartitioning parts(1 << 10, 128 * 4, 4);
  ASSERT_LE(parts.vertices_per_partition(), PcpmBins::kMaxCompactPartition);
  const PcpmBins bins = build_bins(g, parts);  // kAuto
  EXPECT_TRUE(bins.compact());
  EXPECT_EQ(bins.dst_entry_bytes(), sizeof(std::uint16_t));
  EXPECT_EQ(bins.dst_list16().size(), bins.total_dests());
  EXPECT_TRUE(bins.dst_list().empty());  // wide list never allocated
}

TEST(Bins, AutoFallsBackToWideForHugePartitions) {
  // One partition spanning > 2^15 vertices cannot be addressed with a
  // 15-bit local offset; kAuto must fall back to the wide encoding.
  const vid_t n = PcpmBins::kMaxCompactPartition + 100;
  const std::vector<Edge> edge_list = {
      {0, n - 1}, {1, 2}, {n - 1, 0}, {n - 2, 1}};
  const CsrGraph g = build_csr(n, edge_list);
  const CachePartitioning parts(n, std::uint64_t{n} * 4, 4);
  ASSERT_GT(parts.vertices_per_partition(), PcpmBins::kMaxCompactPartition);
  const PcpmBins bins = build_bins(g, parts);  // kAuto
  EXPECT_FALSE(bins.compact());
  EXPECT_EQ(bins.dst_entry_bytes(), sizeof(vid_t));
  EXPECT_TRUE(bins.dst_list16().empty());
  EXPECT_EQ(decode(bins, parts), graph_edges(g));
}

TEST(Bins, ForcedEncodingsAgreeAndCompactHalvesDstBytes) {
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 11, .num_edges = 1 << 14, .seed = 17});
  const CsrGraph g = build_csr(1 << 11, edges);
  const CachePartitioning parts(1 << 11, 256 * 4, 4);
  const PcpmBins wide = build_bins(g, parts, DstEncoding::kWide);
  const PcpmBins comp = build_bins(g, parts, DstEncoding::kCompact);
  EXPECT_FALSE(wide.compact());
  EXPECT_TRUE(comp.compact());
  // Same logical structure...
  EXPECT_EQ(wide.total_messages(), comp.total_messages());
  EXPECT_EQ(wide.total_dests(), comp.total_dests());
  EXPECT_EQ(wide.pairs().size(), comp.pairs().size());
  // ...same decoded edge multiset...
  EXPECT_EQ(decode(wide, parts), graph_edges(g));
  EXPECT_EQ(decode(comp, parts), graph_edges(g));
  // ...and the destination list costs exactly half the bytes.
  EXPECT_EQ(wide.total_dests() * sizeof(vid_t),
            2 * comp.total_dests() * sizeof(std::uint16_t));
  EXPECT_LT(comp.footprint_bytes(), wide.footprint_bytes());
}

class BinsLossless : public ::testing::TestWithParam<
                         std::tuple<int, vid_t, eid_t, vid_t>> {};

TEST_P(BinsLossless, DecodeMatchesGraph) {
  const auto [seed, n, m, per_part] = GetParam();
  const auto edges = graph::generate_zipf(
      {.num_vertices = n, .num_edges = m,
       .seed = static_cast<std::uint64_t>(seed)});
  const CsrGraph g = build_csr(n, edges);
  const CachePartitioning parts(n, std::uint64_t{per_part} * 4, 4);
  // kAuto (compact for these sizes) and forced wide must both decode
  // back to the exact edge multiset.
  const PcpmBins bins = build_bins(g, parts);
  EXPECT_EQ(decode(bins, parts), graph_edges(g));
  const PcpmBins wide = build_bins(g, parts, DstEncoding::kWide);
  EXPECT_FALSE(wide.compact());
  EXPECT_EQ(decode(wide, parts), graph_edges(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinsLossless,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values<vid_t>(100, 1000),
                       ::testing::Values<eid_t>(500, 5000),
                       ::testing::Values<vid_t>(16, 100, 4096)));

}  // namespace
}  // namespace hipa::pcp
