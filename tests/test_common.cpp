// Unit tests for src/common: numeric helpers, RNGs, aligned buffers,
// error checking, logging.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/numeric.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace hipa {
namespace {

TEST(Numeric, CeilDiv) {
  EXPECT_EQ(ceil_div(10u, 3u), 4u);
  EXPECT_EQ(ceil_div(9u, 3u), 3u);
  EXPECT_EQ(ceil_div(1u, 3u), 1u);
  EXPECT_EQ(ceil_div(0u, 3u), 0u);
  EXPECT_EQ(ceil_div<std::uint64_t>(1ULL << 40, 7), ((1ULL << 40) + 6) / 7);
}

TEST(Numeric, RoundUp) {
  EXPECT_EQ(round_up(10u, 4u), 12u);
  EXPECT_EQ(round_up(12u, 4u), 12u);
  EXPECT_EQ(round_up(0u, 4u), 0u);
}

TEST(Numeric, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Numeric, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_floor(1025), 10u);
}

TEST(Numeric, ExclusiveScan) {
  const std::vector<std::uint32_t> in = {3, 0, 5, 2};
  std::vector<std::uint64_t> out;
  exclusive_scan<std::uint32_t, std::uint64_t>(in, out);
  const std::vector<std::uint64_t> expect = {0, 3, 3, 8, 10};
  EXPECT_EQ(out, expect);
}

TEST(Numeric, ExclusiveScanEmpty) {
  std::vector<std::uint64_t> out;
  exclusive_scan<std::uint32_t, std::uint64_t>(
      std::span<const std::uint32_t>{}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(Numeric, EvenChunksCoverAndBalance) {
  const auto b = even_chunks<std::uint32_t>(10, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 10u);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    const auto sz = b[i + 1] - b[i];
    EXPECT_GE(sz, 3u);
    EXPECT_LE(sz, 4u);
  }
}

TEST(Numeric, EvenChunksMorePartsThanItems) {
  const auto b = even_chunks<std::uint32_t>(2, 5);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 2u);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    EXPECT_LE(b[i + 1] - b[i], 1u);
  }
}

TEST(Random, SplitMixDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1);
  Xoshiro256 b(1);
  Xoshiro256 c(2);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Random, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, BoundedStaysInBound) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.bounded(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  // All 17 buckets should be hit in 10k draws.
  EXPECT_EQ(seen.size(), 17u);
}

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLine, 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, FillZero) {
  AlignedBuffer<double> buf(64);
  buf.fill_zero();
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<int> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.span().size(), 0u);
}

TEST(Error, CheckThrowsWithContext) {
  try {
    HIPA_CHECK(1 == 2, "context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(HIPA_CHECK(true, "never"));
}

TEST(Logging, LevelFilter) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  HIPA_INFO("suppressed");  // must not crash
  set_log_level(LogLevel::kInfo);
}

TEST(Timer, MeasuresForwardTime) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Types, VertexRange) {
  constexpr VertexRange r{10, 20};
  EXPECT_EQ(r.size(), 10u);
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((VertexRange{5, 5}).empty());
}

}  // namespace
}  // namespace hipa
