// Serving-layer tests: snapshot store semantics, grace-period
// reclamation, NUMA-replicated top-k, the batched query engine, the
// MPSC update queue, and the refresher. The *Race suites are the
// TSan-labeled concurrency contracts: racing readers, a publisher and
// the update refresher must never produce a torn read, and every
// observed epoch must be a fully published snapshot bitwise-equal to a
// direct engine run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "algos/pagerank.hpp"
#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/topk_index.hpp"
#include "serve/updates.hpp"

namespace hipa::serve {
namespace {

std::vector<rank_t> ramp_ranks(vid_t n, rank_t scale = 1.0f) {
  std::vector<rank_t> r(n);
  for (vid_t v = 0; v < n; ++v) {
    r[v] = scale * static_cast<rank_t>((v * 2654435761u) % 10007u);
  }
  return r;
}

std::vector<Edge> test_edges(vid_t n, eid_t m, std::uint64_t seed) {
  return graph::generate_erdos_renyi(n, m, seed);
}

// ---------------------------------------------------------------------------
// even_node_ranges / snapshot store basics
// ---------------------------------------------------------------------------

TEST(NodeRanges, TilesAndAligns) {
  const vid_t n = 10'000;
  for (unsigned nodes : {1u, 2u, 3u, 4u}) {
    const auto ranges = even_node_ranges(n, nodes);
    ASSERT_EQ(ranges.size(), nodes);
    EXPECT_EQ(ranges.front().begin, 0u);
    EXPECT_EQ(ranges.back().end, n);
    constexpr vid_t verts_per_page =
        static_cast<vid_t>(kPageSize / sizeof(rank_t));
    for (unsigned i = 0; i + 1 < nodes; ++i) {
      EXPECT_EQ(ranges[i].end, ranges[i + 1].begin);
      EXPECT_EQ(ranges[i].end % verts_per_page, 0u)
          << "interior boundary must be page-aligned";
    }
  }
}

TEST(SnapshotStore, EmptyBeforeFirstPublish) {
  SnapshotStore store(100);
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_FALSE(store.current().valid());
}

TEST(SnapshotStore, PublishAndRead) {
  const vid_t n = 5'000;
  SnapshotStore store(n);
  const std::vector<rank_t> ranks = ramp_ranks(n);
  const std::uint64_t e1 = store.publish(ranks);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(store.epoch(), 1u);

  SnapshotRef snap = store.current();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->num_vertices(), n);
  EXPECT_EQ(0, std::memcmp(snap->ranks().data(), ranks.data(),
                           n * sizeof(rank_t)));
}

TEST(SnapshotStore, RejectsWrongSize) {
  SnapshotStore store(100);
  const std::vector<rank_t> wrong(99, 0.0f);
  EXPECT_THROW(store.publish(std::span<const rank_t>(wrong)), Error);
}

TEST(SnapshotStore, PinnedEpochSurvivesLaterPublishes) {
  const vid_t n = 4'096;
  SnapshotStore store(n);  // default 3 slots
  store.publish(ramp_ranks(n, 1.0f));
  SnapshotRef pin = store.current();
  ASSERT_EQ(pin->epoch(), 1u);
  // Two more publishes rotate the ring but must not touch epoch 1.
  store.publish(ramp_ranks(n, 2.0f));
  store.publish(ramp_ranks(n, 3.0f));
  const std::vector<rank_t> expect = ramp_ranks(n, 1.0f);
  EXPECT_EQ(0, std::memcmp(pin->ranks().data(), expect.data(),
                           n * sizeof(rank_t)));
  EXPECT_EQ(store.epoch(), 3u);
}

TEST(SnapshotStore, GracePeriodBlocksSlotReuseUntilRelease) {
  const vid_t n = 2'048;
  StoreOptions opt;
  opt.slots = 2;
  SnapshotStore store(n, opt);
  store.publish(ramp_ranks(n, 1.0f));
  auto* pin = new SnapshotRef(store.current());
  ASSERT_EQ((*pin)->epoch(), 1u);
  store.publish(ramp_ranks(n, 2.0f));  // other slot: no wait

  // Epoch 3 needs epoch 1's slot, which `pin` still holds.
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    store.publish(ramp_ranks(n, 3.0f));
    done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load(std::memory_order_acquire))
      << "publish must wait for the straggling reader";
  delete pin;  // release the pin -> grace period ends
  publisher.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(store.epoch(), 3u);
  EXPECT_GE(store.reclaim_waits(), 1u);
}

TEST(SnapshotStore, PublishesRunResultBitwise) {
  const vid_t n = 1'000;
  const auto edges = test_edges(n, 8'000, 11);
  const graph::Graph g = graph::build_graph(n, edges);
  algo::MethodParams params;
  params.threads = 2;
  params.pr.iterations = 10;
  const engine::RunResult direct =
      algo::run_method_native(algo::Method::kHipa, g, params);
  SnapshotStore store(n);
  store.publish(direct);
  SnapshotRef snap = store.current();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(0, std::memcmp(snap->ranks().data(), direct.ranks.data(),
                           n * sizeof(rank_t)))
      << "published snapshot must be bitwise-identical to the run";
}

// ---------------------------------------------------------------------------
// Top-k index
// ---------------------------------------------------------------------------

TEST(TopK, PartialMatchesReference) {
  const vid_t n = 3'000;
  const std::vector<rank_t> ranks = ramp_ranks(n);
  const auto mine =
      partial_top_k(ranks, VertexRange{0, n}, 25);
  const auto ref = algo::top_k(ranks, 25);
  ASSERT_EQ(mine.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(mine[i].vertex, ref[i]) << "position " << i;
    EXPECT_EQ(mine[i].rank, ranks[ref[i]]);
  }
}

TEST(TopK, TieBreaksBySmallerId) {
  const std::vector<rank_t> ranks = {5.0f, 7.0f, 7.0f, 5.0f, 9.0f};
  const auto got = partial_top_k(ranks, VertexRange{0, 5}, 4);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].vertex, 4u);
  EXPECT_EQ(got[1].vertex, 1u);  // 7.0 tie: smaller id first
  EXPECT_EQ(got[2].vertex, 2u);
  EXPECT_EQ(got[3].vertex, 0u);  // 5.0 tie: smaller id first
}

TEST(TopK, IndexMatchesReferenceAcrossNodes) {
  const vid_t n = 9'000;
  const std::vector<rank_t> ranks = ramp_ranks(n);
  for (unsigned nodes : {1u, 2u, 3u}) {
    TopKIndex index;
    index.configure(32, nodes);
    const auto ranges = even_node_ranges(n, nodes);
    index.build(ranks, ranges);
    const auto ref = algo::top_k(ranks, 32);
    for (unsigned node = 0; node < nodes; ++node) {
      const auto rep = index.replica(node);
      ASSERT_EQ(rep.size(), ref.size()) << nodes << " nodes";
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(rep[i].vertex, ref[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Query evaluators + service
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static constexpr vid_t kN = 6'000;
  void SetUp() override {
    store_ = std::make_unique<SnapshotStore>(kN);
    ranks_ = ramp_ranks(kN);
    store_->publish(std::span<const rank_t>(ranks_));
  }
  std::unique_ptr<SnapshotStore> store_;
  std::vector<rank_t> ranks_;
};

TEST_F(ServiceTest, EvaluatorsMatchRanks) {
  SnapshotRef snap = store_->current();
  EXPECT_EQ(point_lookup(*snap, 17), ranks_[17]);
  const std::vector<vid_t> ids = {0, 5, 4'999, 5'000, kN - 1};
  std::vector<rank_t> out(ids.size());
  batch_lookup(*snap, ids, out);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i], ranks_[ids[i]]);
  }
  EXPECT_THROW((void)point_lookup(*snap, kN), Error);
}

TEST_F(ServiceTest, TopKQueryGlobalAndRange) {
  SnapshotRef snap = store_->current();
  // Global within index depth: replica-served.
  const auto global = topk_query(*snap, TopKQuery{10, {0, 0}});
  const auto ref = algo::top_k(ranks_, 10);
  ASSERT_EQ(global.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(global[i].vertex, ref[i]);
  // Deeper than the index (k=64 default): scan fallback.
  const auto deep = topk_query(*snap, TopKQuery{100, {0, 0}});
  const auto deep_ref = algo::top_k(ranks_, 100);
  ASSERT_EQ(deep.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(deep[i].vertex, deep_ref[i]);
  }
  // Range-restricted.
  const VertexRange range{1'000, 2'000};
  const auto ranged = topk_query(*snap, TopKQuery{7, range});
  ASSERT_EQ(ranged.size(), 7u);
  for (const auto& e : ranged) {
    EXPECT_TRUE(range.contains(e.vertex));
  }
  // Against a direct scan of the slice.
  const auto ranged_ref = partial_top_k(ranks_, range, 7);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(ranged[i].vertex, ranged_ref[i].vertex);
  }
}

TEST_F(ServiceTest, ServiceAnswersMatchEvaluators) {
  RankService service(*store_);
  std::vector<Query> queries;
  queries.push_back(Query::point(123));
  queries.push_back(Query::batch({7, 5'500, 42, 0}));
  queries.push_back(Query::top_k(12));
  queries.push_back(Query::top_k(9, VertexRange{2'000, 5'000}));
  queries.push_back(Query::top_k(80));  // deeper than index: split scan
  const auto responses = service.execute_batch(queries);
  ASSERT_EQ(responses.size(), queries.size());

  SnapshotRef snap = store_->current();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(responses[i].epoch, 1u);
    const QueryResult ref = evaluate(*snap, queries[i]);
    EXPECT_EQ(responses[i].ranks, ref.ranks) << "query " << i;
    ASSERT_EQ(responses[i].topk.size(), ref.topk.size()) << "query " << i;
    for (std::size_t j = 0; j < ref.topk.size(); ++j) {
      EXPECT_EQ(responses[i].topk[j], ref.topk[j])
          << "query " << i << " entry " << j;
    }
  }

  const RankService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, queries.size());
  EXPECT_EQ(stats.point_requests, 1u);
  EXPECT_EQ(stats.batch_requests, 1u);
  EXPECT_EQ(stats.topk_requests, 3u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.vertices_looked_up, 5u);
  EXPECT_EQ(stats.latency.count, queries.size());
  EXPECT_GT(stats.latency.p99_seconds, 0.0);
}

TEST_F(ServiceTest, ThrowsBeforeFirstPublish) {
  SnapshotStore empty(100);
  RankService service(empty);
  EXPECT_THROW(service.execute(Query::point(0)), Error);
}

TEST(Latency, PercentileSummary) {
  LatencyRecorder rec;
  for (int i = 100; i >= 1; --i) rec.record(i * 1e-3);
  const LatencySummary s = rec.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50_seconds, 0.050);
  EXPECT_DOUBLE_EQ(s.p95_seconds, 0.095);
  EXPECT_DOUBLE_EQ(s.p99_seconds, 0.099);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.100);
  EXPECT_NEAR(s.mean_seconds, 0.0505, 1e-9);
}

// ---------------------------------------------------------------------------
// Update queue + refresher
// ---------------------------------------------------------------------------

TEST(UpdateQueue, DrainPreservesArrivalOrder) {
  UpdateQueue q;
  for (vid_t i = 0; i < 10; ++i) q.push_add(Edge{i, i + 1});
  EXPECT_EQ(q.approx_pending(), 10u);
  const auto batch = q.drain();
  ASSERT_EQ(batch.size(), 10u);
  for (vid_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch[i].edge.src, i);
    EXPECT_FALSE(batch[i].remove);
  }
  EXPECT_EQ(q.approx_pending(), 0u);
  EXPECT_TRUE(q.drain().empty());
}

TEST(UpdateQueue, MultiProducerLosesNothing) {
  UpdateQueue q;
  constexpr unsigned kProducers = 4;
  constexpr unsigned kPerProducer = 2'000;
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (unsigned i = 0; i < kPerProducer; ++i) {
        q.push_add(Edge{p, i});
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto batch = q.drain();
  EXPECT_EQ(batch.size(), kProducers * kPerProducer);
  std::vector<unsigned> per_producer(kProducers, 0);
  for (const auto& u : batch) ++per_producer[u.edge.src];
  for (unsigned p = 0; p < kProducers; ++p) {
    EXPECT_EQ(per_producer[p], kPerProducer) << "producer " << p;
  }
}

TEST(Refresher, InitialPublishBitwiseMatchesDirectRun) {
  const vid_t n = 1'024;
  const auto edges = test_edges(n, 6'000, 3);
  SnapshotStore store(n);
  UpdateQueue queue;
  RefreshOptions opt;
  opt.full.threads = 2;
  opt.full.pr.iterations = 12;
  UpdateRefresher refresher(n, edges, store, queue, opt);
  EXPECT_EQ(refresher.publish_initial(), 1u);

  const engine::RunResult direct = algo::run_method_native(
      algo::Method::kHipa, refresher.graph(), opt.full);
  SnapshotRef snap = store.current();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(0, std::memcmp(snap->ranks().data(), direct.ranks.data(),
                           n * sizeof(rank_t)));
}

TEST(Refresher, SmallBatchUsesDeltaLargeUsesFullRun) {
  const vid_t n = 512;
  const auto edges = test_edges(n, 3'000, 5);
  SnapshotStore store(n);
  UpdateQueue queue;
  RefreshOptions opt;
  opt.small_batch_max = 4;
  opt.full.threads = 2;
  opt.full.pr.iterations = 8;
  UpdateRefresher refresher(n, edges, store, queue, opt);
  refresher.publish_initial();

  // Empty queue: no-op.
  EXPECT_EQ(refresher.refresh_now().epoch, 0u);

  // Small batch -> delta.
  queue.push_add(Edge{1, 2});
  queue.push_add(Edge{3, 4});
  const RefreshReport small = refresher.refresh_now();
  EXPECT_EQ(small.epoch, 2u);
  EXPECT_EQ(small.updates_applied, 2u);
  EXPECT_FALSE(small.full_run);
  EXPECT_EQ(refresher.delta_refreshes(), 1u);

  // Large batch -> full run.
  for (vid_t i = 0; i < 10; ++i) queue.push_add(Edge{i, (i + 7) % n});
  const RefreshReport large = refresher.refresh_now();
  EXPECT_EQ(large.epoch, 3u);
  EXPECT_TRUE(large.full_run);
  EXPECT_EQ(refresher.full_refreshes(), 2u);  // initial + this one
  EXPECT_EQ(store.epoch(), 3u);
}

TEST(Refresher, RemoveDropsEdges) {
  const vid_t n = 16;
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  SnapshotStore store(n);
  UpdateQueue queue;
  UpdateRefresher refresher(n, edges, store, queue);
  refresher.publish_initial();
  queue.push_remove(Edge{1, 2});
  const RefreshReport r = refresher.refresh_now();
  EXPECT_GT(r.epoch, 1u);
  EXPECT_EQ(refresher.num_edges(), 3u);
  EXPECT_EQ(refresher.graph().out.degree(1), 0u);
}

TEST(Refresher, RejectsOutOfUniverseUpdates) {
  const vid_t n = 8;
  SnapshotStore store(n);
  UpdateQueue queue;
  UpdateRefresher refresher(n, {{0, 1}}, store, queue);
  refresher.publish_initial();
  queue.push_add(Edge{0, 99});
  EXPECT_THROW(refresher.refresh_now(), Error);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan contracts)
// ---------------------------------------------------------------------------

// Racing readers vs a publisher: every pinned snapshot must be
// internally consistent (all elements stamped with the same value) and
// epochs must be monotone per reader.
TEST(SnapshotRace, ReadersNeverObserveTornEpochs) {
  const vid_t n = 8'192;
  SnapshotStore store(n);
  constexpr unsigned kReaders = 4;
  constexpr std::uint64_t kEpochs = 60;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotRef snap = store.current();
        if (!snap.valid()) continue;
        const std::uint64_t epoch = snap->epoch();
        if (epoch < last_epoch) torn.fetch_add(1);
        last_epoch = epoch;
        // Every rank of epoch e is exactly float(e): any mixture means
        // a torn snapshot.
        const auto expect = static_cast<rank_t>(epoch);
        const std::span<const rank_t> ranks = snap->ranks();
        for (vid_t v = 0; v < n; v += 97) {
          if (ranks[v] != expect) {
            torn.fetch_add(1);
            break;
          }
        }
        // The replicated top-k must agree with the stamp too.
        const auto& topk = snap->topk();
        for (unsigned node = 0; node < topk.num_nodes(); ++node) {
          for (const TopKEntry& e : topk.replica(node)) {
            if (e.rank != expect) {
              torn.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }

  std::vector<rank_t> ranks(n);
  for (std::uint64_t e = 1; e <= kEpochs; ++e) {
    std::fill(ranks.begin(), ranks.end(), static_cast<rank_t>(e));
    EXPECT_EQ(store.publish(std::span<const rank_t>(ranks)), e);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(store.epoch(), kEpochs);
}

// The full serving loop under race: background refresher republishing
// while service readers query. Readers must always get answers from a
// fully published epoch whose ranks match a direct recompute of that
// epoch's graph (validated post-hoc via the bitwise test above; here
// we check internal consistency + monotone epochs + no crashes under
// TSan).
TEST(SnapshotRace, ServiceQueriesDuringBackgroundRefresh) {
  const vid_t n = 2'048;
  const auto base = test_edges(n, 10'000, 17);
  SnapshotStore store(n);
  UpdateQueue queue;
  RefreshOptions opt;
  opt.small_batch_max = 1'000'000;  // always delta (fast)
  opt.delta.max_iterations = 30;
  opt.poll_seconds = 0.0005;
  UpdateRefresher refresher(n, base, store, queue, opt);
  refresher.publish_initial();
  refresher.start();

  RankService service(store);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t last_epoch = 0;
      unsigned i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<Query> qs;
        qs.push_back(Query::point((c * 997u + i * 31u) % n));
        qs.push_back(Query::batch({i % n, (i * 7u) % n}));
        qs.push_back(Query::top_k(8));
        const auto rs = service.execute_batch(qs);
        // One epoch per batch, monotone per client.
        for (const auto& r : rs) {
          if (r.epoch != rs[0].epoch || r.epoch < last_epoch) {
            violations.fetch_add(1);
          }
        }
        last_epoch = rs[0].epoch;
        ++i;
      }
    });
  }

  // Producers keep edges flowing while clients read.
  for (unsigned burst = 0; burst < 20; ++burst) {
    for (vid_t i = 0; i < 5; ++i) {
      queue.push_add(Edge{(burst * 13u + i) % n, (burst * 7u + 3u * i) % n});
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  while (queue.approx_pending() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  refresher.stop();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(refresher.refreshes(), 1u);
  EXPECT_GT(service.stats().requests, 0u);
}

}  // namespace
}  // namespace hipa::serve
