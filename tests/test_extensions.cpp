// Tests for the paper's §6 extension algorithms: SpMV, PageRank-Delta
// and BFS under the HiPa methodology, on both backends.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/spmv.hpp"
#include "algos/wcc.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace hipa::algo {
namespace {

graph::Graph test_graph(std::uint64_t seed, vid_t n = 3000,
                        eid_t m = 24000) {
  return graph::build_graph(
      n, graph::generate_zipf({.num_vertices = n, .num_edges = m,
                               .seed = seed}));
}

// ---- SpMV -------------------------------------------------------------------

TEST(Spmv, ReferenceOnTinyGraph) {
  const graph::Graph g = graph::build_graph(3, {{0, 2}, {1, 2}, {2, 0}});
  const std::vector<rank_t> x = {1.0f, 2.0f, 4.0f};
  const auto y = spmv_reference(g, x);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

class SpmvEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpmvEngine, HipaMatchesReferenceSim) {
  const std::uint64_t part_bytes = GetParam();
  const graph::Graph g = test_graph(401);
  std::vector<rank_t> x(g.num_vertices());
  Xoshiro256 rng(5);
  for (auto& v : x) v = static_cast<rank_t>(rng.uniform());
  const auto want = spmv_reference(g, x);

  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(8, 2, part_bytes);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  std::vector<rank_t> y;
  const auto report = eng.run_spmv(x, y);
  ASSERT_EQ(y.size(), want.size());
  EXPECT_LT(linf_distance(y, want), 1e-4);
  EXPECT_GT(report.stats.total_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(PartitionSizes, SpmvEngine,
                         ::testing::Values<std::uint64_t>(256, 4096,
                                                          1u << 22));

TEST(Spmv, HipaMatchesReferenceNative) {
  const graph::Graph g = test_graph(402);
  std::vector<rank_t> x(g.num_vertices(), 1.0f);
  const auto want = spmv_reference(g, x);
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(4, 1, 2048);
  engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
  std::vector<rank_t> y;
  eng.run_spmv(x, y);
  EXPECT_LT(linf_distance(y, want), 1e-4);
}

TEST(Spmv, AllOnesCountsInDegrees) {
  const graph::Graph g = test_graph(403, 500, 4000);
  std::vector<rank_t> ones(g.num_vertices(), 1.0f);
  const auto y = spmv_reference(g, ones);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(y[v], static_cast<rank_t>(g.in.degree(v)));
  }
}

// ---- PageRank-Delta ---------------------------------------------------------

TEST(Delta, ReferenceConvergesToPlainPagerank) {
  const graph::Graph g = test_graph(411, 800, 6400);
  DeltaOptions opt;
  opt.epsilon = 1e-4;
  opt.max_iterations = 200;
  const auto delta = pagerank_delta_reference(g, opt);
  const auto plain = pagerank_reference(g, 60);
  EXPECT_LT(delta.iterations, 200u);  // converged, not exhausted
  EXPECT_LT(l1_distance(delta.ranks, plain), 1e-2);
}

TEST(Delta, ParallelMatchesReferenceSim) {
  const graph::Graph g = test_graph(412, 1000, 8000);
  DeltaOptions opt;
  opt.epsilon = 1e-4;
  opt.threads = 8;
  opt.num_nodes = 2;
  opt.partition_bytes = 1024;
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  const auto got = pagerank_delta(g, opt, backend);
  const auto plain = pagerank_reference(g, 60);
  EXPECT_LT(l1_distance(got.ranks, plain), 1e-2);
  EXPECT_GT(got.total_pushes, 0u);
}

TEST(Delta, ParallelMatchesReferenceNative) {
  const graph::Graph g = test_graph(413, 1000, 8000);
  DeltaOptions opt;
  opt.epsilon = 1e-4;
  opt.threads = 4;
  engine::NativeBackend backend;
  const auto got = pagerank_delta(g, opt, backend);
  const auto plain = pagerank_reference(g, 60);
  EXPECT_LT(l1_distance(got.ranks, plain), 1e-2);
}

TEST(Delta, LooserEpsilonDoesLessWork) {
  const graph::Graph g = test_graph(414, 1500, 12000);
  DeltaOptions tight;
  tight.epsilon = 1e-5;
  DeltaOptions loose;
  loose.epsilon = 1e-1;
  const auto a = pagerank_delta_reference(g, tight);
  const auto b = pagerank_delta_reference(g, loose);
  EXPECT_GT(a.total_pushes, b.total_pushes);
  EXPECT_GE(a.iterations, b.iterations);
}

TEST(Delta, RankMassApproximatelyConserved) {
  // All vertices have out-edges => total rank ~= 1 at convergence.
  const graph::Graph g = graph::build_graph(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}});
  DeltaOptions opt;
  opt.epsilon = 1e-6;
  opt.max_iterations = 500;
  const auto r = pagerank_delta_reference(g, opt);
  const double total =
      std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-3);
}

// ---- BFS --------------------------------------------------------------------

TEST(Bfs, ReferenceOnPath) {
  const graph::Graph g =
      graph::build_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto r = bfs_reference(g, 0);
  EXPECT_EQ(r.distance[0], 0u);
  EXPECT_EQ(r.distance[3], 3u);
  EXPECT_EQ(r.levels, 3u);
  EXPECT_EQ(r.reached, 4u);
}

TEST(Bfs, UnreachableVerticesStayUnreached) {
  const graph::Graph g = graph::build_graph(4, {{0, 1}, {2, 3}});
  const auto r = bfs_reference(g, 0);
  EXPECT_EQ(r.distance[2], kUnreached);
  EXPECT_EQ(r.distance[3], kUnreached);
  EXPECT_EQ(r.reached, 2u);
}

class BfsBackends : public ::testing::TestWithParam<unsigned> {};

TEST_P(BfsBackends, ParallelMatchesReferenceSim) {
  const unsigned threads = GetParam();
  const graph::Graph g = test_graph(421, 2000, 10000);
  const auto want = bfs_reference(g, 0);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  BfsOptions opt;
  opt.threads = threads;
  opt.num_nodes = 2;
  opt.partition_bytes = 1024;
  const auto got = bfs(g, 0, opt, backend);
  EXPECT_EQ(got.distance, want.distance);
  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.reached, want.reached);
}

INSTANTIATE_TEST_SUITE_P(Threads, BfsBackends,
                         ::testing::Values(1u, 3u, 16u));

TEST(Bfs, ParallelMatchesReferenceNative) {
  const graph::Graph g = test_graph(422, 2000, 10000);
  const auto want = bfs_reference(g, 7);
  engine::NativeBackend backend;
  BfsOptions opt;
  opt.threads = 4;
  const auto got = bfs(g, 7, opt, backend);
  EXPECT_EQ(got.distance, want.distance);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const graph::Graph g = graph::build_graph(2, {{0, 1}});
  EXPECT_THROW(bfs_reference(g, 5), Error);
}


// ---- WCC --------------------------------------------------------------------

TEST(Wcc, ReferenceOnTwoComponents) {
  const graph::Graph g =
      graph::build_graph(5, {{0, 1}, {1, 2}, {3, 4}});
  const auto labels = wcc_reference(g);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 3u);
  EXPECT_EQ(count_components(labels), 2u);
}

TEST(Wcc, DirectionIgnored) {
  // 2 -> 0 only; weak connectivity joins them anyway.
  const graph::Graph g = graph::build_graph(3, {{2, 0}});
  const auto labels = wcc_reference(g);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(count_components(labels), 2u);  // {0,2} and {1}
}

TEST(Wcc, HipaMatchesReferenceSim) {
  const graph::Graph g = test_graph(431, 2000, 6000);
  const auto want = wcc_reference(g);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(8, 2, 1024);
  unsigned rounds = 0;
  const auto got = wcc(g, opt, backend, &rounds);
  EXPECT_EQ(got, want);
  EXPECT_GT(rounds, 0u);
}

TEST(Wcc, HipaMatchesReferenceNative) {
  const graph::Graph g = test_graph(432, 1500, 4000);
  const auto want = wcc_reference(g);
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(4, 1, 2048);
  EXPECT_EQ(wcc(g, opt, backend), want);
}

TEST(Wcc, BothDstEncodingsAgree) {
  // Label propagation drains the same destination lists as PageRank's
  // gather; the compact and wide encodings must produce identical
  // labels in the same number of rounds.
  const graph::Graph g = test_graph(433, 2000, 6000);
  const auto want = wcc_reference(g);
  engine::NativeBackend b1, b2;
  auto compact = engine::PcpmOptions::hipa(4, 1, 1024);
  compact.dst_encoding = pcp::DstEncoding::kCompact;
  auto wide = compact;
  wide.dst_encoding = pcp::DstEncoding::kWide;
  unsigned rounds_c = 0;
  unsigned rounds_w = 0;
  const auto got_c = wcc(g, compact, b1, &rounds_c);
  const auto got_w = wcc(g, wide, b2, &rounds_w);
  EXPECT_EQ(got_c, want);
  EXPECT_EQ(got_w, want);
  EXPECT_EQ(rounds_c, rounds_w);
}

TEST(Wcc, SingletonVerticesKeepOwnLabel) {
  const graph::Graph g = graph::build_graph(4, {{0, 1}});
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(2, 1, 16);
  const auto labels = wcc(g, opt, backend);
  EXPECT_EQ(labels[2], 2u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(count_components(labels), 3u);
}

}  // namespace
}  // namespace hipa::algo
