// Single-dispatch run loop: NativeBackend::run_loop + LoopCtl barrier
// semantics, and the PcpmEngine guarantee that the one-parallel-region
// path computes ranks bitwise identical to the per-phase dispatch
// path. These suites carry the `tsan` ctest label — run them under the
// sanitize-thread preset to prove the barrier protocol racefree.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "algos/pagerank.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace hipa {
namespace {

// ---- run_loop mechanics -----------------------------------------------------

TEST(RunLoop, BarrierSeparatesSubPhases) {
  engine::NativeBackend backend;
  engine::ThreadTeamSpec spec;
  spec.num_threads = 4;
  spec.persistent = true;
  backend.start_team(spec);
  constexpr int kIters = 200;
  // Per-thread slots written before each barrier and validated after:
  // a dispatch-per-phase bug or broken barrier shows as a stale slot.
  std::vector<std::uint64_t> slot(4, 0);
  std::atomic<bool> failed{false};
  backend.run_loop([&](unsigned t, engine::NoopMem&, engine::LoopCtl& ctl) {
    for (int it = 0; it < kIters; ++it) {
      slot[t] = static_cast<std::uint64_t>(it) + 1;
      ctl.barrier();
      for (unsigned u = 0; u < 4; ++u) {
        if (slot[u] != static_cast<std::uint64_t>(it) + 1) {
          failed.store(true);
        }
      }
      ctl.barrier();
    }
  });
  backend.end_team();
  EXPECT_FALSE(failed.load());
}

TEST(RunLoop, WorksWithoutPersistentTeam) {
  engine::NativeBackend backend;
  engine::ThreadTeamSpec spec;
  spec.num_threads = 3;
  spec.persistent = false;
  backend.start_team(spec);
  std::atomic<int> total{0};
  backend.run_loop([&](unsigned, engine::NoopMem&, engine::LoopCtl& ctl) {
    total.fetch_add(1);
    ctl.barrier();
    total.fetch_add(1);
  });
  backend.end_team();
  EXPECT_EQ(total.load(), 6);
}

TEST(RunLoop, SingleThreadPassesThrough) {
  engine::NativeBackend backend;
  engine::ThreadTeamSpec spec;
  spec.num_threads = 1;
  backend.start_team(spec);
  int hits = 0;
  backend.run_loop([&](unsigned, engine::NoopMem&, engine::LoopCtl& ctl) {
    for (int i = 0; i < 1000; ++i) {
      ctl.barrier();
      ++hits;
    }
  });
  backend.end_team();
  EXPECT_EQ(hits, 1000);
}

TEST(RunLoop, Thread0PublishesScalarsBetweenBarriers) {
  engine::NativeBackend backend;
  engine::ThreadTeamSpec spec;
  spec.num_threads = 4;
  spec.persistent = true;
  backend.start_team(spec);
  // Thread 0 publishes a plain (non-atomic) value between barriers;
  // every thread must observe it — the pattern run_pagerank uses for
  // the convergence stop flag.
  std::uint64_t published = 0;
  std::atomic<bool> failed{false};
  backend.run_loop([&](unsigned t, engine::NoopMem&, engine::LoopCtl& ctl) {
    for (std::uint64_t it = 0; it < 300; ++it) {
      ctl.barrier();
      if (t == 0) published = it * 7 + 1;
      ctl.barrier();
      if (published != it * 7 + 1) failed.store(true);
    }
  });
  backend.end_team();
  EXPECT_FALSE(failed.load());
}

// ---- native placement API ---------------------------------------------------

TEST(NativeBackend, FirstTouchZeroesAndPlaces) {
  engine::NativeBackend backend;
  AlignedBuffer<float> buf(5000);
  for (auto& v : buf) v = 1.25f;
  backend.first_touch(buf.data(), buf.size_bytes(), 0);
  for (float v : buf) ASSERT_EQ(v, 0.0f);
}

TEST(NativeBackend, AllocHonorsPlacementHintWithoutCrashing) {
  engine::NativeBackend backend;
  auto a = backend.alloc<std::uint32_t>(10000,
                                        engine::DataPlacement::kNode, 0);
  auto b = backend.alloc<std::uint32_t>(
      10000, engine::DataPlacement::kInterleave);
  auto c = backend.alloc<std::uint32_t>(10000,
                                        engine::DataPlacement::kScatter);
  ASSERT_EQ(a.size(), 10000u);
  // Buffers are writable end to end regardless of the placement path.
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 1;
    b[i] = 2;
    c[i] = 3;
  }
  EXPECT_EQ(a[9999] + b[9999] + c[9999], 6u);
  // Node ids beyond the host wrap instead of failing.
  auto d = backend.alloc<std::uint32_t>(1000, engine::DataPlacement::kNode,
                                        999);
  d[999] = 4;
  EXPECT_EQ(d[999], 4u);
  EXPECT_GE(backend.num_nodes(), 1u);
}

// ---- engine equivalence -----------------------------------------------------

std::vector<rank_t> run_native(
    const graph::Graph& g, bool single_dispatch, unsigned threads,
    unsigned nodes, std::uint64_t part_bytes, unsigned iters,
    double tolerance = 0.0, engine::RunReport* report_out = nullptr,
    runtime::Telemetry telemetry = runtime::Telemetry::kOff) {
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(threads, nodes, part_bytes);
  opt.single_dispatch = single_dispatch;
  engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
  EXPECT_EQ(eng.uses_single_dispatch(), single_dispatch);
  engine::PageRankOptions pr;
  pr.iterations = iters;
  pr.tolerance = tolerance;
  pr.telemetry = telemetry;
  auto result = eng.run(pr);
  if (report_out != nullptr) *report_out = result.report;
  return result.ranks;
}

void expect_bitwise_equal(const std::vector<rank_t>& a,
                          const std::vector<rank_t>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at vertex " << i;
  }
}

TEST(SingleDispatch, BitwiseEqualToPerPhaseOnRmat) {
  const auto edges = graph::generate_rmat(
      {.scale = 11, .edge_factor = 8, .seed = 21});
  const graph::Graph g = graph::build_graph(1u << 11, edges);
  const auto loop = run_native(g, true, 4, 1, 1024, 10);
  const auto phased = run_native(g, false, 4, 1, 1024, 10);
  expect_bitwise_equal(loop, phased, "rmat run_loop-vs-phase");
  const auto want = algo::pagerank_reference(g, 10);
  EXPECT_LT(algo::l1_distance(loop, want),
            1e-6 * static_cast<double>(want.size()));
}

TEST(SingleDispatch, BitwiseEqualToPerPhaseOnErdosRenyi) {
  const auto edges = graph::generate_erdos_renyi(3000, 24000, 33);
  const graph::Graph g = graph::build_graph(3000, edges);
  const auto loop = run_native(g, true, 3, 2, 2048, 8);
  const auto phased = run_native(g, false, 3, 2, 2048, 8);
  expect_bitwise_equal(loop, phased, "er run_loop-vs-phase");
}

TEST(SingleDispatch, BitwiseEqualAcrossManyThreadCounts) {
  const graph::Graph g = graph::build_graph(
      1500, graph::generate_zipf({.num_vertices = 1500, .num_edges = 12000,
                                  .seed = 5}));
  for (unsigned threads : {1u, 2u, 5u, 8u}) {
    const auto loop = run_native(g, true, threads, 2, 1024, 6);
    const auto phased = run_native(g, false, threads, 2, 1024, 6);
    expect_bitwise_equal(loop, phased, "thread-sweep run_loop-vs-phase");
  }
}

TEST(SingleDispatch, ConvergenceStopsIdenticallyOnBothPaths) {
  const graph::Graph g = graph::build_graph(
      2000, graph::generate_zipf({.num_vertices = 2000, .num_edges = 16000,
                                  .seed = 6}));
  engine::RunReport rl, rp;
  const double tol = 1e-4;
  const auto loop = run_native(g, true, 4, 1, 1024, 100, tol, &rl);
  const auto phased = run_native(g, false, 4, 1, 1024, 100, tol, &rp);
  expect_bitwise_equal(loop, phased, "tolerance run_loop-vs-phase");
  EXPECT_EQ(rl.iterations, rp.iterations);
  EXPECT_EQ(rl.last_delta, rp.last_delta);
  EXPECT_GT(rl.iterations, 0u);
  EXPECT_LT(rl.iterations, 100u);  // must actually early-stop
  EXPECT_LE(rl.last_delta, tol);
}

TEST(SingleDispatch, ZeroIterationsReportsZero) {
  const graph::Graph g = graph::build_graph(
      300, graph::generate_zipf({.num_vertices = 300, .num_edges = 2000,
                                 .seed = 7}));
  engine::RunReport report;
  run_native(g, true, 2, 1, 1024, 0, 0.0, &report);
  EXPECT_EQ(report.iterations, 0u);
}

TEST(SingleDispatch, FcfsModeKeepsPerPhasePath) {
  // p-PR (non-persistent, FCFS) must not take the run_loop path...
  engine::NativeBackend backend;
  const graph::Graph g = graph::build_graph(
      800, graph::generate_zipf({.num_vertices = 800, .num_edges = 6000,
                                 .seed = 8}));
  auto opt = engine::PcpmOptions::ppr(3, 1, 1024);
  engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
  EXPECT_FALSE(eng.uses_single_dispatch());
  // ...and still be correct.
  const auto got = eng.run({8, 0.85f}).ranks;
  const auto want = algo::pagerank_reference(g, 8);
  EXPECT_LT(algo::l1_distance(got, want),
            1e-6 * static_cast<double>(want.size()));
}

TEST(SingleDispatch, PinnedRunSurvivesOversizedNodeRequest) {
  // An 8-node 16-thread plan on whatever small box CI runs on: the
  // affinity layer wraps every request onto real CPUs and the ranks
  // stay correct.
  const graph::Graph g = graph::build_graph(
      1200, graph::generate_zipf({.num_vertices = 1200, .num_edges = 9000,
                                  .seed = 9}));
  const auto loop = run_native(g, true, 16, 8, 1024, 5);
  const auto want = algo::pagerank_reference(g, 5);
  EXPECT_LT(algo::l1_distance(loop, want),
            1e-6 * static_cast<double>(want.size()));
}

TEST(SingleDispatch, SpmvStillWorksBetweenRunLoopRuns) {
  // The non-PageRank entry points share buffers with the run_loop
  // path; interleaving them must not corrupt state.
  const auto edges = graph::generate_erdos_renyi(1000, 8000, 44);
  graph::Graph g = graph::build_graph(1000, edges);
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(4, 1, 2048);
  engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
  const auto before = eng.run({5, 0.85f}).ranks;
  std::vector<rank_t> x(g.num_vertices(), 1.0f), y;
  eng.run_spmv(x, y);
  ASSERT_EQ(y.size(), g.num_vertices());
  const auto after = eng.run({5, 0.85f}).ranks;
  expect_bitwise_equal(before, after, "rerun after spmv");
}

// ---- telemetry on the two execution paths ----------------------------------

TEST(SingleDispatch, TelemetryAgreesBetweenPaths) {
  // The per-phase and single-dispatch paths do identical work, so the
  // deterministic telemetry counters (invocations, traffic) must
  // agree; only the timing/barrier fields may differ.
  const graph::Graph g = graph::build_graph(
      1500, graph::generate_zipf({.num_vertices = 1500, .num_edges = 12000,
                                  .seed = 11}));
  constexpr unsigned kIters = 6;
  engine::RunReport rl, rp;
  const auto loop = run_native(g, true, 4, 1, 1024, kIters, 0.0, &rl,
                               runtime::Telemetry::kOn);
  const auto phased = run_native(g, false, 4, 1, 1024, kIters, 0.0, &rp,
                                 runtime::Telemetry::kOn);
  expect_bitwise_equal(loop, phased, "telemetered run_loop-vs-phase");
  ASSERT_TRUE(rl.telemetry.enabled);
  ASSERT_TRUE(rp.telemetry.enabled);
  EXPECT_EQ(rl.telemetry.threads, rp.telemetry.threads);
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    const auto ph = static_cast<runtime::Phase>(pi);
    const auto& a = rl.telemetry[ph];
    const auto& b = rp.telemetry[ph];
    EXPECT_EQ(a.invocations, b.invocations) << runtime::phase_name(ph);
    EXPECT_EQ(a.messages_produced, b.messages_produced)
        << runtime::phase_name(ph);
    EXPECT_EQ(a.messages_consumed, b.messages_consumed)
        << runtime::phase_name(ph);
    EXPECT_EQ(a.bytes_produced, b.bytes_produced)
        << runtime::phase_name(ph);
    EXPECT_EQ(a.bytes_consumed, b.bytes_consumed)
        << runtime::phase_name(ph);
  }
  // Barrier crossings exist only on the run_loop path: one after init,
  // two per iteration (no tolerance barrier for untracked runs).
  EXPECT_EQ(rl.telemetry[runtime::Phase::kInit].barrier_crossings, 4u);
  EXPECT_EQ(rl.telemetry[runtime::Phase::kScatter].barrier_crossings,
            4u * kIters);
  EXPECT_EQ(rl.telemetry[runtime::Phase::kGather].barrier_crossings,
            4u * kIters);
  EXPECT_EQ(rp.telemetry[runtime::Phase::kInit].barrier_crossings, 0u);
  // Both paths publish one wall entry per iteration.
  EXPECT_EQ(rl.telemetry.iteration_seconds.size(), kIters);
  EXPECT_EQ(rp.telemetry.iteration_seconds.size(), kIters);
}

TEST(SingleDispatch, TelemetryOffIsBitwiseIdenticalToOn) {
  const graph::Graph g = graph::build_graph(
      1200, graph::generate_zipf({.num_vertices = 1200, .num_edges = 9000,
                                  .seed = 12}));
  engine::RunReport off_rep, on_rep;
  const auto off = run_native(g, true, 4, 1, 1024, 8, 0.0, &off_rep,
                              runtime::Telemetry::kOff);
  const auto on = run_native(g, true, 4, 1, 1024, 8, 0.0, &on_rep,
                             runtime::Telemetry::kOn);
  expect_bitwise_equal(off, on, "telemetry off-vs-on");
  EXPECT_FALSE(off_rep.telemetry.enabled);
  EXPECT_TRUE(on_rep.telemetry.enabled);
}

}  // namespace
}  // namespace hipa
