// Tests for the kernel-generic run<K>() API (engines/kernels.hpp):
// per-kernel oracle checks on three generator families, bitwise
// identity between the PageRank-only facade and run<PageRankKernel>,
// active-partition scatter skipping, phase-dispatch vs run_loop
// equivalence, and the serving layer's kernel-routed refresh.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/snapshot.hpp"
#include "serve/updates.hpp"
#include "sim/machine.hpp"

namespace hipa::algo {
namespace {

constexpr double kTolPerVertex = 1e-6;

// ---- generator families -----------------------------------------------------

// Small instances of the three generator families the engine suite
// exercises: skewed web-like (Zipf), Kronecker (R-MAT) and uniform
// (Erdős–Rényi). One fixture value per family.
enum class Family { kZipf, kRmat, kEr };

const char* family_name(Family f) {
  switch (f) {
    case Family::kZipf: return "zipf";
    case Family::kRmat: return "rmat";
    case Family::kEr: return "er";
  }
  return "?";
}

graph::Graph family_graph(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::kZipf:
      return graph::build_graph(
          2000, graph::generate_zipf({.num_vertices = 2000,
                                      .num_edges = 16000,
                                      .seed = seed}));
    case Family::kRmat: {
      graph::RmatParams p;
      p.scale = 11;       // 2048 vertices
      p.edge_factor = 8;  // 16K edges
      p.seed = seed;
      return graph::build_graph(vid_t{1} << p.scale, graph::generate_rmat(p));
    }
    case Family::kEr:
      return graph::build_graph(
          2000, graph::generate_erdos_renyi(2000, 12000, seed));
  }
  HIPA_CHECK(false, "bad family");
  __builtin_unreachable();
}

/// A source that actually reaches something: the max-out-degree vertex.
vid_t busiest_source(const graph::Graph& g) {
  vid_t best = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.out.degree(v) > g.out.degree(best)) best = v;
  }
  return best;
}

sim::SimMachine make_machine() {
  return sim::SimMachine(sim::Topology::skylake_2s().scaled(64));
}

class KernelOracles : public ::testing::TestWithParam<Family> {};

// ---- BFS --------------------------------------------------------------------

TEST_P(KernelOracles, BfsMatchesReferenceSim) {
  const graph::Graph g = family_graph(GetParam(), 901);
  const vid_t src = busiest_source(g);
  const BfsResult want = bfs_reference(g, src);

  sim::SimMachine machine = make_machine();
  engine::SimBackend backend(machine);
  const BfsResult got =
      bfs(g, src, BfsOptions{.threads = 8, .num_nodes = 2,
                             .partition_bytes = 2048},
          backend);
  ASSERT_EQ(got.distance.size(), want.distance.size());
  EXPECT_EQ(got.distance, want.distance) << family_name(GetParam());
  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.reached, want.reached);
}

TEST_P(KernelOracles, BfsMatchesReferenceNative) {
  const graph::Graph g = family_graph(GetParam(), 902);
  const vid_t src = busiest_source(g);
  const BfsResult want = bfs_reference(g, src);
  engine::NativeBackend backend;
  const BfsResult got = bfs(g, src, BfsOptions{.threads = 4}, backend);
  EXPECT_EQ(got.distance, want.distance) << family_name(GetParam());
}

// ---- WCC --------------------------------------------------------------------

TEST_P(KernelOracles, WccMatchesReferenceSim) {
  const graph::Graph g = family_graph(GetParam(), 903);
  const std::vector<vid_t> want = wcc_reference(g);

  sim::SimMachine machine = make_machine();
  engine::SimBackend backend(machine);
  const auto opt = engine::PcpmOptions::hipa(8, 2, 2048);
  unsigned rounds = 0;
  const std::vector<vid_t> got = wcc(g, opt, backend, &rounds);
  EXPECT_EQ(got, want) << family_name(GetParam());
  EXPECT_GE(rounds, 1u);
  EXPECT_EQ(count_components(got), count_components(want));
}

TEST_P(KernelOracles, WccMatchesReferenceNative) {
  const graph::Graph g = family_graph(GetParam(), 904);
  const std::vector<vid_t> want = wcc_reference(g);
  engine::NativeBackend backend;
  const auto opt = engine::PcpmOptions::hipa(4, 1, 4096);
  EXPECT_EQ(wcc(g, opt, backend), want) << family_name(GetParam());
}

// ---- SSSP -------------------------------------------------------------------

// Dijkstra and the engine's Bellman-Ford-style fixpoint agree exactly
// (not approximately): both converge to the unique least fixpoint of
// d[v] = min_u(d[u] + w(u)) evaluated in the same float arithmetic.
TEST_P(KernelOracles, SsspMatchesReferenceSim) {
  const graph::Graph g = family_graph(GetParam(), 905);
  const vid_t src = busiest_source(g);
  const SsspResult want = sssp_reference(g, src);

  sim::SimMachine machine = make_machine();
  engine::SimBackend backend(machine);
  const SsspResult got =
      sssp(g, src, SsspOptions{.threads = 8, .num_nodes = 2,
                               .partition_bytes = 2048},
           backend);
  ASSERT_EQ(got.distance.size(), want.distance.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(got.distance[v], want.distance[v])
        << family_name(GetParam()) << " vertex " << v;
  }
  EXPECT_EQ(got.reached, want.reached);
}

TEST_P(KernelOracles, SsspMatchesReferenceNative) {
  const graph::Graph g = family_graph(GetParam(), 906);
  const vid_t src = busiest_source(g);
  const SsspResult want = sssp_reference(g, src);
  engine::NativeBackend backend;
  const SsspResult got = sssp(g, src, SsspOptions{.threads = 4}, backend);
  EXPECT_EQ(0, std::memcmp(got.distance.data(), want.distance.data(),
                           want.distance.size() * sizeof(float)))
      << family_name(GetParam());
}

// ---- personalized PageRank --------------------------------------------------

TEST_P(KernelOracles, PprMatchesReferenceSim) {
  const graph::Graph g = family_graph(GetParam(), 907);
  engine::PprOptions ko;
  ko.seeds = {1, 5, 100};
  MethodParams params;
  params.pr.iterations = 10;

  const std::vector<rank_t> want =
      ppr_reference(g, params.pr.iterations, ko.damping, ko.seeds);
  for (const Method m : all_methods()) {
    sim::SimMachine machine = make_machine();
    const auto got =
        run_kernel_sim<engine::PprKernel>(m, g, machine, ko, params);
    EXPECT_LT(l1_distance(got.values, want),
              kTolPerVertex * static_cast<double>(want.size()))
        << family_name(GetParam()) << " " << method_name(m);
  }
}

TEST_P(KernelOracles, PprMassConcentratesOnSeeds) {
  const graph::Graph g = family_graph(GetParam(), 908);
  engine::PprOptions ko;
  ko.seeds = {42};
  MethodParams params;
  params.pr.iterations = 10;
  const auto got = run_kernel_native<engine::PprKernel>(Method::kHipa, g, ko,
                                                        params);
  // The restart vertex holds at least the (1 - d) restart mass, which
  // dwarfs the ~1/n a uniform run would give it.
  EXPECT_GT(got.values[42], 0.14f);
}

INSTANTIATE_TEST_SUITE_P(Families, KernelOracles,
                         ::testing::Values(Family::kZipf, Family::kRmat,
                                           Family::kEr),
                         [](const auto& info) {
                           return family_name(info.param);
                         });

// ---- PageRank facade identity -----------------------------------------------

// The PageRank-only facade (run(PageRankOptions) -> RunResult) and the
// kernel-generic surface must produce bitwise-identical ranks on every
// engine: same core, two entry points.
TEST(FacadeIdentity, PcpmRunEqualsRunKernel) {
  const graph::Graph g = family_graph(Family::kZipf, 909);
  engine::PageRankOptions pr(6);
  engine::PrOptions ko;
  ko.damping = pr.damping;

  sim::SimMachine m1 = make_machine();
  engine::SimBackend b1(m1);
  engine::PcpmEngine<engine::SimBackend> e1(
      g, engine::PcpmOptions::hipa(8, 2, 2048), b1);
  const auto old_result = e1.run(pr);

  sim::SimMachine m2 = make_machine();
  engine::SimBackend b2(m2);
  engine::PcpmEngine<engine::SimBackend> e2(
      g, engine::PcpmOptions::hipa(8, 2, 2048), b2);
  const auto new_result = e2.run<engine::PageRankKernel>(ko, pr);

  ASSERT_EQ(old_result.ranks.size(), new_result.values.size());
  EXPECT_EQ(0, std::memcmp(old_result.ranks.data(), new_result.values.data(),
                           old_result.ranks.size() * sizeof(rank_t)));
}

TEST(FacadeIdentity, VprRunEqualsRunKernel) {
  const graph::Graph g = family_graph(Family::kZipf, 910);
  engine::PageRankOptions pr(6);
  engine::PrOptions ko;
  ko.damping = pr.damping;

  sim::SimMachine m1 = make_machine();
  engine::SimBackend b1(m1);
  engine::VprEngine<engine::SimBackend> e1(g, {.num_threads = 8}, b1);
  const auto old_result = e1.run(pr);

  sim::SimMachine m2 = make_machine();
  engine::SimBackend b2(m2);
  engine::VprEngine<engine::SimBackend> e2(g, {.num_threads = 8}, b2);
  const auto new_result = e2.run<engine::PageRankKernel>(ko, pr);

  EXPECT_EQ(0, std::memcmp(old_result.ranks.data(), new_result.values.data(),
                           old_result.ranks.size() * sizeof(rank_t)));
}

TEST(FacadeIdentity, PolymerRunEqualsRunKernel) {
  const graph::Graph g = family_graph(Family::kZipf, 911);
  engine::PageRankOptions pr(6);
  engine::PrOptions ko;
  ko.damping = pr.damping;
  engine::PolymerOptions popt;
  popt.num_threads = 8;
  popt.num_nodes = 2;

  sim::SimMachine m1 = make_machine();
  engine::SimBackend b1(m1);
  engine::PolymerEngine<engine::SimBackend> e1(g, popt, b1);
  const auto old_result = e1.run(pr);

  sim::SimMachine m2 = make_machine();
  engine::SimBackend b2(m2);
  engine::PolymerEngine<engine::SimBackend> e2(g, popt, b2);
  const auto new_result = e2.run<engine::PageRankKernel>(ko, pr);

  EXPECT_EQ(0, std::memcmp(old_result.ranks.data(), new_result.values.data(),
                           old_result.ranks.size() * sizeof(rank_t)));
}

// run_method_* (the historical facade) must equal the typed kernel
// runner for every methodology — including through a vertex reorder.
TEST(FacadeIdentity, RunMethodEqualsRunKernelAllMethods) {
  const graph::Graph g = family_graph(Family::kRmat, 912);
  MethodParams params;
  params.pr.iterations = 6;
  for (const Method m : all_methods()) {
    for (const engine::Reorder r :
         {engine::Reorder::kNone, engine::Reorder::kDegree}) {
      params.pr.reorder = r;
      sim::SimMachine m1 = make_machine();
      const RunResult via_method = run_method_sim(m, g, m1, params);
      engine::PrOptions ko;
      ko.damping = params.pr.damping;
      sim::SimMachine m2 = make_machine();
      const auto via_kernel =
          run_kernel_sim<engine::PageRankKernel>(m, g, m2, ko, params);
      ASSERT_EQ(via_method.ranks.size(), via_kernel.values.size());
      EXPECT_EQ(0, std::memcmp(via_method.ranks.data(),
                               via_kernel.values.data(),
                               via_method.ranks.size() * sizeof(rank_t)))
          << method_name(m) << " reorder=" << reorder_name(r);
    }
  }
}

// ---- active-partition skipping ----------------------------------------------

// Frontier kernels skip the scatter stream of partitions with no
// active sources. As WCC converges the frontier empties, so the total
// scatter messages over R rounds must come in strictly under R times
// one full-frontier round — and the engine must still produce the
// exact union-find labels.
TEST(ActivePartitions, ConvergedWccSkipsScatterWork) {
  // Components that converge at very different times: a dense Zipf
  // core (a handful of rounds) plus a long appended path, where the
  // min label crawls one hop per round. Small partitions so the core's
  // partitions go quiet while the path is still propagating.
  const vid_t kCore = 1024;
  const vid_t kPath = 128;
  const vid_t n = kCore + kPath;
  std::vector<Edge> edges = graph::generate_zipf(
      {.num_vertices = kCore, .num_edges = 8000, .seed = 913});
  for (vid_t i = 0; i + 1 < kPath; ++i) {
    edges.push_back(Edge{kCore + i, kCore + i + 1});
  }
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  bopts.remove_duplicates = true;
  const graph::Graph sym = graph::build_graph(n, edges, bopts);

  engine::RunOptions ro;
  ro.telemetry = runtime::Telemetry::kOn;
  const auto opt = engine::PcpmOptions::hipa(8, 2, 256);

  // One round with everything active = the full-frontier scatter cost.
  sim::SimMachine m1 = make_machine();
  engine::SimBackend b1(m1);
  engine::PcpmEngine<engine::SimBackend> e1(sym, opt, b1);
  const auto one =
      e1.run<engine::WccKernel>(engine::WccOptions{.max_rounds = 1}, ro);
  const std::uint64_t full_round =
      one.report.telemetry[runtime::Phase::kScatter].messages_produced;
  ASSERT_GT(full_round, 0u);

  // Run to convergence: the path forces ~kPath rounds, and the total
  // scatter volume must come in far under rounds * full_round because
  // converged partitions stop scattering.
  sim::SimMachine m2 = make_machine();
  engine::SimBackend b2(m2);
  engine::PcpmEngine<engine::SimBackend> e2(sym, opt, b2);
  const auto all = e2.run<engine::WccKernel>(engine::WccOptions{}, ro);
  const std::uint64_t total =
      all.report.telemetry[runtime::Phase::kScatter].messages_produced;
  ASSERT_GE(all.report.iterations, kPath - 2);
  EXPECT_LT(total, full_round * all.report.iterations / 4);

  // And the skipping must not change the answer.
  const graph::Graph directed = graph::build_graph(n, edges);
  EXPECT_EQ(all.values, wcc_reference(directed));
}

// ---- phase dispatch vs run_loop ---------------------------------------------

// The per-phase condvar dispatch and the single-dispatch run_loop are
// two drivers of the same iteration body; every kernel must produce
// bitwise-identical values through both.
TEST(RunLoopEquivalence, AllKernelsBitwiseEqualAcrossDispatchModes) {
  const graph::Graph g = family_graph(Family::kZipf, 914);
  engine::NativeBackend backend;

  auto opts = [](bool single) {
    auto o = engine::PcpmOptions::hipa(4, 1, 4096);
    o.single_dispatch = single;
    return o;
  };

  {
    engine::PcpmEngine<engine::NativeBackend> loop(g, opts(true), backend);
    engine::PcpmEngine<engine::NativeBackend> phased(g, opts(false),
                                                     backend);
    ASSERT_TRUE(loop.uses_single_dispatch());
    ASSERT_FALSE(phased.uses_single_dispatch());

    const auto pr_a = loop.run(engine::PageRankOptions(8));
    const auto pr_b = phased.run(engine::PageRankOptions(8));
    EXPECT_EQ(0, std::memcmp(pr_a.ranks.data(), pr_b.ranks.data(),
                             pr_a.ranks.size() * sizeof(rank_t)));

    const vid_t src = busiest_source(g);
    engine::BfsOptions bo;
    bo.source = src;
    const auto bfs_a = loop.run<engine::BfsKernel>(bo);
    const auto bfs_b = phased.run<engine::BfsKernel>(bo);
    EXPECT_EQ(bfs_a.values, bfs_b.values);

    engine::SsspOptions so;
    so.source = src;
    const auto sssp_a = loop.run<engine::SsspKernel>(so);
    const auto sssp_b = phased.run<engine::SsspKernel>(so);
    EXPECT_EQ(0, std::memcmp(sssp_a.values.data(), sssp_b.values.data(),
                             sssp_a.values.size() * sizeof(float)));

    const auto wcc_a = loop.run<engine::WccKernel>(engine::WccOptions{});
    const auto wcc_b = phased.run<engine::WccKernel>(engine::WccOptions{});
    EXPECT_EQ(wcc_a.values, wcc_b.values);
    EXPECT_EQ(wcc_a.report.iterations, wcc_b.report.iterations);
  }
}

// ---- runtime kernel dispatch (MethodParams::kernel) -------------------------

TEST(AnyKernel, DispatchRunsEveryKernel) {
  const graph::Graph g = family_graph(Family::kEr, 915);
  MethodParams params;
  params.pr.iterations = 4;
  params.personalized.seeds = {3};
  params.bfs.source = busiest_source(g);
  params.sssp.source = params.bfs.source;
  for (const Kernel k : all_kernels()) {
    params.kernel = k;
    const engine::RunReport report =
        run_any_kernel_native(Method::kHipa, g, params);
    EXPECT_GE(report.iterations, 1u) << kernel_name(k);
  }
}

TEST(AnyKernel, NamesRoundTrip) {
  for (const Kernel k : all_kernels()) {
    const auto back = kernel_from_name(kernel_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(kernel_from_name("dijkstra").has_value());
  EXPECT_EQ(kernel_from_name("pr"), Kernel::kPageRank);
}

// ---- serving refresh through the kernel facade ------------------------------

// The refresher's full-run path routes through the kernel-generic
// facade; a refresh must stay bitwise identical to a fresh full run on
// the updated graph (the serving layer's reproducibility contract).
TEST(ServeRefresh, FullRefreshBitwiseMatchesFreshRun) {
  const vid_t n = 600;
  const graph::Graph seed_graph = family_graph(Family::kEr, 916);
  std::vector<Edge> edges;
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : seed_graph.out.neighbors(v)) {
      if (u < n) edges.push_back(Edge{v, u});
    }
  }

  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::RefreshOptions opt;
  opt.small_batch_max = 4;
  opt.full.threads = 2;
  opt.full.pr.iterations = 10;
  serve::UpdateRefresher refresher(n, edges, store, queue, opt);
  refresher.publish_initial();

  for (vid_t i = 0; i < 16; ++i) {
    queue.push_add(Edge{i, (i * 37 + 5) % n});
  }
  const serve::RefreshReport report = refresher.refresh_now();
  ASSERT_TRUE(report.full_run);

  const RunResult fresh =
      run_method_native(Method::kHipa, refresher.graph(), opt.full);
  serve::SnapshotRef snap = store.current();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(0, std::memcmp(snap->ranks().data(), fresh.ranks.data(),
                           n * sizeof(rank_t)));
}

// A personalized refresh serves PPR ranks: bitwise equal to the typed
// runner on the same graph.
TEST(ServeRefresh, PersonalizedKernelBacksRefresh) {
  const vid_t n = 400;
  std::vector<Edge> edges;
  for (vid_t v = 0; v < n; ++v) {
    edges.push_back(Edge{v, (v * 13 + 1) % n});
    edges.push_back(Edge{v, (v * 7 + 3) % n});
  }

  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::RefreshOptions opt;
  opt.full.threads = 2;
  opt.full.pr.iterations = 8;
  opt.full.kernel = Kernel::kPersonalized;
  opt.full.personalized.seeds = {7, 11};
  serve::UpdateRefresher refresher(n, edges, store, queue, opt);
  refresher.publish_initial();

  const auto fresh = run_kernel_native<engine::PprKernel>(
      Method::kHipa, refresher.graph(), opt.full.personalized, opt.full);
  serve::SnapshotRef snap = store.current();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(0, std::memcmp(snap->ranks().data(), fresh.values.data(),
                           n * sizeof(rank_t)));
}

// Non-rank kernels cannot back a rank-serving refresh.
TEST(ServeRefresh, RejectsNonRankKernels) {
  const vid_t n = 16;
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::RefreshOptions opt;
  opt.full.kernel = Kernel::kBfs;
  serve::UpdateRefresher refresher(n, edges, store, queue, opt);
  EXPECT_THROW(refresher.publish_initial(), Error);
}

}  // namespace
}  // namespace hipa::algo
