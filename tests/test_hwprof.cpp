// Hardware observability layer: perf_event counter-group degradation
// (EACCES/ENOSYS injected through the syscall seam, run completes with
// hw_available=false and bitwise-identical ranks), the off-path
// zero-syscall guarantee (the attempts counter must not move when
// everything is kOff), Chrome-trace structural validation through the
// shared minijson reader, numa_maps parsing, and the NUMA-gated
// placement-audit acceptance test (>=90% of attribute pages on the
// owning node — skipped, not failed, on single-node hosts).
//
// Labeled `hwprof` in ctest; tests that need real PMU or multi-node
// NUMA access GTEST_SKIP on hosts without it, so the label never fails
// merely for running in a container.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "algos/pagerank.hpp"
#include "common/minijson.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "runtime/affinity.hpp"
#include "runtime/hwprof.hpp"
#include "runtime/numa_audit.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/trace.hpp"

namespace hipa {
namespace {

using algo::Method;
using runtime::HwCounters;
using runtime::HwProf;
using runtime::Telemetry;

graph::Graph test_graph(std::uint64_t seed, vid_t n = 2000,
                        eid_t m = 16000) {
  return graph::build_graph(
      n, graph::generate_zipf({.num_vertices = n, .num_edges = m,
                               .seed = seed}));
}

bool bitwise_equal(const std::vector<rank_t>& a,
                   const std::vector<rank_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(rank_t)) == 0);
}

/// RAII: install a perf_event_open override, restore the real syscall
/// on scope exit even when an assertion fires.
struct OverrideGuard {
  explicit OverrideGuard(runtime::PerfEventOpenFn fn) {
    runtime::set_perf_event_open_override(fn);
  }
  ~OverrideGuard() { runtime::set_perf_event_open_override(nullptr); }
};

long deny_eacces(perf_event_attr*, int, int, int, unsigned long) {
  return -EACCES;
}
long deny_enosys(perf_event_attr*, int, int, int, unsigned long) {
  return -ENOSYS;
}

algo::RunResult run_hipa(const graph::Graph& g, HwProf hw,
                         Telemetry tel = Telemetry::kOn,
                         const std::string& trace = {}) {
  algo::MethodParams params;
  params.threads = 2;
  params.pr.iterations = 3;
  params.pr.telemetry = tel;
  params.pr.hw_counters = hw;
  params.pr.trace_path = trace;
  return algo::run_method_native(Method::kHipa, g, params);
}

// ---- HwCounters arithmetic -------------------------------------------------

TEST(HwCounters, AddAccumulatesEveryField) {
  HwCounters a;
  a.cycles = 10;
  a.instructions = 20;
  a.llc_loads = 3;
  a.llc_load_misses = 1;
  a.node_loads = 5;
  a.node_load_misses = 2;
  a.time_enabled_ns = 100;
  a.time_running_ns = 50;
  HwCounters b = a;
  b.add(a);
  EXPECT_EQ(b.cycles, 20u);
  EXPECT_EQ(b.instructions, 40u);
  EXPECT_EQ(b.llc_loads, 6u);
  EXPECT_EQ(b.llc_load_misses, 2u);
  EXPECT_EQ(b.node_loads, 10u);
  EXPECT_EQ(b.node_load_misses, 4u);
  EXPECT_EQ(b.time_enabled_ns, 200u);
  EXPECT_EQ(b.time_running_ns, 100u);
}

TEST(HwCounters, RatiosHandleZeroDenominators) {
  HwCounters c;
  EXPECT_DOUBLE_EQ(c.multiplex_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
  c.cycles = 100;
  c.instructions = 250;
  c.time_enabled_ns = 200;
  c.time_running_ns = 100;
  EXPECT_DOUBLE_EQ(c.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(c.multiplex_ratio(), 0.5);
}

TEST(HwProfEvents, NamesCoverEveryIndex) {
  std::set<std::string> seen;
  for (unsigned e = 0; e < runtime::kNumHwEvents; ++e) {
    const char* name = runtime::hw_event_name(e);
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(seen.count("cycles"), 1u);
}

// ---- soft degradation through the syscall seam -----------------------------

TEST(HwProfDegrade, EaccesLeavesGroupClosedWithErrno) {
  OverrideGuard guard(&deny_eacces);
  const std::uint64_t before = runtime::perf_event_open_attempts();
  runtime::HwProfiler prof;
  prof.reset(2, /*enable=*/true);
  ASSERT_TRUE(prof.enabled());
  HwCounters into;
  runtime::HwSection<true> sec(prof, 0);
  sec.finish(into);  // must be a no-op, not a crash
  EXPECT_FALSE(prof.any_open());
  EXPECT_EQ(prof.open_threads(), 0u);
  EXPECT_EQ(prof.event_mask(), 0u);
  EXPECT_EQ(prof.group(0).last_errno(), EACCES);
  EXPECT_EQ(into.cycles, 0u);
  // The leader open was attempted exactly once for this thread (the
  // failed_ latch suppresses per-call retries).
  EXPECT_GT(runtime::perf_event_open_attempts(), before);
}

TEST(HwProfDegrade, EnosysLeavesGroupClosedWithErrno) {
  OverrideGuard guard(&deny_enosys);
  runtime::HwProfiler prof;
  prof.reset(1, /*enable=*/true);
  HwCounters snap;
  EXPECT_FALSE(prof.group(0).begin(snap));
  EXPECT_FALSE(prof.group(0).open());
  EXPECT_EQ(prof.group(0).last_errno(), ENOSYS);
}

TEST(HwProfDegrade, FailedOpenDoesNotRetryEveryCall) {
  OverrideGuard guard(&deny_eacces);
  runtime::HwProfiler prof;
  prof.reset(1, /*enable=*/true);
  HwCounters snap;
  EXPECT_FALSE(prof.group(0).begin(snap));
  const std::uint64_t after_first = runtime::perf_event_open_attempts();
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(prof.group(0).begin(snap));
  }
  EXPECT_EQ(runtime::perf_event_open_attempts(), after_first);
}

TEST(HwProfDegrade, EngineRunCompletesWithIdenticalRanksUnderDeniedPmu) {
  const graph::Graph g = test_graph(1201);
  // Reference: hw collection off entirely.
  const auto off = run_hipa(g, HwProf::kOff);
  {
    OverrideGuard guard(&deny_eacces);
    const auto denied = run_hipa(g, HwProf::kOn);
    EXPECT_FALSE(denied.report.telemetry.hw_available);
    EXPECT_EQ(denied.report.telemetry.hw_threads, 0u);
    EXPECT_EQ(denied.report.telemetry.hw_errno, EACCES);
    EXPECT_TRUE(bitwise_equal(off.ranks, denied.ranks));
    // Degraded counters stay zero in every phase.
    for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
      const auto& agg =
          denied.report.telemetry[static_cast<runtime::Phase>(pi)];
      EXPECT_EQ(agg.hw.cycles, 0u);
      EXPECT_EQ(agg.hw.instructions, 0u);
    }
  }
  {
    OverrideGuard guard(&deny_enosys);
    const auto denied = run_hipa(g, HwProf::kOn);
    EXPECT_FALSE(denied.report.telemetry.hw_available);
    EXPECT_TRUE(bitwise_equal(off.ranks, denied.ranks));
  }
}

// ---- the off path makes zero perf_event_open calls -------------------------

TEST(HwProfOffPath, UninstrumentedRunMakesZeroSyscalls) {
  const graph::Graph g = test_graph(1202);
  // Warm everything unrelated (thread team, allocation) once.
  (void)run_hipa(g, HwProf::kOff, Telemetry::kOff);
  const std::uint64_t before = runtime::perf_event_open_attempts();
  const auto res = run_hipa(g, HwProf::kOff, Telemetry::kOff);
  EXPECT_EQ(runtime::perf_event_open_attempts(), before)
      << "kOff run reached perf_event_open — the if constexpr guard "
         "is broken";
  EXPECT_FALSE(res.report.telemetry.enabled);
}

TEST(HwProfOffPath, TelemetryOnHwOffStillMakesZeroSyscalls) {
  const graph::Graph g = test_graph(1203);
  const std::uint64_t before = runtime::perf_event_open_attempts();
  (void)run_hipa(g, HwProf::kOff, Telemetry::kOn);
  EXPECT_EQ(runtime::perf_event_open_attempts(), before);
}

// ---- real PMU (gated) ------------------------------------------------------

TEST(HwProfReal, CountsCyclesWhenPmuAccessible) {
  const graph::Graph g = test_graph(1204);
  const auto res = run_hipa(g, HwProf::kOn);
  if (!res.report.telemetry.hw_available) {
    GTEST_SKIP() << "PMU inaccessible (errno "
                 << res.report.telemetry.hw_errno
                 << "); see perf_event_paranoid";
  }
  EXPECT_GT(res.report.telemetry.hw_threads, 0u);
  EXPECT_NE(res.report.telemetry.hw_event_mask & runtime::kHwCycles, 0u);
  HwCounters total;
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    total.add(res.report.telemetry[static_cast<runtime::Phase>(pi)].hw);
  }
  EXPECT_GT(total.cycles, 0u);
  EXPECT_GT(total.time_enabled_ns, 0u);
}

// ---- Chrome trace ----------------------------------------------------------

json::ValuePtr parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return nullptr;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string err;
  json::ValuePtr v = json::parse(std::move(text), &err);
  EXPECT_NE(v, nullptr) << err;
  return v;
}

TEST(ChromeTrace, WriterEmitsStructurallyValidTraceEvents) {
  runtime::PhaseTimeline tl;
  tl.reset(2);
  tl.enable_spans();
  tl.record_span(0, runtime::Phase::kScatter, runtime::SpanKind::kKernel,
                 0.001, 0.002);
  tl.record_span(1, runtime::Phase::kGather, runtime::SpanKind::kBarrier,
                 0.004, 0.0005);
  tl.record_iteration(0.005);

  const std::string path =
      testing::TempDir() + "hipa_trace_writer_test.json";
  ASSERT_TRUE(trace::ChromeTraceWriter::write(path, tl, "unit"));
  const json::ValuePtr root = parse_file(path);
  ASSERT_NE(root, nullptr);
  ASSERT_TRUE(root->is(json::Value::Type::kObject));
  const json::Value* events = root->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(json::Value::Type::kArray));
  ASSERT_NE(root->find("displayTimeUnit"), nullptr);

  unsigned meta = 0;
  unsigned spans = 0;
  unsigned barriers = 0;
  unsigned instants = 0;
  for (const auto& e : events->array) {
    ASSERT_TRUE(e->is(json::Value::Type::kObject));
    const json::Value* ph = e->find("ph");
    ASSERT_NE(ph, nullptr);
    const json::Value* name = e->find("name");
    ASSERT_NE(name, nullptr);
    if (ph->str == "M") {
      ++meta;
    } else if (ph->str == "X") {
      const json::Value* ts = e->find("ts");
      const json::Value* dur = e->find("dur");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(ts->number, 0.0);
      EXPECT_GE(dur->number, 0.0);
      if (name->str.rfind("barrier:", 0) == 0) {
        ++barriers;
      } else {
        ++spans;
      }
    } else if (ph->str == "i") {
      ++instants;
    }
  }
  EXPECT_GE(meta, 3u);  // process_name + 2x thread_name (+ sort keys)
  EXPECT_EQ(spans, 1u);
  EXPECT_EQ(barriers, 1u);
  EXPECT_EQ(instants, 1u);
}

TEST(ChromeTrace, EngineTracePathProducesPerThreadPhaseSpans) {
  const graph::Graph g = test_graph(1205);
  const std::string path = testing::TempDir() + "hipa_engine_trace.json";
  const auto res = run_hipa(g, HwProf::kOff, Telemetry::kOff, path);
  ASSERT_FALSE(res.ranks.empty());

  const json::ValuePtr root = parse_file(path);
  ASSERT_NE(root, nullptr);
  const json::Value* events = root->find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<double> span_tids;
  std::set<std::string> span_names;
  bool process_named = false;
  for (const auto& e : events->array) {
    const json::Value* ph = e->find("ph");
    const json::Value* name = e->find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->str == "M" && name->str == "process_name") {
      const json::Value* args = e->find("args");
      ASSERT_NE(args, nullptr);
      const json::Value* pname = args->find("name");
      ASSERT_NE(pname, nullptr);
      EXPECT_EQ(pname->str, "HiPa");
      process_named = true;
    }
    if (ph->str == "X") {
      const json::Value* tid = e->find("tid");
      ASSERT_NE(tid, nullptr);
      span_tids.insert(tid->number);
      span_names.insert(name->str);
    }
  }
  EXPECT_TRUE(process_named);
  // Both worker threads produced kernel spans, covering scatter and
  // gather at minimum (init runs once; barriers ride along).
  EXPECT_EQ(span_tids.size(), 2u);
  EXPECT_EQ(span_names.count("scatter"), 1u);
  EXPECT_EQ(span_names.count("gather"), 1u);
}

// ---- numa_maps parsing -----------------------------------------------------

TEST(NumaMaps, ParsesNodeCountsAndPageSize) {
  const char* text =
      "7f0000000000 default anon=5 dirty=5 N0=3 N1=2 kernelpagesize_kB=4\n"
      "7f0000800000 interleave:0-1 file=/lib/x.so mapped=2 N0=2\n"
      "555500000000 default stack anon=1 N1=1 kernelpagesize_kB=2048\n";
  const auto vmas = numa::parse_numa_maps(text);
  ASSERT_EQ(vmas.size(), 3u);
  // Sorted by start address.
  EXPECT_EQ(vmas[0].start, 0x555500000000ULL);
  EXPECT_EQ(vmas[1].start, 0x7f0000000000ULL);
  EXPECT_EQ(vmas[2].start, 0x7f0000800000ULL);
  ASSERT_EQ(vmas[1].node_pages.size(), 2u);
  EXPECT_EQ(vmas[1].node_pages[0], 3u);
  EXPECT_EQ(vmas[1].node_pages[1], 2u);
  EXPECT_EQ(vmas[1].total_pages(), 5u);
  EXPECT_EQ(vmas[1].kernel_page_bytes, 4096u);
  EXPECT_EQ(vmas[0].kernel_page_bytes, 2048u * 1024u);
  ASSERT_EQ(vmas[2].node_pages.size(), 1u);
  EXPECT_EQ(vmas[2].node_pages[0], 2u);
}

TEST(NumaMaps, SkipsMalformedLinesAndHandlesEmpty) {
  EXPECT_TRUE(numa::parse_numa_maps("").empty());
  const char* text =
      "not-an-address default N0=1\n"
      "\n"
      "7f0000000000 default N0=zz N1=4\n";  // N0 bad value -> ignored
  const auto vmas = numa::parse_numa_maps(text);
  ASSERT_EQ(vmas.size(), 1u);
  ASSERT_EQ(vmas[0].node_pages.size(), 2u);
  EXPECT_EQ(vmas[0].node_pages[0], 0u);
  EXPECT_EQ(vmas[0].node_pages[1], 4u);
}

// ---- placement audit -------------------------------------------------------

TEST(PlacementAudit, FractionsAndMinFraction) {
  numa::BufferAudit b;
  EXPECT_DOUBLE_EQ(b.fraction_on_node(), 0.0);  // nothing resident
  b.pages_on_node = 3;
  b.pages_elsewhere = 1;
  b.pages_unmapped = 4;  // excluded from the fraction
  EXPECT_DOUBLE_EQ(b.fraction_on_node(), 0.75);

  numa::PlacementAudit audit;
  EXPECT_DOUBLE_EQ(audit.min_fraction(), 1.0);
  audit.buffers.push_back(b);
  numa::BufferAudit perfect;
  perfect.pages_on_node = 8;
  audit.buffers.push_back(perfect);
  EXPECT_DOUBLE_EQ(audit.min_fraction(), 0.75);
}

TEST(PlacementAudit, EmptyAuditorReportsUnavailable) {
  const numa::PlacementAuditor auditor;
  const numa::PlacementAudit audit = auditor.audit();
  EXPECT_FALSE(audit.available);
  EXPECT_TRUE(audit.buffers.empty());
}

TEST(PlacementAudit, SingleNodeHostDegradesToUnavailable) {
  if (runtime::topology().num_nodes() >= 2) {
    GTEST_SKIP() << "multi-node host; covered by the gated NUMA test";
  }
  std::vector<char> buf(64 * 1024, 1);
  numa::PlacementAuditor auditor;
  auditor.add("buf", buf.data(), buf.size(), 0);
  EXPECT_EQ(auditor.num_buffers(), 1u);
  const numa::PlacementAudit audit = auditor.audit();
  EXPECT_FALSE(audit.available);  // nothing to audit with one node
}

TEST(PlacementAudit, SubPageRangeAuditsZeroPages) {
  numa::PlacementAuditor auditor;
  char tiny[16];
  auditor.add("tiny", tiny, sizeof(tiny), 0);
  EXPECT_EQ(auditor.num_buffers(), 1u);  // recorded, pages_total == 0
}

/// The paper's acceptance criterion: on a real multi-node machine the
/// NUMA-aware engine's attribute slices must be >=90% resident on
/// their owning node. Skips (never fails) on single-node hosts, and
/// only enforces the strict bound with page-granular data.
TEST(PlacementAudit, NativeHipaAttributesLandOnOwningNode) {
  const unsigned nodes = runtime::topology().num_nodes();
  if (nodes < 2) {
    GTEST_SKIP() << "single NUMA node; placement cannot be audited";
  }
  const graph::Graph g = test_graph(1206, 20000, 160000);
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(
      std::max(2u, runtime::available_cpus()), nodes, 64 * 1024);
  engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
  engine::PageRankOptions pr;
  pr.iterations = 2;
  pr.audit_placement = true;
  const auto res = eng.run(pr);
  const numa::PlacementAudit& pa = res.report.placement_audit;
  ASSERT_TRUE(pa.available);
  ASSERT_FALSE(pa.buffers.empty());
  if (!pa.page_granular) {
    GTEST_SKIP() << "only VMA-proportional numa_maps data (source "
                 << pa.source << "); strict bound needs move_pages";
  }
  for (const numa::BufferAudit& b : pa.buffers) {
    if (b.pages_on_node + b.pages_elsewhere == 0) continue;  // unfaulted
    EXPECT_GE(b.fraction_on_node(), 0.9)
        << b.name << " intended node " << b.intended_node;
  }
}

// ---- engine surface defaults ----------------------------------------------

TEST(PlacementAudit, ReportDefaultsToUnavailableWhenNotRequested) {
  const graph::Graph g = test_graph(1207);
  const auto res = run_hipa(g, HwProf::kOff, Telemetry::kOff);
  EXPECT_FALSE(res.report.placement_audit.available);
  EXPECT_TRUE(res.report.placement_audit.buffers.empty());
}

}  // namespace
}  // namespace hipa
