// Memory & synchronization substrate: the partitioned NUMA arena
// (runtime/arena) and the topology-aware two-level TreeBarrier
// (runtime/barrier). These suites carry the `substrate` and `tsan`
// ctest labels — run them under the sanitize-thread preset to prove
// the tree barrier protocol racefree.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "algos/pagerank.hpp"
#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "runtime/affinity.hpp"
#include "runtime/arena.hpp"
#include "runtime/barrier.hpp"
#include "runtime/numa_audit.hpp"
#include "runtime/thread_pool.hpp"

namespace hipa {
namespace {

// ---- arena: allocation mechanics -------------------------------------------

TEST(Arena, AllocationsArePageAlignedAndDisjoint) {
  runtime::NumaArena arena;
  void* a = arena.allocate(100, runtime::ArenaPlacement::kFirstTouch);
  void* b = arena.allocate(kPageSize + 1, runtime::ArenaPlacement::kNode, 0);
  void* c = arena.allocate(64, runtime::ArenaPlacement::kInterleave);
  for (void* p : {a, b, c}) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kPageSize, 0u);
    EXPECT_TRUE(arena.owns(p));
  }
  // Write through every allocation at its full size: overlap or a
  // short mapping would corrupt a neighbour or fault.
  std::memset(a, 0xa1, 100);
  std::memset(b, 0xb2, kPageSize + 1);
  std::memset(c, 0xc3, 64);
  EXPECT_EQ(static_cast<unsigned char*>(a)[99], 0xa1);
  EXPECT_EQ(static_cast<unsigned char*>(b)[kPageSize], 0xb2);
  EXPECT_EQ(static_cast<unsigned char*>(c)[63], 0xc3);
}

TEST(Arena, CustomAlignmentRespected) {
  runtime::NumaArena arena;
  for (std::size_t align : {std::size_t{64}, std::size_t{256}, kPageSize,
                            2 * kPageSize}) {
    void* p = arena.allocate(align * 3, runtime::ArenaPlacement::kFirstTouch,
                             0, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
  EXPECT_THROW(
      (void)arena.allocate(64, runtime::ArenaPlacement::kFirstTouch, 0, 48),
      Error)
      << "non-power-of-two alignment must be rejected";
}

TEST(Arena, ZeroBytesReturnsNull) {
  runtime::NumaArena arena;
  EXPECT_EQ(arena.allocate(0, runtime::ArenaPlacement::kFirstTouch), nullptr);
  AlignedBuffer<int> buf =
      arena.alloc_buffer<int>(0, runtime::ArenaPlacement::kFirstTouch);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Arena, NodeParameterWrapsModulo) {
  runtime::ArenaOptions opt;
  opt.num_nodes = 2;
  runtime::NumaArena arena(opt);
  ASSERT_EQ(arena.num_nodes(), 2u);
  (void)arena.allocate(kPageSize, runtime::ArenaPlacement::kNode, 5);
  const runtime::ArenaStats s = arena.stats();
  // node 5 % 2 == 1: the bytes must land in node1's region.
  EXPECT_GE(s.node_bytes(1), kPageSize);
  EXPECT_EQ(s.node_bytes(0), 0u);
}

TEST(Arena, StatsTrackUsageAndRegions) {
  runtime::ArenaOptions opt;
  opt.num_nodes = 2;
  runtime::NumaArena arena(opt);
  (void)arena.allocate(3 * kPageSize, runtime::ArenaPlacement::kNode, 0);
  (void)arena.allocate(kPageSize, runtime::ArenaPlacement::kNode, 1);
  (void)arena.allocate(kPageSize, runtime::ArenaPlacement::kInterleave);
  (void)arena.allocate(100, runtime::ArenaPlacement::kFirstTouch);

  const runtime::ArenaStats s = arena.stats();
  // Regions: node0, node1, interleave, first-touch.
  ASSERT_EQ(s.regions.size(), 4u);
  EXPECT_EQ(s.regions[0].label, "node0");
  EXPECT_EQ(s.regions[1].label, "node1");
  EXPECT_EQ(s.regions[2].label, "interleave");
  EXPECT_EQ(s.regions[3].label, "first-touch");
  EXPECT_GE(s.node_bytes(0), 3 * kPageSize);
  EXPECT_GE(s.node_bytes(1), kPageSize);
  EXPECT_EQ(s.fallback_allocations, 0u);
  EXPECT_GE(s.total_used(), 5 * kPageSize + 100);
  for (const runtime::ArenaRegionStats& r : s.regions) {
    EXPECT_LE(r.used_bytes, r.reserved_bytes) << r.label;
  }
  // Allocations counted on the regions actually used.
  EXPECT_EQ(s.regions[0].allocations, 1u);
  EXPECT_EQ(s.regions[2].allocations, 1u);
}

TEST(Arena, RegionCapFallsBackToHeap) {
  runtime::ArenaOptions opt;
  opt.num_nodes = 1;
  opt.initial_slab_bytes = 4 * kPageSize;
  opt.max_slab_bytes = 4 * kPageSize;
  opt.max_region_bytes = 4 * kPageSize;  // one slab, then exhaustion
  runtime::NumaArena arena(opt);

  void* in = arena.allocate(2 * kPageSize, runtime::ArenaPlacement::kNode, 0);
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(arena.owns(in));

  // Larger than the region can ever hold: served by the heap, still
  // page-aligned and writable, counted as a fallback, NOT owned.
  AlignedBuffer<std::uint8_t> big = arena.alloc_buffer<std::uint8_t>(
      16 * kPageSize, runtime::ArenaPlacement::kNode, 0);
  ASSERT_NE(big.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.data()) % kPageSize, 0u);
  EXPECT_FALSE(arena.owns(big.data()));
  big.fill_zero();
  big.data()[16 * kPageSize - 1] = 0x5a;

  const runtime::ArenaStats s = arena.stats();
  EXPECT_EQ(s.fallback_allocations, 1u);
  EXPECT_GE(s.fallback_bytes, 16 * kPageSize);
  // The fallback buffer frees itself (reset is NOT a no-op there).
  big.reset();
  EXPECT_EQ(big.data(), nullptr);
}

TEST(Arena, BufferResetIsNoOpForArenaMemory) {
  runtime::NumaArena arena;
  AlignedBuffer<int> buf =
      arena.alloc_buffer<int>(1024, runtime::ArenaPlacement::kFirstTouch);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_TRUE(arena.owns(buf.data()));
  buf.fill_zero();
  buf.data()[0] = 7;
  buf.reset();  // must not free arena storage
  EXPECT_EQ(buf.data(), nullptr);
  // The arena still owns the slab; a fresh allocation keeps working.
  AlignedBuffer<int> again =
      arena.alloc_buffer<int>(16, runtime::ArenaPlacement::kFirstTouch);
  again.fill_zero();
  EXPECT_TRUE(arena.owns(again.data()));
}

TEST(Arena, ConcurrentAllocationIsSafe) {
  runtime::NumaArena arena;
  constexpr unsigned kThreads = 4;
  constexpr unsigned kAllocs = 64;
  std::vector<std::vector<void*>> got(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &got, t] {
      for (unsigned i = 0; i < kAllocs; ++i) {
        void* p = arena.allocate(
            kPageSize, runtime::ArenaPlacement::kNode, t % 2);
        std::memset(p, static_cast<int>(t), kPageSize);
        got[t].push_back(p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // All distinct, all owned.
  std::vector<void*> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  for (void* p : all) EXPECT_TRUE(arena.owns(p));
}

// ---- arena: placement audit -------------------------------------------------

TEST(Arena, RegistersNodeRegionsWithAuditor) {
  runtime::ArenaOptions opt;
  opt.num_nodes = 2;
  runtime::NumaArena arena(opt);
  void* p0 = arena.allocate(4 * kPageSize, runtime::ArenaPlacement::kNode, 0);
  void* p1 = arena.allocate(2 * kPageSize, runtime::ArenaPlacement::kNode, 1);
  std::memset(p0, 1, 4 * kPageSize);
  std::memset(p1, 2, 2 * kPageSize);
  // Interleave/first-touch spans carry no single intended node and
  // must NOT register.
  (void)arena.allocate(kPageSize, runtime::ArenaPlacement::kInterleave);

  numa::PlacementAuditor auditor;
  arena.register_with(auditor);
  // Registration is host-independent: exactly the two used node-bound
  // slabs, named under the arena prefix.
  ASSERT_EQ(auditor.num_buffers(), 2u);
  const numa::PlacementAudit audit = auditor.audit();
  if (!audit.available) {
    // Single-node host or denied syscalls: the degradation contract is
    // available=false with no vacuous per-buffer rows.
    GTEST_SKIP() << "page-placement audit unavailable on this host";
  }
  ASSERT_EQ(audit.buffers.size(), 2u);
  for (const numa::BufferAudit& b : audit.buffers) {
    EXPECT_TRUE(b.name.rfind("arena[", 0) == 0) << b.name;
  }
  if (runtime::topology().num_nodes() < 2) {
    // Forced 2-region arena on a 1-node host: node-1 pages land where
    // the host has memory; locality is not meaningful here.
    return;
  }
  // Real NUMA: the acceptance bar — >= 90% of arena pages node-local.
  EXPECT_GE(audit.min_fraction(), 0.9);
}

// ---- arena: hot-path bypass audit -------------------------------------------

TEST(Arena, HotPathGuardFlagsBypassingAllocations) {
  // Arena allocations under a guard are clean...
  runtime::NumaArena arena;
  const std::uint64_t before = runtime::hot_path_bypass_count();
  {
    runtime::HotPathGuard guard;
    AlignedBuffer<int> ok =
        arena.alloc_buffer<int>(2048, runtime::ArenaPlacement::kFirstTouch);
    ok.fill_zero();
    // ...and so are small-alignment allocations (no placement intent).
    AlignedBuffer<int> small(64, kCacheLine);
    small.fill_zero();
  }
  EXPECT_EQ(runtime::hot_path_bypass_count(), before);

  // A page-aligned allocation bypassing the arena while the guard is
  // live is counted — and raises in assertion-enabled builds.
  {
    runtime::HotPathGuard guard;
#ifndef NDEBUG
    EXPECT_THROW((AlignedBuffer<int>(4096, kPageSize)), Error);
#else
    AlignedBuffer<int> leak(4096, kPageSize);
    leak.fill_zero();
#endif
  }
  EXPECT_EQ(runtime::hot_path_bypass_count(), before + 1);

  // Outside any guard: plain page-aligned allocation is fine (cold
  // path), nothing is counted.
  AlignedBuffer<int> cold(4096, kPageSize);
  cold.fill_zero();
  EXPECT_EQ(runtime::hot_path_bypass_count(), before + 1);
}

// ---- tree barrier: construction --------------------------------------------

TEST(TreeBarrier, RejectsEmptyAndSparseGroups) {
  EXPECT_THROW(runtime::TreeBarrier(std::vector<unsigned>{}), Error);
  // Group 1 empty (tids map to 0 and 2): leaves must be dense.
  EXPECT_THROW(runtime::TreeBarrier({0, 2, 0, 2}), Error);
}

TEST(TreeBarrier, CountsThreadsAndGroups) {
  const runtime::TreeBarrier b({0, 0, 1, 1, 2});
  EXPECT_EQ(b.num_threads(), 5u);
  EXPECT_EQ(b.num_groups(), 3u);
}

// ---- tree barrier: protocol stress ------------------------------------------

/// Run `threads` workers through `iters` crossings of `barrier`,
/// validating after each crossing that every worker reached it (the
/// classic stale-slot check: a broken release lets a late worker read
/// its own previous value).
void stress_tree(const std::vector<unsigned>& groups, int iters) {
  runtime::TreeBarrier barrier(groups);
  const unsigned threads = barrier.num_threads();
  std::vector<std::uint64_t> slot(threads, 0);
  std::atomic<bool> failed{false};
  runtime::fork_join_run(threads, [&](unsigned t) {
    bool sense = false;
    for (int it = 0; it < iters; ++it) {
      slot[t] = static_cast<std::uint64_t>(it) + 1;
      barrier.arrive_and_wait(t, sense);
      for (unsigned u = 0; u < threads; ++u) {
        if (slot[u] != static_cast<std::uint64_t>(it) + 1) {
          failed.store(true);
        }
      }
      barrier.arrive_and_wait(t, sense);
    }
  });
  EXPECT_FALSE(failed.load()) << "groups=" << groups.size() << " elements";
}

TEST(TreeBarrier, StressTwoBalancedGroups) {
  stress_tree({0, 0, 1, 1}, 2000);
}

TEST(TreeBarrier, StressUnbalancedGroups) {
  // 1 + 3 + 2: representative election must work for singleton leaves.
  stress_tree({0, 1, 1, 1, 2, 2}, 1000);
}

TEST(TreeBarrier, StressManyGroups) {
  stress_tree({0, 1, 2, 3, 4, 5, 6, 7}, 1000);  // every leaf a singleton
}

TEST(TreeBarrier, StressSingleGroupDegeneratesToFlat) {
  stress_tree({0, 0, 0, 0}, 2000);  // root has one leaf
}

TEST(TreeBarrier, OversubscribedSurvives) {
  // More threads than cores: the spin loops must yield, not livelock.
  const unsigned n = 4 * std::max(1u, runtime::available_cpus());
  std::vector<unsigned> groups(n);
  for (unsigned t = 0; t < n; ++t) groups[t] = t % 2;
  std::sort(groups.begin(), groups.end());  // dense blocks
  stress_tree(groups, 200);
}

// ---- tree barrier: engine equivalence ---------------------------------------

/// Flat vs tree barrier must not change a single bit of any engine's
/// output: the barrier shape orders the same thread-local work either
/// way. Runs every methodology natively at a fixed thread count.
TEST(TreeBarrier, RanksBitwiseIdenticalAcrossEngines) {
  auto edges = graph::generate_rmat({.scale = 10, .edge_factor = 8});
  const graph::Graph g = graph::build_graph(1u << 10, edges, {});
  for (algo::Method m : algo::all_methods()) {
    algo::MethodParams params;
    params.threads = 4;
    params.pr.iterations = 3;
    params.pr.barrier = runtime::BarrierKind::kFlat;
    const auto flat = algo::run_method_native(m, g, params);
    params.pr.barrier = runtime::BarrierKind::kTree;
    const auto tree = algo::run_method_native(m, g, params);
    ASSERT_EQ(flat.ranks.size(), tree.ranks.size());
    EXPECT_EQ(algo::l1_distance(flat.ranks, tree.ranks), 0.0)
        << algo::method_name(m) << ": tree barrier changed the ranks";
  }
}

TEST(TreeBarrier, ForcedTreeSingleThreadFallsBackFlat) {
  // threads < 2 cannot form two leaves: kTree must degrade, not hang.
  auto edges = graph::generate_erdos_renyi(512, 4096, 11);
  const graph::Graph g = graph::build_graph(512, edges, {});
  algo::MethodParams params;
  params.threads = 1;
  params.pr.iterations = 2;
  params.pr.barrier = runtime::BarrierKind::kTree;
  const auto res = algo::run_method_native(algo::Method::kHipa, g, params);
  EXPECT_EQ(res.report.iterations, 2u);
}

// ---- arena: engine integration ----------------------------------------------

TEST(Arena, EngineRunReportCarriesArenaStats) {
  auto edges = graph::generate_zipf(
      {.num_vertices = 2048, .num_edges = 16384, .seed = 3});
  const graph::Graph g = graph::build_graph(2048, edges, {});
  algo::MethodParams params;
  params.threads = 2;
  params.pr.iterations = 2;
  const auto res = algo::run_method_native(algo::Method::kHipa, g, params);
  const runtime::ArenaStats& s = res.report.arena;
  ASSERT_FALSE(s.regions.empty())
      << "native engine run must allocate through the arena";
  // The attribute arrays (rank, scaled rank, accumulator) alone exceed
  // 3 * n * sizeof(rank_t).
  EXPECT_GE(s.total_used(), 3u * 2048u * sizeof(rank_t));
}

}  // namespace
}  // namespace hipa
