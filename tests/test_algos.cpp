// Tests for the algorithm front door: reference PageRank semantics,
// rank utilities, runner defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algos/pagerank.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace hipa::algo {
namespace {

TEST(Reference, UniformOnSymmetricCycle) {
  // Directed 4-cycle: perfectly symmetric, ranks stay uniform.
  const graph::Graph g =
      graph::build_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto ranks = pagerank_reference(g, 30);
  for (rank_t r : ranks) EXPECT_NEAR(r, 0.25f, 1e-5f);
}

TEST(Reference, SinkAccumulatesRank) {
  // Star into vertex 0: 0 must outrank the leaves.
  const graph::Graph g =
      graph::build_graph(4, {{1, 0}, {2, 0}, {3, 0}});
  const auto ranks = pagerank_reference(g, 20);
  EXPECT_GT(ranks[0], ranks[1]);
  EXPECT_FLOAT_EQ(ranks[1], ranks[2]);
}

TEST(Reference, DampingZeroGivesUniform) {
  const graph::Graph g =
      graph::build_graph(3, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
  const auto ranks = pagerank_reference(g, 10, 0.0f);
  for (rank_t r : ranks) EXPECT_NEAR(r, 1.0f / 3.0f, 1e-6f);
}

TEST(Reference, MassConservedWithoutDanglers) {
  // Every vertex has out-degree >= 1 => total rank stays 1.
  const graph::Graph g = graph::build_graph(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}});
  const auto ranks = pagerank_reference(g, 25);
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(Reference, ConvergesTowardFixpoint) {
  const graph::Graph g = graph::build_graph(
      500, graph::generate_zipf({.num_vertices = 500,
                                 .num_edges = 4000,
                                 .seed = 4}));
  const auto a = pagerank_reference(g, 40);
  const auto b = pagerank_reference(g, 41);
  EXPECT_LT(l1_distance(a, b), 1e-4);
}

TEST(L1Distance, BasicProperties) {
  const std::vector<rank_t> a = {1.0f, 2.0f};
  const std::vector<rank_t> b = {1.5f, 1.0f};
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
  EXPECT_NEAR(l1_distance(a, b), 1.5, 1e-7);
}

TEST(TopK, OrdersByRankThenId) {
  const std::vector<rank_t> ranks = {0.1f, 0.5f, 0.5f, 0.9f, 0.2f};
  const auto top = top_k(ranks, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);  // tie with 2, smaller id wins
  EXPECT_EQ(top[2], 2u);
}

TEST(TopK, KLargerThanSize) {
  const std::vector<rank_t> ranks = {0.3f, 0.7f};
  const auto top = top_k(ranks, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
}

TEST(Methods, NamesAndEnumeration) {
  EXPECT_EQ(all_methods().size(), 5u);
  EXPECT_STREQ(method_name(Method::kHipa), "HiPa");
  EXPECT_STREQ(method_name(Method::kPolymer), "Polymer");
}

TEST(Methods, DefaultThreadsMatchPaper) {
  const auto topo = sim::Topology::skylake_2s();
  EXPECT_EQ(default_threads(Method::kHipa, topo), 40u);
  EXPECT_EQ(default_threads(Method::kVpr, topo), 40u);
  EXPECT_EQ(default_threads(Method::kPolymer, topo), 40u);
  EXPECT_EQ(default_threads(Method::kPpr, topo), 16u);
  EXPECT_EQ(default_threads(Method::kGpop, topo), 20u);
}

TEST(Methods, DefaultPartitionBytesMatchPaper) {
  EXPECT_EQ(default_partition_bytes(Method::kHipa, 1), 256u * 1024u);
  EXPECT_EQ(default_partition_bytes(Method::kPpr, 1), 256u * 1024u);
  EXPECT_EQ(default_partition_bytes(Method::kGpop, 1), 1024u * 1024u);
  EXPECT_EQ(default_partition_bytes(Method::kVpr, 1), 0u);
  // Scaling divides consistently.
  EXPECT_EQ(default_partition_bytes(Method::kHipa, 8), 32u * 1024u);
}

TEST(Reference, RejectsEmptyGraph) {
  graph::Graph g;
  EXPECT_THROW(pagerank_reference(g, 1), Error);
}

}  // namespace
}  // namespace hipa::algo
