// Tests for the synthetic generators and dataset stand-ins: size,
// determinism, skew properties.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace hipa::graph {
namespace {

TEST(Rmat, SizeAndDeterminism) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const auto a = generate_rmat(p);
  const auto b = generate_rmat(p);
  EXPECT_EQ(a.size(), (1u << 10) * 8u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  for (const Edge& e : a) {
    EXPECT_LT(e.src, 1u << 10);
    EXPECT_LT(e.dst, 1u << 10);
  }
}

TEST(Rmat, SeedChangesOutput) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 4;
  const auto a = generate_rmat(p);
  p.seed = 43;
  const auto b = generate_rmat(p);
  EXPECT_NE(a, b);
}

TEST(Rmat, IsSkewed) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  const CsrGraph g = build_csr(1u << 12, generate_rmat(p));
  const DegreeStats s = degree_stats(g);
  // R-MAT with Graph500 parameters is strongly skewed: far fewer than
  // 40% of vertices cover 90% of edges.
  EXPECT_LT(s.skew_vertex_fraction_for_90pct_edges, 0.4);
  EXPECT_GT(s.max_degree, 4 * s.avg_degree);
}

TEST(ErdosRenyi, SizeAndRange) {
  const auto edges = generate_erdos_renyi(1000, 5000, 3);
  EXPECT_EQ(edges.size(), 5000u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 1000u);
    EXPECT_LT(e.dst, 1000u);
  }
}

TEST(ErdosRenyi, IsNotSkewed) {
  const CsrGraph g = build_csr(1 << 12, generate_erdos_renyi(1 << 12,
                                                             1 << 16, 5));
  const DegreeStats s = degree_stats(g);
  // Poisson-ish degrees: 90% of edges need most of the vertices.
  EXPECT_GT(s.skew_vertex_fraction_for_90pct_edges, 0.5);
}

TEST(ZipfSampler, RanksInRangeAndSkewed) {
  ZipfSampler sampler(1000, 2.0);
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t r = sampler.sample(rng);
    ASSERT_LT(r, 1000u);
    ++counts[r];
  }
  // Rank 0 must dominate rank 99 heavily under exponent 2.
  EXPECT_GT(counts[0], 20 * std::max<std::uint64_t>(counts[99], 1));
}

TEST(Zipf, GraphIsSkewedAndSized) {
  ZipfParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 16;
  const auto edges = generate_zipf(p);
  EXPECT_EQ(edges.size(), p.num_edges);
  const CsrGraph g = build_csr(p.num_vertices, edges);
  const CsrGraph in = g.transpose();
  const DegreeStats s = degree_stats(in);
  // Power-law-ish: clearly skewed, but no single vertex owns a constant
  // fraction of the edges (realistic alpha ~ 2.1).
  EXPECT_LT(s.skew_vertex_fraction_for_90pct_edges, 0.6);
  EXPECT_GT(s.max_degree, 20 * s.avg_degree);
  EXPECT_LT(s.max_degree, g.num_edges() / 10);
}

TEST(Zipf, Deterministic) {
  ZipfParams p;
  p.num_vertices = 1 << 10;
  p.num_edges = 1 << 12;
  EXPECT_EQ(generate_zipf(p), generate_zipf(p));
}

TEST(GridTorus, RegularDegrees) {
  const auto edges = generate_grid_torus(8);
  const CsrGraph g = build_csr(64, edges);
  EXPECT_EQ(g.num_edges(), 64u * 4u);
  for (vid_t v = 0; v < 64; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Datasets, AllSixNamed) {
  const auto& infos = paper_datasets();
  ASSERT_EQ(infos.size(), 6u);
  EXPECT_EQ(infos[0].name, "journal");
  EXPECT_EQ(infos[3].name, "kron");
  for (const auto& info : infos) {
    EXPECT_GT(info.paper_vertices, 0.0);
    EXPECT_GT(info.paper_edges, info.paper_vertices);
    EXPECT_GE(info.recommended_scale, 1u);
    EXPECT_EQ(recommended_scale(info.name), info.recommended_scale);
  }
}

TEST(Datasets, TinyVariantsBuild) {
  for (const auto& info : paper_datasets()) {
    const Graph g = make_tiny_dataset(info.name);
    EXPECT_GT(g.num_vertices(), 0u) << info.name;
    EXPECT_GT(g.num_edges(), g.num_vertices() / 2) << info.name;
    // Roughly 1/1024 of the paper sizes.
    EXPECT_LT(g.num_vertices(), info.paper_vertices / 256) << info.name;
  }
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("nope"), Error);
}

TEST(Datasets, ScaleDenomShrinks) {
  const Graph big = make_dataset("journal", 512);
  const Graph small = make_dataset("journal", 1024);
  EXPECT_GT(big.num_vertices(), small.num_vertices());
  EXPECT_GT(big.num_edges(), small.num_edges());
}

TEST(Datasets, StandInsAreSkewedLikeThePaper) {
  // All six paper graphs are power-law; the stand-ins must be too
  // (in-degree skew, since targets follow Zipf popularity).
  for (const auto& info : paper_datasets()) {
    const Graph g = make_dataset(info.name, 1024);
    const DegreeStats s = degree_stats(g.in);
    EXPECT_LT(s.skew_vertex_fraction_for_90pct_edges, 0.6) << info.name;
    EXPECT_GT(s.max_degree, 10 * s.avg_degree) << info.name;
  }
}

}  // namespace
}  // namespace hipa::graph
