// Tests for src/partition: edge-balanced splitting, cache-sized
// partitioning, and the full hierarchical plan (paper Eq. 2-4, Fig. 3),
// including property sweeps over random graphs.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/cache_partitions.hpp"
#include "partition/edge_balanced.hpp"
#include "partition/plan.hpp"

namespace hipa::part {
namespace {

using graph::build_csr;
using graph::build_graph;

TEST(SplitWeighted, CoversAndOrders) {
  const std::vector<std::uint64_t> w = {10, 10, 10, 15, 15, 30, 30};
  const auto b = split_weighted(w, 2);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 7u);
  EXPECT_LE(b[0], b[1]);
  EXPECT_LE(b[1], b[2]);
}

TEST(SplitWeighted, PaperFigure2Example) {
  // Fig. 2: partitions with 10,10,10,15,15,30,30 edges over 2 nodes:
  // node 0 gets P0-P4 (60 edges), node 1 gets P5-P6 (60 edges).
  const std::vector<std::uint64_t> w = {10, 10, 10, 15, 15, 30, 30};
  const auto b = split_weighted(w, 2);
  EXPECT_EQ(b[1], 5u);
  // Then node 0's five partitions over 2 cores: 10+10+10 vs 15+15.
  const std::vector<std::uint64_t> node0(w.begin(), w.begin() + 5);
  const auto cores = split_weighted(node0, 2);
  EXPECT_EQ(cores[1], 3u);
}

TEST(SplitWeighted, SinglePartTakesAll) {
  const std::vector<std::uint64_t> w = {5, 5, 5};
  const auto b = split_weighted(w, 1);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 3u);
}

TEST(SplitWeighted, MorePartsThanItems) {
  const std::vector<std::uint64_t> w = {7, 3};
  const auto b = split_weighted(w, 5);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 2u);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LE(b[i], b[i + 1]);
  // Non-empty chunks come first.
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
}

TEST(SplitWeighted, ZeroWeightsHandled) {
  const std::vector<std::uint64_t> w = {0, 0, 0, 0};
  const auto b = split_weighted(w, 2);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 4u);
}

class SplitBalanceProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(SplitBalanceProperty, BalancedWithinMaxItem) {
  const auto [seed, parts] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  std::vector<std::uint64_t> w(200 + rng.bounded(200));
  std::uint64_t total = 0;
  std::uint64_t max_w = 0;
  for (auto& x : w) {
    x = rng.bounded(1000);
    total += x;
    max_w = std::max(max_w, x);
  }
  const auto b = split_weighted(w, parts);
  ASSERT_EQ(b.size(), parts + 1u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), w.size());
  // Each chunk's weight is at most the ideal average plus one item
  // (greedy guarantee), except possibly the last which absorbs slack.
  const std::uint64_t avg = total / parts + 1;
  for (unsigned k = 0; k + 1 < parts; ++k) {
    std::uint64_t sum = 0;
    for (auto i = b[k]; i < b[k + 1]; ++i) sum += w[i];
    EXPECT_LE(sum, avg + max_w) << "chunk " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitBalanceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2u, 3u, 7u, 16u, 40u)));

TEST(CachePartitioning, SizesAndRanges) {
  // 4-byte vertices, 64-byte partitions => 16 vertices per partition.
  CachePartitioning parts(100, 64, 4);
  EXPECT_EQ(parts.vertices_per_partition(), 16u);
  EXPECT_EQ(parts.num_partitions(), 7u);
  EXPECT_EQ(parts.range(0).begin, 0u);
  EXPECT_EQ(parts.range(0).end, 16u);
  EXPECT_EQ(parts.range(6).begin, 96u);
  EXPECT_EQ(parts.range(6).end, 100u);  // ragged tail
  EXPECT_EQ(parts.partition_of(0), 0u);
  EXPECT_EQ(parts.partition_of(99), 6u);
}

TEST(CachePartitioning, PartitionLargerThanGraph) {
  CachePartitioning parts(10, 1 << 20, 4);
  EXPECT_EQ(parts.num_partitions(), 1u);
  EXPECT_EQ(parts.range(0).size(), 10u);
}

TEST(CachePartitioning, WeightsMatchDegrees) {
  const auto g = build_csr(8, {{0, 1}, {0, 2}, {5, 6}, {7, 0}});
  CachePartitioning parts(8, 16, 4);  // 4 vertices/partition
  const auto w = parts.partition_weights(g);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 2u);  // out-degrees of 0..3
  EXPECT_EQ(w[1], 2u);  // out-degrees of 4..7
}

TEST(LookupTable, TwoLevelMapping) {
  // 3 partitions over 2 threads: thread 0 -> {0,1}, thread 1 -> {2}.
  LookupTable table({0, 2, 3}, {0, 4, 8, 10});
  EXPECT_EQ(table.num_threads(), 2u);
  EXPECT_EQ(table.num_partitions(), 3u);
  EXPECT_EQ(table.partitions_of_thread(0), (std::pair<std::uint32_t,
                                            std::uint32_t>{0, 2}));
  EXPECT_EQ(table.vertices_of_partition(1), (VertexRange{4, 8}));
  EXPECT_EQ(table.vertices_of_thread(0), (VertexRange{0, 8}));
  EXPECT_EQ(table.vertices_of_thread(1), (VertexRange{8, 10}));
}

TEST(Plan, BuildsAndValidatesOnSmallGraph) {
  const auto edges = graph::generate_erdos_renyi(256, 2048, 7);
  const auto g = build_csr(256, edges);
  PlanConfig cfg;
  cfg.partition_bytes = 64;  // 16 vertices/partition => 16 partitions
  cfg.num_nodes = 2;
  cfg.threads_per_node = {3, 3};
  const HierarchicalPlan plan = build_hierarchical_plan(g, cfg);
  EXPECT_EQ(plan.parts.num_partitions(), 16u);
  EXPECT_EQ(plan.num_threads(), 6u);
  EXPECT_NO_THROW(plan.validate(g));
}

TEST(Plan, NodeVertexRangesAreMultiplesOfP) {
  // Paper Eq. 3: every node's vertex count except the last is a
  // multiple of |P|.
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 12, .num_edges = 1 << 15, .seed = 3});
  const auto g = build_csr(1 << 12, edges);
  PlanConfig cfg;
  cfg.partition_bytes = 256 * 4;  // 256 vertices per partition
  cfg.num_nodes = 2;
  cfg.threads_per_node = {4, 4};
  const HierarchicalPlan plan = build_hierarchical_plan(g, cfg);
  const VertexRange r0 = plan.node_vertex_range(0);
  EXPECT_EQ(r0.size() % plan.parts.vertices_per_partition(), 0u);
}

TEST(Plan, ThreadEdgeCountsRoughlyBalancedWithinNode) {
  const auto edges = graph::generate_zipf(
      {.num_vertices = 1 << 13, .num_edges = 1 << 17, .seed = 9});
  const auto g = build_csr(1 << 13, edges);
  PlanConfig cfg;
  cfg.partition_bytes = 128 * 4;
  cfg.num_nodes = 2;
  cfg.threads_per_node = {4, 4};
  const HierarchicalPlan plan = build_hierarchical_plan(g, cfg);
  // Max partition weight bounds the greedy imbalance.
  const std::uint64_t max_part = *std::max_element(
      plan.partition_weights.begin(), plan.partition_weights.end());
  for (unsigned n = 0; n < 2; ++n) {
    std::uint64_t node_edges = 0;
    unsigned t0 = n * 4;
    for (unsigned t = t0; t < t0 + 4; ++t) {
      node_edges += plan.thread_edge_count(t);
    }
    const std::uint64_t avg = node_edges / 4;
    for (unsigned t = t0; t < t0 + 4; ++t) {
      EXPECT_LE(plan.thread_edge_count(t), avg + max_part + 1)
          << "thread " << t;
    }
  }
}

TEST(Plan, SingleNodeSingleThread) {
  const auto g = build_csr(64, graph::generate_erdos_renyi(64, 256, 1));
  PlanConfig cfg;
  cfg.partition_bytes = 32 * 4;
  cfg.num_nodes = 1;
  cfg.threads_per_node = {1};
  const HierarchicalPlan plan = build_hierarchical_plan(g, cfg);
  EXPECT_EQ(plan.num_threads(), 1u);
  EXPECT_EQ(plan.table.vertices_of_thread(0), (VertexRange{0, 64}));
}

TEST(Plan, RejectsBadConfig) {
  const auto g = build_csr(16, graph::generate_erdos_renyi(16, 32, 1));
  PlanConfig cfg;
  cfg.num_nodes = 2;
  cfg.threads_per_node = {1};  // wrong size
  EXPECT_THROW(build_hierarchical_plan(g, cfg), Error);
}

class PlanProperty : public ::testing::TestWithParam<
                         std::tuple<int, unsigned, unsigned, unsigned>> {};

TEST_P(PlanProperty, InvariantsHoldAcrossConfigs) {
  const auto [seed, nodes, threads, part_verts] = GetParam();
  const vid_t n = 1 << 11;
  const auto edges = graph::generate_zipf(
      {.num_vertices = n, .num_edges = 1 << 14,
       .seed = static_cast<std::uint64_t>(seed)});
  const auto g = build_csr(n, edges);
  PlanConfig cfg;
  cfg.partition_bytes = std::uint64_t{part_verts} * 4;
  cfg.num_nodes = nodes;
  cfg.threads_per_node.assign(nodes, threads);
  const HierarchicalPlan plan = build_hierarchical_plan(g, cfg);
  EXPECT_NO_THROW(plan.validate(g));
  // Total edges across all threads equals |E|.
  std::uint64_t sum = 0;
  for (unsigned t = 0; t < plan.num_threads(); ++t) {
    sum += plan.thread_edge_count(t);
  }
  EXPECT_EQ(sum, g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 3u, 10u),
                       ::testing::Values(64u, 256u, 4096u)));

}  // namespace
}  // namespace hipa::part
