// Metrics-plane tests: log-linear bucket math, lock-free sharded
// counters/histograms under concurrent hammering (exact totals),
// quantile correctness on known distributions, snapshot consistency
// under racing writers, Prometheus/JSON exposition golden formats, the
// HTTP scrape endpoint on an ephemeral port, the engine-run fold
// bridge, and the registry-off path's byte-identical behavior. The
// concurrency suites carry the tsan label.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/minijson.hpp"
#include "engines/metrics_bridge.hpp"
#include "runtime/metrics.hpp"
#include "serve/metrics_export.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"

namespace hipa::runtime::metrics {
namespace {

// ---------------------------------------------------------------------------
// Bucket scheme
// ---------------------------------------------------------------------------

TEST(MetricsBuckets, SmallValuesExact) {
  for (std::uint64_t v = 0; v < kSubBuckets; ++v) {
    EXPECT_EQ(bucket_of(v), v);
    EXPECT_EQ(bucket_lower(static_cast<unsigned>(v)), v);
    EXPECT_EQ(bucket_width(static_cast<unsigned>(v)), 1u);
  }
}

TEST(MetricsBuckets, LowerBoundsRoundTrip) {
  for (unsigned b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t lo = bucket_lower(b);
    EXPECT_EQ(bucket_of(lo), b) << "lower bound of bucket " << b;
    // The last value of the bucket still maps into it.
    EXPECT_EQ(bucket_of(lo + bucket_width(b) - 1), b);
  }
}

TEST(MetricsBuckets, MonotoneAndContiguous) {
  for (unsigned b = 0; b + 1 < kNumBuckets; ++b) {
    EXPECT_EQ(bucket_lower(b) + bucket_width(b), bucket_lower(b + 1));
  }
}

TEST(MetricsBuckets, RelativeWidthBounded) {
  for (unsigned b = kSubBuckets; b < kNumBuckets; ++b) {
    const double rel = static_cast<double>(bucket_width(b)) /
                       static_cast<double>(bucket_lower(b));
    EXPECT_LE(rel, 1.0 / kSubBuckets + 1e-12) << "bucket " << b;
  }
}

TEST(MetricsBuckets, OverflowClampsToLastBucket) {
  EXPECT_EQ(bucket_of(std::uint64_t{1} << kMaxExp), kNumBuckets - 1);
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), kNumBuckets - 1);
}

// ---------------------------------------------------------------------------
// Counters / gauges / registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterExactTotalsUnderConcurrency) {
  MetricsRegistry reg;
  const Counter c = reg.counter("test_events_total", "events");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("test_events_total"), nullptr);
  EXPECT_EQ(snap.find_counter("test_events_total")->value,
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, RegistrationDedupes) {
  MetricsRegistry reg;
  const Counter a = reg.counter("dup_total", "x", {"class", "point"});
  const Counter b = reg.counter("dup_total", "x", {"class", "point"});
  const Counter other = reg.counter("dup_total", "x", {"class", "batch"});
  a.inc(3);
  b.inc(4);
  other.inc(10);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("dup_total", "point")->value, 7u);
  EXPECT_EQ(snap.find_counter("dup_total", "batch")->value, 10u);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(MetricsRegistryTest, NameMayNotStraddleKinds) {
  MetricsRegistry reg;
  (void)reg.counter("taken", "x");
  EXPECT_THROW((void)reg.gauge("taken", "x"), hipa::Error);
  EXPECT_THROW((void)reg.histogram("taken", "x"), hipa::Error);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  const Gauge g = reg.gauge("depth", "queue depth");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-40);
  EXPECT_EQ(reg.snapshot().find_gauge("depth")->value, 2);
}

TEST(MetricsRegistryTest, NullHandlesAreNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  c.inc();
  g.set(7);
  h.record(123);  // must not crash; nothing recorded anywhere
  EXPECT_EQ(g.value(), 0);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(MetricsHistogram, ExactCountAndSumUnderConcurrency) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("lat_ns", "latency");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(t + 1);  // thread t records value t+1
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot ms = reg.snapshot();
  const HistogramSnapshot* snap = ms.find_histogram("lat_ns");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, kThreads * kPerThread);
  std::uint64_t expect_sum = 0;
  for (unsigned t = 0; t < kThreads; ++t) expect_sum += (t + 1) * kPerThread;
  EXPECT_DOUBLE_EQ(snap->sum, static_cast<double>(expect_sum));
}

TEST(MetricsHistogram, QuantilesOnKnownDistribution) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("uniform", "u");
  // Uniform 1..10000: exact nearest-rank percentiles are 5000 / 9500 /
  // 9900 / 9990; the log-linear estimate must land within one bucket
  // (relative error <= 1/kSubBuckets, plus half-bucket midpointing).
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const MetricsSnapshot ms = reg.snapshot();
  const HistogramSnapshot* s = ms.find_histogram("uniform");
  ASSERT_NE(s, nullptr);
  const double tol = 1.0 / kSubBuckets;
  EXPECT_NEAR(s->p50, 5000.0, 5000.0 * tol);
  EXPECT_NEAR(s->p95, 9500.0, 9500.0 * tol);
  EXPECT_NEAR(s->p99, 9900.0, 9900.0 * tol);
  EXPECT_NEAR(s->p999, 9990.0, 9990.0 * tol);
  EXPECT_GE(s->max, 10000.0);
}

TEST(MetricsHistogram, SmallExactValuesGiveExactQuantiles) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("tiny", "t");
  for (int i = 0; i < 90; ++i) h.record(3);
  for (int i = 0; i < 10; ++i) h.record(9);
  const MetricsSnapshot ms = reg.snapshot();
  const HistogramSnapshot* s = ms.find_histogram("tiny");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->p50, 3.0);
  EXPECT_DOUBLE_EQ(s->p99, 9.0);
  EXPECT_DOUBLE_EQ(s->max, 9.0);
}

TEST(MetricsHistogram, SnapshotConsistentUnderConcurrentWriters) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("busy", "b");
  const Counter c = reg.counter("busy_total", "b");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v % 1000 + 1);
        c.inc();
        ++v;
      }
    });
  }
  // Counters and histogram counts are monotone per shard, so every
  // snapshot taken mid-hammer must be internally sane and
  // non-decreasing vs the previous one.
  std::uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    const HistogramSnapshot* s = snap.find_histogram("busy");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->count, last_count);
    last_count = s->count;
    if (s->count > 0) {
      EXPECT_GE(s->p50, 1.0);
      EXPECT_LE(s->p50, s->max);
      EXPECT_LE(s->p95, s->max);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const MetricsSnapshot fin = reg.snapshot();
  EXPECT_EQ(fin.find_histogram("busy")->count,
            fin.find_counter("busy_total")->value);
}

}  // namespace
}  // namespace hipa::runtime::metrics

namespace hipa::serve {
namespace {

namespace m = runtime::metrics;

// ---------------------------------------------------------------------------
// Exposition formats
// ---------------------------------------------------------------------------

TEST(MetricsExport, PrometheusGoldenFormat) {
  m::MetricsRegistry reg;
  reg.counter("hipa_queries_total", "Queries answered by class",
              {"class", "point"})
      .inc(5);
  reg.gauge("hipa_snapshot_epoch", "Epoch of the live snapshot").set(3);
  const m::Histogram h = reg.histogram(
      "hipa_query_latency_seconds", "Per-request latency by class",
      {"class", "point"}, 1e-9);
  for (int i = 0; i < 100; ++i) h.record(1000);  // 1us, exact bucket lower

  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP hipa_queries_total Queries answered by class\n"
                      "# TYPE hipa_queries_total counter\n"
                      "hipa_queries_total{class=\"point\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE hipa_snapshot_epoch gauge\n"
                      "hipa_snapshot_epoch 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hipa_query_latency_seconds summary\n"),
            std::string::npos);
  // 1000 ns scaled to seconds; quantile of a one-bucket distribution
  // is the (midpointed) bucket value, within one bucket width of 1us.
  EXPECT_NE(
      text.find("hipa_query_latency_seconds{class=\"point\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find("hipa_query_latency_seconds_count{class=\"point\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("hipa_query_latency_seconds_sum{class=\"point\"} "
                      "0.0001"),
            std::string::npos);
  // Families appear exactly once.
  EXPECT_EQ(text.find("# TYPE hipa_queries_total counter"),
            text.rfind("# TYPE hipa_queries_total counter"));
}

TEST(MetricsExport, PrometheusGroupsInterleavedFamilies) {
  m::MetricsRegistry reg;
  reg.counter("a_total", "a", {"k", "1"}).inc();
  reg.counter("b_total", "b").inc();
  reg.counter("a_total", "a", {"k", "2"}).inc();
  const std::string text = to_prometheus(reg.snapshot());
  // Both a_total samples follow one HELP/TYPE header.
  const std::size_t header = text.find("# TYPE a_total counter\n");
  ASSERT_NE(header, std::string::npos);
  const std::size_t s1 = text.find("a_total{k=\"1\"} 1");
  const std::size_t s2 = text.find("a_total{k=\"2\"} 1");
  const std::size_t other = text.find("# TYPE b_total counter\n");
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(s2, std::string::npos);
  EXPECT_TRUE((s1 < other && s2 < other) || (s1 > other && s2 > other))
      << text;
}

TEST(MetricsExport, JsonParsesAndMatches) {
  m::MetricsRegistry reg;
  reg.counter("c_total", "c").inc(7);
  reg.gauge("g", "g").set(-3);
  const m::Histogram h = reg.histogram("h_ns", "h");
  h.record(5);
  h.record(5);

  json::Parser parser(to_json(reg.snapshot()));
  const json::ValuePtr root = parser.parse();
  ASSERT_TRUE(root->is(json::Value::Type::kObject));
  const json::Value* counters = root->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->array.size(), 1u);
  EXPECT_EQ(counters->array[0]->find("name")->str, "c_total");
  EXPECT_DOUBLE_EQ(counters->array[0]->find("value")->number, 7.0);
  EXPECT_DOUBLE_EQ(root->find("gauges")->array[0]->find("value")->number,
                   -3.0);
  const json::Value* hist = root->find("histograms")->array[0].get();
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist->find("p50")->number, 5.0);
}

// ---------------------------------------------------------------------------
// HTTP endpoint
// ---------------------------------------------------------------------------

std::string http_request(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_GT(::send(fd, req.data(), req.size(), MSG_NOSIGNAL), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttp, ScrapeSmokeOnEphemeralPort) {
  m::MetricsRegistry reg;
  reg.counter("smoke_total", "s").inc(9);
  MetricsHttpServer server(reg, /*port=*/0);
  ASSERT_GT(server.port(), 0);
  ASSERT_TRUE(server.running());

  const std::string prom = http_request(server.port(), "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("smoke_total 9"), std::string::npos);

  const std::string json_resp = http_request(server.port(), "/metrics.json");
  EXPECT_NE(json_resp.find("application/json"), std::string::npos);
  EXPECT_NE(json_resp.find("\"smoke_total\""), std::string::npos);

  const std::string missing = http_request(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_EQ(server.scrapes(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// Engine-run fold bridge
// ---------------------------------------------------------------------------

TEST(MetricsBridge, FoldsRunReportTotals) {
  m::MetricsRegistry reg;
  engine::RunReport report;
  report.seconds = 2.0;
  report.iterations = 20;
  report.telemetry.enabled = true;
  report.telemetry[runtime::Phase::kScatter].wall_sum_seconds = 1.5;
  report.telemetry[runtime::Phase::kScatter].messages_produced = 1234;
  report.telemetry.refresh_totals();

  engine::fold_run_metrics(reg, report);
  engine::fold_run_metrics(reg, report);  // lifetime counters accumulate

  const m::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("hipa_engine_runs_total")->value, 2u);
  EXPECT_EQ(snap.find_counter("hipa_engine_iterations_total")->value, 40u);
  EXPECT_EQ(snap.find_counter("hipa_engine_run_ns_total")->value,
            4000000000u);
  EXPECT_EQ(snap.find_counter("hipa_engine_messages_produced_total")->value,
            2468u);
  EXPECT_EQ(snap.find_counter("hipa_engine_phase_ns_total", "scatter")->value,
            3000000000u);

  engine::OocoreStats oocore;
  oocore.io_wait_seconds = 0.25;
  oocore.bytes_fetched = 4096;
  engine::fold_run_metrics(reg, report, &oocore);
  const m::MetricsSnapshot snap2 = reg.snapshot();
  EXPECT_EQ(snap2.find_counter("hipa_engine_io_wait_ns_total")->value,
            250000000u);
  EXPECT_EQ(snap2.find_counter("hipa_engine_io_bytes_fetched_total")->value,
            4096u);
}

// ---------------------------------------------------------------------------
// Registry-off path: byte-identical serving behavior
// ---------------------------------------------------------------------------

TEST(MetricsOffPath, ServeResultsByteIdentical) {
  const vid_t n = 4096;
  std::vector<rank_t> ranks(n);
  for (vid_t v = 0; v < n; ++v) {
    ranks[v] = static_cast<rank_t>((v * 2654435761u) % 10007u);
  }

  m::MetricsRegistry reg;  // private, so global state stays untouched
  StoreOptions on_opt{.num_nodes = 2, .metrics = true, .registry = &reg};
  StoreOptions off_opt{.num_nodes = 2, .metrics = false};
  SnapshotStore store_on(n, on_opt);
  SnapshotStore store_off(n, off_opt);
  store_on.publish(std::span<const rank_t>(ranks));
  store_off.publish(std::span<const rank_t>(ranks));

  ServiceOptions svc_on{.pin_workers = false, .metrics = true,
                        .registry = &reg};
  ServiceOptions svc_off{.pin_workers = false, .metrics = false};
  RankService on(store_on, svc_on);
  RankService off(store_off, svc_off);

  std::vector<Query> queries;
  queries.push_back(Query::point(17));
  queries.push_back(Query::batch({1, 100, 4000}));
  queries.push_back(Query::top_k(8));
  queries.push_back(Query::top_k(5, VertexRange{100, 3000}));

  const std::vector<QueryResult> a = on.execute_batch(queries);
  const std::vector<QueryResult> b = off.execute_batch(queries);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ranks.size(), b[i].ranks.size());
    EXPECT_EQ(std::memcmp(a[i].ranks.data(), b[i].ranks.data(),
                          a[i].ranks.size() * sizeof(rank_t)),
              0);
    ASSERT_EQ(a[i].topk.size(), b[i].topk.size());
    for (std::size_t j = 0; j < a[i].topk.size(); ++j) {
      EXPECT_EQ(a[i].topk[j].vertex, b[i].topk[j].vertex);
      EXPECT_EQ(a[i].topk[j].rank, b[i].topk[j].rank);
    }
  }

  // The instrumented side recorded; the off side's registry (none)
  // obviously didn't — and the off service exposes no endpoint.
  const m::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("hipa_queries_total", "point")->value, 1u);
  EXPECT_EQ(snap.find_counter("hipa_queries_total", "topk")->value, 2u);
  EXPECT_EQ(off.metrics_http_port(), -1);
}

TEST(MetricsOffPath, ServiceExposesEndpointWhenConfigured) {
  const vid_t n = 1024;
  std::vector<rank_t> ranks(n, 1.0f);
  m::MetricsRegistry reg;
  StoreOptions sopt{.num_nodes = 1, .metrics = true, .registry = &reg};
  SnapshotStore store(n, sopt);
  store.publish(std::span<const rank_t>(ranks));
  ServiceOptions opt{.pin_workers = false, .metrics = true, .registry = &reg,
                     .metrics_port = 0};
  RankService service(store, opt);
  ASSERT_GT(service.metrics_http_port(), 0);
  (void)service.execute(Query::point(3));
  const std::string scrape =
      http_request(service.metrics_http_port(), "/metrics");
  EXPECT_NE(scrape.find("hipa_queries_total{class=\"point\"} 1"),
            std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find("hipa_query_latency_seconds{class=\"point\","
                        "quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("hipa_snapshot_publishes_total 1"),
            std::string::npos);
}

}  // namespace
}  // namespace hipa::serve
