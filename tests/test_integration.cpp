// Cross-module integration tests: reordering + engines, datasets +
// engines, sim cost-model behaviors the benches rely on, and
// end-to-end agreement between backends.
#include <gtest/gtest.h>

#include "algos/pagerank.hpp"
#include "algos/spmv.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

namespace hipa {
namespace {

using algo::Method;

TEST(Integration, ReorderedGraphGivesPermutedRanks) {
  const graph::Graph g = graph::build_graph(
      1000, graph::generate_zipf({.num_vertices = 1000,
                                  .num_edges = 8000,
                                  .seed = 31}));
  const auto perm = graph::hub_cluster_permutation(g.out);
  const graph::Graph h = graph::apply_permutation(g, perm);

  const auto rg = algo::pagerank_reference(g, 10);
  const auto rh = algo::pagerank_reference(h, 10);
  for (vid_t v = 0; v < 1000; ++v) {
    EXPECT_NEAR(rg[v], rh[perm[v]], 1e-6f) << "vertex " << v;
  }
}

TEST(Integration, HipaOnReorderedGraphStillCorrect) {
  const graph::Graph g = graph::build_graph(
      1500, graph::generate_zipf({.num_vertices = 1500,
                                  .num_edges = 12000,
                                  .seed = 32}));
  const auto perm = graph::degree_sort_permutation(g.out);
  const graph::Graph h = graph::apply_permutation(g, perm);
  const auto want = algo::pagerank_reference(h, 8);

  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 8;
  params.scale_denom = 64;
  const auto got = algo::run_method_sim(Method::kHipa, h, machine, params).ranks;
  EXPECT_LT(algo::l1_distance(got, want), 1e-6 * 1500);
}

TEST(Integration, AllDatasetStandInsRunHipa) {
  for (const auto& info : graph::paper_datasets()) {
    const graph::Graph g = graph::make_tiny_dataset(info.name);
    const auto want = algo::pagerank_reference(g, 4);
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(256));
    algo::MethodParams params;
    params.pr.iterations = 4;
    params.scale_denom = 256;
    const auto got =
        algo::run_method_sim(Method::kHipa, g, machine, params).ranks;
    EXPECT_LT(algo::l1_distance(got, want), 1e-6 * g.num_vertices())
        << info.name;
  }
}

TEST(Integration, SimIsDeterministicAfterReset) {
  // Determinism is per address layout: with the same buffers, a reset
  // machine must replay a run cycle-for-cycle (this is what makes the
  // bench results reproducible within a process).
  const graph::Graph g = graph::build_graph(
      5000, graph::generate_zipf({.num_vertices = 5000,
                                  .num_edges = 40000,
                                  .seed = 33}));
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64), {}, 9);
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::ppr(16, 2, 1024);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  const auto a = eng.run({3, 0.85f}).report;
  machine.reset();
  const auto b = eng.run({3, 0.85f}).report;
  EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
  EXPECT_EQ(a.stats.dram_bytes(), b.stats.dram_bytes());
  EXPECT_EQ(a.stats.llc_hits, b.stats.llc_hits);
}

TEST(Integration, StreamsCostLessThanRandomAccess) {
  // Same byte volume, touched sequentially vs line-strided randomly:
  // the prefetch-aware model must price the stream far lower.
  const std::size_t n = 1u << 20;
  AlignedBuffer<float> data(n);
  auto run = [&](bool streamed) {
    sim::SimMachine machine(sim::Topology::skylake_2s());
    machine.numa().register_range(data.data(), n * sizeof(float),
                                  sim::Placement::kNode, 0);
    sim::PlacementVec placement{machine.topology().lcid_of(0, 0, 0)};
    machine.run_phase(placement, [&](unsigned, sim::SimMem& mem) {
      if (streamed) {
        mem.stream_read(data.data(), n);
      } else {
        // One access per line, shuffled order.
        Xoshiro256 rng(3);
        for (std::size_t i = 0; i < n / 16; ++i) {
          const std::size_t line = rng.bounded(n / 16);
          (void)mem.load(data.data() + line * 16);
        }
      }
    });
    return machine.stats().total_cycles;
  };
  EXPECT_LT(run(true) * 3, run(false));
}

TEST(Integration, CostModelOverridesChangeTiming) {
  const graph::Graph g = graph::build_graph(
      2000, graph::generate_zipf({.num_vertices = 2000,
                                  .num_edges = 16000,
                                  .seed = 34}));
  auto run = [&](const sim::CostModel& cost) {
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64), cost);
    algo::MethodParams params;
    params.pr.iterations = 3;
    params.scale_denom = 64;
    return algo::run_method_sim(Method::kHipa, g, machine, params)
        .report.seconds;
  };
  sim::CostModel slow;
  slow.dram_local = 800;
  slow.dram_remote = 2000;
  EXPECT_GT(run(slow), run(sim::CostModel{}));
}

TEST(Integration, HaswellTopologyRunsEverything) {
  const graph::Graph g = graph::build_graph(
      3000, graph::generate_zipf({.num_vertices = 3000,
                                  .num_edges = 24000,
                                  .seed = 35}));
  const auto want = algo::pagerank_reference(g, 5);
  for (Method m : algo::all_methods()) {
    sim::SimMachine machine(sim::Topology::haswell_2s().scaled(64));
    algo::MethodParams params;
    params.pr.iterations = 5;
    params.scale_denom = 64;
    params.threads = algo::default_threads(m, machine.topology());
    const auto got = algo::run_method_sim(m, g, machine, params).ranks;
    EXPECT_LT(algo::l1_distance(got, want), 1e-6 * 3000)
        << algo::method_name(m);
  }
}

TEST(Integration, SingleNodeTopologyWorks) {
  const graph::Graph g = graph::build_graph(
      2000, graph::generate_zipf({.num_vertices = 2000,
                                  .num_edges = 16000,
                                  .seed = 36}));
  const auto want = algo::pagerank_reference(g, 5);
  sim::SimMachine machine(sim::Topology::skylake_1s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 5;
  params.scale_denom = 64;
  params.threads = 20;
  const auto got =
      algo::run_method_sim(Method::kHipa, g, machine, params).ranks;
  EXPECT_LT(algo::l1_distance(got, want), 1e-6 * 2000);
  // Single node: all traffic is local by construction.
  // (run again to grab the report)
  sim::SimMachine m2(sim::Topology::skylake_1s().scaled(64));
  const auto report =
      algo::run_method_sim(Method::kHipa, g, m2, params).report;
  EXPECT_EQ(report.stats.dram_remote_bytes, 0u);
}

TEST(Integration, SpmvAgreesAcrossBackends) {
  const graph::Graph g = graph::build_graph(
      2500, graph::generate_zipf({.num_vertices = 2500,
                                  .num_edges = 20000,
                                  .seed = 37}));
  std::vector<rank_t> x(g.num_vertices());
  Xoshiro256 rng(8);
  for (auto& v : x) v = static_cast<rank_t>(rng.uniform());

  engine::NativeBackend native;
  auto opt = engine::PcpmOptions::hipa(4, 1, 2048);
  engine::PcpmEngine<engine::NativeBackend> native_eng(g, opt, native);
  std::vector<rank_t> y_native;
  native_eng.run_spmv(x, y_native);

  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend simb(machine);
  auto opt2 = engine::PcpmOptions::hipa(8, 2, 2048);
  engine::PcpmEngine<engine::SimBackend> sim_eng(g, opt2, simb);
  std::vector<rank_t> y_sim;
  sim_eng.run_spmv(x, y_sim);

  EXPECT_LT(algo::linf_distance(y_native, y_sim), 1e-4);
}

TEST(Integration, FasterMethodMovesFewerOrCheaperBytes) {
  // Sanity link between the two headline metrics: on a big skewed
  // graph, HiPa must beat v-PR on time AND on local-byte share.
  const graph::Graph g = graph::build_graph(
      60000, graph::generate_zipf({.num_vertices = 60000,
                                   .num_edges = 500000,
                                   .seed = 38}));
  algo::MethodParams params;
  params.pr.iterations = 3;
  params.scale_denom = 64;
  sim::SimMachine m1(sim::Topology::skylake_2s().scaled(64));
  sim::SimMachine m2(sim::Topology::skylake_2s().scaled(64));
  const auto hipa =
      algo::run_method_sim(Method::kHipa, g, m1, params).report;
  const auto vpr = algo::run_method_sim(Method::kVpr, g, m2, params).report;
  EXPECT_LT(hipa.seconds, vpr.seconds);
  EXPECT_LT(hipa.stats.remote_fraction(), vpr.stats.remote_fraction());
}

}  // namespace
}  // namespace hipa
