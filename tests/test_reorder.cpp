// Vertex reordering through the algo:: facade: permutation validity,
// structural round-trip under apply_permutation, and the pipeline
// guarantee — the PageRankOptions::reorder knob is bitwise-equivalent
// to manually permuting the graph, running the engine, and
// inverse-permuting the ranks. Bitwise identity against the
// UNreordered baseline is deliberately not claimed (reordering changes
// float summation order); that comparison is a tight near-equality.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "algos/pagerank.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "sim/machine.hpp"

namespace hipa {
namespace {

constexpr engine::Reorder kModes[] = {engine::Reorder::kNone,
                                      engine::Reorder::kDegree,
                                      engine::Reorder::kHub};

graph::Graph rmat_graph() {
  auto edges = graph::generate_rmat({.scale = 10, .edge_factor = 8});
  return graph::build_graph(1u << 10, edges, {});
}
graph::Graph er_graph() {
  auto edges = graph::generate_erdos_renyi(1500, 12000, 17);
  return graph::build_graph(1500, edges, {});
}
graph::Graph zipf_graph() {
  auto edges = graph::generate_zipf(
      {.num_vertices = 2048, .num_edges = 16384, .seed = 5});
  return graph::build_graph(2048, edges, {});
}

/// Structural round-trip: applying perm and looking up old vertex v at
/// new id perm[v] must reproduce v's out-neighborhood (as a set, with
/// every neighbor relabeled through perm).
void expect_structure_preserved(const graph::Graph& g,
                                const graph::Permutation& perm,
                                const graph::Graph& permuted) {
  ASSERT_EQ(permuted.num_vertices(), g.num_vertices());
  ASSERT_EQ(permuted.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(permuted.out.degree(perm[v]), g.out.degree(v)) << "v=" << v;
    std::unordered_set<vid_t> expect;
    for (vid_t u : g.out.neighbors(v)) expect.insert(perm[u]);
    for (vid_t u : permuted.out.neighbors(perm[v])) {
      EXPECT_TRUE(expect.count(u) > 0) << "v=" << v << " u=" << u;
    }
  }
}

TEST(ReorderPermutation, ValidAndStructurePreservingOnAllGenerators) {
  const struct {
    const char* name;
    graph::Graph g;
  } graphs[] = {{"rmat", rmat_graph()}, {"er", er_graph()},
                {"zipf", zipf_graph()}};
  for (const auto& [name, g] : graphs) {
    for (engine::Reorder mode : kModes) {
      SCOPED_TRACE(std::string(name) + "/" + algo::reorder_name(mode));
      const graph::Permutation perm = algo::make_reorder_permutation(mode, g);
      ASSERT_EQ(perm.size(), g.num_vertices());
      EXPECT_TRUE(graph::is_valid_permutation(perm));
      if (mode == engine::Reorder::kNone) {
        for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(perm[v], v);
        continue;
      }
      const graph::Graph permuted = graph::apply_permutation(g, perm);
      expect_structure_preserved(g, perm, permuted);
    }
  }
}

TEST(ReorderPermutation, DegreeSortIsDescending) {
  const graph::Graph g = zipf_graph();
  const graph::Permutation perm =
      algo::make_reorder_permutation(engine::Reorder::kDegree, g);
  // new id ordering must be degree-descending: invert and walk.
  std::vector<vid_t> old_of_new(perm.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v) old_of_new[perm[v]] = v;
  for (vid_t i = 0; i + 1 < g.num_vertices(); ++i) {
    EXPECT_GE(g.out.degree(old_of_new[i]), g.out.degree(old_of_new[i + 1]))
        << "position " << i;
  }
}

TEST(ReorderNames, RoundTrip) {
  for (engine::Reorder mode : kModes) {
    const auto back = algo::reorder_from_name(algo::reorder_name(mode));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, mode);
  }
  EXPECT_FALSE(algo::reorder_from_name("bogus").has_value());
}

// ---- facade pipeline equivalence --------------------------------------------

algo::MethodParams native_params(engine::Reorder mode) {
  algo::MethodParams p;
  p.threads = 2;
  p.pr.iterations = 3;
  p.pr.reorder = mode;
  return p;
}

/// The manual pipeline the facade promises to match bitwise.
std::vector<rank_t> manual_pipeline(algo::Method m, const graph::Graph& g,
                                    engine::Reorder mode) {
  const graph::Permutation perm = algo::make_reorder_permutation(mode, g);
  const graph::Graph permuted = graph::apply_permutation(g, perm);
  const auto res =
      algo::run_method_native(m, permuted, native_params(engine::Reorder::kNone));
  std::vector<rank_t> out(res.ranks.size());
  for (vid_t v = 0; v < static_cast<vid_t>(out.size()); ++v) {
    out[v] = res.ranks[perm[v]];
  }
  return out;
}

TEST(ReorderFacade, KnobMatchesManualPipelineBitwise) {
  const graph::Graph g = rmat_graph();
  for (algo::Method m : {algo::Method::kHipa, algo::Method::kVpr}) {
    for (engine::Reorder mode :
         {engine::Reorder::kDegree, engine::Reorder::kHub}) {
      SCOPED_TRACE(std::string(algo::method_name(m)) + "/" +
                   algo::reorder_name(mode));
      const auto via_knob =
          algo::run_method_native(m, g, native_params(mode));
      const auto manual = manual_pipeline(m, g, mode);
      ASSERT_EQ(via_knob.ranks.size(), manual.size());
      EXPECT_EQ(algo::l1_distance(via_knob.ranks, manual), 0.0);
    }
  }
}

TEST(ReorderFacade, NoneIsBitwiseIdenticalToDefault) {
  const graph::Graph g = er_graph();
  const auto plain = algo::run_method_native(
      algo::Method::kHipa, g, native_params(engine::Reorder::kNone));
  algo::MethodParams defaults;
  defaults.threads = 2;
  defaults.pr.iterations = 3;
  const auto knob = algo::run_method_native(algo::Method::kHipa, g, defaults);
  EXPECT_EQ(algo::l1_distance(plain.ranks, knob.ranks), 0.0);
}

TEST(ReorderFacade, ReorderedRanksNearUnreorderedBaseline) {
  const graph::Graph g = zipf_graph();
  const auto base = algo::run_method_native(
      algo::Method::kHipa, g, native_params(engine::Reorder::kNone));
  for (engine::Reorder mode :
       {engine::Reorder::kDegree, engine::Reorder::kHub}) {
    const auto res =
        algo::run_method_native(algo::Method::kHipa, g, native_params(mode));
    // Same fixed-point iteration, different float summation order:
    // near-equal, not bitwise.
    EXPECT_LT(algo::l1_distance(base.ranks, res.ranks), 1e-3)
        << algo::reorder_name(mode);
    // And reordering must charge its permutation to preprocessing.
    EXPECT_GT(res.report.preprocessing_seconds, 0.0);
  }
}

TEST(ReorderFacade, WorksOnSimulatedBackend) {
  const graph::Graph g = rmat_graph();
  algo::MethodParams p;
  p.pr.iterations = 2;
  p.pr.reorder = engine::Reorder::kDegree;
  sim::SimMachine m1(sim::Topology::skylake_2s().scaled(64), {}, 1);
  const auto knob = algo::run_method_sim(algo::Method::kHipa, g, m1, p);

  const graph::Permutation perm =
      algo::make_reorder_permutation(engine::Reorder::kDegree, g);
  const graph::Graph permuted = graph::apply_permutation(g, perm);
  algo::MethodParams inner = p;
  inner.pr.reorder = engine::Reorder::kNone;
  sim::SimMachine m2(sim::Topology::skylake_2s().scaled(64), {}, 1);
  const auto manual = algo::run_method_sim(algo::Method::kHipa, permuted,
                                           m2, inner);
  std::vector<rank_t> unperm(manual.ranks.size());
  for (vid_t v = 0; v < static_cast<vid_t>(unperm.size()); ++v) {
    unperm[v] = manual.ranks[perm[v]];
  }
  EXPECT_EQ(algo::l1_distance(knob.ranks, unperm), 0.0);
}

// ---- forced wide-encoding fallback ------------------------------------------

/// Reordering composed with the 32-bit destination fallback: a
/// permuted graph run under DstEncoding::kWide must inverse-permute to
/// the same ranks (near-equality vs the unpermuted wide run; bitwise
/// identity between the permuted wide and permuted auto runs is the
/// encoding guarantee, checked too).
TEST(ReorderEncoding, WideFallbackRoundTrips) {
  const graph::Graph g = zipf_graph();
  const graph::Permutation perm =
      algo::make_reorder_permutation(engine::Reorder::kHub, g);
  const graph::Graph permuted = graph::apply_permutation(g, perm);

  engine::PageRankOptions pr;
  pr.iterations = 3;
  auto run = [&](const graph::Graph& graph, pcp::DstEncoding enc) {
    engine::NativeBackend backend;
    engine::PcpmOptions opt = engine::PcpmOptions::hipa(2, 1, 64 * 1024);
    opt.dst_encoding = enc;
    engine::PcpmEngine<engine::NativeBackend> eng(graph, opt, backend);
    return eng.run(pr);
  };

  const auto base_wide = run(g, pcp::DstEncoding::kWide);
  const auto perm_wide = run(permuted, pcp::DstEncoding::kWide);
  const auto perm_auto = run(permuted, pcp::DstEncoding::kAuto);

  // Encoding guarantee on the permuted graph: identical arithmetic.
  EXPECT_EQ(algo::l1_distance(perm_wide.ranks, perm_auto.ranks), 0.0);

  // Round trip: inverse-permute the wide run's ranks back to original
  // vertex ids and compare with the unpermuted wide run.
  std::vector<rank_t> unperm(perm_wide.ranks.size());
  for (vid_t v = 0; v < static_cast<vid_t>(unperm.size()); ++v) {
    unperm[v] = perm_wide.ranks[perm[v]];
  }
  EXPECT_LT(algo::l1_distance(base_wide.ranks, unperm), 1e-3);
}

}  // namespace
}  // namespace hipa
