// Run-level telemetry: the zero-overhead-off guarantee (kOff ranks are
// bitwise identical to kOn — the collection guard is `if constexpr`,
// so the kOff instantiation IS the untelemetered code), the counter
// invariants that tie per-phase aggregates to run totals, and the
// unified RunResult facade round-trip for all five methodologies on
// both backends.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "algos/pagerank.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "runtime/telemetry.hpp"

namespace hipa {
namespace {

using algo::Method;
using runtime::Phase;
using runtime::Telemetry;

graph::Graph test_graph(std::uint64_t seed, vid_t n = 2000,
                        eid_t m = 16000) {
  return graph::build_graph(
      n, graph::generate_zipf({.num_vertices = n, .num_edges = m,
                               .seed = seed}));
}

bool bitwise_equal(const std::vector<rank_t>& a,
                   const std::vector<rank_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(rank_t)) == 0);
}

// ---- collector unit tests --------------------------------------------------

TEST(Telemetry, PhaseNames) {
  EXPECT_EQ(runtime::phase_name(Phase::kInit), "init");
  EXPECT_EQ(runtime::phase_name(Phase::kScatter), "scatter");
  EXPECT_EQ(runtime::phase_name(Phase::kGather), "gather");
}

TEST(Telemetry, ThreadTimelineRowsAreCacheLinePadded) {
  EXPECT_GE(alignof(runtime::ThreadTimeline), kCacheLine);
  EXPECT_EQ(sizeof(runtime::ThreadTimeline) % kCacheLine, 0u);
}

TEST(Telemetry, AggregateSumsExtremaAndImbalance) {
  runtime::PhaseTimeline tl;
  tl.reset(3);
  // Thread 0: 2s scatter kernel, 100 msgs. Thread 1: 1s, 50 msgs.
  // Thread 2 never participates and must not drag wall_min to 0.
  auto& r0 = tl.thread(0)[Phase::kScatter];
  r0.wall_seconds = 2.0;
  r0.invocations = 4;
  r0.messages_produced = 100;
  r0.bytes_produced = 400;
  r0.barrier_seconds = 0.5;
  r0.barrier_crossings = 4;
  auto& r1 = tl.thread(1)[Phase::kScatter];
  r1.wall_seconds = 1.0;
  r1.invocations = 4;
  r1.messages_produced = 50;
  r1.bytes_produced = 200;
  tl.record_region(Phase::kScatter, 0.25, /*local=*/10, /*remote=*/30);
  tl.record_region(Phase::kScatter, 0.75, /*local=*/20, /*remote=*/40);
  tl.record_iteration(0.5);
  tl.record_iteration(0.5);

  const runtime::RunTelemetry t = runtime::aggregate(tl);
  EXPECT_TRUE(t.enabled);
  EXPECT_EQ(t.threads, 3u);
  const runtime::PhaseAggregate& a = t[Phase::kScatter];
  EXPECT_EQ(a.invocations, 8u);
  EXPECT_EQ(a.participating_threads, 2u);
  EXPECT_DOUBLE_EQ(a.wall_sum_seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.wall_max_seconds, 2.0);
  EXPECT_DOUBLE_EQ(a.wall_min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.wall_avg_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(a.imbalance(), 2.0 / 1.5);
  EXPECT_DOUBLE_EQ(a.barrier_sum_seconds, 0.5);
  EXPECT_DOUBLE_EQ(a.barrier_max_seconds, 0.5);
  EXPECT_EQ(a.barrier_crossings, 4u);
  EXPECT_EQ(a.messages_produced, 150u);
  EXPECT_EQ(a.bytes_produced, 600u);
  EXPECT_DOUBLE_EQ(a.region_seconds, 1.0);
  EXPECT_EQ(a.regions, 2u);
  EXPECT_EQ(a.sim_local_accesses, 30u);
  EXPECT_EQ(a.sim_remote_accesses, 70u);
  EXPECT_EQ(t.iteration_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(t.total_wall_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(t.total_barrier_seconds(), 0.5);
  EXPECT_EQ(t.total_messages_produced(), 150u);
}

TEST(Telemetry, MaybeTimerOffIsFree) {
  static_assert(sizeof(runtime::MaybeTimer<false>) <=
                sizeof(runtime::MaybeTimer<true>));
  runtime::MaybeTimer<false> t;
  t.reset();
  EXPECT_EQ(t.seconds(), 0.0);
}

// ---- zero-overhead-off: kOff ranks bitwise identical to kOn ----------------

TEST(Telemetry, OffAndOnRanksBitwiseIdenticalSim) {
  const graph::Graph g = test_graph(91);
  std::vector<rank_t> ranks[2];
  for (int i = 0; i < 2; ++i) {
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
    algo::MethodParams params;
    params.pr.iterations = 6;
    params.pr.telemetry = i == 0 ? Telemetry::kOff : Telemetry::kOn;
    params.scale_denom = 64;
    ranks[i] =
        algo::run_method_sim(Method::kHipa, g, machine, params).ranks;
  }
  EXPECT_TRUE(bitwise_equal(ranks[0], ranks[1]));
}

TEST(Telemetry, OffAndOnRanksBitwiseIdenticalNative) {
  const graph::Graph g = test_graph(92);
  std::vector<rank_t> ranks[2];
  for (int i = 0; i < 2; ++i) {
    algo::MethodParams params;
    params.pr.iterations = 6;
    params.pr.telemetry = i == 0 ? Telemetry::kOff : Telemetry::kOn;
    params.scale_denom = 64;
    params.threads = 4;
    ranks[i] = algo::run_method_native(Method::kHipa, g, params).ranks;
  }
  EXPECT_TRUE(bitwise_equal(ranks[0], ranks[1]));
}

TEST(Telemetry, OffRunsCarryNoTelemetry) {
  const graph::Graph g = test_graph(93);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 3;
  params.scale_denom = 64;
  const auto report =
      algo::run_method_sim(Method::kHipa, g, machine, params).report;
  EXPECT_FALSE(report.telemetry.enabled);
  EXPECT_EQ(report.telemetry.threads, 0u);
  EXPECT_TRUE(report.telemetry.iteration_seconds.empty());
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    const auto& a = report.telemetry[static_cast<Phase>(pi)];
    EXPECT_EQ(a.invocations, 0u);
    EXPECT_EQ(a.messages_produced, 0u);
    EXPECT_EQ(a.messages_consumed, 0u);
  }
}

// ---- counter invariants: per-phase counts sum to run totals ----------------

TEST(Telemetry, PcpmCountsSumToRunTotalsSim) {
  const graph::Graph g = test_graph(94);
  const unsigned iters = 5;
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  engine::SimBackend backend(machine);
  auto opt = engine::PcpmOptions::hipa(/*threads=*/8, /*nodes=*/2,
                                       /*part bytes=*/4096);
  engine::PcpmEngine<engine::SimBackend> eng(g, opt, backend);
  engine::PageRankOptions pr;
  pr.iterations = iters;
  pr.telemetry = Telemetry::kOn;
  const auto [report, ranks] = eng.run(pr);

  const runtime::RunTelemetry& t = report.telemetry;
  ASSERT_TRUE(t.enabled);
  EXPECT_EQ(t.threads, 8u);

  // Invocation arithmetic: init once per thread, scatter and gather
  // once per (thread, iteration).
  EXPECT_EQ(t[Phase::kInit].invocations, 8u);
  EXPECT_EQ(t[Phase::kScatter].invocations, 8u * iters);
  EXPECT_EQ(t[Phase::kGather].invocations, 8u * iters);
  EXPECT_EQ(t.iteration_seconds.size(), iters);

  // Message conservation: everything scatter produced, gather consumed.
  EXPECT_GT(t[Phase::kScatter].messages_produced, 0u);
  EXPECT_EQ(t[Phase::kScatter].messages_produced,
            t[Phase::kGather].messages_consumed);
  EXPECT_EQ(t[Phase::kScatter].bytes_produced,
            t[Phase::kScatter].messages_produced * sizeof(rank_t));
  // Gather also streams the destination entries.
  EXPECT_GE(t[Phase::kGather].bytes_consumed,
            t[Phase::kGather].messages_consumed * sizeof(rank_t));
  EXPECT_EQ(t.total_messages_produced(),
            t[Phase::kScatter].messages_produced);
  EXPECT_EQ(t.total_messages_consumed(),
            t[Phase::kGather].messages_consumed);

  // Region accounting (per-phase dispatch on the sim backend): one
  // init region, one scatter + one gather region per iteration, and
  // the DRAM access split of the regions must add up to the run's.
  EXPECT_EQ(t[Phase::kInit].regions, 1u);
  EXPECT_EQ(t[Phase::kScatter].regions, iters);
  EXPECT_EQ(t[Phase::kGather].regions, iters);
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  double region_seconds = 0.0;
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    const auto& a = t[static_cast<Phase>(pi)];
    local += a.sim_local_accesses;
    remote += a.sim_remote_accesses;
    region_seconds += a.region_seconds;
  }
  EXPECT_EQ(local, report.stats.dram_local_accesses);
  EXPECT_EQ(remote, report.stats.dram_remote_accesses);
  EXPECT_GT(region_seconds, 0.0);
  EXPECT_LE(region_seconds, report.seconds + 1e-9);

  // Sim runs charge simulated cycles, not host time, to the kernels.
  EXPECT_DOUBLE_EQ(t.total_wall_seconds(), 0.0);
  EXPECT_EQ(ranks.size(), g.num_vertices());
}

TEST(Telemetry, PcpmNativeRecordsPerThreadWallAndBarriers) {
  const graph::Graph g = test_graph(95);
  const unsigned iters = 4;
  const unsigned threads = 4;
  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(threads, 1, 4096);
  engine::PcpmEngine<engine::NativeBackend> eng(g, opt, backend);
  engine::PageRankOptions pr;
  pr.iterations = iters;
  pr.telemetry = Telemetry::kOn;
  const auto report = eng.run(pr).report;

  const runtime::RunTelemetry& t = report.telemetry;
  ASSERT_TRUE(t.enabled);
  EXPECT_EQ(t.threads, threads);
  EXPECT_EQ(t[Phase::kInit].invocations, threads);
  EXPECT_EQ(t[Phase::kScatter].invocations, threads * iters);
  EXPECT_EQ(t[Phase::kGather].invocations, threads * iters);
  // Native kernels run on host time; the per-thread wall must be
  // populated and bounded by the run.
  EXPECT_GT(t.total_wall_seconds(), 0.0);
  EXPECT_GE(t[Phase::kScatter].imbalance(), 1.0);
  EXPECT_LE(t[Phase::kScatter].wall_max_seconds, report.seconds);
  if (eng.uses_single_dispatch()) {
    // The run-loop path crosses one barrier per thread after init and
    // one per (thread, iteration) after scatter and gather.
    EXPECT_EQ(t[Phase::kInit].barrier_crossings, threads);
    EXPECT_EQ(t[Phase::kScatter].barrier_crossings, threads * iters);
    EXPECT_EQ(t[Phase::kGather].barrier_crossings, threads * iters);
  }
  EXPECT_EQ(t.iteration_seconds.size(), iters);
}

// ---- facade round-trip: every methodology, both backends -------------------

class TelemetryFacade : public ::testing::TestWithParam<Method> {};

TEST_P(TelemetryFacade, SimRunResultRoundTrip) {
  const Method m = GetParam();
  const graph::Graph g = test_graph(96);
  const auto want = algo::pagerank_reference(g, 6);
  sim::SimMachine machine(sim::Topology::skylake_2s().scaled(64));
  algo::MethodParams params;
  params.pr.iterations = 6;
  params.pr.telemetry = Telemetry::kOn;
  params.scale_denom = 64;
  const auto [report, ranks] = algo::run_method_sim(m, g, machine, params);
  ASSERT_EQ(ranks.size(), g.num_vertices());
  EXPECT_LT(algo::l1_distance(ranks, want),
            1e-6 * static_cast<double>(g.num_vertices()))
      << algo::method_name(m);
  EXPECT_EQ(report.iterations, 6u);
  ASSERT_TRUE(report.telemetry.enabled);
  EXPECT_GT(report.telemetry.threads, 0u);
  EXPECT_EQ(report.telemetry.iteration_seconds.size(), 6u);
  // Every methodology maps its passes onto scatter/gather.
  EXPECT_GT(report.telemetry[Phase::kScatter].invocations, 0u);
  EXPECT_GT(report.telemetry[Phase::kGather].invocations, 0u);
  EXPECT_GT(report.telemetry[Phase::kScatter].messages_produced, 0u);
  EXPECT_GT(report.telemetry[Phase::kGather].messages_consumed, 0u);
}

TEST_P(TelemetryFacade, NativeRunResultRoundTrip) {
  const Method m = GetParam();
  const graph::Graph g = test_graph(97);
  const auto want = algo::pagerank_reference(g, 6);
  algo::MethodParams params;
  params.pr.iterations = 6;
  params.pr.telemetry = Telemetry::kOn;
  params.scale_denom = 64;
  params.threads = 4;
  const auto [report, ranks] = algo::run_method_native(m, g, params);
  ASSERT_EQ(ranks.size(), g.num_vertices());
  EXPECT_LT(algo::l1_distance(ranks, want),
            1e-6 * static_cast<double>(g.num_vertices()))
      << algo::method_name(m);
  ASSERT_TRUE(report.telemetry.enabled);
  EXPECT_EQ(report.telemetry.iteration_seconds.size(), 6u);
  EXPECT_GT(report.telemetry.total_wall_seconds(), 0.0);
  EXPECT_GT(report.telemetry[Phase::kScatter].invocations, 0u);
  EXPECT_GT(report.telemetry[Phase::kGather].invocations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TelemetryFacade,
    ::testing::ValuesIn(algo::all_methods().begin(),
                        algo::all_methods().end()),
    [](const ::testing::TestParamInfo<Method>& param_info) {
      std::string name = algo::method_name(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- method_from_name ------------------------------------------------------

TEST(MethodFromName, RoundTripsAndAliases) {
  for (Method m : algo::all_methods()) {
    const auto back = algo::method_from_name(algo::method_name(m));
    ASSERT_TRUE(back.has_value()) << algo::method_name(m);
    EXPECT_EQ(*back, m);
  }
  EXPECT_EQ(algo::method_from_name("hipa"), Method::kHipa);
  EXPECT_EQ(algo::method_from_name("ppr"), Method::kPpr);
  EXPECT_EQ(algo::method_from_name("vpr"), Method::kVpr);
  EXPECT_EQ(algo::method_from_name("gpop"), Method::kGpop);
  EXPECT_EQ(algo::method_from_name("polymer"), Method::kPolymer);
  EXPECT_FALSE(algo::method_from_name("").has_value());
  EXPECT_FALSE(algo::method_from_name("HIPA").has_value());
  EXPECT_FALSE(algo::method_from_name("pagerank").has_value());
}

}  // namespace
}  // namespace hipa
