// Out-of-core subsystem: segmented HCSR v3 container, streaming edge
// list parsing, the hipa-convert sharder core, and the OocoreEngine's
// streaming-vs-in-core bitwise-identity + budget contracts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algos/pagerank.hpp"
#include "common/error.hpp"
#include "engines/backend.hpp"
#include "engines/oocore_engine.hpp"
#include "graph/builder.hpp"
#include "graph/convert.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using hipa::Edge;
using hipa::Error;
using hipa::eid_t;
using hipa::rank_t;
using hipa::vid_t;
using hipa::engine::NativeBackend;
using hipa::engine::OocoreEngine;
using hipa::engine::OocoreOptions;
using hipa::engine::PageRankOptions;
using namespace hipa::graph;

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Runs `fn`, expecting it to throw hipa::Error; returns the message.
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected hipa::Error, none thrown";
  return {};
}

std::vector<char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const void* data,
                std::size_t bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data, 1, bytes, f), bytes);
  std::fclose(f);
}

/// Skewed test graph sharded small enough to span several segments.
Graph zipf_graph() {
  ZipfParams zp;
  zp.num_vertices = 800;
  zp.num_edges = 6000;
  zp.seed = 11;
  const std::vector<Edge> edges = generate_zipf(zp);
  return build_graph(zp.num_vertices, edges);
}

constexpr std::size_t kSmallSegment = 4096;

}  // namespace

// ---------------------------------------------------------------------------
// Streaming edge-list parsing
// ---------------------------------------------------------------------------

TEST(OocoreStream, MatchesReadEdgeListAndBoundsChunks) {
  const std::string path = tmp_path("oocore_stream.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n0 1\n1 2\n% more\n2 0\n3 1\n0 3\n", f);
  std::fclose(f);

  const EdgeListFile whole = read_edge_list(path);
  std::vector<Edge> streamed;
  std::size_t max_chunk = 0;
  const EdgeListInfo info = stream_edge_list(
      path,
      [&](std::span<const Edge> chunk) {
        max_chunk = std::max(max_chunk, chunk.size());
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
      },
      /*chunk_edges=*/2);
  EXPECT_EQ(info.num_vertices, whole.num_vertices);
  EXPECT_EQ(info.num_edges, whole.edges.size());
  EXPECT_EQ(streamed, whole.edges);
  EXPECT_LE(max_chunk, 2u);  // never materializes more than one chunk
  std::remove(path.c_str());
}

TEST(OocoreStream, KeepsStrictParseErrors) {
  const std::string path = tmp_path("oocore_stream_bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0 1\n2 -3\n", f);
  std::fclose(f);
  const std::string msg = error_message([&] {
    stream_edge_list(path, [](std::span<const Edge>) {});
  });
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative destination id"), std::string::npos) << msg;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Segmented container round trip + integrity
// ---------------------------------------------------------------------------

TEST(OocoreFormat, RoundTripReassemblesThePullCsr) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_rt.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);

  SegmentedCsr sc = SegmentedCsr::open(path);
  EXPECT_EQ(sc.num_vertices(), g.num_vertices());
  EXPECT_EQ(sc.num_edges(), g.num_edges());
  ASSERT_GT(sc.num_segments(), 3u) << "graph too small to segment";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sc.out_degrees()[v], g.out.degree(v));
  }

  // Reassemble the in-CSR segment by segment; every offset and source
  // must be bitwise what the in-memory transpose holds.
  std::vector<char> payload(sc.max_payload_bytes());
  const auto in_offsets = g.in.offsets();
  const auto in_targets = g.in.targets();
  for (unsigned s = 0; s < sc.num_segments(); ++s) {
    sc.read_segment(s, payload.data());
    const SegmentedCsr::SegmentView view = sc.view(s, payload.data());
    const eid_t base = in_offsets[view.range.begin];
    for (vid_t v = view.range.begin; v < view.range.end; ++v) {
      ASSERT_EQ(view.offsets[v - view.range.begin],
                in_offsets[v] - base);
    }
    ASSERT_EQ(view.offsets[view.range.size()],
              in_offsets[view.range.end] - base);
    ASSERT_EQ(view.sources.size(), in_offsets[view.range.end] - base);
    for (std::size_t i = 0; i < view.sources.size(); ++i) {
      ASSERT_EQ(view.sources[i], in_targets[base + i]);
    }
  }
  // Payload staging never exceeded one segment; fetch accounting saw
  // every byte exactly once.
  EXPECT_EQ(sc.bytes_fetched(), sc.total_payload_bytes());
  std::remove(path.c_str());
}

TEST(OocoreFormat, MapUnmapTracksPeakBytes) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_map.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);
  SegmentedCsr sc = SegmentedCsr::open(path);
  ASSERT_GE(sc.num_segments(), 3u);

  const std::size_t b0 = sc.segment(0).payload_bytes;
  const std::size_t b1 = sc.segment(1).payload_bytes;
  const std::size_t b2 = sc.segment(2).payload_bytes;
  const void* p0 = sc.map_segment(0);
  const void* p1 = sc.map_segment(1);
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(sc.map_segment(0), p0);  // idempotent, no double accounting
  EXPECT_EQ(sc.mapped_bytes(), b0 + b1);
  sc.unmap_segment(0);
  EXPECT_EQ(sc.mapped_bytes(), b1);
  (void)sc.map_segment(2);
  EXPECT_EQ(sc.mapped_bytes(), b1 + b2);
  EXPECT_EQ(sc.peak_mapped_bytes(),
            std::max(b0 + b1, b1 + b2));  // high-water, not current
  // Mapped data is directly usable.
  const SegmentedCsr::SegmentView view = sc.view(1, p1);
  EXPECT_EQ(view.range.begin, sc.segment(1).v_begin);
  sc.unmap_segment(1);
  sc.unmap_segment(2);
  EXPECT_EQ(sc.mapped_bytes(), 0u);
  std::remove(path.c_str());
}

TEST(OocoreFormat, RejectsTruncatedFile) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_trunc.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);
  std::vector<char> bytes = slurp(path);
  {
    // Chop into the last segment's payload proper (the file ends with
    // page padding, which truncation must reach past to matter).
    SegmentedCsr sc = SegmentedCsr::open(path);
    const SegmentInfo& last = sc.segment(sc.num_segments() - 1);
    bytes.resize(last.file_offset + last.payload_bytes / 2);
  }
  write_file(path, bytes.data(), bytes.size());
  const std::string msg =
      error_message([&] { (void)SegmentedCsr::open(path); });
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(OocoreFormat, RejectsCorruptSegmentPayload) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_flip.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);
  {
    SegmentedCsr sc = SegmentedCsr::open(path);
    std::vector<char> bytes = slurp(path);
    // Flip one byte in the middle of the last segment's payload.
    const SegmentInfo& info = sc.segment(sc.num_segments() - 1);
    bytes[info.file_offset + info.payload_bytes / 2] ^= 0x01;
    write_file(path, bytes.data(), bytes.size());
  }
  SegmentedCsr sc = SegmentedCsr::open(path);  // manifest still intact
  std::vector<char> payload(sc.max_payload_bytes());
  const unsigned last = sc.num_segments() - 1;
  const std::string msg =
      error_message([&] { sc.read_segment(last, payload.data()); });
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
  // The mmap path verifies the same checksum.
  const std::string mmsg =
      error_message([&] { (void)sc.map_segment(last); });
  EXPECT_NE(mmsg.find("checksum mismatch"), std::string::npos) << mmsg;
  // Undamaged segments still read fine.
  sc.read_segment(0, payload.data());
  std::remove(path.c_str());
}

TEST(OocoreFormat, RejectsCorruptManifest) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_manifest.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);
  std::vector<char> bytes = slurp(path);
  bytes[40] ^= 0x01;  // first manifest word (segment 0 v_begin)
  write_file(path, bytes.data(), bytes.size());
  const std::string msg =
      error_message([&] { (void)SegmentedCsr::open(path); });
  EXPECT_NE(msg.find("manifest checksum mismatch"), std::string::npos)
      << msg;
  std::remove(path.c_str());
}

TEST(OocoreFormat, VersionSkewIsExplainedBothWays) {
  const Graph g = zipf_graph();
  const std::string v3 = tmp_path("oocore_skew.hcsr3");
  const std::string v2 = tmp_path("oocore_skew.hcsr");
  save_segmented_csr(v3, g, kSmallSegment);
  save_csr(v2, g.out);

  // A v3 file fed to the in-core loader points at SegmentedCsr...
  const std::string msg3 = error_message([&] { (void)load_csr(v3); });
  EXPECT_NE(msg3.find("segmented HCSR v3"), std::string::npos) << msg3;
  EXPECT_NE(msg3.find("SegmentedCsr"), std::string::npos) << msg3;
  // ...and a v2 file fed to the segmented opener points at the sharder.
  const std::string msg2 =
      error_message([&] { (void)SegmentedCsr::open(v2); });
  EXPECT_NE(msg2.find("plain HCSR v2"), std::string::npos) << msg2;
  EXPECT_NE(msg2.find("hipa-convert"), std::string::npos) << msg2;
  std::remove(v3.c_str());
  std::remove(v2.c_str());
}

// ---------------------------------------------------------------------------
// hipa-convert core
// ---------------------------------------------------------------------------

TEST(OocoreConvert, ByteIdenticalToInMemorySharding) {
  ZipfParams zp;
  zp.num_vertices = 500;
  zp.num_edges = 4000;
  zp.seed = 23;
  std::vector<Edge> edges = generate_zipf(zp);
  vid_t n = 0;
  for (const Edge& e : edges) n = std::max(n, std::max(e.src, e.dst) + 1);

  const std::string el = tmp_path("oocore_conv.txt");
  const std::string from_list = tmp_path("oocore_conv_a.hcsr3");
  const std::string from_mem = tmp_path("oocore_conv_b.hcsr3");
  write_edge_list(el, n, edges);

  ConvertOptions opt;
  opt.target_segment_bytes = kSmallSegment;
  opt.chunk_edges = 512;  // force many streaming chunks
  const ConvertStats stats =
      convert_edge_list_to_segmented(el, from_list, opt);
  EXPECT_EQ(stats.num_vertices, n);
  EXPECT_EQ(stats.num_edges, edges.size());
  EXPECT_GT(stats.num_segments, 1u);

  // The bounded-memory external build must produce bitwise the file
  // the in-memory path writes (same plans, same transpose order).
  save_segmented_csr(from_mem, build_graph(n, edges), kSmallSegment);
  EXPECT_EQ(slurp(from_list), slurp(from_mem));
  // Spill files were cleaned up.
  for (unsigned s = 0; s < stats.num_segments; ++s) {
    const std::string spill =
        from_list + ".seg" + std::to_string(s) + ".tmp";
    std::FILE* f = std::fopen(spill.c_str(), "rb");
    EXPECT_EQ(f, nullptr) << "leftover spill file " << spill;
    if (f != nullptr) std::fclose(f);
  }
  std::remove(el.c_str());
  std::remove(from_list.c_str());
  std::remove(from_mem.c_str());
}

// ---------------------------------------------------------------------------
// Out-of-core engine: bitwise identity, budget, telemetry
// ---------------------------------------------------------------------------

namespace {

std::vector<rank_t> run_oocore(const std::string& path, unsigned threads,
                               bool streaming, bool prefetch,
                               unsigned iterations = 15) {
  NativeBackend backend;
  OocoreOptions opt;
  opt.num_threads = threads;
  opt.streaming = streaming;
  opt.prefetch = prefetch;
  OocoreEngine eng(path, opt, backend);
  PageRankOptions pr;
  pr.iterations = iterations;
  return eng.run(pr).ranks;
}

}  // namespace

TEST(OocoreEngineTest, BitwiseIdenticalAcrossModesAndGraphs) {
  struct Case {
    const char* name;
    Graph g;
  };
  RmatParams rp;
  rp.scale = 7;
  rp.edge_factor = 8;
  std::vector<Case> cases;
  {
    const std::vector<Edge> e = generate_rmat(rp);
    cases.push_back({"rmat", build_graph(vid_t{1} << rp.scale, e)});
  }
  {
    const std::vector<Edge> e = generate_erdos_renyi(600, 5000, 3);
    cases.push_back({"er", build_graph(600, e)});
  }
  cases.push_back({"zipf", zipf_graph()});

  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string path = tmp_path("oocore_bitwise.hcsr3");
    save_segmented_csr(path, c.g, kSmallSegment);

    // In-core run of the same kernel is the reference point.
    const std::vector<rank_t> incore =
        run_oocore(path, 3, /*streaming=*/false, /*prefetch=*/false);
    // Streaming must match bitwise: synchronous and prefetched, and
    // independently of the thread count.
    EXPECT_EQ(incore, run_oocore(path, 3, true, false));
    EXPECT_EQ(incore, run_oocore(path, 3, true, true));
    EXPECT_EQ(incore, run_oocore(path, 1, true, true));
    EXPECT_EQ(incore, run_oocore(path, 5, true, true));

    // And the whole family agrees with the serial oracle.
    const std::vector<rank_t> oracle =
        hipa::algo::pagerank_reference(c.g, 15);
    EXPECT_LT(hipa::algo::l1_distance(incore, oracle), 1e-3);
    std::remove(path.c_str());
  }
}

TEST(OocoreEngineTest, RespectsResidentBudget) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_budget.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);

  NativeBackend backend;
  OocoreOptions opt;
  opt.num_threads = 3;
  {
    SegmentedCsr probe = SegmentedCsr::open(path);
    // A budget that holds the two staging slots but NOT the whole
    // graph: the defining out-of-core condition.
    opt.resident_budget_bytes = 2 * probe.max_payload_bytes() + 1024;
    ASSERT_LT(opt.resident_budget_bytes, probe.total_payload_bytes())
        << "test graph must exceed its own budget";
  }
  OocoreEngine eng(path, opt, backend);
  PageRankOptions pr;
  pr.iterations = 10;
  const auto result = eng.run(pr);
  const auto& st = eng.stats();

  EXPECT_GT(st.segments, 3u);
  EXPECT_LE(st.peak_resident_bytes, st.resident_budget_bytes);
  EXPECT_LT(st.peak_resident_bytes, eng.graph().total_payload_bytes());
  // Every iteration re-streams the full topology through the slots.
  EXPECT_EQ(st.segment_fetches,
            std::uint64_t{pr.iterations} * st.segments);
  EXPECT_EQ(st.bytes_fetched,
            std::uint64_t{pr.iterations} * eng.graph().total_payload_bytes());
  EXPECT_GE(st.overlap_ratio(), 0.0);
  EXPECT_LE(st.overlap_ratio(), 1.0);
  EXPECT_GT(st.fetch_seconds, 0.0);
  EXPECT_EQ(result.report.iterations, pr.iterations);
  std::remove(path.c_str());
}

TEST(OocoreEngineTest, RejectsBudgetBelowTwoSlots) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_tiny_budget.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);
  NativeBackend backend;
  OocoreOptions opt;
  opt.num_threads = 2;
  opt.resident_budget_bytes = 1;  // cannot hold even one slot
  const std::string msg = error_message(
      [&] { OocoreEngine eng(path, opt, backend); });
  EXPECT_NE(msg.find("staging slots"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(OocoreEngineTest, ChargesIoWaitTelemetry) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_tel.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);

  NativeBackend backend;
  OocoreOptions opt;
  opt.num_threads = 2;
  OocoreEngine eng(path, opt, backend);
  PageRankOptions pr;
  pr.iterations = 8;
  pr.telemetry = hipa::runtime::Telemetry::kOn;
  const auto telemetered = eng.run(pr);
  ASSERT_TRUE(telemetered.report.telemetry.enabled);
  const auto& io_wait = telemetered.report.telemetry[
      hipa::runtime::Phase::kIoWait];
  // One wait per segment per iteration, all charged to the io_wait row.
  EXPECT_EQ(io_wait.invocations,
            std::uint64_t{pr.iterations} * eng.graph().num_segments());
  EXPECT_GE(io_wait.wall_sum_seconds, 0.0);
  EXPECT_EQ(io_wait.bytes_consumed,
            std::uint64_t{pr.iterations} *
                eng.graph().total_payload_bytes());
  // Compute phases are present too.
  EXPECT_GT(telemetered.report.telemetry[
      hipa::runtime::Phase::kGather].invocations, 0u);

  // Telemetry must not perturb the ranks.
  PageRankOptions plain;
  plain.iterations = 8;
  NativeBackend backend2;
  OocoreEngine eng2(path, opt, backend2);
  EXPECT_EQ(eng2.run(plain).ranks, telemetered.ranks);
  std::remove(path.c_str());
}

TEST(OocoreEngineTest, ToleranceStopsIdenticallyAcrossModes) {
  const Graph g = zipf_graph();
  const std::string path = tmp_path("oocore_tol.hcsr3");
  save_segmented_csr(path, g, kSmallSegment);

  auto run_tol = [&](bool streaming, bool prefetch) {
    NativeBackend backend;
    OocoreOptions opt;
    opt.num_threads = 3;
    opt.streaming = streaming;
    opt.prefetch = prefetch;
    OocoreEngine eng(path, opt, backend);
    PageRankOptions pr;
    pr.iterations = 50;
    pr.tolerance = 1e-5;
    return eng.run(pr);
  };
  const auto incore = run_tol(false, false);
  const auto sync = run_tol(true, false);
  const auto async = run_tol(true, true);
  EXPECT_LT(incore.report.iterations, 50u) << "tolerance never reached";
  EXPECT_EQ(incore.report.iterations, sync.report.iterations);
  EXPECT_EQ(incore.report.iterations, async.report.iterations);
  EXPECT_EQ(incore.report.last_delta, sync.report.last_delta);
  EXPECT_EQ(incore.report.last_delta, async.report.last_delta);
  EXPECT_EQ(incore.ranks, sync.ranks);
  EXPECT_EQ(incore.ranks, async.ranks);
  std::remove(path.c_str());
}
