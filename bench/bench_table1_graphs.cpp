// Reproduces paper Table 1: graph descriptions — vertex/edge counts and
// intra-/inter-edges per partition at the 1 MB partition size.
//
// Stand-in rows print both the scaled synthetic sizes actually used and
// the paper's full-size numbers for comparison.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);

  bench::print_banner("Table 1: graph descriptions", "paper Table 1");
  std::printf("%-9s %6s | %9s %10s %7s %7s | %10s %10s %8s\n", "graph",
              "1/N", "#V", "#E", "avgdeg", "skew90", "intra/prt",
              "inter/prt", "cmpr");
  std::printf("  (skew90: smallest vertex fraction covering 90%% of "
              "edges; intra/inter at the paper's 1 MB partition, scaled "
              "1/N; cmpr: edges per compressed message)\n");

  for (const auto& d : bench::load_datasets(flags)) {
    const auto deg = graph::degree_stats(d.graph.out);
    // 1 MB partition scaled with the dataset (paper Table 1 basis).
    const vid_t per_part = static_cast<vid_t>(
        std::max<std::uint64_t>(1024 * 1024 / d.scale / sizeof(rank_t), 1));
    const auto ps = graph::partition_edge_stats(d.graph.out, per_part);
    const double cmpr =
        ps.compressed_inter_total == 0
            ? 0.0
            : static_cast<double>(ps.inter_edges_total) /
                  static_cast<double>(ps.compressed_inter_total);
    std::printf("%-9s %6u | %9u %10llu %7.1f %7.3f | %10.0f %10.0f %8.2f\n",
                d.name.c_str(), d.scale, d.graph.num_vertices(),
                static_cast<unsigned long long>(d.graph.num_edges()),
                deg.avg_degree, deg.skew_vertex_fraction_for_90pct_edges,
                ps.intra_per_partition, ps.inter_per_partition, cmpr);
  }

  std::printf("\npaper Table 1 (full size; intra/inter per 1MB partition):\n");
  for (const auto& info : graph::paper_datasets()) {
    std::printf("  %-9s %.1fM vertices, %.2gB/M edges (%s)\n",
                info.name.c_str(), info.paper_vertices / 1e6,
                info.paper_edges >= 1e9 ? info.paper_edges / 1e9
                                        : info.paper_edges / 1e6,
                info.description.c_str());
  }
  std::printf("  journal 30.8K/7.9M  pld 72K/1.6M  wiki 74.9K/0.5M\n"
              "  kron 113K/2.8M  twitter 10.5K/2.3M  mpi 0.2M/1.6M\n");
  return 0;
}
