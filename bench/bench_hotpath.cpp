// Hot-path perf harness for the compact-destination encoding.
//
// Runs the two partition-centric methodologies whose gather phase
// streams the destination list (HiPa and p-PR) on the six dataset
// stand-ins, twice each: once with the automatic encoding choice
// (16-bit partition-local destinations whenever every partition fits
// 2^15 vertices) and once with the 32-bit encoding forced, so the
// compaction delta is measured rather than asserted. Each
// configuration runs natively (wall-clock edges/sec) and on the
// simulated Skylake testbed (cycles, DRAM bytes per edge).
//
// It also measures the thread-management tax directly: a
// `dispatch_overhead` micro-section times `2 × iters` empty condvar
// phase() dispatches against ONE run_loop parallel region with the
// same number of in-region barriers (paper Algorithm 1 vs 2 thread
// management, isolated from all memory traffic), and records the host
// topology (CPUs, NUMA nodes, pinning mode, mbind availability) so
// numbers are interpretable across machines.
//
// A `barrier` micro-section compares the flat sense-reversing
// SpinBarrier against the topology-aware two-level TreeBarrier
// (ns/crossing, empty kernel) at one-node-worth, two-nodes-worth and
// all-CPUs thread counts, and a `reorder` section runs HiPa natively
// per vertex-reorder mode (none/degree/hub, filter with --reorder=)
// with hw counters + telemetry on, recording per-mode iteration time,
// LLC miss rate, barrier-wait seconds, and the rank agreement vs the
// unreordered run (inverse-permutation happens inside the facade).
//
// Two run-level telemetry sections close the report: `telemetry_runs`
// re-runs HiPa/p-PR/GPOP (or --methods=) natively with telemetry kOn
// and serializes the per-phase wall/barrier/messages/bytes aggregates
// through the shared bench schema, and `telemetry_overhead` times HiPa
// with telemetry off vs on — the off ranks must match the on ranks
// bitwise (the collection guard is `if constexpr`, so kOff compiles to
// the untelemetered code).
//
// An `oocore` section shards the smoke dataset into a segmented HCSR
// v3 temp file and runs the out-of-core engine twice — fully in-core
// vs streaming through two segment-sized staging slots with async
// prefetch — recording both times, bytes fetched, the peak resident
// bytes against the budget, the prefetch overlap ratio (fetch time
// hidden behind compute), and whether the two rank vectors are
// bitwise identical (they must be).
//
// Besides the human-readable table it emits machine-readable JSON
// (default BENCH_hotpath.json, override with --out=) so CI and
// EXPERIMENTS.md can track the numbers. `--smoke` shrinks to one tiny
// dataset and two iterations for the `perf-smoke` ctest label.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "engines/oocore_engine.hpp"
#include "graph/io.hpp"
#include "runtime/affinity.hpp"
#include "runtime/placement.hpp"
#include "runtime/telemetry.hpp"

namespace {

using namespace hipa;

/// Measurements for one (dataset, method, encoding) configuration.
struct EncodingRun {
  bool compact = false;             ///< encoding the bins actually chose
  std::uint64_t footprint = 0;      ///< bins footprint, bytes
  double dst_bytes_per_edge = 0.0;  ///< dst-list bytes / |E|
  double native_seconds = 0.0;
  double native_edges_per_sec = 0.0;
  double sim_bytes_per_edge = 0.0;  ///< DRAM bytes / |E| / iteration
  std::uint64_t sim_cycles = 0;
  std::vector<rank_t> ranks;  ///< native ranks, for the cross-check
};

EncodingRun run_encoding(const bench::ScaledDataset& d, algo::Method m,
                         pcp::DstEncoding enc, unsigned iters) {
  EncodingRun r;
  engine::PageRankOptions pr;
  pr.iterations = iters;
  const eid_t edges = d.graph.num_edges();
  const std::uint64_t part_bytes =
      algo::default_partition_bytes(m, d.scale);

  auto options = [&](unsigned threads, unsigned nodes) {
    engine::PcpmOptions o = m == algo::Method::kHipa
                                ? engine::PcpmOptions::hipa(threads, nodes,
                                                            part_bytes)
                                : engine::PcpmOptions::ppr(threads, nodes,
                                                           part_bytes);
    o.dst_encoding = enc;
    return o;
  };

  {  // Native: wall-clock throughput on this host (one NUMA node).
    engine::NativeBackend backend;
    const unsigned threads = std::max(1u, runtime::available_cpus());
    engine::PcpmEngine<engine::NativeBackend> eng(
        d.graph, options(threads, 1), backend);
    r.compact = eng.bins().compact();
    r.footprint = eng.bins().footprint_bytes();
    r.dst_bytes_per_edge =
        edges == 0 ? 0.0
                   : static_cast<double>(eng.bins().total_dests() *
                                         eng.bins().dst_entry_bytes()) /
                         static_cast<double>(edges);
    auto res = eng.run(pr);
    r.ranks = std::move(res.ranks);
    const engine::RunReport& rep = res.report;
    r.native_seconds = rep.seconds;
    r.native_edges_per_sec =
        rep.seconds > 0.0 ? static_cast<double>(edges) * iters / rep.seconds
                          : 0.0;
  }
  {  // Simulated Skylake at the dataset's matched scale.
    sim::SimMachine machine = bench::make_machine(d.scale);
    engine::SimBackend backend(machine);
    const unsigned threads = algo::default_threads(m, machine.topology());
    engine::PcpmEngine<engine::SimBackend> eng(
        d.graph, options(threads, machine.topology().num_nodes), backend);
    const auto rep = eng.run(pr).report;
    r.sim_bytes_per_edge = bench::mape_per_iter(rep, edges);
    r.sim_cycles = rep.stats.total_cycles;
  }
  return r;
}

// ---- dispatch overhead ------------------------------------------------------

/// Empty-kernel timing of the two thread-management models on one
/// persistent pinned team: per-phase condvar dispatch vs a single
/// run_loop region with in-region spin barriers.
struct DispatchOverhead {
  unsigned threads = 1;
  unsigned iterations = 0;
  double phase_ns_per_iter = 0.0;     ///< 2 condvar dispatches
  double run_loop_ns_per_iter = 0.0;  ///< 2 spin-barrier crossings
};

DispatchOverhead measure_dispatch_overhead(bool smoke) {
  DispatchOverhead d;
  d.threads = std::max(1u, runtime::available_cpus());
  d.iterations = smoke ? 500 : 5000;

  engine::ThreadTeamSpec spec;
  spec.num_threads = d.threads;
  spec.persistent = true;
  spec.binding = engine::ThreadTeamSpec::Binding::kSpread;

  engine::NativeBackend backend;
  backend.start_team(spec);
  // Warm both paths (thread creation, first pin, lazy pages).
  backend.phase([](unsigned, engine::NoopMem&) {});
  backend.run_loop([](unsigned, engine::NoopMem&, engine::LoopCtl& ctl) {
    ctl.barrier();
  });

  {  // Algorithm-1-style phase management on the persistent team:
     // every scatter and gather is its own condvar wakeup+join.
    Timer t;
    for (unsigned it = 0; it < d.iterations; ++it) {
      backend.phase([](unsigned, engine::NoopMem&) {});
      backend.phase([](unsigned, engine::NoopMem&) {});
    }
    d.phase_ns_per_iter =
        t.seconds() * 1e9 / static_cast<double>(d.iterations);
  }
  {  // Algorithm 2: one dispatch, barriers inside the region.
    const unsigned iters = d.iterations;
    Timer t;
    backend.run_loop(
        [iters](unsigned, engine::NoopMem&, engine::LoopCtl& ctl) {
          for (unsigned it = 0; it < iters; ++it) {
            ctl.barrier();
            ctl.barrier();
          }
        });
    d.run_loop_ns_per_iter =
        t.seconds() * 1e9 / static_cast<double>(d.iterations);
  }
  backend.end_team();
  return d;
}

// ---- barrier shapes ---------------------------------------------------------

/// ns per barrier crossing for one barrier shape at one team size
/// (empty kernel; isolates the synchronization protocol itself).
struct BarrierPoint {
  unsigned threads = 1;
  unsigned tree_groups = 0;  ///< leaves the tree used (0 = flat fallback)
  double flat_ns_per_crossing = 0.0;
  double tree_ns_per_crossing = 0.0;
};

struct BarrierSection {
  unsigned crossings = 0;  ///< timed crossings per point per shape
  std::vector<BarrierPoint> points;
};

double time_crossings(engine::NativeBackend& backend, unsigned crossings) {
  // Warm the requested barrier shape (first run_loop builds it and
  // faults its lines), then time a second region of pure crossings.
  backend.run_loop([](unsigned, engine::NoopMem&, engine::LoopCtl& ctl) {
    ctl.barrier();
  });
  Timer t;
  backend.run_loop(
      [crossings](unsigned, engine::NoopMem&, engine::LoopCtl& ctl) {
        for (unsigned c = 0; c < crossings; ++c) ctl.barrier();
      });
  return t.seconds() * 1e9 / static_cast<double>(crossings);
}

BarrierSection measure_barrier(bool smoke) {
  BarrierSection s;
  s.crossings = smoke ? 2000 : 20000;
  const runtime::HostTopology& topo = runtime::topology();
  const unsigned cpus = std::max(1u, runtime::available_cpus());
  const unsigned nodes = std::max<unsigned>(1, topo.num_nodes());
  const unsigned per_node = std::max(1u, cpus / nodes);

  // One node's worth, two nodes' worth, the whole host (deduped).
  std::vector<unsigned> counts = {per_node, std::min(cpus, 2 * per_node),
                                  cpus};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  for (unsigned threads : counts) {
    BarrierPoint p;
    p.threads = threads;

    engine::ThreadTeamSpec spec;
    spec.num_threads = threads;
    spec.persistent = true;
    if (nodes >= 2) {
      // Real NUMA: block threads onto nodes so the tree's leaves are
      // node-local cache lines (the configuration the tree exists for).
      spec.binding = engine::ThreadTeamSpec::Binding::kNodeBlocked;
      spec.threads_per_node.assign(nodes, threads / nodes);
      for (unsigned i = 0; i < threads % nodes; ++i) {
        ++spec.threads_per_node[i];
      }
      for (unsigned c : spec.threads_per_node) {
        if (c > 0) ++p.tree_groups;
      }
    } else {
      // Single node: forced kTree synthesizes two balanced halves so
      // the two-level protocol is still exercised and measured.
      spec.binding = engine::ThreadTeamSpec::Binding::kSpread;
      p.tree_groups = threads >= 2 ? 2 : 0;
    }

    engine::NativeBackend backend;
    backend.start_team(spec);
    backend.set_barrier_kind(runtime::BarrierKind::kFlat);
    p.flat_ns_per_crossing = time_crossings(backend, s.crossings);
    backend.set_barrier_kind(runtime::BarrierKind::kTree);
    p.tree_ns_per_crossing = time_crossings(backend, s.crossings);
    backend.end_team();
    s.points.push_back(p);
  }
  return s;
}

// ---- run-level telemetry ----------------------------------------------------

/// One native facade run of `m` with the requested telemetry mode and
/// (for the kOn report runs) hardware counters, the placement audit
/// and an optional Chrome trace.
algo::RunResult run_native(const bench::ScaledDataset& d, algo::Method m,
                           unsigned iters, runtime::Telemetry tel,
                           runtime::HwProf hw = runtime::HwProf::kOff,
                           bool audit = false,
                           const std::string& trace_path = {},
                           engine::Reorder reorder = engine::Reorder::kNone) {
  algo::MethodParams params;
  params.scale_denom = d.scale;
  params.pr.iterations = iters;
  params.pr.telemetry = tel;
  params.pr.hw_counters = hw;
  params.pr.audit_placement = audit;
  params.pr.trace_path = trace_path;
  params.pr.reorder = reorder;
  return algo::run_method_native(m, d.graph, params);
}

// ---- vertex reordering ------------------------------------------------------

/// One native HiPa run under a vertex-reorder mode: iteration time,
/// the permutation's preprocessing cost, barrier-wait total, and the
/// LLC miss rate when the PMU is reachable.
struct ReorderRun {
  engine::Reorder mode = engine::Reorder::kNone;
  double native_seconds = 0.0;
  double preprocessing_seconds = 0.0;
  double barrier_sum_seconds = 0.0;
  bool hw_available = false;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_load_misses = 0;
  double llc_miss_rate = 0.0;  ///< misses / loads, 0 without PMU
  double ranks_l1_vs_none = 0.0;
};

ReorderRun summarize_reorder(engine::Reorder mode,
                             const algo::RunResult& res,
                             std::span<const rank_t> none_ranks) {
  ReorderRun r;
  r.mode = mode;
  r.native_seconds = res.report.seconds;
  r.preprocessing_seconds = res.report.preprocessing_seconds;
  const runtime::RunTelemetry& t = res.report.telemetry;
  r.barrier_sum_seconds = t.total_barrier_seconds();
  r.hw_available = t.hw_available;
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    const auto& hw = t[static_cast<runtime::Phase>(pi)].hw;
    r.llc_loads += hw.llc_loads;
    r.llc_load_misses += hw.llc_load_misses;
  }
  r.llc_miss_rate =
      r.llc_loads > 0 ? static_cast<double>(r.llc_load_misses) /
                            static_cast<double>(r.llc_loads)
                      : 0.0;
  r.ranks_l1_vs_none = algo::l1_distance(res.ranks, none_ranks);
  return r;
}

/// The zero-overhead-off guarantee, measured: telemetry kOff vs kOn on
/// the same engine/dataset. kOff must match the untelemetered ranks
/// bitwise (the guard is `if constexpr`; the kOff instantiation IS the
/// old code), and kOn's cost is reported so regressions are visible.
struct TelemetryOverhead {
  unsigned reps = 0;
  double off_seconds = 0.0;  ///< best-of-reps, telemetry off
  double on_seconds = 0.0;   ///< best-of-reps, telemetry on
  double overhead_frac = 0.0;
  double ranks_l1 = 0.0;  ///< kOff vs kOn ranks; must be exactly 0
};

TelemetryOverhead measure_telemetry_overhead(const bench::ScaledDataset& d,
                                             unsigned iters, bool smoke) {
  TelemetryOverhead t;
  t.reps = smoke ? 2 : 4;
  std::vector<rank_t> off_ranks;
  std::vector<rank_t> on_ranks;
  // One untimed warm-up run, then alternate the off/on order per rep
  // so neither mode systematically inherits the other's warmed pages.
  // The residual delta is code-layout jitter between the two template
  // instantiations (the counters sit outside the per-edge loops) and
  // can come out mildly negative; the enforced guarantee is ranks_l1
  // == 0, i.e. the kOff instantiation IS the untelemetered kernel.
  (void)run_native(d, algo::Method::kHipa, iters,
                   runtime::Telemetry::kOff);
  for (unsigned rep = 0; rep < t.reps; ++rep) {
    const bool off_first = rep % 2 == 0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool is_off = (leg == 0) == off_first;
      auto res = run_native(
          d, algo::Method::kHipa, iters,
          is_off ? runtime::Telemetry::kOff : runtime::Telemetry::kOn);
      if (is_off) {
        if (rep == 0 || res.report.seconds < t.off_seconds) {
          t.off_seconds = res.report.seconds;
        }
        off_ranks = std::move(res.ranks);
      } else {
        if (rep == 0 || res.report.seconds < t.on_seconds) {
          t.on_seconds = res.report.seconds;
        }
        on_ranks = std::move(res.ranks);
      }
    }
  }
  t.overhead_frac = t.off_seconds > 0.0
                        ? t.on_seconds / t.off_seconds - 1.0
                        : 0.0;
  t.ranks_l1 = algo::l1_distance(off_ranks, on_ranks);
  return t;
}

void emit_host(bench::JsonWriter& jw) {
  const runtime::HostTopology& topo = runtime::topology();
  jw.key("host");
  jw.begin_object();
  jw.kv("cpus", topo.num_cpus());
  jw.kv("numa_nodes", topo.num_nodes());
  jw.key("cpus_per_node");
  jw.begin_array();
  for (const auto& cpus : topo.node_cpus) {
    jw.value(static_cast<unsigned>(cpus.size()));
  }
  jw.end_array();
  jw.kv("topology_source", topo.from_sysfs ? "sysfs" : "fallback");
  jw.kv("numa_binding_available", runtime::numa_binding_available());
  jw.kv("pinning", "spread");  // dispatch section pins kSpread 1:1
  jw.end_object();
}

void emit_run(bench::JsonWriter& jw, const char* key, const EncodingRun& r) {
  jw.key(key);
  jw.begin_object();
  jw.kv("compact", r.compact);
  jw.kv("bins_footprint_bytes", r.footprint);
  jw.kv("dst_bytes_per_edge", r.dst_bytes_per_edge);
  jw.kv("native_seconds", r.native_seconds);
  jw.kv("native_edges_per_sec", r.native_edges_per_sec);
  jw.kv("sim_bytes_per_edge", r.sim_bytes_per_edge);
  jw.kv("sim_cycles", r.sim_cycles);
  jw.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipa;
  bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters = flags.iterations != 0 ? flags.iterations
                         : flags.smoke        ? 2
                         : flags.quick        ? 3
                                              : 5;
  if (flags.smoke && flags.dataset.empty()) flags.dataset = "journal";
  const std::string out_path =
      flags.out.empty() ? "BENCH_hotpath.json" : flags.out;

  bench::print_banner("Hot path: compact vs wide destination encoding",
                      "paper \xc2\xa7" "4.2 gather stream traffic");
  std::printf("auto = 16-bit partition-local encoding when every partition "
              "fits 2^15 vertices;\nwide = 32-bit encoding forced. Native "
              "rows use %u host thread(s);\nsim rows use the paper's "
              "per-method defaults.\n\n",
              std::max(1u, runtime::available_cpus()));
  std::printf("%-9s %-5s %5s | %4s %9s %8s | %9s %9s | %7s\n", "graph",
              "meth", "1/N", "enc", "Medge/s", "vs-wide", "simB/e", "wideB/e",
              "dst-x");

  const algo::Method methods[] = {algo::Method::kHipa, algo::Method::kPpr};

  std::FILE* jf = std::fopen(out_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.begin_object();
  jw.kv("bench", "hotpath");
  jw.kv("iterations", iters);
  jw.kv("quick", flags.quick);
  jw.kv("smoke", flags.smoke);
  emit_host(jw);

  const DispatchOverhead ov = measure_dispatch_overhead(flags.smoke);
  std::printf("dispatch overhead (%u thread(s), %u empty iterations):\n"
              "  phase()-per-phase : %10.0f ns/iter  (2 condvar "
              "dispatches)\n"
              "  run_loop          : %10.0f ns/iter  (2 in-region "
              "barriers)\n"
              "  run_loop saves %.1fx per iteration\n\n",
              ov.threads, ov.iterations, ov.phase_ns_per_iter,
              ov.run_loop_ns_per_iter,
              ov.run_loop_ns_per_iter > 0.0
                  ? ov.phase_ns_per_iter / ov.run_loop_ns_per_iter
                  : 0.0);
  jw.key("dispatch_overhead");
  jw.begin_object();
  jw.kv("threads", ov.threads);
  jw.kv("empty_iterations", ov.iterations);
  jw.kv("phase_ns_per_iter", ov.phase_ns_per_iter);
  jw.kv("run_loop_ns_per_iter", ov.run_loop_ns_per_iter);
  jw.kv("run_loop_lower", ov.run_loop_ns_per_iter < ov.phase_ns_per_iter);
  jw.end_object();

  const BarrierSection bs = measure_barrier(flags.smoke);
  std::printf("barrier crossing cost (%u timed crossings per shape):\n",
              bs.crossings);
  std::printf("  %7s %6s | %10s %10s | %s\n", "threads", "leaves",
              "flat ns/x", "tree ns/x", "tree/flat");
  for (const BarrierPoint& p : bs.points) {
    std::printf("  %7u %6u | %10.1f %10.1f | %8.2fx%s\n", p.threads,
                p.tree_groups, p.flat_ns_per_crossing,
                p.tree_ns_per_crossing,
                p.flat_ns_per_crossing > 0.0
                    ? p.tree_ns_per_crossing / p.flat_ns_per_crossing
                    : 0.0,
                p.tree_groups == 0 ? "  (tree falls back to flat)" : "");
  }
  std::printf("\n");
  jw.key("barrier");
  jw.begin_object();
  jw.kv("crossings", bs.crossings);
  jw.key("points");
  jw.begin_array();
  for (const BarrierPoint& p : bs.points) {
    jw.begin_object();
    jw.kv("threads", p.threads);
    jw.kv("tree_groups", p.tree_groups);
    jw.kv("flat_ns_per_crossing", p.flat_ns_per_crossing);
    jw.kv("tree_ns_per_crossing", p.tree_ns_per_crossing);
    jw.end_object();
  }
  jw.end_array();
  // Flattened summary of the all-CPUs point for the regression bands
  // (advisory — barrier latency is host-dependent).
  const BarrierPoint& maxp = bs.points.back();
  jw.kv("max_threads", maxp.threads);
  jw.kv("flat_ns_per_crossing_max_threads", maxp.flat_ns_per_crossing);
  jw.kv("tree_ns_per_crossing_max_threads", maxp.tree_ns_per_crossing);
  jw.kv("tree_not_slower_at_max_threads",
        maxp.tree_ns_per_crossing <= maxp.flat_ns_per_crossing);
  jw.end_object();

  jw.key("datasets");
  jw.begin_array();

  int rc = 0;
  const std::vector<bench::ScaledDataset> datasets =
      bench::load_datasets(flags);
  for (const auto& d : datasets) {
    jw.begin_object();
    jw.kv("name", d.name);
    jw.kv("scale", d.scale);
    jw.kv("vertices", static_cast<std::uint64_t>(d.graph.num_vertices()));
    jw.kv("edges", static_cast<std::uint64_t>(d.graph.num_edges()));
    jw.key("methods");
    jw.begin_array();
    for (algo::Method m : methods) {
      const EncodingRun a =
          run_encoding(d, m, pcp::DstEncoding::kAuto, iters);
      const EncodingRun w =
          run_encoding(d, m, pcp::DstEncoding::kWide, iters);
      // The two encodings perform identical arithmetic in identical
      // order, so the ranks must match bitwise.
      const double l1 = algo::l1_distance(a.ranks, w.ranks);
      if (l1 != 0.0) {
        std::fprintf(stderr, "ERROR: %s/%s compact-vs-wide rank mismatch "
                     "(L1 = %g)\n", d.name.c_str(), algo::method_name(m), l1);
        rc = 1;
      }
      const double speedup = a.native_seconds > 0.0
                                 ? w.native_seconds / a.native_seconds
                                 : 1.0;
      const double ratio =
          a.footprint > 0
              ? static_cast<double>(w.footprint) /
                    static_cast<double>(a.footprint)
              : 1.0;
      std::printf("%-9s %-5s %5u | %4s %9.2f %7.2fx | %9.2f %9.2f | %6.2fx\n",
                  d.name.c_str(), algo::method_name(m), d.scale,
                  a.compact ? "cmp" : "wide", a.native_edges_per_sec / 1e6,
                  speedup, a.sim_bytes_per_edge, w.sim_bytes_per_edge,
                  ratio);

      jw.begin_object();
      jw.kv("method", algo::method_name(m));
      emit_run(jw, "auto", a);
      emit_run(jw, "wide", w);
      jw.kv("compact_selected", a.compact);
      jw.kv("bins_compression_ratio", ratio);
      jw.kv("native_speedup_vs_wide", speedup);
      jw.kv("sim_bytes_per_edge_saved",
            w.sim_bytes_per_edge - a.sim_bytes_per_edge);
      jw.kv("ranks_l1_vs_wide", l1);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
  }
  jw.end_array();

  // ---- vertex reordering: iteration time + LLC behaviour per mode -----
  if (!datasets.empty()) {
    const bench::ScaledDataset& d = datasets.front();
    const std::vector<engine::Reorder> modes = flags.reorders_or(
        {engine::Reorder::kNone, engine::Reorder::kDegree,
         engine::Reorder::kHub});

    // The unreordered run is always the comparison anchor, even when
    // --reorder= filters it out of the emitted mode list.
    const algo::RunResult none_res =
        run_native(d, algo::Method::kHipa, iters, runtime::Telemetry::kOn,
                   runtime::HwProf::kOn);

    std::printf("vertex reordering (HiPa on '%s', %u iters):\n",
                d.name.c_str(), iters);
    std::printf("  %-7s %10s %10s %10s %9s %12s\n", "mode", "iter (s)",
                "prep (s)", "barrier(s)", "LLC-miss", "L1 vs none");
    jw.key("reorder");
    jw.begin_object();
    jw.kv("dataset", d.name);
    jw.kv("method", algo::method_name(algo::Method::kHipa));
    jw.kv("iterations", iters);
    jw.key("modes");
    jw.begin_array();
    for (engine::Reorder mode : modes) {
      algo::RunResult mode_res;
      if (mode != engine::Reorder::kNone) {
        mode_res = run_native(d, algo::Method::kHipa, iters,
                              runtime::Telemetry::kOn, runtime::HwProf::kOn,
                              /*audit=*/false, /*trace_path=*/{}, mode);
      }
      const algo::RunResult& res =
          mode == engine::Reorder::kNone ? none_res : mode_res;
      const ReorderRun r = summarize_reorder(mode, res, none_res.ranks);
      if (mode == engine::Reorder::kNone && r.ranks_l1_vs_none != 0.0) {
        std::fprintf(stderr,
                     "ERROR: reorder=none diverged from itself (L1 = %g)\n",
                     r.ranks_l1_vs_none);
        rc = 1;
      }
      std::printf("  %-7s %10.4f %10.4f %10.6f %8.1f%% %12.3g\n",
                  algo::reorder_name(mode), r.native_seconds,
                  r.preprocessing_seconds, r.barrier_sum_seconds,
                  r.hw_available ? 100.0 * r.llc_miss_rate : 0.0,
                  r.ranks_l1_vs_none);
      jw.begin_object();
      jw.kv("mode", algo::reorder_name(mode));
      jw.kv("native_seconds", r.native_seconds);
      jw.kv("preprocessing_seconds", r.preprocessing_seconds);
      jw.kv("barrier_sum_seconds", r.barrier_sum_seconds);
      jw.kv("hw_available", r.hw_available);
      jw.kv("llc_loads", r.llc_loads);
      jw.kv("llc_load_misses", r.llc_load_misses);
      jw.kv("llc_miss_rate", r.llc_miss_rate);
      jw.kv("ranks_l1_vs_none", r.ranks_l1_vs_none);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    std::printf("\n");
  }

  // ---- run-level telemetry: where the time goes, per phase ------------
  if (!datasets.empty()) {
    const bench::ScaledDataset& d = datasets.front();
    const std::vector<algo::Method> tel_methods = flags.methods_or(
        {algo::Method::kHipa, algo::Method::kPpr, algo::Method::kGpop});

    std::printf("\nrun-level telemetry on '%s' (native, %u iters):\n",
                d.name.c_str(), iters);
    std::printf("%-8s %-8s %10s %10s %6s %12s %12s\n", "method", "phase",
                "wall (s)", "barrier(s)", "imbal", "msgs-out", "msgs-in");
    jw.key("telemetry_runs");
    jw.begin_object();
    jw.kv("dataset", d.name);
    jw.kv("iterations", iters);
    jw.key("methods");
    jw.begin_array();
    bool trace_written = false;
    for (algo::Method m : tel_methods) {
      // --trace-out= captures the first method's timeline (one file,
      // one process track; pass --methods=hipa to pick the method).
      const std::string trace_path =
          !trace_written ? flags.trace_out : std::string();
      trace_written = trace_written || !trace_path.empty();
      const auto res =
          run_native(d, m, iters, runtime::Telemetry::kOn,
                     runtime::HwProf::kOn, /*audit=*/true, trace_path);
      for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
        const auto ph = static_cast<runtime::Phase>(pi);
        const auto& agg = res.report.telemetry[ph];
        std::printf("%-8s %-8s %10.4f %10.4f %6.2f %12llu %12llu\n",
                    pi == 0 ? algo::method_name(m) : "",
                    std::string(runtime::phase_name(ph)).c_str(),
                    agg.wall_sum_seconds, agg.barrier_sum_seconds,
                    agg.imbalance(),
                    static_cast<unsigned long long>(agg.messages_produced),
                    static_cast<unsigned long long>(agg.messages_consumed));
      }
      const runtime::RunTelemetry& t = res.report.telemetry;
      if (t.hw_available) {
        const runtime::HwCounters hw = [&] {
          runtime::HwCounters sum;
          for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
            sum.add(t[static_cast<runtime::Phase>(pi)].hw);
          }
          return sum;
        }();
        std::printf(
            "         hw: %.2f Gcycles  IPC %.2f  LLC miss %5.1f%%  "
            "(%u/%u thread groups, mux %.2f)\n",
            static_cast<double>(hw.cycles) / 1e9, hw.ipc(),
            hw.llc_loads > 0
                ? 100.0 * static_cast<double>(hw.llc_load_misses) /
                      static_cast<double>(hw.llc_loads)
                : 0.0,
            t.hw_threads, t.threads, hw.multiplex_ratio());
      } else {
        std::printf("         hw: unavailable (errno %d; see "
                    "perf_event_paranoid)\n",
                    t.hw_errno);
      }
      const numa::PlacementAudit& pa = res.report.placement_audit;
      if (pa.available) {
        std::printf("         placement: %.1f%% min on-node across %zu "
                    "buffers (%s%s)\n",
                    100.0 * pa.min_fraction(), pa.buffers.size(),
                    pa.source.c_str(),
                    pa.page_granular ? "" : ", VMA estimate");
      }
      if (!trace_path.empty()) {
        std::printf("         trace: %s (open with ui.perfetto.dev)\n",
                    trace_path.c_str());
      }

      jw.begin_object();
      jw.kv("method", algo::method_name(m));
      jw.kv("native_seconds", res.report.seconds);
      jw.kv("trace_path", trace_path);
      bench::emit_telemetry(jw, res.report.telemetry);
      bench::emit_placement_audit(jw, res.report.placement_audit);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();

    // ---- and its cost: telemetry off must be free -------------------
    const TelemetryOverhead ov2 =
        measure_telemetry_overhead(d, iters, flags.smoke);
    if (ov2.ranks_l1 != 0.0) {
      std::fprintf(stderr,
                   "ERROR: telemetry kOn perturbed the ranks (L1 = %g)\n",
                   ov2.ranks_l1);
      rc = 1;
    }
    std::printf("\ntelemetry overhead (HiPa on '%s', best of %u):\n"
                "  off %.4f s   on %.4f s   overhead %+.1f%%   ranks "
                "bitwise-identical: %s\n",
                d.name.c_str(), ov2.reps, ov2.off_seconds, ov2.on_seconds,
                ov2.overhead_frac * 100.0,
                ov2.ranks_l1 == 0.0 ? "yes" : "NO");
    jw.key("telemetry_overhead");
    jw.begin_object();
    jw.kv("dataset", d.name);
    jw.kv("reps", ov2.reps);
    jw.kv("off_seconds", ov2.off_seconds);
    jw.kv("on_seconds", ov2.on_seconds);
    jw.kv("overhead_frac", ov2.overhead_frac);
    jw.kv("ranks_l1_off_vs_on", ov2.ranks_l1);
    jw.kv("ranks_bitwise_identical", ov2.ranks_l1 == 0.0);
    jw.end_object();
  }

  // ---- kernels: per-kernel hot-path cost through run<K>() -------------
  if (!datasets.empty()) {
    const bench::ScaledDataset& d = datasets.front();
    const std::vector<algo::Kernel> kernels = flags.kernels_or(
        {algo::Kernel::kPageRank, algo::Kernel::kPersonalized,
         algo::Kernel::kBfs, algo::Kernel::kWcc, algo::Kernel::kSssp});
    const eid_t edges = d.graph.num_edges();
    vid_t source = 0;
    for (vid_t v = 1; v < d.graph.num_vertices(); ++v) {
      if (d.graph.out.degree(v) > d.graph.out.degree(source)) source = v;
    }

    // One HiPa engine, one kernel slot each; telemetry gives the
    // scatter message volume, the bins give the full-frontier volume
    // so the skip ratio is (1 - produced / (rounds * full)).
    engine::NativeBackend backend;
    const unsigned threads = std::max(1u, runtime::available_cpus());
    engine::PcpmEngine<engine::NativeBackend> eng(
        d.graph,
        engine::PcpmOptions::hipa(
            threads, 1, algo::default_partition_bytes(algo::Method::kHipa,
                                                      d.scale)),
        backend);
    const std::uint64_t full_round = eng.bins().total_messages();

    struct KernelRow {
      algo::Kernel kernel{};
      bool frontier = false;
      unsigned iterations = 0;
      double native_seconds = 0.0;
      double ns_per_edge = 0.0;
      double messages_per_edge = 0.0;
      double active_skip_ratio = 0.0;
    };
    auto run_one = [&]<class K>(algo::Kernel k,
                                const typename K::Options& ko) {
      engine::RunOptions ro;
      ro.iterations = iters;
      ro.telemetry = runtime::Telemetry::kOn;
      const auto kr = eng.template run<K>(ko, ro);
      KernelRow r;
      r.kernel = k;
      r.frontier = K::kUsesFrontier;
      r.iterations = kr.report.iterations;
      r.native_seconds = kr.report.seconds;
      const double work =
          static_cast<double>(edges) * std::max(1u, r.iterations);
      const auto produced =
          kr.report.telemetry[runtime::Phase::kScatter].messages_produced;
      r.ns_per_edge =
          work > 0.0 ? kr.report.seconds * 1e9 / work : 0.0;
      r.messages_per_edge =
          work > 0.0 ? static_cast<double>(produced) / work : 0.0;
      const double full =
          static_cast<double>(full_round) * std::max(1u, r.iterations);
      r.active_skip_ratio =
          full > 0.0 ? 1.0 - static_cast<double>(produced) / full : 0.0;
      return r;
    };

    std::vector<KernelRow> rows;
    for (const algo::Kernel k : kernels) {
      switch (k) {
        case algo::Kernel::kPageRank:
          rows.push_back(
              run_one.template operator()<engine::PageRankKernel>(k, {}));
          break;
        case algo::Kernel::kPersonalized: {
          engine::PprOptions ko;
          ko.seeds = {source};
          rows.push_back(
              run_one.template operator()<engine::PprKernel>(k, ko));
          break;
        }
        case algo::Kernel::kBfs: {
          engine::BfsOptions ko;
          ko.source = source;
          rows.push_back(
              run_one.template operator()<engine::BfsKernel>(k, ko));
          break;
        }
        case algo::Kernel::kWcc:
          // Raw directed graph (no symmetrization): a pure engine
          // measurement, not a weak-connectivity answer.
          rows.push_back(
              run_one.template operator()<engine::WccKernel>(k, {}));
          break;
        case algo::Kernel::kSssp: {
          engine::SsspOptions ko;
          ko.source = source;
          rows.push_back(
              run_one.template operator()<engine::SsspKernel>(k, ko));
          break;
        }
      }
    }

    // Abstraction-drift gate: the PageRank-only facade and
    // run<PageRankKernel> are two entry points to one core, so every
    // deterministic work counter — iterations, messages produced and
    // consumed — and the ranks must match EXACTLY. Simulated cycles
    // are reported alongside but not gated at zero: the cache model
    // indexes by real heap address, so two engine instances (whose
    // large buffers land wherever mmap puts them) differ by O(1e-5)
    // in set-conflict noise even though they execute the same code.
    // Each run gets its own scope so peak memory stays one engine.
    engine::PageRankOptions pr;
    pr.iterations = iters;
    pr.telemetry = runtime::Telemetry::kOn;
    std::uint64_t cycles_facade = 0;
    std::uint64_t cycles_kernel = 0;
    std::uint64_t produced_facade = 0;
    std::uint64_t produced_kernel = 0;
    std::uint64_t consumed_facade = 0;
    std::uint64_t consumed_kernel = 0;
    unsigned iters_facade = 0;
    unsigned iters_kernel = 0;
    double ranks_l1 = 0.0;
    std::vector<rank_t> facade_ranks;
    facade_ranks.resize(d.graph.num_vertices());
    {
      sim::SimMachine m1 = bench::make_machine(d.scale);
      engine::SimBackend b1(m1);
      engine::PcpmEngine<engine::SimBackend> e1(
          d.graph,
          engine::PcpmOptions::hipa(
              algo::default_threads(algo::Method::kHipa, m1.topology()),
              m1.topology().num_nodes,
              algo::default_partition_bytes(algo::Method::kHipa, d.scale)),
          b1);
      auto facade = e1.run(pr);
      cycles_facade = facade.report.stats.total_cycles;
      produced_facade = facade.report.telemetry.total_messages_produced();
      consumed_facade = facade.report.telemetry.total_messages_consumed();
      iters_facade = facade.report.iterations;
      std::copy(facade.ranks.begin(), facade.ranks.end(),
                facade_ranks.begin());
    }
    {
      sim::SimMachine m2 = bench::make_machine(d.scale);
      engine::SimBackend b2(m2);
      engine::PcpmEngine<engine::SimBackend> e2(
          d.graph,
          engine::PcpmOptions::hipa(
              algo::default_threads(algo::Method::kHipa, m2.topology()),
              m2.topology().num_nodes,
              algo::default_partition_bytes(algo::Method::kHipa, d.scale)),
          b2);
      engine::PrOptions ko;
      ko.damping = pr.damping;
      const auto kernel = e2.template run<engine::PageRankKernel>(ko, pr);
      cycles_kernel = kernel.report.stats.total_cycles;
      produced_kernel = kernel.report.telemetry.total_messages_produced();
      consumed_kernel = kernel.report.telemetry.total_messages_consumed();
      iters_kernel = kernel.report.iterations;
      ranks_l1 = algo::l1_distance(facade_ranks, kernel.values);
    }
    const auto rel = [](std::uint64_t a, std::uint64_t b) {
      const double lo = static_cast<double>(std::max<std::uint64_t>(
          1, std::min(a, b)));
      return std::fabs(static_cast<double>(a) - static_cast<double>(b)) /
             lo;
    };
    const double drift =
        std::max({rel(iters_facade, iters_kernel),
                  rel(produced_facade, produced_kernel),
                  rel(consumed_facade, consumed_kernel)});
    if (ranks_l1 != 0.0 || drift != 0.0) {
      std::fprintf(stderr,
                   "ERROR: run<PageRankKernel> drifted from the facade "
                   "(ranks L1 = %g, work drift = %g; iters %u vs %u, "
                   "msgs out %llu vs %llu, msgs in %llu vs %llu)\n",
                   ranks_l1, drift, iters_facade, iters_kernel,
                   static_cast<unsigned long long>(produced_facade),
                   static_cast<unsigned long long>(produced_kernel),
                   static_cast<unsigned long long>(consumed_facade),
                   static_cast<unsigned long long>(consumed_kernel));
      rc = 1;
    }

    std::printf("\nkernels through run<K>() (HiPa on '%s', native, %u "
                "threads):\n",
                d.name.c_str(), threads);
    std::printf("  %-9s %5s %9s %9s %9s %7s\n", "kernel", "iters",
                "ns/edge", "msg/edge", "skip", "front");
    for (const KernelRow& r : rows) {
      std::printf("  %-9s %5u %9.2f %9.3f %8.1f%% %7s\n",
                  algo::kernel_name(r.kernel), r.iterations, r.ns_per_edge,
                  r.messages_per_edge, 100.0 * r.active_skip_ratio,
                  r.frontier ? "yes" : "no");
    }
    std::printf("  pagerank abstraction drift: work %.3g%%, ranks L1 %g "
                "(sim cycles %llu vs %llu, informational)\n",
                100.0 * drift, ranks_l1,
                static_cast<unsigned long long>(cycles_facade),
                static_cast<unsigned long long>(cycles_kernel));

    jw.key("kernels");
    jw.begin_object();
    jw.kv("dataset", d.name);
    jw.kv("iterations", iters);
    jw.kv("threads", threads);
    jw.kv("full_round_messages", static_cast<std::uint64_t>(full_round));
    jw.key("entries");
    jw.begin_array();
    for (const KernelRow& r : rows) {
      jw.begin_object();
      jw.kv("kernel", algo::kernel_name(r.kernel));
      jw.kv("frontier", r.frontier);
      jw.kv("iterations", r.iterations);
      jw.kv("native_seconds", r.native_seconds);
      jw.kv("ns_per_edge", r.ns_per_edge);
      jw.kv("messages_per_edge", r.messages_per_edge);
      jw.kv("active_skip_ratio", r.active_skip_ratio);
      jw.end_object();
    }
    jw.end_array();
    jw.kv("pagerank_sim_cycles_facade", cycles_facade);
    jw.kv("pagerank_sim_cycles_kernel", cycles_kernel);
    jw.kv("pagerank_abstraction_drift", drift);
    jw.kv("pagerank_ranks_l1_vs_facade", ranks_l1);
    jw.kv("pagerank_bitwise_identical_to_facade",
          ranks_l1 == 0.0 && drift == 0.0);
    jw.end_object();
  }

  // ---- out-of-core: streaming segments vs fully in-core ---------------
  if (!datasets.empty()) {
    const bench::ScaledDataset& d = datasets.front();
    // Shard the in-CSR into ~8 segments so streaming is exercised but
    // the slots stay a small fraction of the whole topology.
    const std::size_t in_bytes = graph::segment_payload_bytes(
        d.graph.num_vertices(), d.graph.num_edges());
    const std::size_t target = std::max<std::size_t>(4096, in_bytes / 8);
    const std::string seg_path = out_path + ".oocore.tmp";
    graph::save_segmented_csr(seg_path, d.graph, target);

    const unsigned oo_threads =
        std::min(4u, std::max(1u, runtime::available_cpus()));
    auto run_mode = [&](bool streaming, std::size_t budget,
                        engine::OocoreStats* stats_out) {
      engine::NativeBackend backend;
      engine::OocoreOptions opt;
      opt.num_threads = oo_threads;
      opt.streaming = streaming;
      opt.prefetch = true;
      opt.resident_budget_bytes = budget;
      engine::OocoreEngine eng(seg_path, opt, backend);
      engine::PageRankOptions pr;
      pr.iterations = iters;
      engine::RunResult r = eng.run(pr);
      if (stats_out != nullptr) *stats_out = eng.stats();
      return r;
    };

    const auto incore = run_mode(false, 0, nullptr);
    engine::OocoreStats st;
    std::size_t budget = 0;
    {
      graph::SegmentedCsr probe = graph::SegmentedCsr::open(seg_path);
      budget = 2 * probe.max_payload_bytes() + kPageSize;
    }
    const auto streaming = run_mode(true, budget, &st);
    const bool bitwise = incore.ranks == streaming.ranks;
    const bool budget_ok = st.peak_resident_bytes <= budget;
    if (!bitwise) {
      std::fprintf(stderr,
                   "ERROR: out-of-core streaming diverged from in-core\n");
      rc = 1;
    }
    if (!budget_ok) {
      std::fprintf(stderr,
                   "ERROR: out-of-core run exceeded its resident budget "
                   "(%zu > %zu bytes)\n",
                   st.peak_resident_bytes, budget);
      rc = 1;
    }
    std::remove(seg_path.c_str());

    std::printf("\nout-of-core streaming (oocore on '%s', %u iters, %u "
                "threads):\n"
                "  segments %u   budget %zu B   peak resident %zu B   "
                "within budget: %s\n"
                "  in-core %.4f s   streaming %.4f s   io-wait %.4f s   "
                "overlap %.0f%%\n"
                "  bytes fetched %llu   ranks bitwise-identical: %s\n",
                d.name.c_str(), iters, oo_threads, st.segments, budget,
                st.peak_resident_bytes, budget_ok ? "yes" : "NO",
                incore.report.seconds, streaming.report.seconds,
                st.io_wait_seconds, 100.0 * st.overlap_ratio(),
                static_cast<unsigned long long>(st.bytes_fetched),
                bitwise ? "yes" : "NO");
    jw.key("oocore");
    jw.begin_object();
    jw.kv("dataset", d.name);
    jw.kv("iterations", iters);
    jw.kv("threads", oo_threads);
    jw.kv("segments", st.segments);
    jw.kv("target_segment_bytes", static_cast<std::uint64_t>(target));
    jw.kv("budget_bytes", static_cast<std::uint64_t>(budget));
    jw.kv("peak_resident_bytes",
          static_cast<std::uint64_t>(st.peak_resident_bytes));
    jw.kv("budget_ok", budget_ok);
    jw.kv("incore_seconds", incore.report.seconds);
    jw.kv("streaming_seconds", streaming.report.seconds);
    jw.kv("io_wait_seconds", st.io_wait_seconds);
    jw.kv("fetch_seconds", st.fetch_seconds);
    jw.kv("prefetch_overlap_ratio", st.overlap_ratio());
    jw.kv("bytes_fetched", st.bytes_fetched);
    jw.kv("ranks_bitwise_identical", bitwise);
    jw.end_object();
  }

  jw.end_object();
  std::fputc('\n', jf);
  std::fclose(jf);

  std::printf("\nJSON written to %s\n", out_path.c_str());
  std::printf("expected shape: compact halves the dst-list bytes (~2 B/edge\n"
              "off simB/e per iteration; dst-x is the *whole-bins* footprint\n"
              "ratio, so < 2) wherever partitions fit 2^15 vertices; ranks\n"
              "are bitwise identical across encodings.\n");
  return rc;
}
