// Hot-path perf harness for the compact-destination encoding.
//
// Runs the two partition-centric methodologies whose gather phase
// streams the destination list (HiPa and p-PR) on the six dataset
// stand-ins, twice each: once with the automatic encoding choice
// (16-bit partition-local destinations whenever every partition fits
// 2^15 vertices) and once with the 32-bit encoding forced, so the
// compaction delta is measured rather than asserted. Each
// configuration runs natively (wall-clock edges/sec) and on the
// simulated Skylake testbed (cycles, DRAM bytes per edge).
//
// Besides the human-readable table it emits machine-readable JSON
// (default BENCH_hotpath.json, override with --out=) so CI and
// EXPERIMENTS.md can track the numbers. `--smoke` shrinks to one tiny
// dataset and two iterations for the `perf-smoke` ctest label.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "runtime/affinity.hpp"

namespace {

using namespace hipa;

/// Measurements for one (dataset, method, encoding) configuration.
struct EncodingRun {
  bool compact = false;             ///< encoding the bins actually chose
  std::uint64_t footprint = 0;      ///< bins footprint, bytes
  double dst_bytes_per_edge = 0.0;  ///< dst-list bytes / |E|
  double native_seconds = 0.0;
  double native_edges_per_sec = 0.0;
  double sim_bytes_per_edge = 0.0;  ///< DRAM bytes / |E| / iteration
  std::uint64_t sim_cycles = 0;
  std::vector<rank_t> ranks;  ///< native ranks, for the cross-check
};

EncodingRun run_encoding(const bench::ScaledDataset& d, algo::Method m,
                         pcp::DstEncoding enc, unsigned iters) {
  EncodingRun r;
  engine::PageRankOptions pr;
  pr.iterations = iters;
  const eid_t edges = d.graph.num_edges();
  const std::uint64_t part_bytes =
      algo::default_partition_bytes(m, d.scale);

  auto options = [&](unsigned threads, unsigned nodes) {
    engine::PcpmOptions o = m == algo::Method::kHipa
                                ? engine::PcpmOptions::hipa(threads, nodes,
                                                            part_bytes)
                                : engine::PcpmOptions::ppr(threads, nodes,
                                                           part_bytes);
    o.dst_encoding = enc;
    return o;
  };

  {  // Native: wall-clock throughput on this host (one NUMA node).
    engine::NativeBackend backend;
    const unsigned threads = std::max(1u, runtime::available_cpus());
    engine::PcpmEngine<engine::NativeBackend> eng(
        d.graph, options(threads, 1), backend);
    r.compact = eng.bins().compact();
    r.footprint = eng.bins().footprint_bytes();
    r.dst_bytes_per_edge =
        edges == 0 ? 0.0
                   : static_cast<double>(eng.bins().total_dests() *
                                         eng.bins().dst_entry_bytes()) /
                         static_cast<double>(edges);
    const auto rep = eng.run_pagerank(pr, &r.ranks);
    r.native_seconds = rep.seconds;
    r.native_edges_per_sec =
        rep.seconds > 0.0 ? static_cast<double>(edges) * iters / rep.seconds
                          : 0.0;
  }
  {  // Simulated Skylake at the dataset's matched scale.
    sim::SimMachine machine = bench::make_machine(d.scale);
    engine::SimBackend backend(machine);
    const unsigned threads = algo::default_threads(m, machine.topology());
    engine::PcpmEngine<engine::SimBackend> eng(
        d.graph, options(threads, machine.topology().num_nodes), backend);
    const auto rep = eng.run_pagerank(pr);
    r.sim_bytes_per_edge = bench::mape_per_iter(rep, edges);
    r.sim_cycles = rep.stats.total_cycles;
  }
  return r;
}

void emit_run(bench::JsonWriter& jw, const char* key, const EncodingRun& r) {
  jw.key(key);
  jw.begin_object();
  jw.kv("compact", r.compact);
  jw.kv("bins_footprint_bytes", r.footprint);
  jw.kv("dst_bytes_per_edge", r.dst_bytes_per_edge);
  jw.kv("native_seconds", r.native_seconds);
  jw.kv("native_edges_per_sec", r.native_edges_per_sec);
  jw.kv("sim_bytes_per_edge", r.sim_bytes_per_edge);
  jw.kv("sim_cycles", r.sim_cycles);
  jw.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipa;
  bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters = flags.iterations != 0 ? flags.iterations
                         : flags.smoke        ? 2
                         : flags.quick        ? 3
                                              : 5;
  if (flags.smoke && flags.dataset.empty()) flags.dataset = "journal";
  const std::string out_path =
      flags.out.empty() ? "BENCH_hotpath.json" : flags.out;

  bench::print_banner("Hot path: compact vs wide destination encoding",
                      "paper \xc2\xa7" "4.2 gather stream traffic");
  std::printf("auto = 16-bit partition-local encoding when every partition "
              "fits 2^15 vertices;\nwide = 32-bit encoding forced. Native "
              "rows use %u host thread(s);\nsim rows use the paper's "
              "per-method defaults.\n\n",
              std::max(1u, runtime::available_cpus()));
  std::printf("%-9s %-5s %5s | %4s %9s %8s | %9s %9s | %7s\n", "graph",
              "meth", "1/N", "enc", "Medge/s", "vs-wide", "simB/e", "wideB/e",
              "dst-x");

  const algo::Method methods[] = {algo::Method::kHipa, algo::Method::kPpr};

  std::FILE* jf = std::fopen(out_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.begin_object();
  jw.kv("bench", "hotpath");
  jw.kv("iterations", iters);
  jw.kv("quick", flags.quick);
  jw.kv("smoke", flags.smoke);
  jw.key("datasets");
  jw.begin_array();

  int rc = 0;
  for (const auto& d : bench::load_datasets(flags)) {
    jw.begin_object();
    jw.kv("name", d.name);
    jw.kv("scale", d.scale);
    jw.kv("vertices", static_cast<std::uint64_t>(d.graph.num_vertices()));
    jw.kv("edges", static_cast<std::uint64_t>(d.graph.num_edges()));
    jw.key("methods");
    jw.begin_array();
    for (algo::Method m : methods) {
      const EncodingRun a =
          run_encoding(d, m, pcp::DstEncoding::kAuto, iters);
      const EncodingRun w =
          run_encoding(d, m, pcp::DstEncoding::kWide, iters);
      // The two encodings perform identical arithmetic in identical
      // order, so the ranks must match bitwise.
      const double l1 = algo::l1_distance(a.ranks, w.ranks);
      if (l1 != 0.0) {
        std::fprintf(stderr, "ERROR: %s/%s compact-vs-wide rank mismatch "
                     "(L1 = %g)\n", d.name.c_str(), algo::method_name(m), l1);
        rc = 1;
      }
      const double speedup = a.native_seconds > 0.0
                                 ? w.native_seconds / a.native_seconds
                                 : 1.0;
      const double ratio =
          a.footprint > 0
              ? static_cast<double>(w.footprint) /
                    static_cast<double>(a.footprint)
              : 1.0;
      std::printf("%-9s %-5s %5u | %4s %9.2f %7.2fx | %9.2f %9.2f | %6.2fx\n",
                  d.name.c_str(), algo::method_name(m), d.scale,
                  a.compact ? "cmp" : "wide", a.native_edges_per_sec / 1e6,
                  speedup, a.sim_bytes_per_edge, w.sim_bytes_per_edge,
                  ratio);

      jw.begin_object();
      jw.kv("method", algo::method_name(m));
      emit_run(jw, "auto", a);
      emit_run(jw, "wide", w);
      jw.kv("compact_selected", a.compact);
      jw.kv("bins_compression_ratio", ratio);
      jw.kv("native_speedup_vs_wide", speedup);
      jw.kv("sim_bytes_per_edge_saved",
            w.sim_bytes_per_edge - a.sim_bytes_per_edge);
      jw.kv("ranks_l1_vs_wide", l1);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  std::fputc('\n', jf);
  std::fclose(jf);

  std::printf("\nJSON written to %s\n", out_path.c_str());
  std::printf("expected shape: compact halves the dst-list bytes (~2 B/edge\n"
              "off simB/e per iteration; dst-x is the *whole-bins* footprint\n"
              "ratio, so < 2) wherever partitions fit 2^15 vertices; ranks\n"
              "are bitwise identical across encodings.\n");
  return rc;
}
