// Reproduces paper §4.2's preprocessing-overhead paragraph: the cost of
// graph partitioning + NUMA-aware data binding, and how many PageRank
// iterations amortize it.
//
// Expected shape (paper): HiPa's overhead is amortized by ~12.7 of its
// own iterations on average; GPOP and p-PR normalize to ~9.6 and ~12.4
// iterations — i.e. all three preprocess in the same ballpark, and any
// multi-20-iteration run amortizes it.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 4);

  bench::print_banner("Preprocessing overhead and amortization",
                      "paper Section 4.2");
  std::printf("(amort = preprocessing seconds / per-iteration seconds: how "
              "many iterations pay\n for partitioning + bins + NUMA "
              "binding)\n\n");

  // --methods=hipa,ppr narrows the comparison (method_from_name names).
  const std::vector<algo::Method> methods = flags.methods_or(
      {algo::Method::kHipa, algo::Method::kPpr, algo::Method::kGpop});
  std::printf("%-9s |", "graph");
  for (algo::Method m : methods) {
    std::printf(" %-21s", algo::method_name(m));
  }
  std::printf("\n%-9s |", "");
  for (std::size_t i = 0; i < methods.size(); ++i) {
    std::printf(" %10s %10s", "preproc", "amort");
  }
  std::printf("\n");

  std::vector<double> amort_sum(methods.size(), 0.0);
  unsigned rows = 0;
  for (const auto& d : bench::load_datasets(flags)) {
    std::printf("%-9s |", d.name.c_str());
    for (std::size_t i = 0; i < methods.size(); ++i) {
      sim::SimMachine machine = bench::make_machine(d.scale);
      algo::MethodParams params;
      params.pr.iterations = iters;
      params.scale_denom = d.scale;
      const auto report =
          algo::run_method_sim(methods[i], d.graph, machine, params).report;
      const double per_iter = report.seconds / iters;
      const double amort = report.preprocessing_seconds / per_iter;
      amort_sum[i] += amort;
      std::printf(" %10.4f %9.1fx", report.preprocessing_seconds, amort);
    }
    std::printf("\n");
    ++rows;
  }
  if (rows > 0) {
    std::printf("%-9s |", "average");
    for (std::size_t i = 0; i < methods.size(); ++i) {
      std::printf(" %10s %9.1fx", "", amort_sum[i] / rows);
    }
    std::printf("\n");
  }
  std::printf("\npaper: HiPa overheads 0.22s/1.62s/0.66s/5.17s/5.50s/8.52s "
              "across the six graphs;\n amortized by 12.7 (HiPa), 12.44 "
              "(p-PR), 9.61 (GPOP) of their own iterations.\n");
  return 0;
}
