// Perf-regression gate over the hot-path bench JSON: compares the
// metrics of a fresh BENCH_hotpath run against the committed
// BENCH_baseline.json with per-metric tolerance bands, and fails CI
// when a *deterministic* metric drifts.
//
// Two classes of metric, on purpose:
//
//  * Simulator metrics (sim_cycles, sim_bytes_per_edge), encoding
//    metrics (dst_bytes_per_edge, bins_footprint_bytes) and invariant
//    booleans (compact selection, bitwise-identical ranks) are
//    machine-independent — the simulator is deterministic and the
//    encodings depend only on the graph. These get tight bands and are
//    HARD failures: if sim_cycles moved 20%, the code changed the hot
//    path's memory behaviour.
//
//  * Native wall-clock metrics (native_seconds, edges/sec, dispatch
//    overhead) depend on the CI host and its noisy neighbours. These
//    are reported as warnings only — the committed baseline was
//    measured on some other machine.
//
// Violations are reported with RFC 6901 JSON pointers, same style as
// bench_schema_check.
//
//   bench_regress <current.json> <baseline.json>
//
// Runs as the third stage of the `perf-smoke` ctest fixture chains
// (bench_hotpath --smoke -> bench_schema_check -> bench_regress, and
// the same shape for bench_serve and bench_dist). A current document
// tagged "serve" is gated against the `serve` bands object embedded in
// BENCH_baseline.json: torn reads and publish identity are hard
// invariants, QPS/latency advisory. A "dist" document is gated the
// same way against the `dist` bands: merge identity and
// zero-wrong-answer failover are hard, router QPS/latency and the
// failover duration advisory.
#include <cmath>
#include <cstdio>
#include <string>

#include "common/minijson.hpp"

namespace {

using hipa::json::Value;
using hipa::json::ValuePtr;

int g_errors = 0;
int g_warnings = 0;

void fail(const std::string& pointer, const std::string& what) {
  std::fprintf(stderr, "regress FAIL %s: %s\n", pointer.c_str(),
               what.c_str());
  ++g_errors;
}

void warn(const std::string& pointer, const std::string& what) {
  std::fprintf(stderr, "regress warn %s: %s\n", pointer.c_str(),
               what.c_str());
  ++g_warnings;
}

std::string at(const std::string& pointer, const std::string& token) {
  return pointer + "/" + token;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

const Value* get(const Value* obj, const char* key) {
  if (obj == nullptr || obj->type != Value::Type::kObject) return nullptr;
  return obj->find(key);
}

bool get_number(const Value* obj, const char* key, double* out) {
  const Value* v = get(obj, key);
  if (v == nullptr || v->type != Value::Type::kNumber) return false;
  *out = v->number;
  return true;
}

/// Relative drift |cur - base| / max(|base|, floor). The floor keeps
/// near-zero baselines (e.g. 0.0 bytes saved) from amplifying noise.
double rel_drift(double cur, double base, double floor_abs) {
  const double denom = std::fmax(std::fabs(base), floor_abs);
  return denom > 0.0 ? std::fabs(cur - base) / denom : 0.0;
}

/// Compare one numeric metric under a relative tolerance band.
/// hard=true -> failure; hard=false -> warning only.
void compare_metric(const Value* cur, const Value* base,
                    const std::string& path, const char* key,
                    double tolerance, bool hard,
                    double floor_abs = 1e-12) {
  double c = 0.0;
  double b = 0.0;
  if (!get_number(base, key, &b)) return;  // baseline lacks it: nothing to gate
  if (!get_number(cur, key, &c)) {
    fail(at(path, key), "metric present in baseline but missing in current");
    return;
  }
  const double drift = rel_drift(c, b, floor_abs);
  if (drift <= tolerance) return;
  const std::string msg = "drifted " + fmt(drift * 100.0) + "% (baseline " +
                          fmt(b) + ", current " + fmt(c) + ", band ±" +
                          fmt(tolerance * 100.0) + "%)";
  if (hard) {
    fail(at(path, key), msg);
  } else {
    warn(at(path, key), msg);
  }
}

void compare_encoding_run(const Value* cur, const Value* base,
                          const std::string& path) {
  if (cur == nullptr) {
    fail(path, "encoding run missing in current");
    return;
  }
  // Deterministic: the encoding choice and footprint depend only on
  // the graph and partition plan.
  const Value* cc = get(cur, "compact");
  const Value* bc = get(base, "compact");
  if (cc != nullptr && bc != nullptr && cc->boolean != bc->boolean) {
    fail(at(path, "compact"),
         std::string("encoding flipped (baseline ") +
             (bc->boolean ? "compact" : "wide") + ", current " +
             (cc->boolean ? "compact" : "wide") + ")");
  }
  compare_metric(cur, base, path, "bins_footprint_bytes", 0.10, true);
  compare_metric(cur, base, path, "dst_bytes_per_edge", 0.10, true);
  compare_metric(cur, base, path, "sim_bytes_per_edge", 0.15, true, 0.01);
  compare_metric(cur, base, path, "sim_cycles", 0.15, true);
  // Host-dependent: advisory only.
  compare_metric(cur, base, path, "native_seconds", 3.0, false, 1e-6);
  compare_metric(cur, base, path, "native_edges_per_sec", 3.0, false, 1.0);
}

const Value* find_dataset(const Value* root, const std::string& name) {
  const Value* ds = get(root, "datasets");
  if (ds == nullptr || ds->type != Value::Type::kArray) return nullptr;
  for (const ValuePtr& d : ds->array) {
    const Value* n = get(d.get(), "name");
    if (n != nullptr && n->str == name) return d.get();
  }
  return nullptr;
}

const Value* find_method(const Value* dataset, const std::string& name) {
  const Value* ms = get(dataset, "methods");
  if (ms == nullptr || ms->type != Value::Type::kArray) return nullptr;
  for (const ValuePtr& m : ms->array) {
    const Value* n = get(m.get(), "method");
    if (n != nullptr && n->str == name) return m.get();
  }
  return nullptr;
}

const Value* find_reorder_mode(const Value* reorder, const std::string& name) {
  const Value* ms = get(reorder, "modes");
  if (ms == nullptr || ms->type != Value::Type::kArray) return nullptr;
  for (const ValuePtr& m : ms->array) {
    const Value* n = get(m.get(), "mode");
    if (n != nullptr && n->str == name) return m.get();
  }
  return nullptr;
}

const Value* find_mix(const Value* root, const std::string& name) {
  const Value* ms = get(root, "mixes");
  if (ms == nullptr || ms->type != Value::Type::kArray) return nullptr;
  for (const ValuePtr& m : ms->array) {
    const Value* n = get(m.get(), "mix");
    if (n != nullptr && n->str == name) return m.get();
  }
  return nullptr;
}

/// Serve-mode gate. `base` is the "serve" bands object embedded in
/// BENCH_baseline.json (the baseline artifact itself is the hotpath
/// run; serve rides along as a sub-document so one committed file
/// gates the whole perf-smoke chain).
///
/// Hard invariants are correctness claims about the CURRENT run —
/// zero torn reads across concurrent republishes and bitwise identity
/// of the published snapshot — and hold regardless of the baseline.
/// QPS and latency percentiles are host-dependent: advisory bands.
void regress_serve(const Value* cur, const Value* base) {
  {  // publish protocol correctness (hard, baseline-independent)
    const Value* cr = get(cur, "concurrent_refresh");
    double torn = -1.0;
    if (!get_number(cr, "torn_reads", &torn) || torn != 0.0) {
      fail("/concurrent_refresh/torn_reads",
           "must be 0 — readers observed mixed or regressing epochs");
    }
    double epochs = 0.0;
    if (!get_number(cr, "epochs_published", &epochs) || epochs < 1.0) {
      fail("/concurrent_refresh/epochs_published",
           "no republish happened during the concurrent window — the "
           "scenario did not exercise publish-while-serving");
    }
    const Value* pi = get(cur, "publish_identity");
    const Value* ident = get(pi, "ranks_bitwise_identical");
    if (ident == nullptr || ident->type != Value::Type::kBool ||
        !ident->boolean) {
      fail("/publish_identity/ranks_bitwise_identical",
           "must be true — published ranks diverged from a standalone "
           "engine run");
    }
  }

  if (base == nullptr) {
    fail("/serve", "baseline has no serve bands (extend "
                   "BENCH_baseline.json)");
    return;
  }

  // Graph shape is generated deterministically from the dataset name.
  compare_metric(get(cur, "dataset"), get(base, "dataset"), "/dataset",
                 "vertices", 0.0, true);
  compare_metric(get(cur, "dataset"), get(base, "dataset"), "/dataset",
                 "edges", 0.0, true);
  // Slot count is an options default (deterministic); node count
  // follows the host topology (advisory).
  compare_metric(get(cur, "store"), get(base, "store"), "/store", "slots",
                 0.0, true);
  compare_metric(get(cur, "store"), get(base, "store"), "/store",
                 "num_nodes", 0.0, false, 1.0);

  const Value* bmixes = get(base, "mixes");
  if (bmixes != nullptr && bmixes->type == Value::Type::kArray) {
    for (const ValuePtr& bm : bmixes->array) {
      const Value* name = get(bm.get(), "mix");
      if (name == nullptr) continue;
      const std::string mpath = "/mixes[mix=" + name->str + "]";
      const Value* cm = find_mix(cur, name->str);
      if (cm == nullptr) {
        fail(mpath, "mix present in baseline but missing in current");
        continue;
      }
      double requests = 0.0;
      if (get_number(cm, "requests", &requests) && requests < 1.0) {
        fail(at(mpath, "requests"), "mix served zero requests");
      }
      // Throughput/latency: committed on some other machine — warn only.
      compare_metric(cm, bm.get(), mpath, "qps", 5.0, false, 1.0);
      compare_metric(cm, bm.get(), mpath, "p50_us", 10.0, false, 1.0);
      compare_metric(cm, bm.get(), mpath, "p99_us", 10.0, false, 1.0);
    }
  }
  compare_metric(get(cur, "concurrent_refresh"),
                 get(base, "concurrent_refresh"), "/concurrent_refresh",
                 "qps", 5.0, false, 1.0);
  compare_metric(get(cur, "concurrent_refresh"),
                 get(base, "concurrent_refresh"), "/concurrent_refresh",
                 "p99_us", 10.0, false, 1.0);

  // Metrics plane. The producer already enforces the deterministic
  // gates (quantile accuracy within one bucket width, hot-path
  // fraction < 1%); re-assert them here as hard baseline-independent
  // invariants, then band the host-dependent costs as advisories.
  const Value* cm = get(cur, "metrics");
  {
    const Value* qa = get(cm, "quantile_accuracy");
    const Value* within = get(qa, "within_tolerance");
    if (within == nullptr || within->type != Value::Type::kBool ||
        !within->boolean) {
      fail("/metrics/quantile_accuracy/within_tolerance",
           "must be true — a histogram quantile estimate missed the "
           "exact value by more than one bucket width");
    }
    const Value* oh = get(cm, "overhead");
    const Value* gate = get(oh, "gate_ok");
    if (gate == nullptr || gate->type != Value::Type::kBool ||
        !gate->boolean) {
      fail("/metrics/overhead/gate_ok",
           "must be true — instrumentation exceeded the <1% hot-path "
           "budget or QPS collapsed");
    }
  }
  const Value* bm = get(base, "metrics");
  if (bm != nullptr) {
    // Scrape cost and per-event cost: absolute nanoseconds measured on
    // whatever machine committed the baseline — advisory bands only.
    const Value* bsc = get(bm, "scrape_cost");
    const Value* csc = get(cm, "scrape_cost");
    if (bsc != nullptr && bsc->type == Value::Type::kArray &&
        csc != nullptr && csc->type == Value::Type::kArray) {
      for (std::size_t i = 0;
           i < bsc->array.size() && i < csc->array.size(); ++i) {
        const std::string sp = "/metrics/scrape_cost/" + std::to_string(i);
        compare_metric(csc->array[i].get(), bsc->array[i].get(), sp,
                       "histograms", 0.0, true);
        compare_metric(csc->array[i].get(), bsc->array[i].get(), sp,
                       "ns_per_scrape", 3.0, false, 100.0);
      }
    }
    compare_metric(get(cm, "overhead"), get(bm, "overhead"),
                   "/metrics/overhead", "ns_per_event", 3.0, false, 1.0);
    compare_metric(get(cm, "overhead"), get(bm, "overhead"),
                   "/metrics/overhead", "qps_ratio", 0.25, false, 0.1);
  }
}

const Value* find_config(const Value* root, double shards) {
  const Value* cs = get(root, "configs");
  if (cs == nullptr || cs->type != Value::Type::kArray) return nullptr;
  for (const ValuePtr& c : cs->array) {
    double s = 0.0;
    if (get_number(c.get(), "shards", &s) && s == shards) return c.get();
  }
  return nullptr;
}

/// Dist-mode gate. `base` is the "dist" bands object embedded in
/// BENCH_baseline.json (same embedding scheme as "serve").
///
/// Hard invariants are correctness claims about the CURRENT run and
/// hold regardless of the baseline: the 4-shard router must answer
/// memcmp-identically to a single-process RankService, and SIGKILLing
/// a shard mid-load must produce zero wrong answers with a measured
/// (non-sentinel) failover time. Router QPS, latency percentiles, and
/// the failover duration itself are host-dependent: advisory bands.
void regress_dist(const Value* cur, const Value* base) {
  {  // scatter/merge correctness (hard, baseline-independent)
    const Value* id = get(cur, "identity");
    const Value* ident = get(id, "memcmp_identical");
    if (ident == nullptr || ident->type != Value::Type::kBool ||
        !ident->boolean) {
      fail("/identity/memcmp_identical",
           "must be true — sharded answers diverged from the "
           "single-process service");
    }
    const Value* fo = get(cur, "failover");
    double wrong = -1.0;
    if (!get_number(fo, "wrong_answers", &wrong) || wrong != 0.0) {
      fail("/failover/wrong_answers",
           "must be 0 — a merged answer was wrong while a shard was down");
    }
    double fs = -1.0;
    if (!get_number(fo, "failover_seconds", &fs) || fs < 0.0) {
      fail("/failover/failover_seconds",
           "must be >= 0 — the router never recovered from the kill");
    }
    double answered = 0.0;
    if (!get_number(fo, "answered", &answered) || answered < 1.0) {
      fail("/failover/answered",
           "no queries were answered during the failover window — the "
           "scenario did not exercise serving-through-failure");
    }
  }

  if (base == nullptr) {
    fail("/dist", "baseline has no dist bands (extend BENCH_baseline.json)");
    return;
  }

  // Graph shape is generated deterministically from the seed.
  compare_metric(get(cur, "dataset"), get(base, "dataset"), "/dataset",
                 "vertices", 0.0, true);
  compare_metric(get(cur, "dataset"), get(base, "dataset"), "/dataset",
                 "edges", 0.0, true);
  compare_metric(get(cur, "shard_defaults"), get(base, "shard_defaults"),
                 "/shard_defaults", "topk_k", 0.0, true);

  const Value* bconfigs = get(base, "configs");
  if (bconfigs != nullptr && bconfigs->type == Value::Type::kArray) {
    for (const ValuePtr& bc : bconfigs->array) {
      double shards = 0.0;
      if (!get_number(bc.get(), "shards", &shards)) continue;
      const std::string cpath =
          "/configs[shards=" + std::to_string((int)shards) + "]";
      const Value* cc = find_config(cur, shards);
      if (cc == nullptr) {
        fail(cpath, "shard count present in baseline but missing in current");
        continue;
      }
      double requests = 0.0;
      if (get_number(cc, "requests", &requests) && requests < 1.0) {
        fail(at(cpath, "requests"), "config served zero requests");
      }
      // Throughput through real sockets + process scheduling: the
      // noisiest numbers in the suite — wide advisory bands only.
      compare_metric(cc, bc.get(), cpath, "qps", 5.0, false, 1.0);
      compare_metric(cc, bc.get(), cpath, "p50_us", 10.0, false, 1.0);
      compare_metric(cc, bc.get(), cpath, "p99_us", 10.0, false, 1.0);
    }
  }

  // Failover duration: dominated by health-poll cadence and kernel
  // socket teardown latency — advisory, with a generous floor so a
  // sub-millisecond baseline doesn't amplify scheduler noise.
  compare_metric(get(cur, "failover"), get(base, "failover"), "/failover",
                 "failover_seconds", 10.0, false, 0.05);
}

ValuePtr load(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return nullptr;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string perr;
  ValuePtr v = hipa::json::parse(std::move(text), &perr);
  if (v == nullptr) std::fprintf(stderr, "%s: %s\n", path, perr.c_str());
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <current.json> <baseline.json>\n",
                 argv[0]);
    return 2;
  }
  const ValuePtr curp = load(argv[1]);
  const ValuePtr basep = load(argv[2]);
  if (curp == nullptr || basep == nullptr) return 2;
  const Value* cur = curp.get();
  const Value* base = basep.get();

  {  // Same artifact kind? Serve currents may instead match the
     // baseline's embedded "serve" bands object.
    const Value* cb = get(cur, "bench");
    const Value* bb = get(base, "bench");
    if (cb != nullptr && cb->str == "serve") {
      const Value* sbase = (bb != nullptr && bb->str == "serve")
                               ? base
                               : get(base, "serve");
      regress_serve(cur, sbase);
      if (g_errors > 0) {
        std::fprintf(stderr,
                     "%d hard regression(s), %d warning(s) vs baseline %s\n",
                     g_errors, g_warnings, argv[2]);
        return 1;
      }
      std::printf("regress OK: %s vs %s (%d warning(s))\n", argv[1],
                  argv[2], g_warnings);
      return 0;
    }
    if (cb != nullptr && cb->str == "dist") {
      const Value* dbase = (bb != nullptr && bb->str == "dist")
                               ? base
                               : get(base, "dist");
      regress_dist(cur, dbase);
      if (g_errors > 0) {
        std::fprintf(stderr,
                     "%d hard regression(s), %d warning(s) vs baseline %s\n",
                     g_errors, g_warnings, argv[2]);
        return 1;
      }
      std::printf("regress OK: %s vs %s (%d warning(s))\n", argv[1],
                  argv[2], g_warnings);
      return 0;
    }
    if (cb == nullptr || bb == nullptr || cb->str != bb->str) {
      fail("/bench", "bench tag mismatch between current and baseline");
    }
  }

  // Invariant booleans: these must HOLD in current regardless of the
  // baseline (they are correctness claims, not measurements).
  {
    const Value* toh = get(cur, "telemetry_overhead");
    const Value* ident = get(toh, "ranks_bitwise_identical");
    if (ident != nullptr &&
        (ident->type != Value::Type::kBool || !ident->boolean)) {
      fail("/telemetry_overhead/ranks_bitwise_identical", "must be true");
    }
  }

  // Dataset x method x encoding grid: every cell in the baseline must
  // still exist and stay inside its band.
  const Value* bds = get(base, "datasets");
  if (bds != nullptr && bds->type == Value::Type::kArray) {
    for (const ValuePtr& bd : bds->array) {
      const Value* name = get(bd.get(), "name");
      if (name == nullptr) continue;
      const std::string dpath = "/datasets[name=" + name->str + "]";
      const Value* cd = find_dataset(cur, name->str);
      if (cd == nullptr) {
        fail(dpath, "dataset present in baseline but missing in current");
        continue;
      }
      // Graph shape is generated deterministically from the name/scale.
      compare_metric(cd, bd.get(), dpath, "vertices", 0.0, true);
      compare_metric(cd, bd.get(), dpath, "edges", 0.0, true);
      const Value* bms = get(bd.get(), "methods");
      if (bms == nullptr || bms->type != Value::Type::kArray) continue;
      for (const ValuePtr& bm : bms->array) {
        const Value* mname = get(bm.get(), "method");
        if (mname == nullptr) continue;
        const std::string mpath = dpath + "/methods[method=" + mname->str +
                                  "]";
        const Value* cm = find_method(cd, mname->str);
        if (cm == nullptr) {
          fail(mpath, "method present in baseline but missing in current");
          continue;
        }
        compare_encoding_run(get(cm, "auto"), get(bm.get(), "auto"),
                             mpath + "/auto");
        compare_encoding_run(get(cm, "wide"), get(bm.get(), "wide"),
                             mpath + "/wide");
        // The compression ratio is a pure data-structure property.
        compare_metric(cm, bm.get(), mpath, "bins_compression_ratio", 0.10,
                       true);
        double l1 = 1.0;
        if (get_number(cm, "ranks_l1_vs_wide", &l1) && l1 != 0.0) {
          fail(at(mpath, "ranks_l1_vs_wide"), "must be 0");
        }
      }
    }
  }

  // Barrier micro-section: crossing latencies are host-dependent
  // (advisory bands); the structural checks live in the schema gate.
  // Like the dispatch ordering below, a tree barrier that costs more
  // than the flat one at the full team size undercuts the design's
  // point, so warn loudly.
  {
    const Value* cb = get(cur, "barrier");
    double flat = 0.0;
    double tree = 0.0;
    if (get_number(cb, "flat_ns_per_crossing_max_threads", &flat) &&
        get_number(cb, "tree_ns_per_crossing_max_threads", &tree) &&
        tree > flat) {
      warn("/barrier", "tree barrier (" + fmt(tree) +
                           " ns/crossing) slower than flat (" + fmt(flat) +
                           " ns) at max threads on this host");
    }
    const Value* bb = get(base, "barrier");
    compare_metric(cb, bb, "/barrier", "flat_ns_per_crossing_max_threads",
                   5.0, false, 1.0);
    compare_metric(cb, bb, "/barrier", "tree_ns_per_crossing_max_threads",
                   5.0, false, 1.0);
  }

  // Vertex reordering: mode=none must reproduce itself exactly (hard,
  // baseline-independent — the facade's inverse permutation is an
  // identity there). Per-mode wall clock and LLC rates are
  // host-dependent, advisory.
  {
    const Value* cro = get(cur, "reorder");
    if (cro != nullptr) {
      const Value* none = find_reorder_mode(cro, "none");
      double l1 = -1.0;
      if (none != nullptr &&
          (!get_number(none, "ranks_l1_vs_none", &l1) || l1 != 0.0)) {
        fail("/reorder/modes[mode=none]/ranks_l1_vs_none", "must be 0");
      }
      const Value* bro = get(base, "reorder");
      const Value* bmodes = get(bro, "modes");
      if (bmodes != nullptr && bmodes->type == Value::Type::kArray) {
        for (const ValuePtr& bm : bmodes->array) {
          const Value* name = get(bm.get(), "mode");
          if (name == nullptr) continue;
          const std::string mpath = "/reorder/modes[mode=" + name->str + "]";
          const Value* cm = find_reorder_mode(cro, name->str);
          if (cm == nullptr) {
            fail(mpath, "mode present in baseline but missing in current");
            continue;
          }
          compare_metric(cm, bm.get(), mpath, "native_seconds", 3.0, false,
                         1e-6);
          compare_metric(cm, bm.get(), mpath, "llc_miss_rate", 1.0, false,
                         0.05);
        }
      }
    }
  }

  // Kernel section: the abstraction-drift gate is a correctness claim
  // about the CURRENT run (hard, baseline-independent) — the facade
  // and run<PageRankKernel> are the same core, so simulated cycles
  // and ranks must agree exactly. Per-kernel message volume, round
  // counts and skip ratios are deterministic functions of graph +
  // partition plan: tight hard bands. ns/edge is host wall clock:
  // advisory.
  {
    const Value* ck = get(cur, "kernels");
    if (ck != nullptr) {
      double drift = -1.0;
      if (!get_number(ck, "pagerank_abstraction_drift", &drift) ||
          drift != 0.0) {
        fail("/kernels/pagerank_abstraction_drift", "must be 0");
      }
      double l1 = -1.0;
      if (!get_number(ck, "pagerank_ranks_l1_vs_facade", &l1) ||
          l1 != 0.0) {
        fail("/kernels/pagerank_ranks_l1_vs_facade", "must be 0");
      }
      const Value* ident = get(ck, "pagerank_bitwise_identical_to_facade");
      if (ident == nullptr || ident->type != Value::Type::kBool ||
          !ident->boolean) {
        fail("/kernels/pagerank_bitwise_identical_to_facade",
             "must be true");
      }
      const Value* bk = get(base, "kernels");
      compare_metric(ck, bk, "/kernels", "full_round_messages", 0.0, true);
      // Simulated cycles carry heap-address set-conflict noise
      // (~1e-5 relative); anything past 2% is a real model change.
      compare_metric(ck, bk, "/kernels", "pagerank_sim_cycles_facade",
                     0.02, true);
      compare_metric(ck, bk, "/kernels", "pagerank_sim_cycles_kernel",
                     0.02, true);
      const Value* bentries = get(bk, "entries");
      const Value* centries = get(ck, "entries");
      if (bentries != nullptr && bentries->type == Value::Type::kArray) {
        for (const ValuePtr& be : bentries->array) {
          const Value* name = get(be.get(), "kernel");
          if (name == nullptr) continue;
          const std::string ep = "/kernels/entries[kernel=" + name->str +
                                 "]";
          const Value* ce = nullptr;
          if (centries != nullptr &&
              centries->type == Value::Type::kArray) {
            for (const ValuePtr& c : centries->array) {
              const Value* n = get(c.get(), "kernel");
              if (n != nullptr && n->str == name->str) {
                ce = c.get();
                break;
              }
            }
          }
          if (ce == nullptr) {
            fail(ep, "kernel present in baseline but missing in current");
            continue;
          }
          compare_metric(ce, be.get(), ep, "iterations", 0.0, true);
          compare_metric(ce, be.get(), ep, "messages_per_edge", 0.02, true,
                         0.001);
          compare_metric(ce, be.get(), ep, "active_skip_ratio", 0.02, true,
                         0.01);
          compare_metric(ce, be.get(), ep, "ns_per_edge", 3.0, false, 0.1);
        }
      }
    }
  }

  // Out-of-core streaming: bitwise identity with the in-core run and
  // staying inside the resident budget are correctness claims about
  // the CURRENT run (hard, baseline-independent). The segmentation
  // plan, budget arithmetic, and per-iteration byte traffic depend
  // only on the graph and the configured target segment size, so they
  // get exact bands. Wall clock and the achieved prefetch overlap are
  // host/IO dependent: advisory.
  {
    const Value* coo = get(cur, "oocore");
    if (coo != nullptr) {
      const Value* ident = get(coo, "ranks_bitwise_identical");
      if (ident == nullptr || ident->type != Value::Type::kBool ||
          !ident->boolean) {
        fail("/oocore/ranks_bitwise_identical",
             "must be true — streaming ranks diverged from the in-core "
             "run");
      }
      const Value* bok = get(coo, "budget_ok");
      if (bok == nullptr || bok->type != Value::Type::kBool ||
          !bok->boolean) {
        fail("/oocore/budget_ok",
             "must be true — peak resident bytes exceeded the "
             "configured budget");
      }
      double peak = 0.0;
      double budget = 0.0;
      if (get_number(coo, "peak_resident_bytes", &peak) &&
          get_number(coo, "budget_bytes", &budget) && peak > budget) {
        fail("/oocore/peak_resident_bytes",
             "exceeds budget_bytes (" + fmt(peak) + " > " + fmt(budget) +
                 ")");
      }
      const Value* boo = get(base, "oocore");
      // Deterministic plan/traffic properties of graph + target size.
      compare_metric(coo, boo, "/oocore", "segments", 0.0, true);
      compare_metric(coo, boo, "/oocore", "iterations", 0.0, true);
      compare_metric(coo, boo, "/oocore", "target_segment_bytes", 0.0,
                     true);
      compare_metric(coo, boo, "/oocore", "budget_bytes", 0.0, true);
      compare_metric(coo, boo, "/oocore", "peak_resident_bytes", 0.0,
                     true);
      compare_metric(coo, boo, "/oocore", "bytes_fetched", 0.0, true);
      // Host/IO dependent: advisory only.
      compare_metric(coo, boo, "/oocore", "incore_seconds", 3.0, false,
                     1e-6);
      compare_metric(coo, boo, "/oocore", "streaming_seconds", 3.0, false,
                     1e-6);
      compare_metric(coo, boo, "/oocore", "prefetch_overlap_ratio", 10.0,
                     false, 0.05);
    }
  }

  // Dispatch overhead: host-dependent, advisory. The *ordering*
  // (run_loop cheaper than per-phase dispatch) is the paper's claim
  // and is machine-independent enough to warn loudly about.
  {
    const Value* cov = get(cur, "dispatch_overhead");
    double phase_ns = 0.0;
    double loop_ns = 0.0;
    if (get_number(cov, "phase_ns_per_iter", &phase_ns) &&
        get_number(cov, "run_loop_ns_per_iter", &loop_ns) &&
        loop_ns > phase_ns) {
      warn("/dispatch_overhead",
           "run_loop (" + fmt(loop_ns) + " ns) slower than per-phase "
           "dispatch (" + fmt(phase_ns) + " ns) on this host");
    }
    compare_metric(cov, get(base, "dispatch_overhead"), "/dispatch_overhead",
                   "phase_ns_per_iter", 5.0, false, 1.0);
    compare_metric(cov, get(base, "dispatch_overhead"), "/dispatch_overhead",
                   "run_loop_ns_per_iter", 5.0, false, 1.0);
  }

  if (g_errors > 0) {
    std::fprintf(stderr,
                 "%d hard regression(s), %d warning(s) vs baseline %s\n",
                 g_errors, g_warnings, argv[2]);
    return 1;
  }
  std::printf("regress OK: %s vs %s (%d warning(s))\n", argv[1], argv[2],
              g_warnings);
  return 0;
}
