// Reproduces paper Table 2: PageRank execution time (seconds) of the
// five methodologies on the six evaluation graphs.
//
// Expected shape (paper): HiPa fastest on every graph; hand-coded
// partition-centric (p-PR) second; frameworks (GPOP, Polymer) slowest
// of their paradigm; speedups of HiPa over the best alternative in the
// 1.11x-1.45x band, and up to ~10x over Polymer.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 3 : 5);

  bench::print_banner("Table 2: PageRank execution time", "paper Table 2");
  std::printf("(paper runs 20 iterations; this harness runs %u and also "
              "prints per-iteration time,\n which is the comparable "
              "quantity)\n\n", iters);
  std::printf("%-9s %6s | %9s %9s %9s %9s %9s | best-alt/HiPa\n", "graph",
              "1/N", "HiPa", "p-PR", "v-PR", "GPOP", "Polymer");

  for (const auto& d : bench::load_datasets(flags)) {
    double secs[5] = {};
    int i = 0;
    for (algo::Method m : algo::all_methods()) {
      sim::SimMachine machine = bench::make_machine(d.scale);
      algo::MethodParams params;
      params.pr.iterations = iters;
      params.scale_denom = d.scale;
      const auto report =
          algo::run_method_sim(m, d.graph, machine, params).report;
      secs[i++] = report.seconds;
    }
    double best_alt = secs[1];
    for (int k = 1; k < 5; ++k) best_alt = std::min(best_alt, secs[k]);
    std::printf("%-9s %6u | %9.4f %9.4f %9.4f %9.4f %9.4f |  %.2fx\n",
                d.name.c_str(), d.scale, secs[0], secs[1], secs[2], secs[3],
                secs[4], best_alt / secs[0]);
  }
  std::printf("\npaper Table 2 (seconds, 20 iters, full-size graphs):\n");
  std::printf("  journal: 0.31 0.41 0.54 1.14 1.72 | pld: 2.43 3.37 8.44 "
              "4.18 22.27\n  wiki: 1.74 1.80 1.96 3.90 4.63 | kron: 7.20 "
              "10.06 32.82 11.29 76.62\n  twitter: 8.43 9.83 12.09 14.91 "
              "41.06 | mpi: 13.93 17.54 24.41 33.90 64.00\n");
  return 0;
}
