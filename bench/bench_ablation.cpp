// Ablation study: which of HiPa's ingredients buys what.
//
// The paper argues three mechanisms (§3): NUMA-aware placement,
// thread-data pinning (vs FCFS claiming), and persistent threads
// (Algorithm 2 vs Algorithm 1). This harness removes them one at a
// time from the full configuration — the gap each removal opens is that
// ingredient's contribution. Also contrasts 20-thread (physical only)
// vs 40-thread (full SMT) operation, the paper's §3.3 motivation.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/pcpm_engine.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 4);

  bench::print_banner("Ablation: HiPa design choices", "paper Section 3");
  const std::string name = flags.dataset.empty() ? "journal" : flags.dataset;
  const unsigned scale =
      graph::recommended_scale(name) * (flags.quick ? 16 : 2);
  const graph::Graph g = graph::make_dataset(name, scale);
  const std::uint64_t part_bytes =
      std::max<std::uint64_t>(256 * 1024 / scale, sizeof(rank_t));
  std::printf("graph=%s 1/N=%u V=%u E=%llu, %u iterations, 256K-eq "
              "partitions\n\n",
              name.c_str(), scale, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), iters);

  struct Variant {
    const char* label;
    engine::PcpmOptions opt;
  };
  auto base = engine::PcpmOptions::hipa(40, 2, part_bytes);

  std::vector<Variant> variants;
  variants.push_back({"HiPa (full)", base});
  {
    auto v = base;
    v.numa_aware = false;
    variants.push_back({"- NUMA placement (interleaved)", v});
  }
  {
    auto v = base;
    v.pinned_partitions = false;
    variants.push_back({"- pinning (FCFS claiming)", v});
  }
  {
    auto v = base;
    v.persistent_threads = false;
    variants.push_back({"- persistent threads (Alg. 1)", v});
  }
  {
    auto v = base;
    v.num_threads = 20;
    variants.push_back({"- SMT (20 threads)", v});
  }
  {
    auto v = base;
    v.numa_aware = false;
    v.pinned_partitions = false;
    v.persistent_threads = false;
    v.num_threads = 16;
    variants.push_back({"none of it (== p-PR @16)", v});
  }

  std::printf("%-32s %10s %9s %9s %11s\n", "variant", "time (s)",
              "vs full", "remote%", "migrations");
  double full_seconds = 0.0;
  for (const Variant& v : variants) {
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(scale));
    engine::SimBackend backend(machine);
    engine::PcpmEngine<engine::SimBackend> eng(g, v.opt, backend);
    engine::PageRankOptions pr;
    pr.iterations = iters;
    const auto report = eng.run(pr).report;
    if (full_seconds == 0.0) full_seconds = report.seconds;
    std::printf("%-32s %10.4f %8.2fx %8.1f%% %11llu\n", v.label,
                report.seconds, report.seconds / full_seconds,
                report.stats.remote_fraction() * 100.0,
                static_cast<unsigned long long>(
                    report.stats.thread_migrations));
  }
  std::printf("\n(each \"-\" row removes one ingredient from full HiPa; "
              "its slowdown factor is\n that ingredient's contribution "
              "on this graph)\n");
  return 0;
}
