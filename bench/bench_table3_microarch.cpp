// Reproduces paper Table 3: normalized execution time across partition
// sizes on the Haswell vs Skylake micro-architectures.
//
// Expected shape (paper): on Skylake (1 MB L2, non-inclusive LLC) the
// optimum sits at 256 KB = L2/4 (128 KB for p-PR); on Haswell (256 KB
// L2, inclusive LLC) all three methodologies prefer 128 KB = L2/2; both
// architectures fall off sharply at 512 KB.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 3);

  bench::print_banner("Table 3: partition size x micro-architecture",
                      "paper Table 3");
  // The paper averages over journal/pld/wiki/twitter (kron and mpi
  // exceed the Haswell box's memory); two representative graphs keep
  // this 2-arch x 4-size x 3-method sweep tractable.
  std::vector<std::string> names = {"journal", "wiki"};
  if (!flags.dataset.empty()) names = {flags.dataset};

  const std::vector<std::uint64_t> sizes_eq = {64 << 10, 128 << 10,
                                               256 << 10, 512 << 10};
  struct Arch {
    const char* name;
    sim::Topology topo;
    std::uint64_t norm_size;  ///< paper's per-arch normalization column
  };
  const Arch arches[] = {
      {"Haswell", sim::Topology::haswell_2s(), 128 << 10},
      {"Skylake", sim::Topology::skylake_2s(), 256 << 10},
  };
  // --methods=hipa,ppr narrows the sweep (names via method_from_name).
  const std::vector<algo::Method> methods = flags.methods_or(
      {algo::Method::kHipa, algo::Method::kPpr, algo::Method::kGpop});

  for (const Arch& arch : arches) {
    std::printf("\n--- %s (L2=%lluK, LLC %s) ---\n", arch.name,
                static_cast<unsigned long long>(arch.topo.l2.size_bytes >>
                                                10),
                arch.topo.inclusive_llc ? "inclusive" : "non-inclusive");
    std::printf("%8s |", "method");
    for (std::uint64_t sz : sizes_eq) {
      std::printf(" %6lluK", static_cast<unsigned long long>(sz >> 10));
    }
    std::printf("   (normalized by %lluK)\n",
                static_cast<unsigned long long>(arch.norm_size >> 10));

    double col_sum[4] = {};
    for (algo::Method m : methods) {
      double avg[4] = {};
      for (const std::string& name : names) {
        const unsigned scale =
            graph::recommended_scale(name) * (flags.quick ? 16 : 2);
        const graph::Graph g = graph::make_dataset(name, scale);
        double secs[4] = {};
        double norm_sec = 1.0;
        for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
          sim::SimMachine machine(arch.topo.scaled(scale));
          algo::MethodParams params;
          params.pr.iterations = iters;
          params.scale_denom = scale;
          params.partition_bytes = std::max<std::uint64_t>(
              sizes_eq[si] / scale, sizeof(rank_t));
          params.threads = algo::default_threads(m, arch.topo);
          const auto report =
              algo::run_method_sim(m, g, machine, params).report;
          secs[si] = report.seconds;
          if (sizes_eq[si] == arch.norm_size) norm_sec = secs[si];
        }
        for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
          avg[si] += secs[si] / norm_sec;
        }
      }
      std::printf("%8s |", algo::method_name(m));
      for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
        avg[si] /= static_cast<double>(names.size());
        col_sum[si] += avg[si];
        std::printf(" %6.2f ", avg[si]);
      }
      std::printf("\n");
    }
    std::printf("%8s |", "average");
    for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
      std::printf(" %6.2f ", col_sum[si] / static_cast<double>(methods.size()));
    }
    std::printf("\n");
  }

  std::printf("\npaper Table 3 (averages): Haswell 1.08 0.99 1.00 1.27 | "
              "Skylake 1.09 1.00 1.08 1.22\n");
  return 0;
}
