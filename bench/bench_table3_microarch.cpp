// Reproduces paper Table 3: normalized execution time across partition
// sizes on the Haswell vs Skylake micro-architectures — and, new in
// this revision, the same sweep natively on the host with real PMU
// counter groups beside the simulator's numbers.
//
// Expected shape (paper): on Skylake (1 MB L2, non-inclusive LLC) the
// optimum sits at 256 KB = L2/4 (128 KB for p-PR); on Haswell (256 KB
// L2, inclusive LLC) all three methodologies prefer 128 KB = L2/2; both
// architectures fall off sharply at 512 KB.
//
// The native section runs the same (method x partition-size) grid on
// this machine with telemetry + hardware counters on, so the simulated
// LLC behaviour can be checked against real LLC-load-miss rates from
// perf_event. When the PMU is inaccessible (perf_event_paranoid,
// containers) the hw columns print as unavailable and the JSON records
// hw.available=false — the sweep itself still runs.
//
// Emits machine-readable JSON (default BENCH_table3.json, --out=)
// validated by bench_schema_check.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "runtime/affinity.hpp"

namespace {

using namespace hipa;

/// One native run at a fixed partition size with hw counters on.
struct NativePoint {
  std::uint64_t partition_bytes = 0;
  double seconds = 0.0;
  runtime::RunTelemetry telemetry;
  numa::PlacementAudit placement;
};

NativePoint run_native_point(const graph::Graph& g, algo::Method m,
                             unsigned scale, std::uint64_t part_bytes,
                             unsigned iters, const std::string& trace) {
  NativePoint p;
  algo::MethodParams params;
  params.scale_denom = scale;
  params.partition_bytes = part_bytes;
  params.pr.iterations = iters;
  params.pr.telemetry = runtime::Telemetry::kOn;
  params.pr.hw_counters = runtime::HwProf::kOn;
  params.pr.audit_placement = true;
  params.pr.trace_path = trace;
  p.partition_bytes = part_bytes;
  auto res = algo::run_method_native(m, g, params);
  p.seconds = res.report.seconds;
  p.telemetry = res.report.telemetry;
  p.placement = res.report.placement_audit;
  return p;
}

double llc_miss_pct(const runtime::RunTelemetry& t) {
  runtime::HwCounters sum;
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    sum.add(t[static_cast<runtime::Phase>(pi)].hw);
  }
  return sum.llc_loads > 0
             ? 100.0 * static_cast<double>(sum.llc_load_misses) /
                   static_cast<double>(sum.llc_loads)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 3);
  const std::string out_path =
      flags.out.empty() ? "BENCH_table3.json" : flags.out;

  bench::print_banner("Table 3: partition size x micro-architecture",
                      "paper Table 3");
  // The paper averages over journal/pld/wiki/twitter (kron and mpi
  // exceed the Haswell box's memory); two representative graphs keep
  // this 2-arch x 4-size x 3-method sweep tractable.
  std::vector<std::string> names = {"journal", "wiki"};
  if (!flags.dataset.empty()) names = {flags.dataset};

  const std::vector<std::uint64_t> sizes_eq = {64 << 10, 128 << 10,
                                               256 << 10, 512 << 10};
  struct Arch {
    const char* name;
    sim::Topology topo;
    std::uint64_t norm_size;  ///< paper's per-arch normalization column
  };
  const Arch arches[] = {
      {"Haswell", sim::Topology::haswell_2s(), 128 << 10},
      {"Skylake", sim::Topology::skylake_2s(), 256 << 10},
  };
  // --methods=hipa,ppr narrows the sweep (names via method_from_name).
  const std::vector<algo::Method> methods = flags.methods_or(
      {algo::Method::kHipa, algo::Method::kPpr, algo::Method::kGpop});

  std::FILE* jf = std::fopen(out_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.begin_object();
  jw.kv("bench", "table3_microarch");
  jw.kv("iterations", iters);
  jw.kv("quick", flags.quick);
  jw.key("host");
  jw.begin_object();
  jw.kv("cpus", runtime::topology().num_cpus());
  jw.kv("numa_nodes", runtime::topology().num_nodes());
  jw.end_object();
  jw.key("datasets");
  jw.begin_array();
  for (const std::string& n : names) jw.value(n);
  jw.end_array();

  jw.key("arches");
  jw.begin_array();
  for (const Arch& arch : arches) {
    std::printf("\n--- %s (L2=%lluK, LLC %s) — simulated ---\n", arch.name,
                static_cast<unsigned long long>(arch.topo.l2.size_bytes >>
                                                10),
                arch.topo.inclusive_llc ? "inclusive" : "non-inclusive");
    std::printf("%8s |", "method");
    for (std::uint64_t sz : sizes_eq) {
      std::printf(" %6lluK", static_cast<unsigned long long>(sz >> 10));
    }
    std::printf("   (normalized by %lluK)\n",
                static_cast<unsigned long long>(arch.norm_size >> 10));

    jw.begin_object();
    jw.kv("arch", arch.name);
    jw.kv("l2_kb",
          static_cast<std::uint64_t>(arch.topo.l2.size_bytes >> 10));
    jw.kv("inclusive_llc", arch.topo.inclusive_llc);
    jw.kv("norm_kb", static_cast<std::uint64_t>(arch.norm_size >> 10));
    jw.key("methods");
    jw.begin_array();

    double col_sum[4] = {};
    for (algo::Method m : methods) {
      double avg[4] = {};
      for (const std::string& name : names) {
        const unsigned scale =
            graph::recommended_scale(name) * (flags.quick ? 16 : 2);
        const graph::Graph g = graph::make_dataset(name, scale);
        double secs[4] = {};
        double norm_sec = 1.0;
        for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
          sim::SimMachine machine(arch.topo.scaled(scale));
          algo::MethodParams params;
          params.pr.iterations = iters;
          params.scale_denom = scale;
          params.partition_bytes = std::max<std::uint64_t>(
              sizes_eq[si] / scale, sizeof(rank_t));
          params.threads = algo::default_threads(m, arch.topo);
          const auto report =
              algo::run_method_sim(m, g, machine, params).report;
          secs[si] = report.seconds;
          if (sizes_eq[si] == arch.norm_size) norm_sec = secs[si];
        }
        for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
          avg[si] += secs[si] / norm_sec;
        }
      }
      std::printf("%8s |", algo::method_name(m));
      jw.begin_object();
      jw.kv("method", algo::method_name(m));
      jw.key("normalized");
      jw.begin_array();
      for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
        avg[si] /= static_cast<double>(names.size());
        col_sum[si] += avg[si];
        std::printf(" %6.2f ", avg[si]);
        jw.begin_object();
        jw.kv("kb", static_cast<std::uint64_t>(sizes_eq[si] >> 10));
        jw.kv("value", avg[si]);
        jw.end_object();
      }
      jw.end_array();
      jw.end_object();
      std::printf("\n");
    }
    jw.end_array();
    std::printf("%8s |", "average");
    jw.key("average");
    jw.begin_array();
    for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
      const double a = col_sum[si] / static_cast<double>(methods.size());
      std::printf(" %6.2f ", a);
      jw.begin_object();
      jw.kv("kb", static_cast<std::uint64_t>(sizes_eq[si] >> 10));
      jw.kv("value", a);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    std::printf("\n");
  }
  jw.end_array();

  // ---- native side-by-side: same grid, real PMU counters ------------
  // One dataset keeps the native sweep proportionate; sim arch tables
  // above carry the cross-architecture story.
  {
    const std::string& name = names.front();
    const unsigned scale =
        graph::recommended_scale(name) * (flags.quick ? 16 : 2);
    const graph::Graph g = graph::make_dataset(name, scale);
    const std::uint64_t norm_size = 256 << 10;  // host-class (Skylake+)

    std::printf("\n--- native on this host ('%s', %u thread(s)) — "
                "wall-clock + PMU ---\n",
                name.c_str(), std::max(1u, runtime::available_cpus()));
    std::printf("%8s |", "method");
    for (std::uint64_t sz : sizes_eq) {
      std::printf(" %6lluK", static_cast<unsigned long long>(sz >> 10));
    }
    std::printf("   (normalized by %lluK; LLC-miss%% underneath)\n",
                static_cast<unsigned long long>(norm_size >> 10));

    jw.key("native_hw");
    jw.begin_object();
    jw.kv("dataset", name);
    jw.kv("iterations", iters);
    jw.key("methods");
    jw.begin_array();
    bool trace_written = false;
    bool hw_seen = false;
    for (algo::Method m : methods) {
      std::vector<NativePoint> points;
      for (std::uint64_t sz : sizes_eq) {
        const std::uint64_t part =
            std::max<std::uint64_t>(sz / scale, sizeof(rank_t));
        const std::string trace =
            !trace_written ? flags.trace_out : std::string();
        trace_written = trace_written || !trace.empty();
        points.push_back(
            run_native_point(g, m, scale, part, iters, trace));
      }
      double norm_sec = 1.0;
      for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
        if (sizes_eq[si] == norm_size && points[si].seconds > 0.0) {
          norm_sec = points[si].seconds;
        }
      }
      std::printf("%8s |", algo::method_name(m));
      for (const NativePoint& p : points) {
        std::printf(" %6.2f ",
                    norm_sec > 0.0 ? p.seconds / norm_sec : 0.0);
      }
      std::printf("\n");
      if (points.front().telemetry.hw_available) {
        hw_seen = true;
        std::printf("%8s |", "LLC-m%");
        for (const NativePoint& p : points) {
          std::printf(" %5.1f%% ", llc_miss_pct(p.telemetry));
        }
        std::printf("\n");
      }

      jw.begin_object();
      jw.kv("method", algo::method_name(m));
      jw.key("sizes");
      jw.begin_array();
      for (std::size_t si = 0; si < sizes_eq.size(); ++si) {
        const NativePoint& p = points[si];
        jw.begin_object();
        jw.kv("kb", static_cast<std::uint64_t>(sizes_eq[si] >> 10));
        jw.kv("partition_bytes", p.partition_bytes);
        jw.kv("native_seconds", p.seconds);
        jw.kv("normalized",
              norm_sec > 0.0 ? p.seconds / norm_sec : 0.0);
        jw.kv("llc_miss_pct", llc_miss_pct(p.telemetry));
        bench::emit_telemetry(jw, p.telemetry);
        bench::emit_placement_audit(jw, p.placement);
        jw.end_object();
      }
      jw.end_array();
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    if (!hw_seen) {
      std::printf("%8s | PMU unavailable on this host "
                  "(perf_event_paranoid / container policy)\n",
                  "hw");
    }
  }

  jw.end_object();
  std::fputc('\n', jf);
  std::fclose(jf);

  std::printf("\npaper Table 3 (averages): Haswell 1.08 0.99 1.00 1.27 | "
              "Skylake 1.09 1.00 1.08 1.22\n");
  std::printf("JSON written to %s\n", out_path.c_str());
  return 0;
}
