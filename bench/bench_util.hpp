// Shared plumbing for the paper-reproduction bench binaries: flag
// parsing, dataset/machine construction at matched scale, table
// formatting.
//
// Every binary prints (a) the substitution banner — scale factors and
// what they mean — and (b) rows shaped like the paper's table/figure so
// EXPERIMENTS.md can be filled by direct comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algos/pagerank.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace hipa::bench {

/// Common CLI flags: --iters=N, --quick (tiny sizes for smoke runs),
/// --dataset=name (restrict to one), --help.
struct Flags {
  unsigned iterations = 0;  ///< 0 = per-bench default
  bool quick = false;
  std::string dataset;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--iters=", 8) == 0) {
        f.iterations = static_cast<unsigned>(std::atoi(a + 8));
      } else if (std::strcmp(a, "--quick") == 0) {
        // Smoke mode: 8x extra shrink. Degenerate caches distort shapes;
        // use default scales for reproduction-quality numbers.
        f.quick = true;
      } else if (std::strncmp(a, "--dataset=", 10) == 0) {
        f.dataset = a + 10;
      } else if (std::strcmp(a, "--help") == 0) {
        std::printf(
            "flags: --iters=N  --quick  --dataset=<name>\n"
            "datasets: journal pld wiki kron twitter mpi\n");
        std::exit(0);
      }
    }
    return f;
  }
};

/// One dataset instantiated at its matched scale, with the simulated
/// machine shrunk by the same factor.
struct ScaledDataset {
  std::string name;
  unsigned scale = 1;
  graph::Graph graph;
};

/// Load one dataset at its recommended (or quick) scale.
inline ScaledDataset load_scaled(const std::string& name, bool quick) {
  ScaledDataset d;
  d.name = name;
  d.scale = graph::recommended_scale(name) * (quick ? 8 : 1);
  d.graph = graph::make_dataset(name, d.scale);
  return d;
}

/// All six paper datasets (or the one named by flags).
inline std::vector<ScaledDataset> load_datasets(const Flags& flags) {
  std::vector<ScaledDataset> out;
  for (const auto& info : graph::paper_datasets()) {
    if (!flags.dataset.empty() && flags.dataset != info.name) continue;
    out.push_back(load_scaled(info.name, flags.quick));
  }
  return out;
}

/// Fresh simulated Skylake testbed scaled to match a dataset.
inline sim::SimMachine make_machine(unsigned scale,
                                    std::uint64_t seed = 1) {
  return sim::SimMachine(sim::Topology::skylake_2s().scaled(scale), {},
                         seed);
}

inline void print_banner(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_ref);
  std::printf("substitution: simulated 2-socket Skylake (2x10 cores x2 SMT);\n");
  std::printf("datasets are synthetic stand-ins scaled 1/N with caches and\n");
  std::printf("partition sizes scaled by the same N (printed per row).\n");
  std::printf("shapes (orderings, ratios, crossovers) are the reproduction\n");
  std::printf("target, not absolute seconds. See DESIGN.md / EXPERIMENTS.md.\n");
  std::printf("================================================================\n");
}

/// MApE per iteration — the paper's Fig. 5 metric.
inline double mape_per_iter(const engine::RunReport& r, eid_t edges) {
  return r.iterations == 0
             ? 0.0
             : r.stats.mape(edges) / static_cast<double>(r.iterations);
}

}  // namespace hipa::bench
