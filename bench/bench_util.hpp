// Shared plumbing for the paper-reproduction bench binaries: flag
// parsing, dataset/machine construction at matched scale, table
// formatting.
//
// Every binary prints (a) the substitution banner — scale factors and
// what they mean — and (b) rows shaped like the paper's table/figure so
// EXPERIMENTS.md can be filled by direct comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algos/pagerank.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace hipa::bench {

/// Common CLI flags: --iters=N, --quick (tiny sizes for smoke runs),
/// --smoke (quick + one dataset + short iterations; CI-friendly),
/// --dataset=name (restrict to one), --out=path (JSON output path for
/// benches that emit machine-readable results), --help.
struct Flags {
  unsigned iterations = 0;  ///< 0 = per-bench default
  bool quick = false;
  bool smoke = false;  ///< implies quick; benches also trim datasets
  std::string dataset;
  std::string out;  ///< JSON output path ("" = bench default)

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--iters=", 8) == 0) {
        f.iterations = static_cast<unsigned>(std::atoi(a + 8));
      } else if (std::strcmp(a, "--quick") == 0) {
        // Smoke mode: 8x extra shrink. Degenerate caches distort shapes;
        // use default scales for reproduction-quality numbers.
        f.quick = true;
      } else if (std::strcmp(a, "--smoke") == 0) {
        f.smoke = true;
        f.quick = true;
      } else if (std::strncmp(a, "--dataset=", 10) == 0) {
        f.dataset = a + 10;
      } else if (std::strncmp(a, "--out=", 6) == 0) {
        f.out = a + 6;
      } else if (std::strcmp(a, "--help") == 0) {
        std::printf(
            "flags: --iters=N  --quick  --smoke  --dataset=<name>  "
            "--out=<path>\n"
            "datasets: journal pld wiki kron twitter mpi\n");
        std::exit(0);
      }
    }
    return f;
  }
};

/// One dataset instantiated at its matched scale, with the simulated
/// machine shrunk by the same factor.
struct ScaledDataset {
  std::string name;
  unsigned scale = 1;
  graph::Graph graph;
};

/// Load one dataset at its recommended (or quick) scale.
inline ScaledDataset load_scaled(const std::string& name, bool quick) {
  ScaledDataset d;
  d.name = name;
  d.scale = graph::recommended_scale(name) * (quick ? 8 : 1);
  d.graph = graph::make_dataset(name, d.scale);
  return d;
}

/// All six paper datasets (or the one named by flags).
inline std::vector<ScaledDataset> load_datasets(const Flags& flags) {
  std::vector<ScaledDataset> out;
  for (const auto& info : graph::paper_datasets()) {
    if (!flags.dataset.empty() && flags.dataset != info.name) continue;
    out.push_back(load_scaled(info.name, flags.quick));
  }
  return out;
}

/// Fresh simulated Skylake testbed scaled to match a dataset.
inline sim::SimMachine make_machine(unsigned scale,
                                    std::uint64_t seed = 1) {
  return sim::SimMachine(sim::Topology::skylake_2s().scaled(scale), {},
                         seed);
}

inline void print_banner(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_ref);
  std::printf("substitution: simulated 2-socket Skylake (2x10 cores x2 SMT);\n");
  std::printf("datasets are synthetic stand-ins scaled 1/N with caches and\n");
  std::printf("partition sizes scaled by the same N (printed per row).\n");
  std::printf("shapes (orderings, ratios, crossovers) are the reproduction\n");
  std::printf("target, not absolute seconds. See DESIGN.md / EXPERIMENTS.md.\n");
  std::printf("================================================================\n");
}

/// MApE per iteration — the paper's Fig. 5 metric.
inline double mape_per_iter(const engine::RunReport& r, eid_t edges) {
  return r.iterations == 0
             ? 0.0
             : r.stats.mape(edges) / static_cast<double>(r.iterations);
}

/// Minimal streaming JSON emitter — no third-party deps, writes
/// directly to a FILE*. Comma placement is tracked with a per-level
/// "first element" stack; keys set a one-shot flag so the following
/// value attaches without a separator. Only the shapes the benches
/// need (objects, arrays, strings, numbers, bools); strings are
/// escaped for quotes, backslashes and control characters.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void begin_object() { sep(); std::fputc('{', f_); push(); }
  void end_object() { pop(); std::fputc('}', f_); }
  void begin_array() { sep(); std::fputc('[', f_); push(); }
  void end_array() { pop(); std::fputc(']', f_); }

  void key(const char* k) {
    sep();
    write_string(k);
    std::fputc(':', f_);
    after_key_ = true;
  }

  void value(const char* s) { sep(); write_string(s); }
  void value(const std::string& s) { value(s.c_str()); }
  void value(bool b) { sep(); std::fputs(b ? "true" : "false", f_); }
  void value(double v) { sep(); std::fprintf(f_, "%.9g", v); }
  void value(std::uint64_t v) {
    sep();
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { sep(); std::fprintf(f_, "%d", v); }

  template <class T>
  void kv(const char* k, T v) {
    key(k);
    value(v);
  }

 private:
  void push() { first_.push_back(true); }
  void pop() {
    if (!first_.empty()) first_.pop_back();
  }
  void sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) std::fputc(',', f_);
      first_.back() = false;
    }
  }
  void write_string(const char* s) {
    std::fputc('"', f_);
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        std::fputc('\\', f_);
        std::fputc(c, f_);
      } else if (c < 0x20) {
        std::fprintf(f_, "\\u%04x", c);
      } else {
        std::fputc(c, f_);
      }
    }
    std::fputc('"', f_);
  }

  std::FILE* f_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace hipa::bench
