// Shared plumbing for the paper-reproduction bench binaries: flag
// parsing, dataset/machine construction at matched scale, table
// formatting.
//
// Every binary prints (a) the substitution banner — scale factors and
// what they mean — and (b) rows shaped like the paper's table/figure so
// EXPERIMENTS.md can be filled by direct comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algos/pagerank.hpp"
#include "common/cli.hpp"
#include "graph/datasets.hpp"
#include "runtime/numa_audit.hpp"
#include "runtime/telemetry.hpp"
#include "sim/machine.hpp"

namespace hipa::bench {

/// Common CLI flags: --iters=N, --quick (tiny sizes for smoke runs),
/// --smoke (quick + one dataset + short iterations; CI-friendly),
/// --dataset=name (restrict to one), --methods=a,b (restrict the
/// methodology set; names per algo::method_from_name, e.g.
/// "hipa,ppr,GPOP"), --kernel=a,b (restrict the kernel set; names per
/// algo::kernel_from_name: pagerank ppr bfs wcc sssp), --reorder=a,b
/// (restrict the vertex-reorder mode set; names per
/// algo::reorder_from_name: none degree hub), --out=path (JSON output
/// path for benches that emit machine-readable results),
/// --trace-out=path (Chrome/Perfetto trace_events timeline of the
/// instrumented native run; open with ui.perfetto.dev), --help.
///
/// The flag grammar itself (prefix matching, list splitting, strict
/// integers) lives in common/cli.hpp, shared with the offline tools;
/// this struct only binds it to the bench vocabulary.
struct Flags {
  unsigned iterations = 0;  ///< 0 = per-bench default
  bool quick = false;
  bool smoke = false;  ///< implies quick; benches also trim datasets
  std::string dataset;
  std::vector<algo::Method> methods;  ///< empty = bench default set
  std::vector<algo::Kernel> kernels;  ///< empty = bench default set
  std::vector<engine::Reorder> reorders;  ///< empty = bench default set
  std::string out;        ///< JSON output path ("" = bench default)
  std::string trace_out;  ///< Chrome trace path ("" = no trace)

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (const char* v = cli::flag_value(a, "--iters=")) {
        f.iterations = static_cast<unsigned>(cli::parse_u64("--iters", v));
      } else if (cli::flag_is(a, "--quick")) {
        // Smoke mode: 8x extra shrink. Degenerate caches distort shapes;
        // use default scales for reproduction-quality numbers.
        f.quick = true;
      } else if (cli::flag_is(a, "--smoke")) {
        f.smoke = true;
        f.quick = true;
      } else if (const char* v = cli::flag_value(a, "--dataset=")) {
        f.dataset = v;
      } else if (const char* v = cli::flag_value(a, "--methods=")) {
        f.methods = parse_methods(v);
      } else if (const char* v = cli::flag_value(a, "--kernel=")) {
        f.kernels = parse_kernels(v);
      } else if (const char* v = cli::flag_value(a, "--reorder=")) {
        f.reorders = parse_reorders(v);
      } else if (const char* v = cli::flag_value(a, "--out=")) {
        f.out = v;
      } else if (const char* v = cli::flag_value(a, "--trace-out=")) {
        f.trace_out = v;
      } else if (cli::flag_is(a, "--help")) {
        std::printf(
            "flags: --iters=N  --quick  --smoke  --dataset=<name>  "
            "--methods=a,b  --kernel=a,b  --reorder=a,b  --out=<path>  "
            "--trace-out=<path>\n"
            "datasets: journal pld wiki kron twitter mpi\n"
            "methods:  hipa ppr vpr gpop polymer (or the paper names)\n"
            "kernels:  pagerank ppr bfs wcc sssp\n"
            "reorder:  none degree hub\n");
        std::exit(0);
      }
    }
    return f;
  }

  /// Comma-separated method list -> Methods via algo::method_from_name.
  /// Unknown names abort with a message listing the vocabulary — a
  /// silently dropped methodology would corrupt a reproduction run.
  static std::vector<algo::Method> parse_methods(const char* list) {
    return cli::parse_name_list<algo::Method>(
        list, [](const std::string& s) { return algo::method_from_name(s); },
        "method", "hipa ppr vpr gpop polymer");
  }

  /// Comma-separated kernel list -> algo::Kernel via
  /// algo::kernel_from_name; unknown names abort, same policy as
  /// parse_methods.
  static std::vector<algo::Kernel> parse_kernels(const char* list) {
    return cli::parse_name_list<algo::Kernel>(
        list, [](const std::string& s) { return algo::kernel_from_name(s); },
        "kernel", "pagerank ppr bfs wcc sssp");
  }

  /// Comma-separated reorder-mode list -> engine::Reorder via
  /// algo::reorder_from_name; unknown names abort, same policy as
  /// parse_methods.
  static std::vector<engine::Reorder> parse_reorders(const char* list) {
    return cli::parse_name_list<engine::Reorder>(
        list,
        [](const std::string& s) { return algo::reorder_from_name(s); },
        "reorder mode", "none degree hub");
  }

  /// The bench's method set: the --methods= filter if given (order
  /// preserved), otherwise `defaults`.
  [[nodiscard]] std::vector<algo::Method> methods_or(
      std::initializer_list<algo::Method> defaults) const {
    if (!methods.empty()) return methods;
    return std::vector<algo::Method>(defaults);
  }

  /// The bench's kernel set: the --kernel= filter if given, otherwise
  /// `defaults`.
  [[nodiscard]] std::vector<algo::Kernel> kernels_or(
      std::initializer_list<algo::Kernel> defaults) const {
    if (!kernels.empty()) return kernels;
    return std::vector<algo::Kernel>(defaults);
  }

  /// The bench's reorder-mode set: the --reorder= filter if given,
  /// otherwise `defaults`.
  [[nodiscard]] std::vector<engine::Reorder> reorders_or(
      std::initializer_list<engine::Reorder> defaults) const {
    if (!reorders.empty()) return reorders;
    return std::vector<engine::Reorder>(defaults);
  }
};

/// One dataset instantiated at its matched scale, with the simulated
/// machine shrunk by the same factor.
struct ScaledDataset {
  std::string name;
  unsigned scale = 1;
  graph::Graph graph;
};

/// Load one dataset at its recommended (or quick) scale.
inline ScaledDataset load_scaled(const std::string& name, bool quick) {
  ScaledDataset d;
  d.name = name;
  d.scale = graph::recommended_scale(name) * (quick ? 8 : 1);
  d.graph = graph::make_dataset(name, d.scale);
  return d;
}

/// All six paper datasets (or the one named by flags).
inline std::vector<ScaledDataset> load_datasets(const Flags& flags) {
  std::vector<ScaledDataset> out;
  for (const auto& info : graph::paper_datasets()) {
    if (!flags.dataset.empty() && flags.dataset != info.name) continue;
    out.push_back(load_scaled(info.name, flags.quick));
  }
  return out;
}

/// Fresh simulated Skylake testbed scaled to match a dataset.
inline sim::SimMachine make_machine(unsigned scale,
                                    std::uint64_t seed = 1) {
  return sim::SimMachine(sim::Topology::skylake_2s().scaled(scale), {},
                         seed);
}

inline void print_banner(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_ref);
  std::printf("substitution: simulated 2-socket Skylake (2x10 cores x2 SMT);\n");
  std::printf("datasets are synthetic stand-ins scaled 1/N with caches and\n");
  std::printf("partition sizes scaled by the same N (printed per row).\n");
  std::printf("shapes (orderings, ratios, crossovers) are the reproduction\n");
  std::printf("target, not absolute seconds. See DESIGN.md / EXPERIMENTS.md.\n");
  std::printf("================================================================\n");
}

/// MApE per iteration — the paper's Fig. 5 metric.
inline double mape_per_iter(const engine::RunReport& r, eid_t edges) {
  return r.iterations == 0
             ? 0.0
             : r.stats.mape(edges) / static_cast<double>(r.iterations);
}

/// Minimal streaming JSON emitter — no third-party deps, writes
/// directly to a FILE*. Comma placement is tracked with a per-level
/// "first element" stack; keys set a one-shot flag so the following
/// value attaches without a separator. Only the shapes the benches
/// need (objects, arrays, strings, numbers, bools); strings are
/// escaped for quotes, backslashes and control characters.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void begin_object() { sep(); std::fputc('{', f_); push(); }
  void end_object() { pop(); std::fputc('}', f_); }
  void begin_array() { sep(); std::fputc('[', f_); push(); }
  void end_array() { pop(); std::fputc(']', f_); }

  void key(const char* k) {
    sep();
    write_string(k);
    std::fputc(':', f_);
    after_key_ = true;
  }

  void value(const char* s) { sep(); write_string(s); }
  void value(const std::string& s) { value(s.c_str()); }
  void value(bool b) { sep(); std::fputs(b ? "true" : "false", f_); }
  void value(double v) { sep(); std::fprintf(f_, "%.9g", v); }
  void value(std::uint64_t v) {
    sep();
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { sep(); std::fprintf(f_, "%d", v); }

  template <class T>
  void kv(const char* k, T v) {
    key(k);
    value(v);
  }

 private:
  void push() { first_.push_back(true); }
  void pop() {
    if (!first_.empty()) first_.pop_back();
  }
  void sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) std::fputc(',', f_);
      first_.back() = false;
    }
  }
  void write_string(const char* s) {
    std::fputc('"', f_);
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        std::fputc('\\', f_);
        std::fputc(c, f_);
      } else if (c < 0x20) {
        std::fprintf(f_, "\\u%04x", c);
      } else {
        std::fputc(c, f_);
      }
    }
    std::fputc('"', f_);
  }

  std::FILE* f_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

// ---------------------------------------------------------------------------
// Shared telemetry JSON schema
// ---------------------------------------------------------------------------
//
// Every bench that serializes run telemetry goes through this one
// writer so BENCH_*.json files share a single schema:
//
//   "telemetry": {
//     "enabled": true, "threads": N,
//     "phases": [ { "phase": "init"|"scatter"|"gather"|"io_wait",
//                   "invocations": .., "barrier_crossings": ..,
//                   "wall_sum_seconds": .., "wall_max_seconds": ..,
//                   "wall_min_seconds": .., "imbalance": ..,
//                   "barrier_sum_seconds": .., "barrier_max_seconds": ..,
//                   "messages_produced": .., "messages_consumed": ..,
//                   "bytes_produced": .., "bytes_consumed": ..,
//                   "region_seconds": .., "sim_local_accesses": ..,
//                   "sim_remote_accesses": .. }, x4 ],
//     "iterations_recorded": I,
//     "total_wall_seconds": .., "total_barrier_seconds": ..,
//     "total_messages_produced": .., "total_messages_consumed": ..,
//     "hw": { "available": bool, "threads": N, "event_mask": M,
//             "errno": E, "events": ["cycles", ...] }
//   }
//
// Each phase entry additionally carries the per-phase hardware counter
// aggregates (hw_cycles, hw_instructions, hw_llc_loads,
// hw_llc_load_misses, hw_node_loads, hw_node_load_misses,
// hw_multiplex_ratio) — all zero when hw.available is false, scaled
// for multiplexing consult hw_multiplex_ratio.

/// Emit `telemetry` (or a custom key) as one object in the shared
/// schema above. Call with the writer positioned inside an object.
inline void emit_telemetry(JsonWriter& jw, const runtime::RunTelemetry& t,
                           const char* key = "telemetry") {
  jw.key(key);
  jw.begin_object();
  jw.kv("enabled", t.enabled);
  jw.kv("threads", t.threads);
  jw.key("phases");
  jw.begin_array();
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    const auto ph = static_cast<runtime::Phase>(pi);
    const runtime::PhaseAggregate& a = t[ph];
    jw.begin_object();
    jw.kv("phase", std::string(runtime::phase_name(ph)));
    jw.kv("invocations", a.invocations);
    jw.kv("barrier_crossings", a.barrier_crossings);
    jw.kv("participating_threads", a.participating_threads);
    jw.kv("wall_sum_seconds", a.wall_sum_seconds);
    jw.kv("wall_max_seconds", a.wall_max_seconds);
    jw.kv("wall_min_seconds", a.wall_min_seconds);
    jw.kv("imbalance", a.imbalance());
    jw.kv("barrier_sum_seconds", a.barrier_sum_seconds);
    jw.kv("barrier_max_seconds", a.barrier_max_seconds);
    jw.kv("messages_produced", a.messages_produced);
    jw.kv("messages_consumed", a.messages_consumed);
    jw.kv("bytes_produced", a.bytes_produced);
    jw.kv("bytes_consumed", a.bytes_consumed);
    jw.kv("region_seconds", a.region_seconds);
    jw.kv("sim_local_accesses", a.sim_local_accesses);
    jw.kv("sim_remote_accesses", a.sim_remote_accesses);
    jw.kv("hw_cycles", a.hw.cycles);
    jw.kv("hw_instructions", a.hw.instructions);
    jw.kv("hw_llc_loads", a.hw.llc_loads);
    jw.kv("hw_llc_load_misses", a.hw.llc_load_misses);
    jw.kv("hw_node_loads", a.hw.node_loads);
    jw.kv("hw_node_load_misses", a.hw.node_load_misses);
    jw.kv("hw_multiplex_ratio", a.hw.multiplex_ratio());
    jw.end_object();
  }
  jw.end_array();
  jw.kv("iterations_recorded",
        static_cast<std::uint64_t>(t.iteration_seconds.size()));
  jw.kv("total_wall_seconds", t.total_wall_seconds());
  jw.kv("total_barrier_seconds", t.total_barrier_seconds());
  jw.kv("total_messages_produced", t.total_messages_produced());
  jw.kv("total_messages_consumed", t.total_messages_consumed());
  jw.key("hw");
  jw.begin_object();
  jw.kv("available", t.hw_available);
  jw.kv("threads", t.hw_threads);
  jw.kv("event_mask", static_cast<std::uint64_t>(t.hw_event_mask));
  jw.kv("errno", t.hw_errno);
  jw.key("events");
  jw.begin_array();
  for (unsigned e = 0; e < runtime::kNumHwEvents; ++e) {
    if ((t.hw_event_mask & (1u << e)) != 0) {
      jw.value(runtime::hw_event_name(e));
    }
  }
  jw.end_array();
  jw.end_object();
  jw.end_object();
}

/// Emit a RunReport's NUMA placement audit (or a custom key) as one
/// object. Call with the writer positioned inside an object. Emitted
/// even when unavailable (available=false, empty buffers) so the
/// schema checker can assert the key's presence unconditionally.
inline void emit_placement_audit(JsonWriter& jw,
                                 const numa::PlacementAudit& a,
                                 const char* key = "placement_audit") {
  jw.key(key);
  jw.begin_object();
  jw.kv("available", a.available);
  jw.kv("source", a.source);
  jw.kv("page_granular", a.page_granular);
  jw.kv("min_fraction", a.min_fraction());
  jw.key("buffers");
  jw.begin_array();
  for (const numa::BufferAudit& b : a.buffers) {
    jw.begin_object();
    jw.kv("name", b.name);
    jw.kv("intended_node", b.intended_node);
    jw.kv("pages_total", b.pages_total);
    jw.kv("pages_on_node", b.pages_on_node);
    jw.kv("pages_elsewhere", b.pages_elsewhere);
    jw.kv("pages_unmapped", b.pages_unmapped);
    jw.kv("fraction_on_node", b.fraction_on_node());
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
}

}  // namespace hipa::bench
