// Reproduces paper §4.5's closing experiment: HiPa confined to a single
// NUMA node (all 20 threads on one socket) vs 2-node HiPa and the
// NUMA-oblivious partition-centric baselines at the same thread count.
//
// Expected shape (paper, journal, 20 threads, 20 iterations): 1-node
// HiPa 0.44 s is *slower* than 2-node HiPa 0.39 s and p-PR 0.41 s —
// concentrating all contention on one node hurts — while GPOP trails
// far behind at 1.14 s.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 3 : 5);

  bench::print_banner("Single-node vs 2-node HiPa (20 threads)",
                      "paper Section 4.5");
  const std::string name = flags.dataset.empty() ? "journal" : flags.dataset;
  const unsigned scale =
      graph::recommended_scale(name) * (flags.quick ? 8 : 1);
  const graph::Graph g = graph::make_dataset(name, scale);
  std::printf("graph=%s 1/N=%u, %u iterations, 20 threads everywhere\n\n",
              name.c_str(), scale, iters);

  algo::MethodParams params;
  params.pr.iterations = iters;
  params.scale_denom = scale;
  params.threads = 20;

  // 1-node HiPa: single-socket topology, all contention on one node.
  sim::SimMachine one(sim::Topology::skylake_1s().scaled(scale));
  const auto hipa1 =
      algo::run_method_sim(algo::Method::kHipa, g, one, params).report;

  sim::SimMachine two = bench::make_machine(scale);
  const auto hipa2 =
      algo::run_method_sim(algo::Method::kHipa, g, two, params).report;

  sim::SimMachine m3 = bench::make_machine(scale);
  const auto ppr =
      algo::run_method_sim(algo::Method::kPpr, g, m3, params).report;

  sim::SimMachine m4 = bench::make_machine(scale);
  const auto gpop =
      algo::run_method_sim(algo::Method::kGpop, g, m4, params).report;

  std::printf("%-22s %10s %14s\n", "configuration", "time (s)",
              "vs 2-node HiPa");
  auto row = [&](const char* label, double s) {
    std::printf("%-22s %10.4f %13.2fx\n", label, s, s / hipa2.seconds);
  };
  row("HiPa, 1 node", hipa1.seconds);
  row("HiPa, 2 nodes", hipa2.seconds);
  row("p-PR, 2 nodes", ppr.seconds);
  row("GPOP, 2 nodes", gpop.seconds);

  std::printf("\npaper (journal, 20 iters): 1-node HiPa 0.44s, 2-node HiPa "
              "0.39s, p-PR 0.41s, GPOP 1.14s\n");
  return 0;
}
