// Multi-shard distributed serving benchmark: router QPS + latency at
// 1/2/4 shards, merge-vs-single-process answer identity, and failover
// time from SIGKILL to the first rerouted answer.
//
// The binary is its own fleet: the launcher fork+execs itself with
// --serve once per shard (each child a real ShardServer process over
// its slice of one shared segmented HCSR v3 file, metrics endpoint on
// an ephemeral port) and drives a ShardRouter at it.
//
//   * configs — for 1, 2 and 4 shards, C client threads push a mixed
//     workload (point + batch + global top-k) through the router for a
//     fixed window; per-request wall latency merges into p50/p95/p99.
//     The 1-shard row is the "distribution tax" baseline: the same
//     wire protocol with no fan-out.
//   * identity — the 4-shard router's answers are memcmp'd against a
//     single-process RankService over the same graph + epoch (the
//     engine run is deterministic, so per-shard recomputes and the
//     whole-graph run agree bitwise). Hard gate.
//   * failover — mid-load, one shard is SIGKILLed. The router must
//     detect (broken round-trip or failed health probe), settle the
//     killed shard's top-k contribution from its last good partial,
//     and keep answering: failover_seconds is the gap from kill() to
//     the first successful global top-k. Clients steer owner-bound
//     lookups away from the killed range (the documented semantic for
//     those is an error after query_timeout, never a wrong answer);
//     every answer in the window is still checked bitwise against the
//     reference ranks — wrong_answers must be ZERO. Hard gate.
//
// Emits BENCH_dist.json (override with --out=); validated by
// bench_schema_check and diffed against the "dist" bands of
// BENCH_baseline.json by bench_regress. `--smoke` shrinks everything
// for the perf-smoke ctest chain.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "engines/backend.hpp"
#include "engines/oocore_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "runtime/placement.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "shard/router.hpp"
#include "shard/shard_server.hpp"
#include "shard/transport.hpp"

namespace {

using namespace hipa;

constexpr unsigned kTopK = 64;  // replicated depth = the global top-64

// ---------------------------------------------------------------------------
// Child mode: one shard process (fork+exec'd from the launcher).
// ---------------------------------------------------------------------------

struct ServeArgs {
  std::string graph;
  std::uint32_t shard_id = 0;
  VertexRange range{};
  unsigned iters = 10;
  int notify_fd = -1;
};

int run_serve(const ServeArgs& a) {
  shard::ShardServerOptions opt;
  opt.shard_id = a.shard_id;
  opt.range = a.range;
  opt.graph_path = a.graph;
  opt.iterations = a.iters;
  opt.topk_k = kTopK;
  opt.metrics_port = 0;  // ephemeral; reported over the notify pipe
  shard::ShardServer server(opt);
  std::unique_ptr<shard::Listener> listener =
      shard::listen_tcp("127.0.0.1", 0);
  const int port = listener->port();
  server.serve(std::move(listener));
  if (a.notify_fd >= 0) {
    ::dprintf(a.notify_fd, "%d %d\n", port, server.metrics_http_port());
    ::close(a.notify_fd);
  }
  server.wait();
  return 0;
}

// ---------------------------------------------------------------------------
// Launcher: fleet spawning
// ---------------------------------------------------------------------------

struct Child {
  pid_t pid = -1;
  int port = 0;
  int metrics_port = 0;
  VertexRange range{};
};

Child spawn_shard(const std::string& self, const std::string& graph,
                  std::uint32_t shard, VertexRange range, unsigned iters) {
  int fds[2];
  HIPA_CHECK(::pipe(fds) == 0, "pipe: " + std::string(strerror(errno)));
  const pid_t pid = ::fork();
  HIPA_CHECK(pid >= 0, "fork: " + std::string(strerror(errno)));
  if (pid == 0) {
    ::close(fds[0]);
    const std::string sid = "--shard-id=" + std::to_string(shard);
    const std::string grf = "--graph=" + graph;
    const std::string rng = "--range=" + std::to_string(range.begin) + ":" +
                            std::to_string(range.end);
    const std::string itr = "--iters=" + std::to_string(iters);
    const std::string nfd = "--notify-fd=" + std::to_string(fds[1]);
    const char* argv[] = {self.c_str(), "--serve",    grf.c_str(),
                          sid.c_str(),  rng.c_str(),  itr.c_str(),
                          nfd.c_str(),  nullptr};
    ::execv(self.c_str(), const_cast<char* const*>(argv));
    std::fprintf(stderr, "execv %s: %s\n", self.c_str(), strerror(errno));
    ::_exit(127);
  }
  ::close(fds[1]);
  // The child reports "port metrics_port\n" once it is accepting.
  std::string line;
  char c = 0;
  while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  ::close(fds[0]);
  Child child;
  child.pid = pid;
  child.range = range;
  if (std::sscanf(line.c_str(), "%d %d", &child.port,
                  &child.metrics_port) != 2) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    HIPA_CHECK(false, "shard " + std::to_string(shard) +
                          " failed to start (no port handshake)");
  }
  return child;
}

void reap(Child& c) {
  if (c.pid <= 0) return;
  ::kill(c.pid, SIGKILL);
  ::waitpid(c.pid, nullptr, 0);
  c.pid = -1;
}

/// Spawn `shards` children over an even split of [0, n) and connect a
/// router (health probes against each child's metrics endpoint).
struct Fleet {
  std::vector<Child> children;
  std::unique_ptr<shard::ShardRouter> router;

  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  ~Fleet() {
    if (router != nullptr) router->stop();
    for (Child& c : children) reap(c);
  }
};

Fleet spawn_fleet(const std::string& self, const std::string& graph,
                  vid_t n, unsigned shards, unsigned iters,
                  const shard::RouterOptions& ropt) {
  Fleet fleet;
  std::vector<shard::ShardTarget> targets;
  for (unsigned s = 0; s < shards; ++s) {
    const VertexRange range{
        static_cast<vid_t>(std::uint64_t{n} * s / shards),
        static_cast<vid_t>(std::uint64_t{n} * (s + 1) / shards)};
    fleet.children.push_back(spawn_shard(self, graph, s, range, iters));
    targets.push_back(shard::tcp_target("127.0.0.1",
                                        fleet.children.back().port,
                                        fleet.children.back().metrics_port));
  }
  fleet.router =
      std::make_unique<shard::ShardRouter>(std::move(targets), ropt);
  return fleet;
}

// ---------------------------------------------------------------------------
// Load driving
// ---------------------------------------------------------------------------

struct DriveResult {
  unsigned clients = 0;
  double seconds = 0.0;
  std::uint64_t requests = 0;
  double qps = 0.0;
  serve::LatencySummary latency;
};

/// C client threads pushing mixed batches (point + batch(8) + global
/// top-k) through the router for `window` seconds.
DriveResult drive(shard::ShardRouter& router, vid_t n, unsigned clients,
                  double window) {
  DriveResult result;
  result.clients = clients;
  std::atomic<bool> stop{false};
  std::vector<serve::LatencyRecorder> recorders(clients);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<std::thread> threads;
  Timer wall;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937 rng(4321u + c);
      std::uniform_int_distribution<vid_t> pick(0, n - 1);
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<vid_t> ids(8);
        for (vid_t& v : ids) v = pick(rng);
        const std::vector<serve::Query> qs = {
            serve::Query::point(pick(rng)),
            serve::Query::batch(std::move(ids)), serve::Query::top_k(10)};
        Timer t;
        const shard::RouterReply reply = router.execute_batch(qs);
        const double sec = t.seconds();
        for (std::size_t i = 0; i < reply.results.size(); ++i) {
          recorders[c].record(sec);
        }
        counts[c] += reply.results.size();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(window));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  result.seconds = wall.seconds();
  serve::LatencyRecorder merged;
  for (unsigned c = 0; c < clients; ++c) {
    merged.merge(recorders[c]);
    result.requests += counts[c];
  }
  result.latency = merged.summarize();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  return result;
}

void emit_host(bench::JsonWriter& jw) {
  const runtime::HostTopology& topo = runtime::topology();
  jw.key("host");
  jw.begin_object();
  jw.kv("cpus", topo.num_cpus());
  jw.kv("numa_nodes", topo.num_nodes());
  jw.kv("topology_source", topo.from_sysfs ? "sysfs" : "fallback");
  jw.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  // Child mode first: the launcher re-execs this binary per shard.
  bool serve_mode = false;
  ServeArgs sa;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (cli::flag_is(a, "--serve")) {
      serve_mode = true;
    } else if (const char* v = cli::flag_value(a, "--graph=")) {
      sa.graph = v;
    } else if (const char* v = cli::flag_value(a, "--shard-id=")) {
      sa.shard_id = static_cast<std::uint32_t>(
          cli::parse_u64("--shard-id", v));
    } else if (const char* v = cli::flag_value(a, "--range=")) {
      unsigned long lo = 0;
      unsigned long hi = 0;
      HIPA_CHECK(std::sscanf(v, "%lu:%lu", &lo, &hi) == 2 && lo < hi,
                 "--range expects a:b");
      sa.range = VertexRange{static_cast<vid_t>(lo),
                             static_cast<vid_t>(hi)};
    } else if (const char* v = cli::flag_value(a, "--iters=")) {
      sa.iters = static_cast<unsigned>(cli::parse_u64("--iters", v));
    } else if (const char* v = cli::flag_value(a, "--notify-fd=")) {
      sa.notify_fd = static_cast<int>(cli::parse_u64("--notify-fd", v));
    }
  }
  if (serve_mode) {
    try {
      return run_serve(sa);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_dist --serve: %s\n", e.what());
      return 1;
    }
  }

  bench::Flags flags = bench::Flags::parse(argc, argv);
  const std::string out_path =
      flags.out.empty() ? "BENCH_dist.json" : flags.out;
  const double window = flags.smoke ? 0.2 : flags.quick ? 0.5 : 1.5;
  const unsigned clients =
      std::max(2u, std::min(4u, runtime::available_cpus()));
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : flags.smoke ? 4 : 10;

  bench::print_banner("Multi-shard serving: router QPS, identity, failover",
                      "ROADMAP: scale-out serving over the HiPa kernel");

  // Shared segmented graph: one skewed synthetic dataset on disk, the
  // fleet's common substrate (written next to the JSON output).
  graph::ZipfParams zp;
  zp.num_vertices = flags.smoke ? 20000u : 150000u;
  zp.num_edges = flags.smoke ? 140000u : 1800000u;
  zp.seed = 42;
  const graph::Graph g = graph::build_graph(
      zp.num_vertices, graph::generate_zipf(zp));
  const vid_t n = g.num_vertices();
  const std::string graph_path = out_path + ".hcsr";
  graph::save_segmented_csr(graph_path, g, 256u << 10);
  std::printf("dataset zipf-synth: %u vertices, %llu edges (%s)\n\n", n,
              static_cast<unsigned long long>(g.num_edges()),
              graph_path.c_str());

  // Reference ranks: the same deterministic streaming engine the
  // shards run, over the whole file.
  std::vector<rank_t> reference;
  {
    engine::NativeBackend backend;
    engine::OocoreOptions oo;
    oo.num_threads = std::max(1u, runtime::available_cpus());
    engine::OocoreEngine eng(graph_path, oo, backend);
    reference = eng.run(engine::PageRankOptions(iters)).ranks;
  }

  const std::string self = argv[0];
  shard::RouterOptions ropt;
  ropt.health_poll_seconds = 0.05;
  ropt.query_timeout_seconds = 5.0;

  std::FILE* jf = std::fopen(out_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.begin_object();
  jw.kv("bench", "dist");
  jw.kv("quick", flags.quick);
  jw.kv("smoke", flags.smoke);
  emit_host(jw);
  jw.key("dataset");
  jw.begin_object();
  jw.kv("name", "zipf-synth");
  jw.kv("vertices", static_cast<std::uint64_t>(n));
  jw.kv("edges", static_cast<std::uint64_t>(g.num_edges()));
  jw.end_object();
  jw.key("shard_defaults");
  jw.begin_object();
  jw.kv("iterations", iters);
  jw.kv("topk_k", kTopK);
  jw.end_object();

  // ---- Router QPS / latency at 1, 2, 4 shards ---------------------
  std::printf("router load (%u clients, %.2fs windows):\n", clients,
              window);
  jw.key("configs");
  jw.begin_array();
  for (const unsigned shards : {1u, 2u, 4u}) {
    Fleet fleet = spawn_fleet(self, graph_path, n, shards, iters, ropt);
    const DriveResult r = drive(*fleet.router, n, clients, window);
    std::printf("  %u shard%s %9.0f qps | p50 %7.1f  p95 %7.1f  "
                "p99 %7.1f us\n",
                shards, shards == 1 ? " " : "s", r.qps,
                r.latency.p50_seconds * 1e6, r.latency.p95_seconds * 1e6,
                r.latency.p99_seconds * 1e6);
    jw.begin_object();
    jw.kv("shards", shards);
    jw.kv("clients", r.clients);
    jw.kv("seconds", r.seconds);
    jw.kv("requests", r.requests);
    jw.kv("qps", r.qps);
    jw.kv("p50_us", r.latency.p50_seconds * 1e6);
    jw.kv("p95_us", r.latency.p95_seconds * 1e6);
    jw.kv("p99_us", r.latency.p99_seconds * 1e6);
    jw.kv("mean_us", r.latency.mean_seconds * 1e6);
    jw.end_object();
  }
  jw.end_array();

  // ---- Identity + failover on one 4-shard fleet -------------------
  constexpr unsigned kFleetShards = 4;
  Fleet fleet =
      spawn_fleet(self, graph_path, n, kFleetShards, iters, ropt);
  shard::ShardRouter& router = *fleet.router;

  // Identity: every router answer bitwise equals the single-process
  // service over the same ranks at the same epoch.
  bool identical = true;
  std::uint64_t identity_queries = 0;
  {
    serve::StoreOptions so;
    so.num_nodes = 1;
    so.topk_k = kTopK;
    serve::SnapshotStore store(n, so);
    store.publish(std::span<const rank_t>(reference));
    serve::RankService single(store);

    std::vector<vid_t> vs;
    for (vid_t v = 1; v < n; v += 101) vs.push_back(v);
    const std::vector<serve::Query> qs = {
        serve::Query::batch(vs), serve::Query::top_k(kTopK),
        serve::Query::point(n / 2),
        serve::Query::top_k(16, VertexRange{n / 5, 4 * n / 5})};
    const shard::RouterReply routed = router.execute_batch(qs);
    const std::vector<serve::QueryResult> direct =
        single.execute_batch(qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const shard::RouterResult& r = routed.results[i];
      const serve::QueryResult& d = direct[i];
      identity_queries += 1;
      if (!r.ok || r.result.epoch != 1 || d.epoch != 1 ||
          r.result.ranks.size() != d.ranks.size() ||
          r.result.topk.size() != d.topk.size() ||
          std::memcmp(r.result.ranks.data(), d.ranks.data(),
                      d.ranks.size() * sizeof(rank_t)) != 0 ||
          std::memcmp(r.result.topk.data(), d.topk.data(),
                      d.topk.size() * sizeof(serve::TopKEntry)) != 0) {
        identical = false;
      }
    }
  }
  std::printf("\n%u-shard router vs single process: %s (%llu queries)\n",
              kFleetShards, identical ? "bitwise identical" : "MISMATCH",
              static_cast<unsigned long long>(identity_queries));
  jw.key("identity");
  jw.begin_object();
  jw.kv("shards", kFleetShards);
  jw.kv("memcmp_identical", identical);
  jw.kv("queries", identity_queries);
  jw.kv("epoch", std::uint64_t{1});
  jw.end_object();

  // Failover: SIGKILL shard 1 mid-load. Clients steer owner-bound
  // lookups to surviving ranges (dead-range lookups are a documented
  // timeout error, never a wrong answer) but keep issuing global
  // top-k, which exercises the stale-partial substitution. Every
  // answer is checked bitwise against the reference.
  constexpr unsigned kVictim = 1;
  const VertexRange dead = fleet.children[kVictim].range;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> wrong{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> load;
  for (unsigned c = 0; c < clients; ++c) {
    load.emplace_back([&, c] {
      std::mt19937 rng(9000u + c);
      std::uniform_int_distribution<vid_t> pick(0, n - 1);
      const auto alive_vertex = [&] {
        vid_t v = pick(rng);
        while (dead.contains(v)) v = pick(rng);
        return v;
      };
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<serve::Query> qs = {
            serve::Query::point(alive_vertex()),
            serve::Query::top_k(10)};
        const shard::RouterReply reply = router.execute_batch(qs);
        for (std::size_t i = 0; i < reply.results.size(); ++i) {
          const shard::RouterResult& r = reply.results[i];
          if (!r.ok) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          answered.fetch_add(1, std::memory_order_relaxed);
          bool good = true;
          if (i == 0) {
            good = r.result.ranks.size() == 1 &&
                   r.result.ranks[0] == reference[qs[0].vertex];
          } else {
            for (const serve::TopKEntry& e : r.result.topk) {
              if (e.vertex >= n || e.rank != reference[e.vertex]) {
                good = false;
              }
            }
          }
          if (!good) wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Warm up (the router must have a cached top-k partial from the
  // victim before it dies), then kill and time the reroute.
  std::this_thread::sleep_for(std::chrono::duration<double>(window / 4));
  ::kill(fleet.children[kVictim].pid, SIGKILL);
  ::waitpid(fleet.children[kVictim].pid, nullptr, 0);
  fleet.children[kVictim].pid = -1;
  Timer fail_timer;
  double failover_seconds = -1.0;
  while (fail_timer.seconds() < 30.0) {
    const shard::RouterResult probe =
        router.execute(serve::Query::top_k(10));
    if (probe.ok) {
      failover_seconds = fail_timer.seconds();
      break;
    }
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(window / 2));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : load) t.join();
  const shard::RouterStats stats = router.stats();
  const bool failover_ok = failover_seconds >= 0.0 && wrong.load() == 0;
  std::printf("failover: shard %u killed; first rerouted answer after "
              "%.1f ms | %llu answered, %llu errors, %llu wrong %s\n",
              kVictim, failover_seconds * 1e3,
              static_cast<unsigned long long>(answered.load()),
              static_cast<unsigned long long>(errors.load()),
              static_cast<unsigned long long>(wrong.load()),
              failover_ok ? "OK" : "FAIL");

  jw.key("failover");
  jw.begin_object();
  jw.kv("shards", kFleetShards);
  jw.kv("killed_shard", kVictim);
  jw.kv("failover_seconds", failover_seconds);
  jw.kv("answered", answered.load());
  jw.kv("errors", errors.load());
  jw.kv("wrong_answers", wrong.load());
  jw.kv("stale_merges", stats.stale_merges);
  jw.kv("timeouts", stats.timeouts);
  jw.end_object();
  jw.end_object();
  std::fputc('\n', jf);
  std::fclose(jf);
  std::remove(graph_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return (identical && failover_ok) ? 0 : 1;
}
