// Reproduces paper Fig. 5: memory accesses per edge (MApE, bytes), with
// the local/remote split, for the five methodologies on every graph.
//
// Expected shape (paper): partition-centric methodologies (HiPa, p-PR,
// GPOP) move ~9-10 B/edge-iteration vs Polymer ~27 and v-PR ~47;
// NUMA-aware designs (HiPa ~14%, Polymer ~10%) keep remote shares far
// below the oblivious ones (~50%); HiPa has the fewest remote accesses.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 3 : 4);

  bench::print_banner("Fig. 5: memory accesses per edge", "paper Fig. 5");
  std::printf("(MApE = DRAM bytes per edge per iteration; remote%% = share "
              "of DRAM traffic\n crossing the interconnect. Paper runs 60 "
              "iterations; this harness runs %u.)\n\n", iters);
  std::printf("%-9s | %-16s %-16s %-16s %-16s %-16s\n", "graph",
              "HiPa", "p-PR", "v-PR", "GPOP", "Polymer");
  std::printf("%-9s | %16s %16s %16s %16s %16s\n", "",
              "MApE (rem%)", "MApE (rem%)", "MApE (rem%)", "MApE (rem%)",
              "MApE (rem%)");

  double avg_mape[5] = {};
  double avg_rem[5] = {};
  unsigned rows = 0;
  for (const auto& d : bench::load_datasets(flags)) {
    std::printf("%-9s |", d.name.c_str());
    int i = 0;
    for (algo::Method m : algo::all_methods()) {
      sim::SimMachine machine = bench::make_machine(d.scale);
      algo::MethodParams params;
      params.pr.iterations = iters;
      params.scale_denom = d.scale;
      const auto report =
          algo::run_method_sim(m, d.graph, machine, params).report;
      const double mape = bench::mape_per_iter(report, d.graph.num_edges());
      const double rem = report.stats.remote_fraction() * 100.0;
      std::printf(" %8.1f (%4.1f%%)", mape, rem);
      avg_mape[i] += mape;
      avg_rem[i] += rem;
      ++i;
    }
    std::printf("\n");
    ++rows;
  }
  if (rows > 0) {
    std::printf("%-9s |", "average");
    for (int i = 0; i < 5; ++i) {
      std::printf(" %8.1f (%4.1f%%)", avg_mape[i] / rows, avg_rem[i] / rows);
    }
    std::printf("\n");
  }
  std::printf("\npaper Fig. 5 averages: HiPa 9.57 (13.8%%), p-PR 9.37 "
              "(48.9%%), v-PR 47.31 (50.9%%),\n GPOP 8.89 (53.0%%), "
              "Polymer 26.66 (10.1%%)\n");
  return 0;
}
