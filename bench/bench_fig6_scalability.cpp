// Reproduces paper Fig. 6: execution time vs thread count on journal,
// each methodology normalized by its own 40-thread time.
//
// Expected shape (paper): HiPa, v-PR and Polymer improve monotonically
// up to 40 threads (normalized curves approach 1 from above); p-PR and
// GPOP bottom out around 16-20 threads and are ~2x worse than their
// best point when all 40 logical cores are used (their normalized
// curves dip below 1 in the middle).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 3);

  bench::print_banner("Fig. 6: thread scalability on journal",
                      "paper Fig. 6");
  // One extra scale notch on journal keeps the 45-run sweep tractable.
  const std::string name = flags.dataset.empty() ? "journal" : flags.dataset;
  const unsigned scale =
      graph::recommended_scale(name) * (flags.quick ? 16 : 2);
  const graph::Graph g = graph::make_dataset(name, scale);
  std::printf("graph=%s 1/N=%u V=%u E=%llu, %u iterations\n\n",
              name.c_str(), scale, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), iters);

  const std::vector<unsigned> threads = {2, 4, 8, 12, 16, 20, 24, 32, 40};
  std::printf("%8s | %8s %8s %8s %8s %8s\n", "threads", "HiPa", "p-PR",
              "v-PR", "GPOP", "Polymer");

  // Collect raw seconds, then normalize per method by the 40-thread row.
  std::vector<std::array<double, 5>> secs(threads.size());
  for (std::size_t ti = 0; ti < threads.size(); ++ti) {
    int i = 0;
    for (algo::Method m : algo::all_methods()) {
      sim::SimMachine machine = bench::make_machine(scale);
      algo::MethodParams params;
      params.pr.iterations = iters;
      params.scale_denom = scale;
      params.threads = threads[ti];
      const auto report = algo::run_method_sim(m, g, machine, params).report;
      secs[ti][i++] = report.seconds;
    }
  }
  const auto& last = secs.back();
  for (std::size_t ti = 0; ti < threads.size(); ++ti) {
    std::printf("%8u |", threads[ti]);
    for (int i = 0; i < 5; ++i) {
      std::printf(" %8.2f", secs[ti][i] / last[i]);
    }
    std::printf("\n");
  }
  std::printf("\n(normalized by each methodology's own 40-thread time; "
              "values < 1 in the middle\n of a column mean that "
              "methodology DEGRADES when all SMT threads are used —\n "
              "the paper observes this for p-PR and GPOP, best at ~16-20 "
              "threads)\n");
  return 0;
}
