// Micro-benchmarks (google-benchmark): hot paths of the substrate.
#include <benchmark/benchmark.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/plan.hpp"
#include "pcp/bins.hpp"
#include "sim/cache.hpp"
#include "algos/pagerank.hpp"

namespace {

using namespace hipa;

const graph::Graph& bench_graph() {
  static const graph::Graph g = graph::build_graph(
      1 << 16, graph::generate_zipf({.num_vertices = 1 << 16,
                                     .num_edges = 1 << 19,
                                     .exponent = 1.2,
                                     .seed = 42}));
  return g;
}

void BM_CacheModelAccess(benchmark::State& state) {
  sim::CacheModel cache({1 << 20, 16, 64});
  Xoshiro256 rng(1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng.next() & ((1 << 24) - 1);
    benchmark::DoNotOptimize(cache.access(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelAccess);

void BM_BuildHierarchicalPlan(benchmark::State& state) {
  const auto& g = bench_graph();
  part::PlanConfig cfg;
  cfg.partition_bytes = 16 * 1024;
  cfg.num_nodes = 2;
  cfg.threads_per_node = {20, 20};
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::build_hierarchical_plan(g.out, cfg));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BuildHierarchicalPlan);

void BM_BuildPcpmBins(benchmark::State& state) {
  const auto& g = bench_graph();
  const part::CachePartitioning parts(g.num_vertices(),
                                      static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcp::build_bins(g.out, parts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BuildPcpmBins)->Arg(4 << 10)->Arg(64 << 10);

void BM_NativePagerankHipa(benchmark::State& state) {
  const auto& g = bench_graph();
  for (auto _ : state) {
    algo::MethodParams params;
    params.pr.iterations = 2;
    params.threads = 2;
    params.scale_denom = 64;
    benchmark::DoNotOptimize(
        algo::run_method_native(algo::Method::kHipa, g, params));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 2);
}
BENCHMARK(BM_NativePagerankHipa)->Unit(benchmark::kMillisecond);

void BM_ReferencePagerank(benchmark::State& state) {
  const auto& g = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::pagerank_reference(g, 2));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 2);
}
BENCHMARK(BM_ReferencePagerank)->Unit(benchmark::kMillisecond);

}  // namespace
