// Serving-layer benchmark: query QPS + latency percentiles by request
// mix, with and without a concurrent snapshot refresh.
//
// Four read-only mixes (point / batch / topk / mixed) run first, each
// against a fresh RankService over one published snapshot: C client
// threads issue requests for a fixed window, per-request wall latency
// lands in client-local recorders and is merged into p50/p95/p99.
//
// The `concurrent_refresh` section then repeats the mixed workload
// while the background UpdateRefresher keeps draining edge-update
// bursts with FULL engine recomputes (small_batch_max = 0 forces the
// deterministic HiPa run) and republishing — the acceptance scenario:
// readers sustained across a full recompute, zero torn reads. A torn
// read is any batch whose responses mix epochs or any client whose
// observed epoch regresses; both would indicate a broken publish
// protocol and are counted (and expected to be zero).
//
// `publish_identity` closes the loop: after the concurrent phase the
// final published snapshot is memcmp'd against a standalone
// run_method_native() on the refresher's final graph with the same
// options — bitwise identity, not tolerance.
//
// Emits BENCH_serve.json (override with --out=); validated by
// bench_schema_check and diffed against the "serve" bands of
// BENCH_baseline.json by bench_regress. `--smoke` shrinks the windows
// for the perf-smoke ctest chain.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "runtime/affinity.hpp"
#include "runtime/placement.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/updates.hpp"

namespace {

using namespace hipa;

struct MixResult {
  std::string mix;
  unsigned clients = 0;
  double seconds = 0.0;
  std::uint64_t requests = 0;
  double qps = 0.0;
  serve::LatencySummary latency;
};

/// One client thread's request generator for a named mix.
std::vector<serve::Query> make_batch(const std::string& mix, vid_t n,
                                     std::mt19937& rng) {
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  std::vector<serve::Query> qs;
  if (mix == "point") {
    qs.push_back(serve::Query::point(pick(rng)));
  } else if (mix == "batch") {
    std::vector<vid_t> ids(16);
    for (vid_t& v : ids) v = pick(rng);
    qs.push_back(serve::Query::batch(std::move(ids)));
  } else if (mix == "topk") {
    qs.push_back(serve::Query::top_k(10));
  } else {  // mixed
    qs.push_back(serve::Query::point(pick(rng)));
    std::vector<vid_t> ids(8);
    for (vid_t& v : ids) v = pick(rng);
    qs.push_back(serve::Query::batch(std::move(ids)));
    qs.push_back(serve::Query::top_k(10));
  }
  return qs;
}

/// Drive `service` with `clients` threads for `window` seconds.
/// `torn_reads` (when non-null) accumulates epoch-consistency
/// violations: responses of one batch disagreeing on the epoch, or a
/// client's observed epoch going backwards.
MixResult drive(const std::string& mix, serve::RankService& service,
                vid_t n, unsigned clients, double window,
                std::atomic<std::uint64_t>* torn_reads) {
  MixResult result;
  result.mix = mix;
  result.clients = clients;

  std::atomic<bool> stop{false};
  std::vector<serve::LatencyRecorder> recorders(clients);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<std::thread> threads;
  Timer wall;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937 rng(1234u + c);
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<serve::Query> qs = make_batch(mix, n, rng);
        Timer t;
        const auto rs = service.execute_batch(qs);
        const double sec = t.seconds();
        for (std::size_t i = 0; i < rs.size(); ++i) {
          recorders[c].record(sec);
          if (torn_reads != nullptr &&
              (rs[i].epoch != rs[0].epoch || rs[i].epoch < last_epoch)) {
            torn_reads->fetch_add(1, std::memory_order_relaxed);
          }
        }
        last_epoch = rs[0].epoch;
        counts[c] += rs.size();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(window));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  result.seconds = wall.seconds();

  serve::LatencyRecorder merged;
  for (unsigned c = 0; c < clients; ++c) {
    merged.merge(recorders[c]);
    result.requests += counts[c];
  }
  result.latency = merged.summarize();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  return result;
}

void emit_host(bench::JsonWriter& jw) {
  const runtime::HostTopology& topo = runtime::topology();
  jw.key("host");
  jw.begin_object();
  jw.kv("cpus", topo.num_cpus());
  jw.kv("numa_nodes", topo.num_nodes());
  jw.kv("topology_source", topo.from_sysfs ? "sysfs" : "fallback");
  jw.kv("numa_binding_available", runtime::numa_binding_available());
  jw.kv("pinning", "node");  // service workers pin per store node
  jw.end_object();
}

void emit_mix(bench::JsonWriter& jw, const MixResult& r) {
  jw.begin_object();
  jw.kv("mix", r.mix);
  jw.kv("clients", r.clients);
  jw.kv("seconds", r.seconds);
  jw.kv("requests", r.requests);
  jw.kv("qps", r.qps);
  jw.kv("p50_us", r.latency.p50_seconds * 1e6);
  jw.kv("p95_us", r.latency.p95_seconds * 1e6);
  jw.kv("p99_us", r.latency.p99_seconds * 1e6);
  jw.kv("mean_us", r.latency.mean_seconds * 1e6);
  jw.kv("max_us", r.latency.max_seconds * 1e6);
  jw.end_object();
}

void print_mix(const MixResult& r) {
  std::printf("%-8s %3u clients %9.0f qps | p50 %7.1f  p95 %7.1f  "
              "p99 %7.1f us\n",
              r.mix.c_str(), r.clients, r.qps,
              r.latency.p50_seconds * 1e6, r.latency.p95_seconds * 1e6,
              r.latency.p99_seconds * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipa;
  bench::Flags flags = bench::Flags::parse(argc, argv);
  if (flags.dataset.empty()) flags.dataset = flags.smoke ? "journal" : "wiki";
  const std::string out_path =
      flags.out.empty() ? "BENCH_serve.json" : flags.out;
  const double window = flags.smoke ? 0.15 : flags.quick ? 0.4 : 1.0;
  const unsigned clients =
      std::max(2u, std::min(4u, runtime::available_cpus()));

  bench::print_banner("Serving layer: QPS + latency by request mix",
                      "ROADMAP north star: serve while recomputing");
  const bench::ScaledDataset d = bench::load_scaled(flags.dataset,
                                                    flags.quick);
  const vid_t n = d.graph.num_vertices();
  std::printf("dataset %s (1/%u): %u vertices, %llu edges\n\n",
              d.name.c_str(), d.scale, n,
              static_cast<unsigned long long>(d.graph.num_edges()));

  // Edge list for the refresher (it owns the evolving copy).
  std::vector<Edge> edges;
  edges.reserve(d.graph.num_edges());
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : d.graph.out.neighbors(v)) edges.push_back(Edge{v, u});
  }

  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::RefreshOptions ropt;
  ropt.small_batch_max = 0;  // every refresh = full HiPa run (exact)
  ropt.full.threads = std::max(1u, runtime::available_cpus());
  ropt.full.pr.iterations = flags.iterations != 0 ? flags.iterations
                            : flags.smoke         ? 3
                                                  : 10;
  ropt.poll_seconds = 0.001;
  serve::UpdateRefresher refresher(n, std::move(edges), store, queue, ropt);
  refresher.publish_initial();

  std::FILE* jf = std::fopen(out_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.begin_object();
  jw.kv("bench", "serve");
  jw.kv("quick", flags.quick);
  jw.kv("smoke", flags.smoke);
  emit_host(jw);
  jw.key("dataset");
  jw.begin_object();
  jw.kv("name", d.name);
  jw.kv("scale", d.scale);
  jw.kv("vertices", static_cast<std::uint64_t>(n));
  jw.kv("edges", static_cast<std::uint64_t>(d.graph.num_edges()));
  jw.end_object();
  jw.key("store");
  jw.begin_object();
  jw.kv("num_nodes", store.num_nodes());
  jw.kv("slots", store.num_slots());
  jw.kv("vertices", static_cast<std::uint64_t>(store.num_vertices()));
  jw.end_object();

  // ---- Read-only mixes --------------------------------------------
  std::printf("read-only mixes (%.2fs windows):\n", window);
  jw.key("mixes");
  jw.begin_array();
  for (const char* mix : {"point", "batch", "topk", "mixed"}) {
    serve::RankService service(store);
    const MixResult r = drive(mix, service, n, clients, window, nullptr);
    print_mix(r);
    emit_mix(jw, r);
  }
  jw.end_array();

  // ---- Mixed workload under concurrent full recomputes ------------
  std::printf("\nmixed workload with concurrent full-recompute "
              "refreshes:\n");
  const std::uint64_t epoch_before = store.epoch();
  std::atomic<std::uint64_t> torn{0};
  MixResult concurrent;
  {
    serve::RankService service(store);
    refresher.start();
    std::atomic<bool> producing{true};
    std::thread producer([&] {
      std::mt19937 rng(99);
      std::uniform_int_distribution<vid_t> pick(0, n - 1);
      while (producing.load(std::memory_order_acquire)) {
        for (unsigned i = 0; i < 4; ++i) {
          queue.push_add(Edge{pick(rng), pick(rng)});
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    concurrent = drive("mixed", service, n, clients, window, &torn);
    producing.store(false, std::memory_order_release);
    producer.join();
    refresher.stop();  // drains the tail of the queue
    print_mix(concurrent);
  }
  const std::uint64_t epochs_published = store.epoch() - epoch_before;
  std::printf("  %llu full recomputes published during the window; "
              "torn reads: %llu\n",
              static_cast<unsigned long long>(epochs_published),
              static_cast<unsigned long long>(torn.load()));

  jw.key("concurrent_refresh");
  jw.begin_object();
  jw.kv("clients", concurrent.clients);
  jw.kv("seconds", concurrent.seconds);
  jw.kv("requests", concurrent.requests);
  jw.kv("qps", concurrent.qps);
  jw.kv("p50_us", concurrent.latency.p50_seconds * 1e6);
  jw.kv("p95_us", concurrent.latency.p95_seconds * 1e6);
  jw.kv("p99_us", concurrent.latency.p99_seconds * 1e6);
  jw.kv("epochs_published", epochs_published);
  jw.kv("full_refreshes", refresher.full_refreshes());
  jw.kv("delta_refreshes", refresher.delta_refreshes());
  jw.kv("torn_reads", torn.load());
  jw.kv("reclaim_waits", store.reclaim_waits());
  jw.end_object();

  // ---- Bitwise identity of the live snapshot ----------------------
  bool bitwise = false;
  {
    const engine::RunResult direct = algo::run_method_native(
        algo::Method::kHipa, refresher.graph(), ropt.full);
    const serve::SnapshotRef snap = store.current();
    bitwise = snap.valid() &&
              std::memcmp(snap->ranks().data(), direct.ranks.data(),
                          std::size_t{n} * sizeof(rank_t)) == 0;
    std::printf("\npublished snapshot vs standalone engine run: %s\n",
                bitwise ? "bitwise identical" : "MISMATCH");
  }
  jw.key("publish_identity");
  jw.begin_object();
  jw.kv("ranks_bitwise_identical", bitwise);
  jw.kv("epoch", store.epoch());
  jw.kv("iterations", ropt.full.pr.iterations);
  jw.end_object();
  jw.end_object();
  std::fputc('\n', jf);
  std::fclose(jf);
  std::printf("wrote %s\n", out_path.c_str());
  return (bitwise && torn.load() == 0) ? 0 : 1;
}
