// Serving-layer benchmark: query QPS + latency percentiles by request
// mix, with and without a concurrent snapshot refresh.
//
// Four read-only mixes (point / batch / topk / mixed) run first, each
// against a fresh RankService over one published snapshot: C client
// threads issue requests for a fixed window, per-request wall latency
// lands in client-local recorders and is merged into p50/p95/p99.
//
// The `concurrent_refresh` section then repeats the mixed workload
// while the background UpdateRefresher keeps draining edge-update
// bursts with FULL engine recomputes (small_batch_max = 0 forces the
// deterministic HiPa run) and republishing — the acceptance scenario:
// readers sustained across a full recompute, zero torn reads. A torn
// read is any batch whose responses mix epochs or any client whose
// observed epoch regresses; both would indicate a broken publish
// protocol and are counted (and expected to be zero).
//
// `publish_identity` closes the loop: after the concurrent phase the
// final published snapshot is memcmp'd against a standalone
// run_method_native() on the refresher's final graph with the same
// options — bitwise identity, not tolerance.
//
// Emits BENCH_serve.json (override with --out=); validated by
// bench_schema_check and diffed against the "serve" bands of
// BENCH_baseline.json by bench_regress. `--smoke` shrinks the windows
// for the perf-smoke ctest chain.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "runtime/affinity.hpp"
#include "runtime/metrics.hpp"
#include "runtime/placement.hpp"
#include "serve/metrics_export.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/updates.hpp"

namespace {

using namespace hipa;

struct MixResult {
  std::string mix;
  unsigned clients = 0;
  double seconds = 0.0;
  std::uint64_t requests = 0;
  double qps = 0.0;
  serve::LatencySummary latency;
};

/// One client thread's request generator for a named mix.
std::vector<serve::Query> make_batch(const std::string& mix, vid_t n,
                                     std::mt19937& rng) {
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  std::vector<serve::Query> qs;
  if (mix == "point") {
    qs.push_back(serve::Query::point(pick(rng)));
  } else if (mix == "batch") {
    std::vector<vid_t> ids(16);
    for (vid_t& v : ids) v = pick(rng);
    qs.push_back(serve::Query::batch(std::move(ids)));
  } else if (mix == "topk") {
    qs.push_back(serve::Query::top_k(10));
  } else {  // mixed
    qs.push_back(serve::Query::point(pick(rng)));
    std::vector<vid_t> ids(8);
    for (vid_t& v : ids) v = pick(rng);
    qs.push_back(serve::Query::batch(std::move(ids)));
    qs.push_back(serve::Query::top_k(10));
  }
  return qs;
}

/// Drive `service` with `clients` threads for `window` seconds.
/// `torn_reads` (when non-null) accumulates epoch-consistency
/// violations: responses of one batch disagreeing on the epoch, or a
/// client's observed epoch going backwards.
MixResult drive(const std::string& mix, serve::RankService& service,
                vid_t n, unsigned clients, double window,
                std::atomic<std::uint64_t>* torn_reads) {
  MixResult result;
  result.mix = mix;
  result.clients = clients;

  std::atomic<bool> stop{false};
  std::vector<serve::LatencyRecorder> recorders(clients);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<std::thread> threads;
  Timer wall;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937 rng(1234u + c);
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<serve::Query> qs = make_batch(mix, n, rng);
        Timer t;
        const auto rs = service.execute_batch(qs);
        const double sec = t.seconds();
        for (std::size_t i = 0; i < rs.size(); ++i) {
          recorders[c].record(sec);
          if (torn_reads != nullptr &&
              (rs[i].epoch != rs[0].epoch || rs[i].epoch < last_epoch)) {
            torn_reads->fetch_add(1, std::memory_order_relaxed);
          }
        }
        last_epoch = rs[0].epoch;
        counts[c] += rs.size();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(window));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  result.seconds = wall.seconds();

  serve::LatencyRecorder merged;
  for (unsigned c = 0; c < clients; ++c) {
    merged.merge(recorders[c]);
    result.requests += counts[c];
  }
  result.latency = merged.summarize();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  return result;
}

void emit_host(bench::JsonWriter& jw) {
  const runtime::HostTopology& topo = runtime::topology();
  jw.key("host");
  jw.begin_object();
  jw.kv("cpus", topo.num_cpus());
  jw.kv("numa_nodes", topo.num_nodes());
  jw.kv("topology_source", topo.from_sysfs ? "sysfs" : "fallback");
  jw.kv("numa_binding_available", runtime::numa_binding_available());
  jw.kv("pinning", "node");  // service workers pin per store node
  jw.end_object();
}

void emit_mix(bench::JsonWriter& jw, const MixResult& r) {
  jw.begin_object();
  jw.kv("mix", r.mix);
  jw.kv("clients", r.clients);
  jw.kv("seconds", r.seconds);
  jw.kv("requests", r.requests);
  jw.kv("qps", r.qps);
  jw.kv("p50_us", r.latency.p50_seconds * 1e6);
  jw.kv("p95_us", r.latency.p95_seconds * 1e6);
  jw.kv("p99_us", r.latency.p99_seconds * 1e6);
  jw.kv("mean_us", r.latency.mean_seconds * 1e6);
  jw.kv("max_us", r.latency.max_seconds * 1e6);
  jw.end_object();
}

void print_mix(const MixResult& r) {
  std::printf("%-8s %3u clients %9.0f qps | p50 %7.1f  p95 %7.1f  "
              "p99 %7.1f us\n",
              r.mix.c_str(), r.clients, r.qps,
              r.latency.p50_seconds * 1e6, r.latency.p95_seconds * 1e6,
              r.latency.p99_seconds * 1e6);
}

// ---------------------------------------------------------------------------
// Metrics-plane sections: scrape cost, hot-path overhead, quantile
// accuracy (satellite of the metrics-plane PR).
// ---------------------------------------------------------------------------

namespace metrics = runtime::metrics;

/// Exporter scrape cost at 1/8/64 populated histograms: full
/// snapshot + Prometheus render per scrape, averaged over `reps`.
void emit_scrape_cost(bench::JsonWriter& jw, bool smoke) {
  const unsigned reps = smoke ? 20 : 200;
  jw.key("scrape_cost");
  jw.begin_array();
  for (const unsigned num_hist : {1u, 8u, 64u}) {
    metrics::MetricsRegistry reg;
    std::mt19937_64 rng(7);
    for (unsigned i = 0; i < num_hist; ++i) {
      const metrics::Histogram h = reg.histogram(
          "bench_hist_" + std::to_string(i), "scrape-cost fixture",
          {"idx", std::to_string(i)}, 1e-9);
      for (unsigned s = 0; s < 4096; ++s) h.record(rng() % 10000000);
      reg.counter("bench_counter_" + std::to_string(i), "fixture").inc(i);
    }
    std::size_t bytes = 0;
    Timer t;
    for (unsigned r = 0; r < reps; ++r) {
      bytes = serve::to_prometheus(reg.snapshot()).size();
    }
    const double ns_per_scrape = t.seconds() * 1e9 / reps;
    std::printf("  scrape %2u histograms: %8.0f ns/scrape (%zu bytes)\n",
                num_hist, ns_per_scrape, bytes);
    jw.begin_object();
    jw.kv("histograms", num_hist);
    jw.kv("ns_per_scrape", ns_per_scrape);
    jw.kv("bytes", static_cast<std::uint64_t>(bytes));
    jw.end_object();
  }
  jw.end_array();
}

/// Log-linear quantile estimates vs exact sorted latencies on a
/// fixed-seed synthetic distribution. Hard gate: relative error of
/// every quantile <= one bucket width (1/16). Deterministic (fixed
/// seed, no wall clock), so safe as an rc gate.
bool emit_quantile_accuracy(bench::JsonWriter& jw) {
  constexpr std::size_t kSamples = 200000;
  metrics::MetricsRegistry reg;
  const metrics::Histogram h =
      reg.histogram("accuracy", "quantile-accuracy fixture");
  std::vector<std::uint64_t> exact;
  exact.reserve(kSamples);
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> lat(std::log(20000.0), 0.8);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto v = static_cast<std::uint64_t>(lat(rng));
    exact.push_back(v);
    h.record(v);
  }
  std::sort(exact.begin(), exact.end());
  const auto exact_q = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(exact.size())));
    rank = std::clamp<std::size_t>(rank, 1, exact.size());
    return static_cast<double>(exact[rank - 1]);
  };
  const metrics::MetricsSnapshot snap = reg.snapshot();
  const metrics::HistogramSnapshot* s = snap.find_histogram("accuracy");
  const struct {
    const char* name;
    double q;
    double estimated;
  } rows[] = {{"p50", 0.50, s->p50},
              {"p95", 0.95, s->p95},
              {"p99", 0.99, s->p99},
              {"p999", 0.999, s->p999}};
  const double tolerance = 1.0 / metrics::kSubBuckets;  // one bucket width
  double max_rel_error = 0.0;
  jw.key("quantile_accuracy");
  jw.begin_object();
  jw.kv("samples", static_cast<std::uint64_t>(kSamples));
  jw.kv("tolerance", tolerance);
  jw.key("quantiles");
  jw.begin_array();
  for (const auto& row : rows) {
    const double truth = exact_q(row.q);
    const double rel = std::abs(row.estimated - truth) / truth;
    max_rel_error = std::max(max_rel_error, rel);
    jw.begin_object();
    jw.kv("quantile", row.name);
    jw.kv("exact_ns", truth);
    jw.kv("estimated_ns", row.estimated);
    jw.kv("rel_error", rel);
    jw.end_object();
  }
  jw.end_array();
  const bool ok = max_rel_error <= tolerance;
  jw.kv("max_rel_error", max_rel_error);
  jw.kv("within_tolerance", ok);
  jw.end_object();
  std::printf("  quantile accuracy: max rel error %.4f (tolerance %.4f) "
              "%s\n",
              max_rel_error, tolerance, ok ? "OK" : "FAIL");
  return ok;
}

/// Instrumented vs uninstrumented mixed workload.
///
/// The <1%% gate cannot be a raw QPS comparison: run-to-run QPS noise
/// on a shared host easily exceeds 1%, and this bench runs inside the
/// default ctest suite, which must stay deterministic. So the hard
/// gate is the deterministic per-event accounting — ns per metric
/// event (tight microbench) x events per request / measured request
/// latency — plus a loose catastrophic cap on the measured A/B ratio;
/// the measured ratio itself is banded as advisory in bench_regress.
bool emit_overhead(bench::JsonWriter& jw, serve::SnapshotStore& store,
                   vid_t n, unsigned clients, double window) {
  // A/B: alternating fresh services over the same store; private
  // registry so the global one stays untouched.
  metrics::MetricsRegistry reg;
  serve::ServiceOptions off_opt;
  off_opt.metrics = false;
  serve::ServiceOptions on_opt;
  on_opt.registry = &reg;
  double qps_off = 0.0;
  double qps_on = 0.0;
  double mean_on_seconds = 0.0;
  for (unsigned round = 0; round < 2; ++round) {
    {
      serve::RankService service(store, off_opt);
      qps_off += drive("mixed", service, n, clients, window / 2, nullptr).qps;
    }
    {
      serve::RankService service(store, on_opt);
      const MixResult r =
          drive("mixed", service, n, clients, window / 2, nullptr);
      qps_on += r.qps;
      mean_on_seconds = r.latency.mean_seconds;
    }
  }
  const double qps_ratio = qps_off > 0.0 ? qps_on / qps_off : 1.0;

  // Deterministic hot-path cost: one histogram record + one counter
  // inc per loop, the exact ops the service issues per request.
  const metrics::Histogram h = reg.histogram("overhead_probe", "probe");
  const metrics::Counter c = reg.counter("overhead_probe_total", "probe");
  constexpr std::uint64_t kProbe = 2000000;
  Timer probe;
  for (std::uint64_t i = 0; i < kProbe; ++i) {
    h.record(i & 0xffff);
    c.inc();
  }
  const double ns_per_event = probe.seconds() * 1e9 / (2.0 * kProbe);
  // Mixed-mix batch = 3 queries -> per batch: 3 latency records +
  // <=3 class incs + batches/shards/vertices/batch_size + 3 gauge sets
  // + 1 pin counter ~= 13 events, /3 requests.
  const double events_per_request = 13.0 / 3.0;
  const double request_ns = mean_on_seconds * 1e9;
  const double hot_path_fraction =
      request_ns > 0.0 ? events_per_request * ns_per_event / request_ns : 0.0;
  // Hard gate: the deterministic accounting must stay under 1%, and
  // the measured ratio only trips on catastrophe (a 20% drop is far
  // outside scheduler noise for back-to-back alternating windows).
  const bool gate_ok = hot_path_fraction < 0.01 && qps_ratio > 0.80;

  jw.key("overhead");
  jw.begin_object();
  jw.kv("uninstrumented_qps", qps_off / 2.0);
  jw.kv("instrumented_qps", qps_on / 2.0);
  jw.kv("qps_ratio", qps_ratio);
  jw.kv("ns_per_event", ns_per_event);
  jw.kv("events_per_request", events_per_request);
  jw.kv("hot_path_fraction", hot_path_fraction);
  jw.kv("gate_ok", gate_ok);
  jw.end_object();
  std::printf("  overhead: %.0f vs %.0f qps (ratio %.3f), %.1f ns/event, "
              "hot-path fraction %.5f %s\n",
              qps_on / 2.0, qps_off / 2.0, qps_ratio, ns_per_event,
              hot_path_fraction, gate_ok ? "OK" : "FAIL");
  return gate_ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipa;
  bench::Flags flags = bench::Flags::parse(argc, argv);
  if (flags.dataset.empty()) flags.dataset = flags.smoke ? "journal" : "wiki";
  const std::string out_path =
      flags.out.empty() ? "BENCH_serve.json" : flags.out;
  const double window = flags.smoke ? 0.15 : flags.quick ? 0.4 : 1.0;
  const unsigned clients =
      std::max(2u, std::min(4u, runtime::available_cpus()));

  bench::print_banner("Serving layer: QPS + latency by request mix",
                      "ROADMAP north star: serve while recomputing");
  const bench::ScaledDataset d = bench::load_scaled(flags.dataset,
                                                    flags.quick);
  const vid_t n = d.graph.num_vertices();
  std::printf("dataset %s (1/%u): %u vertices, %llu edges\n\n",
              d.name.c_str(), d.scale, n,
              static_cast<unsigned long long>(d.graph.num_edges()));

  // Edge list for the refresher (it owns the evolving copy).
  std::vector<Edge> edges;
  edges.reserve(d.graph.num_edges());
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : d.graph.out.neighbors(v)) edges.push_back(Edge{v, u});
  }

  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::RefreshOptions ropt;
  ropt.small_batch_max = 0;  // every refresh = full HiPa run (exact)
  ropt.full.threads = std::max(1u, runtime::available_cpus());
  ropt.full.pr.iterations = flags.iterations != 0 ? flags.iterations
                            : flags.smoke         ? 3
                                                  : 10;
  ropt.poll_seconds = 0.001;
  serve::UpdateRefresher refresher(n, std::move(edges), store, queue, ropt);
  refresher.publish_initial();

  std::FILE* jf = std::fopen(out_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.begin_object();
  jw.kv("bench", "serve");
  jw.kv("quick", flags.quick);
  jw.kv("smoke", flags.smoke);
  emit_host(jw);
  jw.key("dataset");
  jw.begin_object();
  jw.kv("name", d.name);
  jw.kv("scale", d.scale);
  jw.kv("vertices", static_cast<std::uint64_t>(n));
  jw.kv("edges", static_cast<std::uint64_t>(d.graph.num_edges()));
  jw.end_object();
  jw.key("store");
  jw.begin_object();
  jw.kv("num_nodes", store.num_nodes());
  jw.kv("slots", store.num_slots());
  jw.kv("vertices", static_cast<std::uint64_t>(store.num_vertices()));
  jw.end_object();

  // ---- Read-only mixes --------------------------------------------
  std::printf("read-only mixes (%.2fs windows):\n", window);
  jw.key("mixes");
  jw.begin_array();
  for (const char* mix : {"point", "batch", "topk", "mixed"}) {
    serve::RankService service(store);
    const MixResult r = drive(mix, service, n, clients, window, nullptr);
    print_mix(r);
    emit_mix(jw, r);
  }
  jw.end_array();

  // ---- Mixed workload under concurrent full recomputes ------------
  std::printf("\nmixed workload with concurrent full-recompute "
              "refreshes:\n");
  const std::uint64_t epoch_before = store.epoch();
  std::atomic<std::uint64_t> torn{0};
  MixResult concurrent;
  {
    serve::RankService service(store);
    refresher.start();
    std::atomic<bool> producing{true};
    std::thread producer([&] {
      std::mt19937 rng(99);
      std::uniform_int_distribution<vid_t> pick(0, n - 1);
      while (producing.load(std::memory_order_acquire)) {
        for (unsigned i = 0; i < 4; ++i) {
          queue.push_add(Edge{pick(rng), pick(rng)});
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    concurrent = drive("mixed", service, n, clients, window, &torn);
    producing.store(false, std::memory_order_release);
    producer.join();
    refresher.stop();  // drains the tail of the queue
    print_mix(concurrent);
  }
  const std::uint64_t epochs_published = store.epoch() - epoch_before;
  std::printf("  %llu full recomputes published during the window; "
              "torn reads: %llu\n",
              static_cast<unsigned long long>(epochs_published),
              static_cast<unsigned long long>(torn.load()));

  jw.key("concurrent_refresh");
  jw.begin_object();
  jw.kv("clients", concurrent.clients);
  jw.kv("seconds", concurrent.seconds);
  jw.kv("requests", concurrent.requests);
  jw.kv("qps", concurrent.qps);
  jw.kv("p50_us", concurrent.latency.p50_seconds * 1e6);
  jw.kv("p95_us", concurrent.latency.p95_seconds * 1e6);
  jw.kv("p99_us", concurrent.latency.p99_seconds * 1e6);
  jw.kv("epochs_published", epochs_published);
  jw.kv("full_refreshes", refresher.full_refreshes());
  jw.kv("delta_refreshes", refresher.delta_refreshes());
  jw.kv("torn_reads", torn.load());
  jw.kv("reclaim_waits", store.reclaim_waits());
  jw.end_object();

  // ---- Metrics plane: scrape cost, overhead, quantile accuracy ----
  std::printf("\nmetrics plane:\n");
  jw.key("metrics");
  jw.begin_object();
  emit_scrape_cost(jw, flags.smoke);
  const bool overhead_ok = emit_overhead(jw, store, n, clients, window);
  const bool accuracy_ok = emit_quantile_accuracy(jw);
  jw.end_object();

  // ---- Bitwise identity of the live snapshot ----------------------
  bool bitwise = false;
  {
    const engine::RunResult direct = algo::run_method_native(
        algo::Method::kHipa, refresher.graph(), ropt.full);
    const serve::SnapshotRef snap = store.current();
    bitwise = snap.valid() &&
              std::memcmp(snap->ranks().data(), direct.ranks.data(),
                          std::size_t{n} * sizeof(rank_t)) == 0;
    std::printf("\npublished snapshot vs standalone engine run: %s\n",
                bitwise ? "bitwise identical" : "MISMATCH");
  }
  jw.key("publish_identity");
  jw.begin_object();
  jw.kv("ranks_bitwise_identical", bitwise);
  jw.kv("epoch", store.epoch());
  jw.kv("iterations", ropt.full.pr.iterations);
  jw.end_object();
  jw.end_object();
  std::fputc('\n', jf);
  std::fclose(jf);
  std::printf("wrote %s\n", out_path.c_str());
  return (bitwise && torn.load() == 0 && overhead_ok && accuracy_ok) ? 0 : 1;
}
