// Schema validator for the machine-readable bench artifacts
// (BENCH_hotpath*.json, BENCH_table3*.json). Runs inside the
// `perf-smoke` ctest fixture chain: the bench writes the JSON, this
// binary re-parses it with the shared minimal reader
// (common/minijson.hpp) and enforces the contract CI relies on —
// required fields present, counters non-negative, the four-phase
// telemetry arrays complete (init/scatter/gather/io_wait, including
// the per-phase hardware counter aggregates and the `hw` availability
// block), the `placement_audit` object well-formed, the `oocore`
// section within budget, and the zero-overhead-off invariant (`ranks
// bitwise-identical` across telemetry modes, destination encodings,
// and in-core vs streaming execution) actually asserted by the
// producer.
//
// Violations are reported as RFC 6901 JSON pointers into the offending
// document (`/datasets/0/methods/1/auto/native_seconds`), so a CI
// failure names the exact field rather than a boolean verdict.
//
//   bench_schema_check <file.json> [more.json ...]
//
// The top-level "bench" tag selects the schema: "hotpath",
// "table3_microarch", "serve" (BENCH_serve.json: QPS/latency mixes,
// the concurrent-refresh section with its zero-torn-reads invariant,
// the metrics-plane section with its overhead and quantile-accuracy
// gates, and the publish-identity bit), or "dist" (BENCH_dist.json:
// router QPS at 1/2/4 shard processes, the merge-vs-single-process
// memcmp-identity gate, and the zero-wrong-answer failover section).
#include <cstdio>
#include <string>

#include "common/minijson.hpp"

namespace {

using hipa::json::Value;
using hipa::json::ValuePtr;

int g_errors = 0;

void err(const std::string& pointer, const std::string& what) {
  std::fprintf(stderr, "schema: %s: %s\n",
               pointer.empty() ? "/" : pointer.c_str(), what.c_str());
  ++g_errors;
}

/// pointer + "/" + token (RFC 6901; our keys never contain '/' or '~'
/// so no escaping is needed).
std::string at(const std::string& pointer, const std::string& token) {
  return pointer + "/" + token;
}
std::string at(const std::string& pointer, std::size_t index) {
  return pointer + "/" + std::to_string(index);
}

const Value* require(const Value& obj, const std::string& path,
                     const char* key, Value::Type type) {
  if (obj.type != Value::Type::kObject) {
    err(path, "is not an object");
    return nullptr;
  }
  const Value* v = obj.find(key);
  if (v == nullptr) {
    err(at(path, key), "missing");
    return nullptr;
  }
  if (v->type != type) {
    err(at(path, key), std::string("expected ") + type_name(type) +
                           ", got " + type_name(v->type));
    return nullptr;
  }
  return v;
}

/// Required numeric field that must be >= 0 (all bench counters and
/// timings are non-negative by construction).
double require_nonneg(const Value& obj, const std::string& path,
                      const char* key) {
  const Value* v = require(obj, path, key, Value::Type::kNumber);
  if (v == nullptr) return 0.0;
  if (v->number < 0.0) {
    err(at(path, key), "is negative (" + std::to_string(v->number) + ")");
  }
  return v->number;
}

/// Required numeric field constrained to [0, 1].
double require_fraction(const Value& obj, const std::string& path,
                        const char* key) {
  const double v = require_nonneg(obj, path, key);
  if (v > 1.0) {
    err(at(path, key), "exceeds 1 (" + std::to_string(v) + ")");
  }
  return v;
}

// ---- shared sub-schemas ----------------------------------------------------

void check_telemetry(const Value& t, const std::string& path) {
  require(t, path, "enabled", Value::Type::kBool);
  require_nonneg(t, path, "threads");
  const Value* phases = require(t, path, "phases", Value::Type::kArray);
  if (phases != nullptr) {
    if (phases->array.size() != 4) {
      err(at(path, "phases"),
          "must have exactly 4 entries (init, scatter, gather, io_wait)");
    }
    static const char* kNumeric[] = {
        "invocations",       "barrier_crossings",  "participating_threads",
        "wall_sum_seconds",  "wall_max_seconds",   "wall_min_seconds",
        "imbalance",         "barrier_sum_seconds", "barrier_max_seconds",
        "messages_produced", "messages_consumed",  "bytes_produced",
        "bytes_consumed",    "region_seconds",     "sim_local_accesses",
        "sim_remote_accesses",
        // Per-phase hardware counter aggregates (zero when the PMU is
        // inaccessible, but the keys must exist).
        "hw_cycles",         "hw_instructions",    "hw_llc_loads",
        "hw_llc_load_misses", "hw_node_loads",     "hw_node_load_misses",
        "hw_multiplex_ratio"};
    for (std::size_t i = 0; i < phases->array.size(); ++i) {
      const Value& ph = *phases->array[i];
      const std::string pp = at(at(path, "phases"), i);
      require(ph, pp, "phase", Value::Type::kString);
      for (const char* key : kNumeric) require_nonneg(ph, pp, key);
    }
  }
  require_nonneg(t, path, "iterations_recorded");
  require_nonneg(t, path, "total_wall_seconds");
  require_nonneg(t, path, "total_barrier_seconds");
  require_nonneg(t, path, "total_messages_produced");
  require_nonneg(t, path, "total_messages_consumed");

  // Hardware-counter availability block. `available` may legitimately
  // be false (perf_event_paranoid, containers, non-Linux) — the
  // contract is that the block is always present and self-consistent.
  const Value* hw = require(t, path, "hw", Value::Type::kObject);
  if (hw != nullptr) {
    const std::string hp = at(path, "hw");
    const Value* avail = require(*hw, hp, "available", Value::Type::kBool);
    const double threads = require_nonneg(*hw, hp, "threads");
    const double mask = require_nonneg(*hw, hp, "event_mask");
    require(*hw, hp, "errno", Value::Type::kNumber);
    const Value* events = require(*hw, hp, "events", Value::Type::kArray);
    if (events != nullptr) {
      for (std::size_t i = 0; i < events->array.size(); ++i) {
        if (!events->array[i]->is(Value::Type::kString)) {
          err(at(at(hp, "events"), i), "expected string");
        }
      }
    }
    if (avail != nullptr && avail->boolean) {
      if (threads <= 0.0) {
        err(at(hp, "threads"), "available=true but no thread groups open");
      }
      if (mask <= 0.0) {
        err(at(hp, "event_mask"), "available=true but event mask empty");
      }
      if (events != nullptr && events->array.empty()) {
        err(at(hp, "events"), "available=true but event list empty");
      }
    }
  }
}

void check_placement_audit(const Value& parent, const std::string& path) {
  const Value* pa =
      require(parent, path, "placement_audit", Value::Type::kObject);
  if (pa == nullptr) return;
  const std::string pp = at(path, "placement_audit");
  const Value* avail = require(*pa, pp, "available", Value::Type::kBool);
  const Value* source = require(*pa, pp, "source", Value::Type::kString);
  require(*pa, pp, "page_granular", Value::Type::kBool);
  require_fraction(*pa, pp, "min_fraction");
  const Value* buffers = require(*pa, pp, "buffers", Value::Type::kArray);
  if (avail != nullptr && avail->boolean) {
    if (source != nullptr && source->str != "move_pages" &&
        source->str != "numa_maps") {
      err(at(pp, "source"),
          "available=true but source is '" + source->str + "'");
    }
    if (buffers != nullptr && buffers->array.empty()) {
      err(at(pp, "buffers"), "available=true but no buffers audited");
    }
  }
  if (buffers == nullptr) return;
  for (std::size_t i = 0; i < buffers->array.size(); ++i) {
    const Value& b = *buffers->array[i];
    const std::string bp = at(at(pp, "buffers"), i);
    require(b, bp, "name", Value::Type::kString);
    require_nonneg(b, bp, "intended_node");
    const double total = require_nonneg(b, bp, "pages_total");
    const double on = require_nonneg(b, bp, "pages_on_node");
    const double elsewhere = require_nonneg(b, bp, "pages_elsewhere");
    const double unmapped = require_nonneg(b, bp, "pages_unmapped");
    require_fraction(b, bp, "fraction_on_node");
    if (on + elsewhere + unmapped > total + 0.5) {
      err(bp, "page counts exceed pages_total");
    }
  }
}

// ---- hotpath schema --------------------------------------------------------

void check_encoding_run(const Value& r, const std::string& path) {
  require(r, path, "compact", Value::Type::kBool);
  require_nonneg(r, path, "bins_footprint_bytes");
  require_nonneg(r, path, "dst_bytes_per_edge");
  require_nonneg(r, path, "native_seconds");
  require_nonneg(r, path, "native_edges_per_sec");
  require_nonneg(r, path, "sim_bytes_per_edge");
  require_nonneg(r, path, "sim_cycles");
}

void check_hotpath(const Value& root) {
  const std::string top;
  require_nonneg(root, top, "iterations");
  const Value* host = require(root, top, "host", Value::Type::kObject);
  if (host != nullptr) {
    require_nonneg(*host, at(top, "host"), "cpus");
    require_nonneg(*host, at(top, "host"), "numa_nodes");
  }

  const Value* ov =
      require(root, top, "dispatch_overhead", Value::Type::kObject);
  if (ov != nullptr) {
    const std::string p = at(top, "dispatch_overhead");
    require_nonneg(*ov, p, "threads");
    require_nonneg(*ov, p, "phase_ns_per_iter");
    require_nonneg(*ov, p, "run_loop_ns_per_iter");
  }

  // Barrier micro-section: flat vs tree ns/crossing at >= 1 team sizes
  // plus the flattened all-CPUs summary the regression bands key on.
  const Value* bar = require(root, top, "barrier", Value::Type::kObject);
  if (bar != nullptr) {
    const std::string bp = at(top, "barrier");
    const double crossings = require_nonneg(*bar, bp, "crossings");
    if (crossings < 1.0) err(at(bp, "crossings"), "must be >= 1");
    const Value* points = require(*bar, bp, "points", Value::Type::kArray);
    if (points != nullptr) {
      if (points->array.empty()) err(at(bp, "points"), "is empty");
      for (std::size_t i = 0; i < points->array.size(); ++i) {
        const Value& p = *points->array[i];
        const std::string pp = at(at(bp, "points"), i);
        const double threads = require_nonneg(p, pp, "threads");
        const double groups = require_nonneg(p, pp, "tree_groups");
        require_nonneg(p, pp, "flat_ns_per_crossing");
        require_nonneg(p, pp, "tree_ns_per_crossing");
        // A tree with one leaf would be a flat barrier with extra
        // steps; the backend either uses >= 2 groups or falls back (0).
        if (groups == 1.0) err(at(pp, "tree_groups"), "must be 0 or >= 2");
        if (groups > threads) {
          err(at(pp, "tree_groups"), "exceeds thread count");
        }
      }
    }
    require_nonneg(*bar, bp, "max_threads");
    require_nonneg(*bar, bp, "flat_ns_per_crossing_max_threads");
    require_nonneg(*bar, bp, "tree_ns_per_crossing_max_threads");
    require(*bar, bp, "tree_not_slower_at_max_threads", Value::Type::kBool);
  }

  const Value* datasets = require(root, top, "datasets", Value::Type::kArray);
  if (datasets != nullptr) {
    if (datasets->array.empty()) err(at(top, "datasets"), "is empty");
    for (std::size_t di = 0; di < datasets->array.size(); ++di) {
      const Value& d = *datasets->array[di];
      const std::string dp = at(at(top, "datasets"), di);
      require(d, dp, "name", Value::Type::kString);
      require_nonneg(d, dp, "vertices");
      require_nonneg(d, dp, "edges");
      const Value* methods = require(d, dp, "methods", Value::Type::kArray);
      if (methods == nullptr) continue;
      for (std::size_t mi = 0; mi < methods->array.size(); ++mi) {
        const Value& m = *methods->array[mi];
        const std::string mp = at(at(dp, "methods"), mi);
        require(m, mp, "method", Value::Type::kString);
        const Value* a = require(m, mp, "auto", Value::Type::kObject);
        const Value* w = require(m, mp, "wide", Value::Type::kObject);
        if (a != nullptr) check_encoding_run(*a, at(mp, "auto"));
        if (w != nullptr) check_encoding_run(*w, at(mp, "wide"));
        // Compact and wide encodings must agree bitwise.
        const Value* l1 =
            require(m, mp, "ranks_l1_vs_wide", Value::Type::kNumber);
        if (l1 != nullptr && l1->number != 0.0) {
          err(at(mp, "ranks_l1_vs_wide"),
              "must be 0 (got " + std::to_string(l1->number) + ")");
        }
      }
    }
  }

  // Vertex-reorder section: per-mode native run of one method. The
  // facade inverse-permutes ranks, so every mode reports in original
  // vertex ids; "none" is the anchor and must match itself exactly,
  // reordered modes may drift by float summation order only.
  const Value* ro = require(root, top, "reorder", Value::Type::kObject);
  if (ro != nullptr) {
    const std::string rp = at(top, "reorder");
    require(*ro, rp, "dataset", Value::Type::kString);
    require(*ro, rp, "method", Value::Type::kString);
    require_nonneg(*ro, rp, "iterations");
    const Value* modes = require(*ro, rp, "modes", Value::Type::kArray);
    if (modes != nullptr) {
      if (modes->array.empty()) err(at(rp, "modes"), "is empty");
      for (std::size_t i = 0; i < modes->array.size(); ++i) {
        const Value& m = *modes->array[i];
        const std::string mp = at(at(rp, "modes"), i);
        const Value* mode = require(m, mp, "mode", Value::Type::kString);
        require_nonneg(m, mp, "native_seconds");
        require_nonneg(m, mp, "preprocessing_seconds");
        require_nonneg(m, mp, "barrier_sum_seconds");
        require(m, mp, "hw_available", Value::Type::kBool);
        require_nonneg(m, mp, "llc_loads");
        require_nonneg(m, mp, "llc_load_misses");
        require_fraction(m, mp, "llc_miss_rate");
        const double l1 = require_nonneg(m, mp, "ranks_l1_vs_none");
        if (mode != nullptr && mode->str == "none" && l1 != 0.0) {
          err(at(mp, "ranks_l1_vs_none"),
              "must be 0 for mode=none (got " + std::to_string(l1) + ")");
        }
      }
    }
  }

  const Value* tel = require(root, top, "telemetry_runs", Value::Type::kObject);
  if (tel != nullptr) {
    const std::string tp = at(top, "telemetry_runs");
    require(*tel, tp, "dataset", Value::Type::kString);
    const Value* methods = require(*tel, tp, "methods", Value::Type::kArray);
    if (methods != nullptr) {
      if (methods->array.empty()) err(at(tp, "methods"), "is empty");
      for (std::size_t mi = 0; mi < methods->array.size(); ++mi) {
        const Value& m = *methods->array[mi];
        const std::string mp = at(at(tp, "methods"), mi);
        require(m, mp, "method", Value::Type::kString);
        require_nonneg(m, mp, "native_seconds");
        require(m, mp, "trace_path", Value::Type::kString);
        const Value* t = require(m, mp, "telemetry", Value::Type::kObject);
        if (t != nullptr) {
          check_telemetry(*t, at(mp, "telemetry"));
          const Value* enabled = t->find("enabled");
          if (enabled != nullptr && !enabled->boolean) {
            err(at(at(mp, "telemetry"), "enabled"),
                "must be true for kOn runs");
          }
        }
        check_placement_audit(m, mp);
      }
    }
  }

  // Kernel section: per-kernel hot-path cost through run<K>() plus the
  // facade-vs-kernel abstraction-drift gate (must be exactly zero).
  const Value* ker = require(root, top, "kernels", Value::Type::kObject);
  if (ker != nullptr) {
    const std::string kp = at(top, "kernels");
    require(*ker, kp, "dataset", Value::Type::kString);
    require_nonneg(*ker, kp, "iterations");
    require_nonneg(*ker, kp, "threads");
    require_nonneg(*ker, kp, "full_round_messages");
    const Value* entries = require(*ker, kp, "entries", Value::Type::kArray);
    if (entries != nullptr) {
      if (entries->array.empty()) err(at(kp, "entries"), "is empty");
      for (std::size_t i = 0; i < entries->array.size(); ++i) {
        const Value& e = *entries->array[i];
        const std::string ep = at(at(kp, "entries"), i);
        require(e, ep, "kernel", Value::Type::kString);
        const Value* frontier =
            require(e, ep, "frontier", Value::Type::kBool);
        const double rounds = require_nonneg(e, ep, "iterations");
        if (rounds < 1.0) err(at(ep, "iterations"), "must be >= 1");
        require_nonneg(e, ep, "native_seconds");
        require_nonneg(e, ep, "ns_per_edge");
        require_nonneg(e, ep, "messages_per_edge");
        const double skip = require_fraction(e, ep, "active_skip_ratio");
        // Non-frontier kernels scatter every partition every round: a
        // nonzero skip ratio there means the accounting broke.
        if (frontier != nullptr && !frontier->boolean && skip != 0.0) {
          err(at(ep, "active_skip_ratio"),
              "must be 0 for non-frontier kernels (got " +
                  std::to_string(skip) + ")");
        }
      }
    }
    require_nonneg(*ker, kp, "pagerank_sim_cycles_facade");
    require_nonneg(*ker, kp, "pagerank_sim_cycles_kernel");
    const Value* drift =
        require(*ker, kp, "pagerank_abstraction_drift", Value::Type::kNumber);
    if (drift != nullptr && drift->number != 0.0) {
      err(at(kp, "pagerank_abstraction_drift"),
          "must be 0 (got " + std::to_string(drift->number) + ")");
    }
    const Value* l1 = require(*ker, kp, "pagerank_ranks_l1_vs_facade",
                              Value::Type::kNumber);
    if (l1 != nullptr && l1->number != 0.0) {
      err(at(kp, "pagerank_ranks_l1_vs_facade"),
          "must be 0 (got " + std::to_string(l1->number) + ")");
    }
    const Value* ident = require(*ker, kp,
                                 "pagerank_bitwise_identical_to_facade",
                                 Value::Type::kBool);
    if (ident != nullptr && !ident->boolean) {
      err(at(kp, "pagerank_bitwise_identical_to_facade"),
          "must be true — run<PageRankKernel> drifted from the facade");
    }
  }

  const Value* toh =
      require(root, top, "telemetry_overhead", Value::Type::kObject);
  if (toh != nullptr) {
    const std::string p = at(top, "telemetry_overhead");
    require_nonneg(*toh, p, "reps");
    require_nonneg(*toh, p, "off_seconds");
    require_nonneg(*toh, p, "on_seconds");
    require_nonneg(*toh, p, "ranks_l1_off_vs_on");
    const Value* ident =
        require(*toh, p, "ranks_bitwise_identical", Value::Type::kBool);
    if (ident != nullptr && !ident->boolean) {
      err(at(p, "ranks_bitwise_identical"),
          "must be true — telemetry perturbed the ranks");
    }
  }

  // Out-of-core section: streaming through bounded staging slots must
  // stay within its budget and agree bitwise with the in-core run of
  // the identical kernel.
  const Value* oo = require(root, top, "oocore", Value::Type::kObject);
  if (oo != nullptr) {
    const std::string p = at(top, "oocore");
    require(*oo, p, "dataset", Value::Type::kString);
    require_nonneg(*oo, p, "iterations");
    require_nonneg(*oo, p, "threads");
    const double segments = require_nonneg(*oo, p, "segments");
    if (segments < 2.0) {
      err(at(p, "segments"),
          "must be >= 2 — a single segment never exercises streaming");
    }
    require_nonneg(*oo, p, "target_segment_bytes");
    const double budget = require_nonneg(*oo, p, "budget_bytes");
    const double peak = require_nonneg(*oo, p, "peak_resident_bytes");
    if (peak > budget) {
      err(at(p, "peak_resident_bytes"),
          "exceeds budget_bytes (" + std::to_string(peak) + " > " +
              std::to_string(budget) + ")");
    }
    const Value* budget_ok = require(*oo, p, "budget_ok", Value::Type::kBool);
    if (budget_ok != nullptr && !budget_ok->boolean) {
      err(at(p, "budget_ok"),
          "must be true — streaming run exceeded its resident budget");
    }
    require_nonneg(*oo, p, "incore_seconds");
    require_nonneg(*oo, p, "streaming_seconds");
    require_nonneg(*oo, p, "io_wait_seconds");
    require_nonneg(*oo, p, "fetch_seconds");
    require_fraction(*oo, p, "prefetch_overlap_ratio");
    const double fetched = require_nonneg(*oo, p, "bytes_fetched");
    if (fetched < 1.0) {
      err(at(p, "bytes_fetched"), "streaming run fetched no bytes");
    }
    const Value* ident =
        require(*oo, p, "ranks_bitwise_identical", Value::Type::kBool);
    if (ident != nullptr && !ident->boolean) {
      err(at(p, "ranks_bitwise_identical"),
          "must be true — streaming diverged from the in-core run");
    }
  }
}

// ---- table3 schema ---------------------------------------------------------

void check_table3(const Value& root) {
  const std::string top;
  require_nonneg(root, top, "iterations");
  const Value* host = require(root, top, "host", Value::Type::kObject);
  if (host != nullptr) {
    require_nonneg(*host, at(top, "host"), "cpus");
    require_nonneg(*host, at(top, "host"), "numa_nodes");
  }
  const Value* datasets = require(root, top, "datasets", Value::Type::kArray);
  if (datasets != nullptr && datasets->array.empty()) {
    err(at(top, "datasets"), "is empty");
  }

  const Value* arches = require(root, top, "arches", Value::Type::kArray);
  if (arches != nullptr) {
    if (arches->array.empty()) err(at(top, "arches"), "is empty");
    for (std::size_t ai = 0; ai < arches->array.size(); ++ai) {
      const Value& a = *arches->array[ai];
      const std::string ap = at(at(top, "arches"), ai);
      require(a, ap, "arch", Value::Type::kString);
      require_nonneg(a, ap, "l2_kb");
      require(a, ap, "inclusive_llc", Value::Type::kBool);
      require_nonneg(a, ap, "norm_kb");
      const Value* methods = require(a, ap, "methods", Value::Type::kArray);
      if (methods == nullptr) continue;
      for (std::size_t mi = 0; mi < methods->array.size(); ++mi) {
        const Value& m = *methods->array[mi];
        const std::string mp = at(at(ap, "methods"), mi);
        require(m, mp, "method", Value::Type::kString);
        const Value* norm =
            require(m, mp, "normalized", Value::Type::kArray);
        if (norm == nullptr) continue;
        if (norm->array.empty()) err(at(mp, "normalized"), "is empty");
        for (std::size_t si = 0; si < norm->array.size(); ++si) {
          const Value& s = *norm->array[si];
          const std::string sp = at(at(mp, "normalized"), si);
          require_nonneg(s, sp, "kb");
          require_nonneg(s, sp, "value");
        }
      }
    }
  }

  const Value* nh = require(root, top, "native_hw", Value::Type::kObject);
  if (nh != nullptr) {
    const std::string np = at(top, "native_hw");
    require(*nh, np, "dataset", Value::Type::kString);
    require_nonneg(*nh, np, "iterations");
    const Value* methods = require(*nh, np, "methods", Value::Type::kArray);
    if (methods != nullptr) {
      if (methods->array.empty()) err(at(np, "methods"), "is empty");
      for (std::size_t mi = 0; mi < methods->array.size(); ++mi) {
        const Value& m = *methods->array[mi];
        const std::string mp = at(at(np, "methods"), mi);
        require(m, mp, "method", Value::Type::kString);
        const Value* sizes = require(m, mp, "sizes", Value::Type::kArray);
        if (sizes == nullptr) continue;
        if (sizes->array.empty()) err(at(mp, "sizes"), "is empty");
        for (std::size_t si = 0; si < sizes->array.size(); ++si) {
          const Value& s = *sizes->array[si];
          const std::string sp = at(at(mp, "sizes"), si);
          require_nonneg(s, sp, "kb");
          require_nonneg(s, sp, "partition_bytes");
          require_nonneg(s, sp, "native_seconds");
          require_nonneg(s, sp, "normalized");
          require_nonneg(s, sp, "llc_miss_pct");
          const Value* t = require(s, sp, "telemetry", Value::Type::kObject);
          if (t != nullptr) check_telemetry(*t, at(sp, "telemetry"));
          check_placement_audit(s, sp);
        }
      }
    }
  }
}

// ---- serve schema ----------------------------------------------------------

/// One QPS/latency block (read-only mix or the concurrent-refresh
/// section): counts non-negative and the percentile ladder ordered.
void check_latency_block(const Value& m, const std::string& path) {
  require_nonneg(m, path, "clients");
  require_nonneg(m, path, "seconds");
  require_nonneg(m, path, "requests");
  require_nonneg(m, path, "qps");
  const double p50 = require_nonneg(m, path, "p50_us");
  const double p95 = require_nonneg(m, path, "p95_us");
  const double p99 = require_nonneg(m, path, "p99_us");
  if (p50 > p95 + 1e-9 || p95 > p99 + 1e-9) {
    err(path, "latency percentiles not monotone (p50 <= p95 <= p99)");
  }
}

void check_serve(const Value& root) {
  const std::string top;
  const Value* host = require(root, top, "host", Value::Type::kObject);
  if (host != nullptr) {
    const std::string hp = at(top, "host");
    require_nonneg(*host, hp, "cpus");
    require_nonneg(*host, hp, "numa_nodes");
    require(*host, hp, "topology_source", Value::Type::kString);
    require(*host, hp, "numa_binding_available", Value::Type::kBool);
  }

  const Value* ds = require(root, top, "dataset", Value::Type::kObject);
  if (ds != nullptr) {
    const std::string dp = at(top, "dataset");
    require(*ds, dp, "name", Value::Type::kString);
    require_nonneg(*ds, dp, "scale");
    require_nonneg(*ds, dp, "vertices");
    require_nonneg(*ds, dp, "edges");
  }

  const Value* store = require(root, top, "store", Value::Type::kObject);
  if (store != nullptr) {
    const std::string sp = at(top, "store");
    const double nodes = require_nonneg(*store, sp, "num_nodes");
    const double slots = require_nonneg(*store, sp, "slots");
    require_nonneg(*store, sp, "vertices");
    if (nodes < 1.0) err(at(sp, "num_nodes"), "must be >= 1");
    // Fewer than 3 slots cannot overlap readers + in-flight publish.
    if (slots < 2.0) err(at(sp, "slots"), "must be >= 2");
  }

  const Value* mixes = require(root, top, "mixes", Value::Type::kArray);
  if (mixes != nullptr) {
    if (mixes->array.size() != 4) {
      err(at(top, "mixes"),
          "must have exactly 4 entries (point, batch, topk, mixed)");
    }
    for (std::size_t i = 0; i < mixes->array.size(); ++i) {
      const Value& m = *mixes->array[i];
      const std::string mp = at(at(top, "mixes"), i);
      require(m, mp, "mix", Value::Type::kString);
      check_latency_block(m, mp);
      const Value* requests = m.find("requests");
      if (requests != nullptr && requests->number < 1.0) {
        err(at(mp, "requests"), "mix served no requests at all");
      }
    }
  }

  const Value* cr =
      require(root, top, "concurrent_refresh", Value::Type::kObject);
  if (cr != nullptr) {
    const std::string cp = at(top, "concurrent_refresh");
    check_latency_block(*cr, cp);
    const double epochs = require_nonneg(*cr, cp, "epochs_published");
    require_nonneg(*cr, cp, "full_refreshes");
    require_nonneg(*cr, cp, "delta_refreshes");
    require_nonneg(*cr, cp, "reclaim_waits");
    if (epochs < 1.0) {
      err(at(cp, "epochs_published"),
          "no snapshot was republished during the concurrent window");
    }
    const Value* torn = require(*cr, cp, "torn_reads", Value::Type::kNumber);
    if (torn != nullptr && torn->number != 0.0) {
      err(at(cp, "torn_reads"),
          "must be 0 — readers observed mixed/regressing epochs (" +
              std::to_string(torn->number) + ")");
    }
  }

  const Value* metrics = require(root, top, "metrics", Value::Type::kObject);
  if (metrics != nullptr) {
    const std::string mp = at(top, "metrics");
    const Value* sc =
        require(*metrics, mp, "scrape_cost", Value::Type::kArray);
    if (sc != nullptr) {
      if (sc->array.size() != 3) {
        err(at(mp, "scrape_cost"),
            "must have exactly 3 entries (1, 8, 64 histograms)");
      }
      for (std::size_t i = 0; i < sc->array.size(); ++i) {
        const Value& row = *sc->array[i];
        const std::string rp = at(at(mp, "scrape_cost"), i);
        const double hists = require_nonneg(row, rp, "histograms");
        if (hists < 1.0) err(at(rp, "histograms"), "must be >= 1");
        require_nonneg(row, rp, "ns_per_scrape");
        require_nonneg(row, rp, "bytes");
      }
    }

    const Value* oh = require(*metrics, mp, "overhead", Value::Type::kObject);
    if (oh != nullptr) {
      const std::string op = at(mp, "overhead");
      require_nonneg(*oh, op, "uninstrumented_qps");
      require_nonneg(*oh, op, "instrumented_qps");
      require_nonneg(*oh, op, "qps_ratio");
      require_nonneg(*oh, op, "ns_per_event");
      require_nonneg(*oh, op, "events_per_request");
      require_fraction(*oh, op, "hot_path_fraction");
      const Value* gate = require(*oh, op, "gate_ok", Value::Type::kBool);
      if (gate != nullptr && !gate->boolean) {
        err(at(op, "gate_ok"),
            "must be true — instrumentation exceeded the <1% hot-path "
            "budget or QPS collapsed");
      }
    }

    const Value* qa =
        require(*metrics, mp, "quantile_accuracy", Value::Type::kObject);
    if (qa != nullptr) {
      const std::string qp = at(mp, "quantile_accuracy");
      require_nonneg(*qa, qp, "samples");
      require_fraction(*qa, qp, "tolerance");
      const Value* qs = require(*qa, qp, "quantiles", Value::Type::kArray);
      if (qs != nullptr) {
        if (qs->array.size() != 4) {
          err(at(qp, "quantiles"),
              "must have exactly 4 entries (p50, p95, p99, p999)");
        }
        for (std::size_t i = 0; i < qs->array.size(); ++i) {
          const Value& row = *qs->array[i];
          const std::string rp = at(at(qp, "quantiles"), i);
          require(row, rp, "quantile", Value::Type::kString);
          require_nonneg(row, rp, "exact_ns");
          require_nonneg(row, rp, "estimated_ns");
          require_fraction(row, rp, "rel_error");
        }
      }
      require_fraction(*qa, qp, "max_rel_error");
      const Value* within =
          require(*qa, qp, "within_tolerance", Value::Type::kBool);
      if (within != nullptr && !within->boolean) {
        err(at(qp, "within_tolerance"),
            "must be true — a histogram quantile estimate missed the "
            "exact value by more than one bucket width");
      }
    }
  }

  const Value* pi =
      require(root, top, "publish_identity", Value::Type::kObject);
  if (pi != nullptr) {
    const std::string pp = at(top, "publish_identity");
    const Value* ident =
        require(*pi, pp, "ranks_bitwise_identical", Value::Type::kBool);
    if (ident != nullptr && !ident->boolean) {
      err(at(pp, "ranks_bitwise_identical"),
          "must be true — published snapshot diverged from a standalone "
          "engine run");
    }
    require_nonneg(*pi, pp, "epoch");
    require_nonneg(*pi, pp, "iterations");
  }
}

// ---- dist schema -----------------------------------------------------------

void check_dist(const Value& root) {
  const std::string top;
  const Value* host = require(root, top, "host", Value::Type::kObject);
  if (host != nullptr) {
    const std::string hp = at(top, "host");
    require_nonneg(*host, hp, "cpus");
    require_nonneg(*host, hp, "numa_nodes");
    require(*host, hp, "topology_source", Value::Type::kString);
  }

  const Value* ds = require(root, top, "dataset", Value::Type::kObject);
  if (ds != nullptr) {
    const std::string dp = at(top, "dataset");
    require(*ds, dp, "name", Value::Type::kString);
    const double v = require_nonneg(*ds, dp, "vertices");
    const double e = require_nonneg(*ds, dp, "edges");
    if (v < 1.0) err(at(dp, "vertices"), "must be >= 1");
    if (e < 1.0) err(at(dp, "edges"), "must be >= 1");
  }

  const Value* sd = require(root, top, "shard_defaults", Value::Type::kObject);
  if (sd != nullptr) {
    const std::string sp = at(top, "shard_defaults");
    const double iters = require_nonneg(*sd, sp, "iterations");
    const double k = require_nonneg(*sd, sp, "topk_k");
    if (iters < 1.0) err(at(sp, "iterations"), "must be >= 1");
    if (k < 1.0) err(at(sp, "topk_k"), "must be >= 1");
  }

  // Scaling sweep: router throughput at 1, 2, and 4 real shard
  // processes. Shard counts must appear in that order so the regress
  // bands can key on the index.
  const Value* configs = require(root, top, "configs", Value::Type::kArray);
  if (configs != nullptr) {
    if (configs->array.size() != 3) {
      err(at(top, "configs"),
          "must have exactly 3 entries (1, 2, 4 shards)");
    }
    static const double kShardCounts[] = {1.0, 2.0, 4.0};
    for (std::size_t i = 0; i < configs->array.size(); ++i) {
      const Value& c = *configs->array[i];
      const std::string cp = at(at(top, "configs"), i);
      const double shards = require_nonneg(c, cp, "shards");
      if (i < 3 && shards != kShardCounts[i]) {
        err(at(cp, "shards"),
            "expected " + std::to_string((int)kShardCounts[i]) + " at index " +
                std::to_string(i) + " (got " + std::to_string((int)shards) +
                ")");
      }
      check_latency_block(c, cp);
      require_nonneg(c, cp, "mean_us");
      const Value* requests = c.find("requests");
      if (requests != nullptr && requests->number < 1.0) {
        err(at(cp, "requests"), "config served no requests at all");
      }
    }
  }

  // The scatter/merge correctness gate: a 4-shard fleet behind the
  // router must answer bitwise-identically to one single-process
  // RankService over the same snapshot.
  const Value* id = require(root, top, "identity", Value::Type::kObject);
  if (id != nullptr) {
    const std::string ip = at(top, "identity");
    const double shards = require_nonneg(*id, ip, "shards");
    if (shards < 2.0) {
      err(at(ip, "shards"),
          "must be >= 2 — one shard never exercises the merge");
    }
    const double queries = require_nonneg(*id, ip, "queries");
    if (queries < 1.0) err(at(ip, "queries"), "no identity queries ran");
    require_nonneg(*id, ip, "epoch");
    const Value* ident =
        require(*id, ip, "memcmp_identical", Value::Type::kBool);
    if (ident != nullptr && !ident->boolean) {
      err(at(ip, "memcmp_identical"),
          "must be true — sharded answers diverged from the "
          "single-process service");
    }
  }

  // Failover section: one shard is SIGKILLed mid-load; every answer
  // the router does return must still be bitwise-correct, and the
  // fleet must recover (failover_seconds measured, not sentinel).
  const Value* fo = require(root, top, "failover", Value::Type::kObject);
  if (fo != nullptr) {
    const std::string fp = at(top, "failover");
    require_nonneg(*fo, fp, "shards");
    require_nonneg(*fo, fp, "killed_shard");
    const Value* fs =
        require(*fo, fp, "failover_seconds", Value::Type::kNumber);
    if (fs != nullptr && fs->number < 0.0) {
      err(at(fp, "failover_seconds"),
          "is negative — the router never recovered from the kill");
    }
    const double answered = require_nonneg(*fo, fp, "answered");
    if (answered < 1.0) {
      err(at(fp, "answered"), "no queries answered during failover window");
    }
    require_nonneg(*fo, fp, "errors");
    require_nonneg(*fo, fp, "stale_merges");
    require_nonneg(*fo, fp, "timeouts");
    const Value* wrong =
        require(*fo, fp, "wrong_answers", Value::Type::kNumber);
    if (wrong != nullptr && wrong->number != 0.0) {
      err(at(fp, "wrong_answers"),
          "must be 0 — a merged answer diverged from the reference while "
          "a shard was down (" + std::to_string(wrong->number) + ")");
    }
  }
}

// ---- driver ----------------------------------------------------------------

int check_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::string perr;
  const ValuePtr rootp = hipa::json::parse(std::move(text), &perr);
  if (rootp == nullptr) {
    std::fprintf(stderr, "%s: %s\n", path, perr.c_str());
    return 1;
  }
  const Value& root = *rootp;

  const int before = g_errors;
  const Value* bench = require(root, "", "bench", Value::Type::kString);
  if (bench != nullptr) {
    if (bench->str == "hotpath") {
      check_hotpath(root);
    } else if (bench->str == "table3_microarch") {
      check_table3(root);
    } else if (bench->str == "serve") {
      check_serve(root);
    } else if (bench->str == "dist") {
      check_dist(root);
    } else {
      err("/bench", "unknown bench tag '" + bench->str + "'");
    }
  }

  const int file_errors = g_errors - before;
  if (file_errors > 0) {
    std::fprintf(stderr, "%d schema violation(s) in %s\n", file_errors,
                 path);
    return 1;
  }
  std::printf("schema OK: %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json> [more.json ...]\n",
                 argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const int r = check_file(argv[i]);
    if (r > rc) rc = r;
  }
  return rc;
}
