// Schema validator for the machine-readable bench output
// (BENCH_hotpath*.json). Runs as the second half of the `perf-smoke`
// ctest fixture: bench_hotpath --smoke writes the JSON, this binary
// re-parses it with a standalone minimal JSON reader (no third-party
// deps) and enforces the contract CI relies on — required fields
// present, counters non-negative, the three-phase telemetry arrays
// complete, and the zero-overhead-off invariant (`ranks
// bitwise-identical` across telemetry modes and destination
// encodings) actually asserted by the producer.
//
//   bench_schema_check <path/to/BENCH_hotpath.json>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// ---- minimal JSON ----------------------------------------------------------

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> array;
  std::vector<std::pair<std::string, ValuePtr>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    std::fprintf(stderr, "JSON parse error at offset %zu: %s\n", pos_,
                 what);
    std::exit(1);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  ValuePtr parse_value() {
    skip_ws();
    auto v = std::make_shared<Value>();
    const char c = peek();
    if (c == '{') {
      v->type = Value::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        v->object.emplace_back(key, parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->type = Value::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v->array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->type = Value::Type::kString;
      v->str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v->type = Value::Type::kBool;
      v->boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v->type = Value::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    v->type = Value::Type::kNumber;
    v->number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // Escaped control characters only ever carry ASCII here.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out.push_back(static_cast<char>(
                std::strtoul(hex.c_str(), nullptr, 16) & 0x7f));
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---- schema checks ---------------------------------------------------------

int g_errors = 0;

void err(const std::string& what) {
  std::fprintf(stderr, "schema: %s\n", what.c_str());
  ++g_errors;
}

const Value* require(const Value& obj, const std::string& path,
                     const char* key, Value::Type type) {
  if (obj.type != Value::Type::kObject) {
    err(path + " is not an object");
    return nullptr;
  }
  const Value* v = obj.find(key);
  if (v == nullptr) {
    err(path + " missing key '" + key + "'");
    return nullptr;
  }
  if (v->type != type) {
    err(path + "." + key + " has wrong type");
    return nullptr;
  }
  return v;
}

/// Required numeric field that must be >= 0 (all bench counters and
/// timings are non-negative by construction).
double require_nonneg(const Value& obj, const std::string& path,
                      const char* key) {
  const Value* v = require(obj, path, key, Value::Type::kNumber);
  if (v == nullptr) return 0.0;
  if (v->number < 0.0) {
    err(path + "." + key + " is negative");
    return v->number;
  }
  return v->number;
}

void check_telemetry(const Value& t, const std::string& path) {
  require(t, path, "enabled", Value::Type::kBool);
  require_nonneg(t, path, "threads");
  const Value* phases = require(t, path, "phases", Value::Type::kArray);
  if (phases != nullptr) {
    if (phases->array.size() != 3) {
      err(path + ".phases must have exactly 3 entries (init, scatter, "
                 "gather)");
    }
    static const char* kNumeric[] = {
        "invocations",     "barrier_crossings",   "participating_threads",
        "wall_sum_seconds", "wall_max_seconds",   "wall_min_seconds",
        "imbalance",        "barrier_sum_seconds", "barrier_max_seconds",
        "messages_produced", "messages_consumed", "bytes_produced",
        "bytes_consumed",   "region_seconds",     "sim_local_accesses",
        "sim_remote_accesses"};
    for (std::size_t i = 0; i < phases->array.size(); ++i) {
      const Value& ph = *phases->array[i];
      const std::string pp = path + ".phases[" + std::to_string(i) + "]";
      require(ph, pp, "phase", Value::Type::kString);
      for (const char* key : kNumeric) require_nonneg(ph, pp, key);
    }
  }
  require_nonneg(t, path, "iterations_recorded");
  require_nonneg(t, path, "total_wall_seconds");
  require_nonneg(t, path, "total_barrier_seconds");
  require_nonneg(t, path, "total_messages_produced");
  require_nonneg(t, path, "total_messages_consumed");
}

void check_encoding_run(const Value& r, const std::string& path) {
  require(r, path, "compact", Value::Type::kBool);
  require_nonneg(r, path, "bins_footprint_bytes");
  require_nonneg(r, path, "dst_bytes_per_edge");
  require_nonneg(r, path, "native_seconds");
  require_nonneg(r, path, "native_edges_per_sec");
  require_nonneg(r, path, "sim_bytes_per_edge");
  require_nonneg(r, path, "sim_cycles");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <BENCH_hotpath.json>\n", argv[0]);
    return 2;
  }
  std::FILE* f = std::fopen(argv[1], "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  const ValuePtr rootp = Parser(std::move(text)).parse();
  const Value& root = *rootp;
  const std::string top = "$";

  require(root, top, "bench", Value::Type::kString);
  require_nonneg(root, top, "iterations");
  const Value* host = require(root, top, "host", Value::Type::kObject);
  if (host != nullptr) {
    require_nonneg(*host, top + ".host", "cpus");
    require_nonneg(*host, top + ".host", "numa_nodes");
  }

  const Value* ov =
      require(root, top, "dispatch_overhead", Value::Type::kObject);
  if (ov != nullptr) {
    const std::string p = top + ".dispatch_overhead";
    require_nonneg(*ov, p, "threads");
    require_nonneg(*ov, p, "phase_ns_per_iter");
    require_nonneg(*ov, p, "run_loop_ns_per_iter");
  }

  const Value* datasets =
      require(root, top, "datasets", Value::Type::kArray);
  if (datasets != nullptr) {
    if (datasets->array.empty()) err("$.datasets is empty");
    for (std::size_t di = 0; di < datasets->array.size(); ++di) {
      const Value& d = *datasets->array[di];
      const std::string dp = "$.datasets[" + std::to_string(di) + "]";
      require(d, dp, "name", Value::Type::kString);
      require_nonneg(d, dp, "vertices");
      require_nonneg(d, dp, "edges");
      const Value* methods =
          require(d, dp, "methods", Value::Type::kArray);
      if (methods == nullptr) continue;
      for (std::size_t mi = 0; mi < methods->array.size(); ++mi) {
        const Value& m = *methods->array[mi];
        const std::string mp = dp + ".methods[" + std::to_string(mi) + "]";
        require(m, mp, "method", Value::Type::kString);
        const Value* a = require(m, mp, "auto", Value::Type::kObject);
        const Value* w = require(m, mp, "wide", Value::Type::kObject);
        if (a != nullptr) check_encoding_run(*a, mp + ".auto");
        if (w != nullptr) check_encoding_run(*w, mp + ".wide");
        // Compact and wide encodings must agree bitwise.
        const Value* l1 = require(m, mp, "ranks_l1_vs_wide",
                                  Value::Type::kNumber);
        if (l1 != nullptr && l1->number != 0.0) {
          err(mp + ".ranks_l1_vs_wide must be 0 (got " +
              std::to_string(l1->number) + ")");
        }
      }
    }
  }

  const Value* tel =
      require(root, top, "telemetry_runs", Value::Type::kObject);
  if (tel != nullptr) {
    const std::string tp = top + ".telemetry_runs";
    require(*tel, tp, "dataset", Value::Type::kString);
    const Value* methods =
        require(*tel, tp, "methods", Value::Type::kArray);
    if (methods != nullptr) {
      if (methods->array.empty()) err(tp + ".methods is empty");
      for (std::size_t mi = 0; mi < methods->array.size(); ++mi) {
        const Value& m = *methods->array[mi];
        const std::string mp = tp + ".methods[" + std::to_string(mi) + "]";
        require(m, mp, "method", Value::Type::kString);
        require_nonneg(m, mp, "native_seconds");
        const Value* t =
            require(m, mp, "telemetry", Value::Type::kObject);
        if (t != nullptr) {
          check_telemetry(*t, mp + ".telemetry");
          const Value* enabled = t->find("enabled");
          if (enabled != nullptr && !enabled->boolean) {
            err(mp + ".telemetry.enabled must be true for kOn runs");
          }
        }
      }
    }
  }

  const Value* toh =
      require(root, top, "telemetry_overhead", Value::Type::kObject);
  if (toh != nullptr) {
    const std::string p = top + ".telemetry_overhead";
    require_nonneg(*toh, p, "reps");
    require_nonneg(*toh, p, "off_seconds");
    require_nonneg(*toh, p, "on_seconds");
    require_nonneg(*toh, p, "ranks_l1_off_vs_on");
    const Value* ident =
        require(*toh, p, "ranks_bitwise_identical", Value::Type::kBool);
    if (ident != nullptr && !ident->boolean) {
      err(p + ".ranks_bitwise_identical must be true — telemetry "
              "perturbed the ranks");
    }
  }

  if (g_errors > 0) {
    std::fprintf(stderr, "%d schema violation(s) in %s\n", g_errors,
                 argv[1]);
    return 1;
  }
  std::printf("schema OK: %s\n", argv[1]);
  return 0;
}
