// Edge-balanced vs vertex-balanced partitioning (paper §3.1).
//
// The paper rejects the "intuitive idea" of even vertex allocation:
// "for the skewed graphs, the even allocation of vertices leads to
// workload imbalance, thus slowing down the computation". This harness
// quantifies both the imbalance (max/avg edges per thread) and its
// PageRank cost on every dataset stand-in.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/pcpm_engine.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 4);

  bench::print_banner("Edge- vs vertex-balanced partitioning",
                      "paper Section 3.1");
  std::printf("%-9s | %-21s | %-21s | slowdown\n", "graph",
              "edge-balanced (Eq. 2)", "vertex-balanced");
  std::printf("%-9s | %10s %10s | %10s %10s |\n", "", "max/avg", "time (s)",
              "max/avg", "time (s)");

  for (const auto& d : bench::load_datasets(flags)) {
    double secs[2] = {};
    double imbalance[2] = {};
    const part::PlanConfig::Balance kinds[2] = {
        part::PlanConfig::Balance::kEdges,
        part::PlanConfig::Balance::kVertices};
    for (int i = 0; i < 2; ++i) {
      sim::SimMachine machine = bench::make_machine(d.scale);
      engine::SimBackend backend(machine);
      auto opt = engine::PcpmOptions::hipa(
          40, 2, std::max<std::uint64_t>(256 * 1024 / d.scale, 4));
      opt.balance = kinds[i];
      engine::PcpmEngine<engine::SimBackend> eng(d.graph, opt, backend);
      // Workload imbalance: slowest thread's edges over the average.
      const auto& plan = eng.plan();
      std::uint64_t max_edges = 0;
      std::uint64_t sum_edges = 0;
      for (unsigned t = 0; t < plan.num_threads(); ++t) {
        const std::uint64_t e = plan.thread_edge_count(t);
        max_edges = std::max(max_edges, e);
        sum_edges += e;
      }
      imbalance[i] = static_cast<double>(max_edges) * plan.num_threads() /
                     static_cast<double>(sum_edges);
      engine::PageRankOptions pr;
      pr.iterations = iters;
      secs[i] = eng.run(pr).report.seconds;
    }
    std::printf("%-9s | %9.2fx %10.4f | %9.2fx %10.4f |  %5.2fx\n",
                d.name.c_str(), imbalance[0], secs[0], imbalance[1],
                secs[1], secs[1] / secs[0]);
  }
  std::printf("\n(paper: prior NUMA-aware works prioritize edges for "
              "balanced partitioning\n because even-vertex allocation "
              "leaves the worst thread overloaded — compare the\n "
              "max/avg columns; the time effect depends on how much "
              "SMT co-scheduling\n and bandwidth floors absorb the "
              "straggler)\n");
  return 0;
}
