// Reproduces paper Fig. 7: LLC hits (and HiPa's LLC hit ratio) plus
// execution time across partition sizes 16 KB .. 8 MB on journal.
//
// Expected shape (paper): execution time is U-shaped with the minimum
// at 256 KB (a quarter of the Skylake L2); LLC hits surge once the
// partition spills out of L2 (>= 512 KB); very small partitions lose to
// uncompressed inter-edges.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hipa;
  const bench::Flags flags = bench::Flags::parse(argc, argv);
  const unsigned iters =
      flags.iterations != 0 ? flags.iterations : (flags.quick ? 2 : 3);

  bench::print_banner("Fig. 7: partition size sensitivity on journal",
                      "paper Fig. 7");
  const std::string name = flags.dataset.empty() ? "journal" : flags.dataset;
  const unsigned scale =
      graph::recommended_scale(name) * (flags.quick ? 16 : 2);
  const graph::Graph g = graph::make_dataset(name, scale);
  std::printf("graph=%s 1/N=%u (partition sizes below are paper-equivalent;"
              " actual = size/N)\n\n", name.c_str(), scale);

  const std::vector<std::uint64_t> sizes_eq = {
      16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10,
      512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20};
  const algo::Method methods[] = {algo::Method::kHipa, algo::Method::kPpr,
                                  algo::Method::kGpop};

  std::printf("%9s | %28s | %28s\n", "", "time (s)", "LLC hits (M)");
  std::printf("%9s | %8s %8s %8s | %8s %8s %8s | %s\n", "size-eq", "HiPa",
              "p-PR", "GPOP", "HiPa", "p-PR", "GPOP", "HiPa LLC hit%");

  for (std::uint64_t sz : sizes_eq) {
    const std::uint64_t actual =
        std::max<std::uint64_t>(sz / scale, sizeof(rank_t));
    double secs[3] = {};
    double llc_hits[3] = {};
    double hipa_ratio = 0.0;
    for (int i = 0; i < 3; ++i) {
      sim::SimMachine machine = bench::make_machine(scale);
      algo::MethodParams params;
      params.pr.iterations = iters;
      params.scale_denom = scale;
      params.partition_bytes = actual;
      const auto report =
          algo::run_method_sim(methods[i], g, machine, params).report;
      secs[i] = report.seconds;
      llc_hits[i] = static_cast<double>(report.stats.llc_hits) / 1e6;
      if (i == 0) hipa_ratio = report.stats.llc_hit_ratio() * 100.0;
    }
    const char* label =
        sz >= (1 << 20)
            ? (sz >= (8 << 20) ? "8M" : sz >= (4 << 20) ? "4M"
               : sz >= (2 << 20) ? "2M" : "1M")
            : nullptr;
    if (label != nullptr) {
      std::printf("%9s |", label);
    } else {
      std::printf("%8lluK |", static_cast<unsigned long long>(sz >> 10));
    }
    std::printf(" %8.4f %8.4f %8.4f | %8.2f %8.2f %8.2f |   %5.1f%%\n",
                secs[0], secs[1], secs[2], llc_hits[0], llc_hits[1],
                llc_hits[2], hipa_ratio);
  }
  std::printf("\npaper Fig. 7: HiPa minimum at 256K (quarter of L2); all "
              "methods decelerate\n sharply past 512K as partitions spill "
              "into LLC; LLC hits/ratio climb with size.\n");
  return 0;
}
