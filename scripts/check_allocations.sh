#!/usr/bin/env bash
# Allocation-site lint: page-aligned allocations carry NUMA placement
# intent, and placement policy lives in ONE place — runtime/arena. This
# grep gate fails CI when a new page-aligned allocation site (raw
# aligned allocator, anonymous mmap, or an AlignedBuffer constructed
# with kPageSize alignment) appears in src/ or tools/ outside the
# arena itself.
#
# A site that is genuinely cold-path (one-time preprocessing, no
# iteration-time placement consequence) may opt out with an
# `arena-exempt: <reason>` comment on the same line or within the two
# lines above it.
#
# Registered as the `check_allocations` ctest (labels: substrate lint).
set -u
cd "$(dirname "$0")/.."

pattern='aligned_alloc\(|posix_memalign\(|memalign\(|MAP_ANONYMOUS|AlignedBuffer<[^>]*>\([^;{}]*kPageSize'

fail=0
count=0
while IFS= read -r hit; do
  file=${hit%%:*}
  rest=${hit#*:}
  line=${rest%%:*}
  case "$file" in
    # The arena IS the allocator; the buffer header is the primitive it
    # (and the heap-fallback path) are built on.
    src/runtime/arena.cpp|src/runtime/arena.hpp|src/common/aligned_buffer.hpp|src/common/aligned_buffer.cpp)
      continue ;;
  esac
  start=$(( line > 2 ? line - 2 : 1 ))
  if sed -n "${start},${line}p" "$file" | grep -q 'arena-exempt:'; then
    continue
  fi
  echo "check_allocations: $file:$line: page-aligned allocation outside" \
       "runtime/arena — route it through NumaArena/alloc_pages or" \
       "annotate 'arena-exempt: <reason>'" >&2
  echo "    $rest" >&2
  fail=1
  count=$((count + 1))
done < <(grep -rnE "$pattern" src tools --include='*.hpp' --include='*.cpp')

if [ "$fail" -ne 0 ]; then
  echo "check_allocations: $count violation(s)" >&2
  exit 1
fi
echo "check_allocations: OK (no page-aligned allocation sites in src/ or tools/ outside runtime/arena)"
