#!/usr/bin/env bash
# Allocation-site lint: page-aligned allocations carry NUMA placement
# intent, and placement policy lives in ONE place — runtime/arena. This
# grep gate fails CI when a new page-aligned allocation site (raw
# aligned allocator, anonymous mmap, or an AlignedBuffer constructed
# with kPageSize alignment) appears in src/ or tools/ outside the
# arena itself.
#
# A site that is genuinely cold-path (one-time preprocessing, no
# iteration-time placement consequence) may opt out with an
# `arena-exempt: <reason>` comment on the same line or within the two
# lines above it.
#
# Registered as the `check_allocations` ctest (labels: substrate lint).
set -u
cd "$(dirname "$0")/.."

pattern='aligned_alloc\(|posix_memalign\(|memalign\(|MAP_ANONYMOUS|AlignedBuffer<[^>]*>\([^;{}]*kPageSize'

fail=0
count=0
while IFS= read -r hit; do
  file=${hit%%:*}
  rest=${hit#*:}
  line=${rest%%:*}
  case "$file" in
    # The arena IS the allocator; the buffer header is the primitive it
    # (and the heap-fallback path) are built on.
    src/runtime/arena.cpp|src/runtime/arena.hpp|src/common/aligned_buffer.hpp|src/common/aligned_buffer.cpp)
      continue ;;
  esac
  start=$(( line > 2 ? line - 2 : 1 ))
  if sed -n "${start},${line}p" "$file" | grep -q 'arena-exempt:'; then
    continue
  fi
  echo "check_allocations: $file:$line: page-aligned allocation outside" \
       "runtime/arena — route it through NumaArena/alloc_pages or" \
       "annotate 'arena-exempt: <reason>'" >&2
  echo "    $rest" >&2
  fail=1
  count=$((count + 1))
done < <(grep -rnE "$pattern" src tools --include='*.hpp' --include='*.cpp')

if [ "$fail" -ne 0 ]; then
  echo "check_allocations: $count violation(s)" >&2
  exit 1
fi

# ---- marked hot paths must stay allocation-free ----------------------
# Some regions advertise a per-event cost ("one relaxed atomic add",
# "index arithmetic only") and are delimited by <tag>-hot-path-begin/
# -end comment markers; any allocation or locking token appearing
# between a begin/end pair fails the lint.
hot_pattern='[^_[:alnum:]]new[^_[:alnum:]]|malloc\(|calloc\(|resize\(|push_back\(|emplace_back\(|make_unique|make_shared|std::string|lock_guard|unique_lock|\.lock\(\)|mutex'

# check_hot_regions <file> <tag>
# Scans <file> for <tag>-hot-path-begin/-end regions, flags hot_pattern
# tokens inside them, and fails on an unterminated region or a file
# with no markers at all (the regions were silently removed).
check_hot_regions() {
  file=$1
  tag=$2
  region_fail=0
  in_region=0
  region_begin=0
  lineno=0
  begins=0
  while IFS= read -r src_line; do
    lineno=$((lineno + 1))
    case "$src_line" in
      *"${tag}-hot-path-begin"*)
        in_region=1; region_begin=$lineno; begins=$((begins + 1)); continue ;;
      *"${tag}-hot-path-end"*)
        in_region=0; continue ;;
    esac
    if [ "$in_region" -eq 1 ] && printf '%s\n' "$src_line" | grep -qE "$hot_pattern"; then
      echo "check_allocations: $file:$lineno: allocation/locking token" \
           "inside a ${tag} hot-path region (begins at line $region_begin)" >&2
      echo "    $src_line" >&2
      region_fail=1
    fi
  done < "$file"
  if [ "$in_region" -eq 1 ]; then
    echo "check_allocations: $file: unterminated ${tag}-hot-path" \
         "region (begins at line $region_begin)" >&2
    region_fail=1
  fi
  if [ "$begins" -eq 0 ]; then
    echo "check_allocations: $file: no ${tag}-hot-path-begin markers" \
         "found — the hot-path lint regions were removed" >&2
    region_fail=1
  fi
  return $region_fail
}

hot_fail=0
# The record/inc paths in runtime/metrics are called per request on the
# serving fast path; their advertised cost is "one relaxed atomic add".
check_hot_regions src/runtime/metrics.hpp metrics || hot_fail=1
# The router's scatter/merge inner loops (ownership lookup, k-way top-k
# merge, batch scatter-back) run once per routed request on every
# caller thread; they advertise "index arithmetic and comparator calls
# only" — allocation belongs in the plan/cold paths around them.
check_hot_regions src/shard/router.cpp shard || hot_fail=1
if [ "$hot_fail" -ne 0 ]; then
  exit 1
fi

echo "check_allocations: OK (no page-aligned allocation sites in src/ or tools/ outside runtime/arena; metrics and shard-router hot paths allocation-free)"
