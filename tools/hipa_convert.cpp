// hipa-convert: offline sharder from text edge lists to the segmented
// HCSR v3 container (graph/convert.hpp). Runs in bounded memory —
// O(V + largest segment) — so graphs whose CSR exceeds RAM can be
// prepared on the same machine that will stream them.
//
//   hipa-convert <edges.txt> <out.hcsr3> [--segment-bytes N]
//                                        [--chunk-edges N]

#include <cstdio>
#include <exception>
#include <string>

#include "common/cli.hpp"
#include "graph/convert.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <edge-list> <out.hcsr3> [options]\n"
      "\n"
      "Shard a whitespace edge list ('src dst' per line, '#'/'%%'\n"
      "comments) into a segmented HCSR v3 file for out-of-core\n"
      "PageRank. Memory use is bounded by the vertex count plus one\n"
      "segment, never the full edge set.\n"
      "\n"
      "options:\n"
      "  --segment-bytes N   target payload bytes per segment\n"
      "                      (default 67108864 = 64 MiB)\n"
      "  --chunk-edges N     edges parsed per streaming chunk\n"
      "                      (default 1048576)\n"
      "(both options also accept the --flag=N spelling)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using hipa::cli::flag_is;
  using hipa::cli::flag_value;
  using hipa::cli::parse_positive;
  std::string in_path;
  std::string out_path;
  hipa::graph::ConvertOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (flag_is(a, "--help") || flag_is(a, "-h")) {
      usage(argv[0]);
      return 0;
    }
    if (flag_is(a, "--segment-bytes") && i + 1 < argc) {
      opt.target_segment_bytes =
          static_cast<std::size_t>(parse_positive(a, argv[++i]));
    } else if (const char* v = flag_value(a, "--segment-bytes=")) {
      opt.target_segment_bytes =
          static_cast<std::size_t>(parse_positive("--segment-bytes", v));
    } else if (flag_is(a, "--chunk-edges") && i + 1 < argc) {
      opt.chunk_edges = static_cast<std::size_t>(parse_positive(a, argv[++i]));
    } else if (const char* v = flag_value(a, "--chunk-edges=")) {
      opt.chunk_edges =
          static_cast<std::size_t>(parse_positive("--chunk-edges", v));
    } else if (a[0] == '-') {
      std::fprintf(stderr, "hipa-convert: unknown option '%s'\n", a);
      usage(argv[0]);
      return 2;
    } else if (in_path.empty()) {
      in_path = a;
    } else if (out_path.empty()) {
      out_path = a;
    } else {
      std::fprintf(stderr, "hipa-convert: unexpected argument '%s'\n", a);
      usage(argv[0]);
      return 2;
    }
  }
  if (in_path.empty() || out_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const hipa::graph::ConvertStats stats =
        hipa::graph::convert_edge_list_to_segmented(in_path, out_path, opt);
    std::printf(
        "hipa-convert: %s -> %s\n"
        "  vertices:             %u\n"
        "  edges:                %llu\n"
        "  segments:             %u\n"
        "  largest payload:      %zu bytes\n",
        in_path.c_str(), out_path.c_str(), stats.num_vertices,
        static_cast<unsigned long long>(stats.num_edges), stats.num_segments,
        stats.max_segment_payload_bytes);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hipa-convert: %s\n", e.what());
    return 1;
  }
}
