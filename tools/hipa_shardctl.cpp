// hipa-shardctl: spawn and drive a local shard fleet.
//
// Launcher mode (default) forks N shard processes — each one this
// same binary re-exec'd in --serve mode — over even vertex ranges of
// a segmented HCSR v3 graph, connects a ShardRouter to the fleet, and
// drops into a REPL:
//
//   hipa-shardctl --graph=web.hcsr --shards=4
//   hipa-shardctl --demo                  # synthesizes a small graph
//
//   > topk 10            merged global top-k (epoch + flags shown)
//   > point 12345        rank of one vertex (routed to its owner)
//   > status             per-shard health / epoch / range + router stats
//   > kill 2             SIGKILL shard 2 (watch the router fail over)
//   > restart 2          respawn shard 2; the router re-hellos it
//   > quit
//
// Serve mode (`--serve`) is the child side: open the graph, own
// --range, listen on an ephemeral port, and report "port metrics-port"
// over --notify-fd so the parent learns where the shard landed. It is
// also usable standalone to run one shard per host.
//
// Every child binds 127.0.0.1 and dies with the controlling terminal
// (SIGKILL on quit): this tool is a harness for local experiments and
// the failover demo, not a daemon manager.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "shard/router.hpp"
#include "shard/shard_server.hpp"
#include "shard/transport.hpp"

namespace {

using hipa::VertexRange;
using hipa::vid_t;

struct ServeArgs {
  std::string graph;
  std::uint32_t shard_id = 0;
  VertexRange range{};
  int port = 0;           ///< 0 = ephemeral
  int metrics_port = 0;   ///< 0 = ephemeral
  unsigned threads = 2;
  unsigned iters = 20;
  int notify_fd = -1;
};

/// Child side: one shard process. Blocks until a kShutdown frame or a
/// signal ends it.
int run_serve(const ServeArgs& a) {
  hipa::shard::ShardServerOptions opt;
  opt.shard_id = a.shard_id;
  opt.range = a.range;
  opt.graph_path = a.graph;
  opt.compute_threads = a.threads;
  opt.iterations = a.iters;
  opt.metrics_port = a.metrics_port;
  hipa::shard::ShardServer server(opt);
  auto listener = hipa::shard::listen_tcp("127.0.0.1", a.port);
  const int bound = listener->port();
  server.serve(std::move(listener));
  std::fprintf(stderr,
               "shard %u: range [%u, %u) on 127.0.0.1:%d "
               "(metrics :%d), epoch %llu\n",
               a.shard_id, a.range.begin, a.range.end, bound,
               server.metrics_http_port(),
               static_cast<unsigned long long>(server.epoch()));
  if (a.notify_fd >= 0) {
    // The parent blocks on this line to learn the ephemeral ports.
    ::dprintf(a.notify_fd, "%d %d\n", bound, server.metrics_http_port());
    ::close(a.notify_fd);
  }
  server.wait();
  return 0;
}

// ---------------------------------------------------------------------------
// Launcher: fork/exec children, drive a router.

struct Child {
  pid_t pid = -1;
  int port = -1;
  int metrics_port = -1;
  VertexRange range{};
};

/// fork + exec ourselves in --serve mode; blocks until the child
/// reports its ports. `self` is argv[0] of the launcher.
Child spawn_shard(const std::string& self, const std::string& graph,
                  std::size_t shard, VertexRange range, unsigned threads,
                  unsigned iters) {
  int notify[2];
  HIPA_CHECK(::pipe(notify) == 0, "pipe failed: " << std::strerror(errno));
  const pid_t pid = ::fork();
  HIPA_CHECK(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child: exec immediately (the parent is multithreaded once the
    // router exists, so nothing but exec is safe after fork).
    ::close(notify[0]);
    char shard_flag[48], range_flag[48], fd_flag[32], threads_flag[32],
        iters_flag[32];
    std::snprintf(shard_flag, sizeof shard_flag, "--shard-id=%zu", shard);
    std::snprintf(range_flag, sizeof range_flag, "--range=%u:%u",
                  range.begin, range.end);
    std::snprintf(fd_flag, sizeof fd_flag, "--notify-fd=%d", notify[1]);
    std::snprintf(threads_flag, sizeof threads_flag, "--threads=%u",
                  threads);
    std::snprintf(iters_flag, sizeof iters_flag, "--iters=%u", iters);
    const std::string graph_flag = "--graph=" + graph;
    const char* argv[] = {self.c_str(),       "--serve",
                          graph_flag.c_str(), shard_flag,
                          range_flag,         fd_flag,
                          threads_flag,       iters_flag,
                          nullptr};
    ::execv(self.c_str(), const_cast<char* const*>(argv));
    std::perror("hipa-shardctl: execv");
    ::_exit(127);
  }
  ::close(notify[1]);
  std::string line;
  char c;
  while (::read(notify[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  ::close(notify[0]);
  Child child;
  child.pid = pid;
  child.range = range;
  if (std::sscanf(line.c_str(), "%d %d", &child.port,
                  &child.metrics_port) != 2) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    HIPA_CHECK(false, "shard " << shard << " failed to start (no port "
                               << "report; see its stderr above)");
  }
  return child;
}

void reap(Child& c) {
  if (c.pid <= 0) return;
  ::kill(c.pid, SIGKILL);
  ::waitpid(c.pid, nullptr, 0);
  c.pid = -1;
}

const char* health_name(hipa::shard::ShardHealth h) {
  switch (h) {
    case hipa::shard::ShardHealth::kAlive: return "alive";
    case hipa::shard::ShardHealth::kDegraded: return "degraded";
    case hipa::shard::ShardHealth::kDead: return "dead";
  }
  return "?";
}

void print_result(const hipa::shard::RouterResult& r) {
  if (!r.ok) {
    std::printf("  error: %s\n", r.error.c_str());
    return;
  }
  std::printf("  epoch %llu%s%s\n",
              static_cast<unsigned long long>(r.result.epoch),
              r.mixed_epochs ? "  [mixed epochs]" : "",
              r.stale ? "  [stale partial]" : "");
  for (const float rank : r.result.ranks) {
    std::printf("  rank %.9g\n", static_cast<double>(rank));
  }
  for (std::size_t i = 0; i < r.result.topk.size(); ++i) {
    std::printf("  #%-3zu v%-10u %.9g\n", i + 1, r.result.topk[i].vertex,
                static_cast<double>(r.result.topk[i].rank));
  }
}

int run_launcher(const std::string& self, const std::string& graph,
                 std::size_t shards, unsigned threads, unsigned iters) {
  const vid_t num_vertices =
      hipa::graph::SegmentedCsr::open(graph).num_vertices();
  HIPA_CHECK(shards >= 1 && shards <= num_vertices,
             "cannot split " << num_vertices << " vertices into " << shards
                             << " shards");

  std::fprintf(stderr, "spawning %zu shards over %u vertices of %s\n",
               shards, num_vertices, graph.c_str());
  std::vector<Child> children;
  std::vector<hipa::shard::ShardTarget> targets;
  for (std::size_t s = 0; s < shards; ++s) {
    const vid_t begin =
        static_cast<vid_t>(num_vertices * s / shards);
    const vid_t end =
        static_cast<vid_t>(num_vertices * (s + 1) / shards);
    children.push_back(
        spawn_shard(self, graph, s, VertexRange{begin, end}, threads,
                    iters));
    targets.push_back(hipa::shard::tcp_target(
        "127.0.0.1", children.back().port, children.back().metrics_port));
  }

  hipa::shard::ShardRouter router(std::move(targets));
  std::fprintf(stderr, "router up: %zu shards, %u vertices. "
                       "try: topk 10 | point 0 | status | kill 0 | "
                       "restart 0 | quit\n",
               router.num_shards(), router.num_vertices());

  std::string line;
  while (std::fputs("> ", stdout), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "topk") {
      unsigned k = 10;
      in >> k;
      print_result(router.execute(hipa::serve::Query::top_k(k)));
    } else if (cmd == "point") {
      vid_t v = 0;
      if (!(in >> v) || v >= router.num_vertices()) {
        std::printf("  usage: point <vertex < %u>\n", router.num_vertices());
        continue;
      }
      print_result(router.execute(hipa::serve::Query::point(v)));
    } else if (cmd == "status") {
      for (std::size_t s = 0; s < router.num_shards(); ++s) {
        const VertexRange r = router.shard_range(s);
        std::printf("  shard %zu  [%u, %u)  %s  epoch %llu  pid %d  "
                    ":%d (metrics :%d)\n",
                    s, r.begin, r.end, health_name(router.health(s)),
                    static_cast<unsigned long long>(router.shard_epoch(s)),
                    children[s].pid, children[s].port,
                    children[s].metrics_port);
      }
      const hipa::shard::RouterStats st = router.stats();
      std::printf("  router: %llu requests, %llu envelopes, "
                  "%llu reconnects, %llu failovers, %llu stale merges, "
                  "%llu mixed-epoch merges, %llu timeouts\n",
                  static_cast<unsigned long long>(st.requests),
                  static_cast<unsigned long long>(st.envelopes_sent),
                  static_cast<unsigned long long>(st.reconnects),
                  static_cast<unsigned long long>(st.failovers),
                  static_cast<unsigned long long>(st.stale_merges),
                  static_cast<unsigned long long>(st.mixed_epoch_merges),
                  static_cast<unsigned long long>(st.timeouts));
    } else if (cmd == "kill" || cmd == "restart") {
      std::size_t s = 0;
      if (!(in >> s) || s >= children.size()) {
        std::printf("  usage: %s <shard < %zu>\n", cmd.c_str(),
                    children.size());
        continue;
      }
      reap(children[s]);
      std::printf("  shard %zu killed\n", s);
      if (cmd == "restart") {
        children[s] = spawn_shard(self, graph, s, children[s].range,
                                  threads, iters);
        router.update_target(
            s, hipa::shard::tcp_target("127.0.0.1", children[s].port,
                                       children[s].metrics_port));
        std::printf("  shard %zu respawned on :%d\n", s, children[s].port);
      }
    } else {
      std::printf("  commands: topk [k] | point <v> | status | kill <i> | "
                  "restart <i> | quit\n");
    }
  }

  router.stop();
  for (Child& c : children) reap(c);
  return 0;
}

void usage() {
  std::fputs(
      "usage: hipa-shardctl (--graph=FILE.hcsr | --demo) [--shards=N]\n"
      "                     [--threads=N] [--iters=N]\n"
      "       hipa-shardctl --serve --graph=FILE --shard-id=I "
      "--range=A:B\n"
      "                     [--port=P] [--metrics-port=P] [--threads=N]\n"
      "                     [--iters=N] [--notify-fd=FD]\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  bool demo = false;
  ServeArgs sa;
  std::size_t shards = 2;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (hipa::cli::flag_is(arg, "--serve")) {
      serve = true;
    } else if (hipa::cli::flag_is(arg, "--demo")) {
      demo = true;
    } else if (const char* v = hipa::cli::flag_value(arg, "--graph=")) {
      sa.graph = v;
    } else if (const char* v2 = hipa::cli::flag_value(arg, "--shard-id=")) {
      sa.shard_id =
          static_cast<std::uint32_t>(hipa::cli::parse_u64("--shard-id", v2));
    } else if (const char* v3 = hipa::cli::flag_value(arg, "--range=")) {
      unsigned a = 0, b = 0;
      if (std::sscanf(v3, "%u:%u", &a, &b) != 2 || b <= a) {
        usage();
        return 2;
      }
      sa.range = VertexRange{a, b};
    } else if (const char* v4 = hipa::cli::flag_value(arg, "--port=")) {
      sa.port = std::atoi(v4);
    } else if (const char* v5 =
                   hipa::cli::flag_value(arg, "--metrics-port=")) {
      sa.metrics_port = std::atoi(v5);
    } else if (const char* v6 = hipa::cli::flag_value(arg, "--threads=")) {
      sa.threads =
          static_cast<unsigned>(hipa::cli::parse_positive("--threads", v6));
    } else if (const char* v7 = hipa::cli::flag_value(arg, "--iters=")) {
      sa.iters =
          static_cast<unsigned>(hipa::cli::parse_positive("--iters", v7));
    } else if (const char* v8 = hipa::cli::flag_value(arg, "--notify-fd=")) {
      sa.notify_fd = std::atoi(v8);
    } else if (const char* v9 = hipa::cli::flag_value(arg, "--shards=")) {
      shards = hipa::cli::parse_positive("--shards", v9);
    } else {
      usage();
      return 2;
    }
  }

  try {
    if (serve) {
      if (sa.graph.empty() || sa.range.size() == 0) {
        usage();
        return 2;
      }
      return run_serve(sa);
    }
    if (demo && sa.graph.empty()) {
      // Synthesize a small skewed graph so the quickstart needs no
      // dataset: 50k vertices, 400k edges, segmented at 256 KiB.
      hipa::graph::ZipfParams zp;
      zp.num_vertices = 50000;
      zp.num_edges = 400000;
      zp.seed = 42;
      const hipa::graph::Graph g = hipa::graph::build_graph(
          zp.num_vertices, hipa::graph::generate_zipf(zp));
      sa.graph = "/tmp/hipa-shardctl-demo.hcsr";
      hipa::graph::save_segmented_csr(sa.graph, g, 256u << 10);
      std::fprintf(stderr, "demo graph: %s (%u vertices)\n",
                   sa.graph.c_str(), zp.num_vertices);
    }
    if (sa.graph.empty()) {
      usage();
      return 2;
    }
    return run_launcher(argv[0], sa.graph, shards, sa.threads, sa.iters);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hipa-shardctl: %s\n", e.what());
    return 1;
  }
}
