// hipa-top: live operator view of a running HiPa service.
//
// Polls one or more RankService metrics endpoints (serve/
// metrics_export's /metrics.json) — or reads a JSON snapshot from a
// file — and renders a refreshing terminal dashboard. With a single
// endpoint: QPS, per-class latency quantiles, refresh activity,
// snapshot-store and NUMA/arena health, folded engine-run totals.
// With several endpoints (a shard fleet), one row per shard: uptime,
// QPS, publish epoch, answer lag, queue depth, worst query p99 —
// plus a fleet totals line flagging epoch skew across shards.
//
//   hipa-top --endpoint=127.0.0.1:9464            # poll a live service
//   hipa-top --endpoint=H:P1 --endpoint=H:P2      # fleet view, row/shard
//   hipa-top --file=snap.json --once              # render one frame
//   hipa-top --demo                               # built-in sample frame
//
// QPS and refresh rates are derived client-side from counter deltas
// between consecutive frames; the first frame shows lifetime averages.
// The scrape path is shard/poll_client's header-only HTTP client —
// the same one the ShardRouter's health poller uses — so the tool
// keeps its hipa_common-only link line.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/minijson.hpp"
#include "shard/poll_client.hpp"

namespace {

using hipa::json::Value;

// ---------------------------------------------------------------------------
// Snapshot model: flat lookup maps over the exporter's JSON.

struct HistRow {
  std::string label_value;
  double count = 0, sum = 0, p50 = 0, p95 = 0, p99 = 0, p999 = 0, max = 0;
};

struct Frame {
  double uptime = 0;
  std::map<std::string, double> scalars;  ///< "name" or "name/label"
  std::map<std::string, std::vector<HistRow>> histograms;
  double polled_at = 0;  ///< client-side monotonic seconds

  [[nodiscard]] double scalar(const std::string& key) const {
    const auto it = scalars.find(key);
    return it == scalars.end() ? 0.0 : it->second;
  }
};

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double num_field(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return v != nullptr && v->is(Value::Type::kNumber) ? v->number : 0.0;
}

std::string str_field(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return v != nullptr && v->is(Value::Type::kString) ? v->str : std::string();
}

std::optional<Frame> parse_frame(const std::string& json_text) {
  hipa::json::Parser parser(json_text);
  hipa::json::ValuePtr root;
  try {
    root = parser.parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hipa-top: bad snapshot JSON: %s\n", e.what());
    return std::nullopt;
  }
  if (root == nullptr || !root->is(Value::Type::kObject)) return std::nullopt;
  Frame f;
  f.polled_at = monotonic_seconds();
  f.uptime = num_field(*root, "uptime_seconds");
  for (const char* section : {"counters", "gauges"}) {
    const Value* arr = root->find(section);
    if (arr == nullptr || !arr->is(Value::Type::kArray)) continue;
    for (const auto& entry : arr->array) {
      if (!entry->is(Value::Type::kObject)) continue;
      std::string key = str_field(*entry, "name");
      const std::string label = str_field(*entry, "label_value");
      if (!label.empty()) key += "/" + label;
      f.scalars[key] = num_field(*entry, "value");
    }
  }
  if (const Value* arr = root->find("histograms");
      arr != nullptr && arr->is(Value::Type::kArray)) {
    for (const auto& entry : arr->array) {
      if (!entry->is(Value::Type::kObject)) continue;
      HistRow row;
      row.label_value = str_field(*entry, "label_value");
      row.count = num_field(*entry, "count");
      row.sum = num_field(*entry, "sum");
      row.p50 = num_field(*entry, "p50");
      row.p95 = num_field(*entry, "p95");
      row.p99 = num_field(*entry, "p99");
      row.p999 = num_field(*entry, "p999");
      row.max = num_field(*entry, "max");
      f.histograms[str_field(*entry, "name")].push_back(std::move(row));
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// Snapshot sources.

/// One fleet member to scrape.
struct Endpoint {
  std::string host;
  int port = -1;
  std::string label;  ///< "host:port" as given on the command line
};

std::optional<std::string> scrape(const Endpoint& ep) {
  const std::string ip = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  return hipa::shard::http_get(ip, ep.port, "/metrics.json");
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A canned frame so the renderer is exercisable (tests, demos)
/// without a live service or a snapshot file.
constexpr const char* kDemoJson = R"({"uptime_seconds":125.4,
"counters":[
 {"name":"hipa_queries_total","label_key":"class","label_value":"point","value":1510230},
 {"name":"hipa_queries_total","label_key":"class","label_value":"batch","value":92140},
 {"name":"hipa_queries_total","label_key":"class","label_value":"topk","value":48770},
 {"name":"hipa_batches_total","label_key":"","label_value":"","value":205580},
 {"name":"hipa_snapshot_pins_total","label_key":"","label_value":"","value":205802},
 {"name":"hipa_snapshot_publishes_total","label_key":"","label_value":"","value":218},
 {"name":"hipa_snapshot_reclaim_waits_total","label_key":"","label_value":"","value":3},
 {"name":"hipa_refreshes_total","label_key":"kind","label_value":"delta","value":201},
 {"name":"hipa_refreshes_total","label_key":"kind","label_value":"full","value":17},
 {"name":"hipa_updates_applied_total","label_key":"","label_value":"","value":18433},
 {"name":"hipa_engine_runs_total","label_key":"","label_value":"","value":17},
 {"name":"hipa_engine_iterations_total","label_key":"","label_value":"","value":340},
 {"name":"hipa_engine_io_wait_ns_total","label_key":"","label_value":"","value":122000000}],
"gauges":[
 {"name":"hipa_publish_epoch","label_key":"","label_value":"","value":218},
 {"name":"hipa_answer_epoch_lag","label_key":"","label_value":"","value":0},
 {"name":"hipa_update_queue_lag","label_key":"","label_value":"","value":12},
 {"name":"hipa_worker_queue_depth","label_key":"","label_value":"","value":1},
 {"name":"hipa_store_arena_used_bytes","label_key":"","label_value":"","value":6291456}],
"histograms":[
 {"name":"hipa_query_latency_seconds","label_key":"class","label_value":"point","count":1510230,"sum":19.4,"p50":1.1e-05,"p95":2.9e-05,"p99":6.2e-05,"p999":0.00021,"max":0.0014,"mean":1.28e-05},
 {"name":"hipa_query_latency_seconds","label_key":"class","label_value":"batch","count":92140,"sum":6.1,"p50":5.5e-05,"p95":0.00013,"p99":0.00027,"p999":0.0009,"max":0.0041,"mean":6.6e-05},
 {"name":"hipa_query_latency_seconds","label_key":"class","label_value":"topk","count":48770,"sum":1.2,"p50":1.9e-05,"p95":5.1e-05,"p99":9.8e-05,"p999":0.00033,"max":0.0019,"mean":2.4e-05},
 {"name":"hipa_refresh_seconds","label_key":"kind","label_value":"delta","count":201,"sum":0.71,"p50":0.003,"p95":0.0061,"p99":0.009,"p999":0.012,"max":0.012,"mean":0.0035},
 {"name":"hipa_refresh_seconds","label_key":"kind","label_value":"full","count":17,"sum":1.9,"p50":0.1,"p95":0.16,"p99":0.18,"p999":0.18,"max":0.18,"mean":0.11},
 {"name":"hipa_topk_build_seconds","label_key":"","label_value":"","count":218,"sum":0.09,"p50":0.0004,"p95":0.0006,"p99":0.0008,"p999":0.001,"max":0.0011,"mean":0.00041}]})";

// ---------------------------------------------------------------------------
// Rendering.

std::string fmt_si(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::string fmt_latency(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  }
  return buf;
}

/// Rate of a counter between frames; falls back to the lifetime
/// average when there is no previous frame.
double rate(const Frame& now, const Frame* prev, const std::string& key) {
  if (prev != nullptr && now.polled_at > prev->polled_at) {
    return (now.scalar(key) - prev->scalar(key)) /
           (now.polled_at - prev->polled_at);
  }
  return now.uptime > 0 ? now.scalar(key) / now.uptime : 0.0;
}

double total_qps(const Frame& f, const Frame* prev) {
  return rate(f, prev, "hipa_queries_total/point") +
         rate(f, prev, "hipa_queries_total/batch") +
         rate(f, prev, "hipa_queries_total/topk");
}

void render(const Frame& f, const Frame* prev, bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);

  std::printf("hipa-top — uptime %.0fs   QPS %s   epoch %.0f (lag %.0f)\n",
              f.uptime, fmt_si(total_qps(f, prev)).c_str(),
              f.scalar("hipa_publish_epoch"),
              f.scalar("hipa_answer_epoch_lag"));
  std::printf("%s\n",
              std::string(66, '-').c_str());

  std::printf("%-8s %10s %9s %9s %9s %9s %9s\n", "queries", "count", "p50",
              "p95", "p99", "p999", "max");
  const auto lat = f.histograms.find("hipa_query_latency_seconds");
  if (lat != f.histograms.end()) {
    for (const HistRow& row : lat->second) {
      std::printf("%-8s %10s %9s %9s %9s %9s %9s\n", row.label_value.c_str(),
                  fmt_si(row.count).c_str(), fmt_latency(row.p50).c_str(),
                  fmt_latency(row.p95).c_str(), fmt_latency(row.p99).c_str(),
                  fmt_latency(row.p999).c_str(), fmt_latency(row.max).c_str());
    }
  }

  std::printf("\nrefresh: %.0f delta + %.0f full (%.2f/s), %s updates, "
              "queue lag %.0f\n",
              f.scalar("hipa_refreshes_total/delta"),
              f.scalar("hipa_refreshes_total/full"),
              rate(f, prev, "hipa_refreshes_total/delta") +
                  rate(f, prev, "hipa_refreshes_total/full"),
              fmt_si(f.scalar("hipa_updates_applied_total")).c_str(),
              f.scalar("hipa_update_queue_lag"));
  const auto refresh = f.histograms.find("hipa_refresh_seconds");
  if (refresh != f.histograms.end()) {
    for (const HistRow& row : refresh->second) {
      std::printf("  %-6s p50 %s  p99 %s  max %s\n", row.label_value.c_str(),
                  fmt_latency(row.p50).c_str(), fmt_latency(row.p99).c_str(),
                  fmt_latency(row.max).c_str());
    }
  }

  std::printf("\nstore: %s pins, %.0f publishes, %.0f reclaim waits, "
              "worker queue depth %.0f\n",
              fmt_si(f.scalar("hipa_snapshot_pins_total")).c_str(),
              f.scalar("hipa_snapshot_publishes_total"),
              f.scalar("hipa_snapshot_reclaim_waits_total"),
              f.scalar("hipa_worker_queue_depth"));
  std::printf("arena: %s B store",
              fmt_si(f.scalar("hipa_store_arena_used_bytes")).c_str());
  if (f.scalars.count("hipa_engine_arena_used_bytes") != 0) {
    std::printf(" + %s B engine",
                fmt_si(f.scalar("hipa_engine_arena_used_bytes")).c_str());
  }
  std::printf("\nengine: %.0f runs, %.0f iterations, io_wait %s\n",
              f.scalar("hipa_engine_runs_total"),
              f.scalar("hipa_engine_iterations_total"),
              fmt_latency(f.scalar("hipa_engine_io_wait_ns_total") / 1e9)
                  .c_str());
  std::fflush(stdout);
}

/// Worst query-latency p99 across classes (the fleet row's single
/// latency column).
double worst_query_p99(const Frame& f) {
  double worst = 0.0;
  const auto it = f.histograms.find("hipa_query_latency_seconds");
  if (it == f.histograms.end()) return worst;
  for (const HistRow& row : it->second) worst = std::max(worst, row.p99);
  return worst;
}

/// Fleet view: one row per endpoint. Unreachable shards render as a
/// DOWN row (the dashboard keeps running; a restarting shard comes
/// back on the next poll).
void render_fleet(const std::vector<Endpoint>& endpoints,
                  const std::vector<std::optional<Frame>>& frames,
                  const std::vector<std::optional<Frame>>& prevs,
                  bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);

  std::size_t up = 0;
  double fleet_qps = 0.0;
  double epoch_min = 0.0, epoch_max = 0.0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (!frames[i]) continue;
    const Frame* prev = prevs[i] ? &*prevs[i] : nullptr;
    fleet_qps += total_qps(*frames[i], prev);
    const double epoch = frames[i]->scalar("hipa_publish_epoch");
    if (up == 0) {
      epoch_min = epoch_max = epoch;
    } else {
      epoch_min = std::min(epoch_min, epoch);
      epoch_max = std::max(epoch_max, epoch);
    }
    ++up;
  }
  std::printf("hipa-top — %zu/%zu shards up   fleet QPS %s   epochs %.0f",
              up, frames.size(), fmt_si(fleet_qps).c_str(), epoch_min);
  if (epoch_max != epoch_min) {
    std::printf("..%.0f  [SKEW]", epoch_max);
  }
  std::printf("\n%s\n", std::string(78, '-').c_str());

  std::printf("%-22s %7s %9s %8s %5s %6s %9s %9s\n", "shard", "up", "QPS",
              "epoch", "lag", "queue", "query p99", "refresh");
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (!frames[i]) {
      std::printf("%-22s %7s\n", endpoints[i].label.c_str(), "DOWN");
      continue;
    }
    const Frame& f = *frames[i];
    const Frame* prev = prevs[i] ? &*prevs[i] : nullptr;
    double refresh_p99 = 0.0;
    const auto it = f.histograms.find("hipa_refresh_seconds");
    if (it != f.histograms.end()) {
      for (const HistRow& row : it->second) {
        if (row.label_value == "full") refresh_p99 = row.p99;
      }
    }
    std::printf("%-22s %6.0fs %9s %8.0f %5.0f %6.0f %9s %9s\n",
                endpoints[i].label.c_str(), f.uptime,
                fmt_si(total_qps(f, prev)).c_str(),
                f.scalar("hipa_publish_epoch"),
                f.scalar("hipa_answer_epoch_lag"),
                f.scalar("hipa_worker_queue_depth"),
                fmt_latency(worst_query_p99(f)).c_str(),
                fmt_latency(refresh_p99).c_str());
  }
  std::fflush(stdout);
}

void usage() {
  std::fputs(
      "usage: hipa-top (--endpoint=HOST:PORT [--endpoint=...] |\n"
      "                 --file=SNAP.json | --demo)\n"
      "                [--interval=SECONDS] [--frames=N] [--once]\n"
      "                [--no-clear]\n"
      "  several --endpoint flags switch to the fleet view: one row\n"
      "  per shard plus fleet totals and epoch-skew detection.\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Endpoint> endpoints;
  std::string file;
  bool demo = false;
  bool once = false;
  bool clear_screen = true;
  double interval = 2.0;
  std::uint64_t frames = 0;  // 0 = until interrupted

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = hipa::cli::flag_value(arg, "--endpoint=")) {
      const std::string ep(v);
      const std::size_t colon = ep.rfind(':');
      if (colon == std::string::npos) {
        usage();
        return 2;
      }
      Endpoint e;
      e.host = ep.substr(0, colon);
      e.port = std::atoi(ep.c_str() + colon + 1);
      e.label = ep;
      if (e.host.empty() || e.port <= 0) {
        usage();
        return 2;
      }
      endpoints.push_back(std::move(e));
    } else if (const char* v2 = hipa::cli::flag_value(arg, "--file=")) {
      file = v2;
    } else if (const char* v3 = hipa::cli::flag_value(arg, "--interval=")) {
      interval = std::atof(v3);
    } else if (const char* v4 = hipa::cli::flag_value(arg, "--frames=")) {
      frames = hipa::cli::parse_u64("--frames", v4);
    } else if (hipa::cli::flag_is(arg, "--demo")) {
      demo = true;
    } else if (hipa::cli::flag_is(arg, "--once")) {
      once = true;
    } else if (hipa::cli::flag_is(arg, "--no-clear")) {
      clear_screen = false;
    } else {
      usage();
      return 2;
    }
  }
  if (static_cast<int>(demo) + static_cast<int>(!file.empty()) +
          static_cast<int>(!endpoints.empty()) !=
      1) {
    usage();
    return 2;
  }
  if (once) frames = 1;
  if (demo) {
    frames = 1;
    clear_screen = false;
  }

  // Fleet mode: a row per shard, DOWN rows instead of hard exits.
  if (endpoints.size() > 1) {
    std::vector<std::optional<Frame>> prev(endpoints.size());
    std::uint64_t rendered = 0;
    while (frames == 0 || rendered < frames) {
      std::vector<std::optional<Frame>> cur(endpoints.size());
      for (std::size_t i = 0; i < endpoints.size(); ++i) {
        if (const std::optional<std::string> body = scrape(endpoints[i])) {
          cur[i] = parse_frame(*body);
        }
      }
      render_fleet(endpoints, cur, prev, clear_screen && rendered > 0);
      prev = std::move(cur);
      ++rendered;
      if (frames != 0 && rendered >= frames) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
    return 0;
  }

  std::optional<Frame> prev;
  std::uint64_t rendered = 0;
  while (frames == 0 || rendered < frames) {
    std::optional<std::string> body;
    if (demo) {
      body = std::string(kDemoJson);
    } else if (!file.empty()) {
      body = read_file(file);
      if (!body) {
        std::fprintf(stderr, "hipa-top: cannot read %s\n", file.c_str());
        return 1;
      }
    } else {
      body = scrape(endpoints[0]);
      if (!body) {
        std::fprintf(stderr, "hipa-top: cannot scrape %s\n",
                     endpoints[0].label.c_str());
        return 1;
      }
    }
    const std::optional<Frame> frame = parse_frame(*body);
    if (!frame) return 1;
    render(*frame, prev ? &*prev : nullptr, clear_screen && rendered > 0);
    prev = frame;
    ++rendered;
    if (frames != 0 && rendered >= frames) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}
