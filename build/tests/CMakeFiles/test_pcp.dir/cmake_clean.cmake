file(REMOVE_RECURSE
  "CMakeFiles/test_pcp.dir/test_pcp.cpp.o"
  "CMakeFiles/test_pcp.dir/test_pcp.cpp.o.d"
  "test_pcp"
  "test_pcp.pdb"
  "test_pcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
