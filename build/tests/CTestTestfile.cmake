# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_pcp[1]_include.cmake")
include("/root/repo/build/tests/test_sim_cache[1]_include.cmake")
include("/root/repo/build/tests/test_sim_machine[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
