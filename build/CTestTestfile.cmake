# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/common")
subdirs("src/graph")
subdirs("src/sim")
subdirs("src/runtime")
subdirs("src/partition")
subdirs("src/pcp")
subdirs("src/engines")
subdirs("src/algos")
subdirs("tests")
subdirs("bench")
subdirs("examples")
