file(REMOVE_RECURSE
  "CMakeFiles/community_structure.dir/community_structure.cpp.o"
  "CMakeFiles/community_structure.dir/community_structure.cpp.o.d"
  "community_structure"
  "community_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
