# Empty dependencies file for community_structure.
# This may be replaced when dependencies are built.
