# Empty dependencies file for reachability_bfs.
# This may be replaced when dependencies are built.
