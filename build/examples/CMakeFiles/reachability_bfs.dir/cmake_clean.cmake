file(REMOVE_RECURSE
  "CMakeFiles/reachability_bfs.dir/reachability_bfs.cpp.o"
  "CMakeFiles/reachability_bfs.dir/reachability_bfs.cpp.o.d"
  "reachability_bfs"
  "reachability_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
