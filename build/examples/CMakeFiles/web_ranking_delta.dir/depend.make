# Empty dependencies file for web_ranking_delta.
# This may be replaced when dependencies are built.
