file(REMOVE_RECURSE
  "CMakeFiles/web_ranking_delta.dir/web_ranking_delta.cpp.o"
  "CMakeFiles/web_ranking_delta.dir/web_ranking_delta.cpp.o.d"
  "web_ranking_delta"
  "web_ranking_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_ranking_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
