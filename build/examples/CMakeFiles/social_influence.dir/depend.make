# Empty dependencies file for social_influence.
# This may be replaced when dependencies are built.
