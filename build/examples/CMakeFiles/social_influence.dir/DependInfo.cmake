
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/social_influence.cpp" "examples/CMakeFiles/social_influence.dir/social_influence.cpp.o" "gcc" "examples/CMakeFiles/social_influence.dir/social_influence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/hipa_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/pcp/CMakeFiles/hipa_pcp.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/hipa_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hipa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hipa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
