# Empty dependencies file for bench_single_node.
# This may be replaced when dependencies are built.
