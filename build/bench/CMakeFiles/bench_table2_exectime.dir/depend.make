# Empty dependencies file for bench_table2_exectime.
# This may be replaced when dependencies are built.
