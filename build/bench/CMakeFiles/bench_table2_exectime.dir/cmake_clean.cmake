file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_exectime.dir/bench_table2_exectime.cpp.o"
  "CMakeFiles/bench_table2_exectime.dir/bench_table2_exectime.cpp.o.d"
  "bench_table2_exectime"
  "bench_table2_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
