# Empty compiler generated dependencies file for bench_table3_microarch.
# This may be replaced when dependencies are built.
