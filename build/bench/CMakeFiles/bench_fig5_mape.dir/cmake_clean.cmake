file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mape.dir/bench_fig5_mape.cpp.o"
  "CMakeFiles/bench_fig5_mape.dir/bench_fig5_mape.cpp.o.d"
  "bench_fig5_mape"
  "bench_fig5_mape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
