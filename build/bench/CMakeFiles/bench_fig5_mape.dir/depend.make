# Empty dependencies file for bench_fig5_mape.
# This may be replaced when dependencies are built.
