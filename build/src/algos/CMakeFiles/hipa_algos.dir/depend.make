# Empty dependencies file for hipa_algos.
# This may be replaced when dependencies are built.
