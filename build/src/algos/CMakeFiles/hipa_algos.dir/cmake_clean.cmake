file(REMOVE_RECURSE
  "CMakeFiles/hipa_algos.dir/bfs.cpp.o"
  "CMakeFiles/hipa_algos.dir/bfs.cpp.o.d"
  "CMakeFiles/hipa_algos.dir/pagerank.cpp.o"
  "CMakeFiles/hipa_algos.dir/pagerank.cpp.o.d"
  "CMakeFiles/hipa_algos.dir/pagerank_delta.cpp.o"
  "CMakeFiles/hipa_algos.dir/pagerank_delta.cpp.o.d"
  "CMakeFiles/hipa_algos.dir/spmv.cpp.o"
  "CMakeFiles/hipa_algos.dir/spmv.cpp.o.d"
  "CMakeFiles/hipa_algos.dir/wcc.cpp.o"
  "CMakeFiles/hipa_algos.dir/wcc.cpp.o.d"
  "libhipa_algos.a"
  "libhipa_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
