file(REMOVE_RECURSE
  "libhipa_algos.a"
)
