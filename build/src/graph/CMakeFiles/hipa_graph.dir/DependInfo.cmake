
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/hipa_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/hipa_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/graph/CMakeFiles/hipa_graph.dir/datasets.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/hipa_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/hipa_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/graph/CMakeFiles/hipa_graph.dir/reorder.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/reorder.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/hipa_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/hipa_graph.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
