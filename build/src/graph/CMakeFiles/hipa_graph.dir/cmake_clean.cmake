file(REMOVE_RECURSE
  "CMakeFiles/hipa_graph.dir/builder.cpp.o"
  "CMakeFiles/hipa_graph.dir/builder.cpp.o.d"
  "CMakeFiles/hipa_graph.dir/csr.cpp.o"
  "CMakeFiles/hipa_graph.dir/csr.cpp.o.d"
  "CMakeFiles/hipa_graph.dir/datasets.cpp.o"
  "CMakeFiles/hipa_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/hipa_graph.dir/generators.cpp.o"
  "CMakeFiles/hipa_graph.dir/generators.cpp.o.d"
  "CMakeFiles/hipa_graph.dir/io.cpp.o"
  "CMakeFiles/hipa_graph.dir/io.cpp.o.d"
  "CMakeFiles/hipa_graph.dir/reorder.cpp.o"
  "CMakeFiles/hipa_graph.dir/reorder.cpp.o.d"
  "CMakeFiles/hipa_graph.dir/stats.cpp.o"
  "CMakeFiles/hipa_graph.dir/stats.cpp.o.d"
  "libhipa_graph.a"
  "libhipa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
