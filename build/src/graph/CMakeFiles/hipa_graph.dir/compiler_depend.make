# Empty compiler generated dependencies file for hipa_graph.
# This may be replaced when dependencies are built.
