file(REMOVE_RECURSE
  "libhipa_graph.a"
)
