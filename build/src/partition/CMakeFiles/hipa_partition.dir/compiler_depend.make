# Empty compiler generated dependencies file for hipa_partition.
# This may be replaced when dependencies are built.
