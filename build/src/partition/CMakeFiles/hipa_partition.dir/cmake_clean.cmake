file(REMOVE_RECURSE
  "CMakeFiles/hipa_partition.dir/cache_partitions.cpp.o"
  "CMakeFiles/hipa_partition.dir/cache_partitions.cpp.o.d"
  "CMakeFiles/hipa_partition.dir/edge_balanced.cpp.o"
  "CMakeFiles/hipa_partition.dir/edge_balanced.cpp.o.d"
  "CMakeFiles/hipa_partition.dir/plan.cpp.o"
  "CMakeFiles/hipa_partition.dir/plan.cpp.o.d"
  "libhipa_partition.a"
  "libhipa_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
