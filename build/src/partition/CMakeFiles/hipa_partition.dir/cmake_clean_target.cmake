file(REMOVE_RECURSE
  "libhipa_partition.a"
)
