
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/cache_partitions.cpp" "src/partition/CMakeFiles/hipa_partition.dir/cache_partitions.cpp.o" "gcc" "src/partition/CMakeFiles/hipa_partition.dir/cache_partitions.cpp.o.d"
  "/root/repo/src/partition/edge_balanced.cpp" "src/partition/CMakeFiles/hipa_partition.dir/edge_balanced.cpp.o" "gcc" "src/partition/CMakeFiles/hipa_partition.dir/edge_balanced.cpp.o.d"
  "/root/repo/src/partition/plan.cpp" "src/partition/CMakeFiles/hipa_partition.dir/plan.cpp.o" "gcc" "src/partition/CMakeFiles/hipa_partition.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hipa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hipa_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
