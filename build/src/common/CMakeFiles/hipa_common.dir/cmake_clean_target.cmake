file(REMOVE_RECURSE
  "libhipa_common.a"
)
