file(REMOVE_RECURSE
  "CMakeFiles/hipa_common.dir/aligned_buffer.cpp.o"
  "CMakeFiles/hipa_common.dir/aligned_buffer.cpp.o.d"
  "CMakeFiles/hipa_common.dir/logging.cpp.o"
  "CMakeFiles/hipa_common.dir/logging.cpp.o.d"
  "libhipa_common.a"
  "libhipa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
