# Empty compiler generated dependencies file for hipa_common.
# This may be replaced when dependencies are built.
