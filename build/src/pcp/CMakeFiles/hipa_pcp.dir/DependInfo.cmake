
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcp/bins.cpp" "src/pcp/CMakeFiles/hipa_pcp.dir/bins.cpp.o" "gcc" "src/pcp/CMakeFiles/hipa_pcp.dir/bins.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hipa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hipa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/hipa_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
