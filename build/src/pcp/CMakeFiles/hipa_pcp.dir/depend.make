# Empty dependencies file for hipa_pcp.
# This may be replaced when dependencies are built.
