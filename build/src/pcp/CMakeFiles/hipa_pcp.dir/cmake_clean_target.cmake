file(REMOVE_RECURSE
  "libhipa_pcp.a"
)
