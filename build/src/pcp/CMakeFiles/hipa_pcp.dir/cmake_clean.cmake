file(REMOVE_RECURSE
  "CMakeFiles/hipa_pcp.dir/bins.cpp.o"
  "CMakeFiles/hipa_pcp.dir/bins.cpp.o.d"
  "libhipa_pcp.a"
  "libhipa_pcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
