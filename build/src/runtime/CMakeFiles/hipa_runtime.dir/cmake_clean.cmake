file(REMOVE_RECURSE
  "CMakeFiles/hipa_runtime.dir/affinity.cpp.o"
  "CMakeFiles/hipa_runtime.dir/affinity.cpp.o.d"
  "CMakeFiles/hipa_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/hipa_runtime.dir/thread_pool.cpp.o.d"
  "libhipa_runtime.a"
  "libhipa_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
