# Empty compiler generated dependencies file for hipa_runtime.
# This may be replaced when dependencies are built.
