file(REMOVE_RECURSE
  "libhipa_runtime.a"
)
