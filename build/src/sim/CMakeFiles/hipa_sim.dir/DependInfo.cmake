
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/hipa_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/hipa_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/hipa_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/hipa_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/numa_map.cpp" "src/sim/CMakeFiles/hipa_sim.dir/numa_map.cpp.o" "gcc" "src/sim/CMakeFiles/hipa_sim.dir/numa_map.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/hipa_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/hipa_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
