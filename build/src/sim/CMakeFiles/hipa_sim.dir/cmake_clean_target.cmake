file(REMOVE_RECURSE
  "libhipa_sim.a"
)
