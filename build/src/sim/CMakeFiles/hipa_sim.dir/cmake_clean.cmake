file(REMOVE_RECURSE
  "CMakeFiles/hipa_sim.dir/cache.cpp.o"
  "CMakeFiles/hipa_sim.dir/cache.cpp.o.d"
  "CMakeFiles/hipa_sim.dir/machine.cpp.o"
  "CMakeFiles/hipa_sim.dir/machine.cpp.o.d"
  "CMakeFiles/hipa_sim.dir/numa_map.cpp.o"
  "CMakeFiles/hipa_sim.dir/numa_map.cpp.o.d"
  "CMakeFiles/hipa_sim.dir/topology.cpp.o"
  "CMakeFiles/hipa_sim.dir/topology.cpp.o.d"
  "libhipa_sim.a"
  "libhipa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
