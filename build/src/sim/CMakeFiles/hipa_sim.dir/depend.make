# Empty dependencies file for hipa_sim.
# This may be replaced when dependencies are built.
