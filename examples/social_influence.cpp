// Social influence analysis — the paper's motivating scenario
// ("a celebrity has massive social influence in a social network").
//
// Generates a Twitter-like follower network, ranks accounts with every
// methodology on the simulated 2-socket machine, verifies they agree,
// and reports the performance/NUMA profile of each — a miniature
// version of the paper's whole evaluation in one program.
#include <cstdio>

#include "algos/pagerank.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace hipa;

  const unsigned scale = graph::recommended_scale("twitter");
  std::printf("building the twitter follower stand-in (1/%u scale)...\n",
              scale);
  const graph::Graph g = graph::make_dataset("twitter", scale);
  const auto deg = graph::degree_stats(g.in);
  std::printf("graph: %u accounts, %llu follows; %.1f%% of accounts "
              "attract 90%% of follows\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              deg.skew_vertex_fraction_for_90pct_edges * 100.0);

  std::vector<rank_t> hipa_ranks;
  std::printf("%-9s %10s %12s %9s %10s\n", "method", "time (s)",
              "MApE (B/e/i)", "remote%", "migrations");
  for (algo::Method m : algo::all_methods()) {
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(scale));
    algo::MethodParams params;
    params.pr.iterations = 5;
    params.scale_denom = scale;
    auto [report, ranks] = algo::run_method_sim(m, g, machine, params);
    std::printf("%-9s %10.4f %12.1f %8.1f%% %10llu\n",
                algo::method_name(m), report.seconds,
                report.stats.mape(g.num_edges()) / params.pr.iterations,
                report.stats.remote_fraction() * 100.0,
                static_cast<unsigned long long>(
                    report.stats.thread_migrations));
    if (m == algo::Method::kHipa) {
      hipa_ranks = std::move(ranks);
    } else {
      // All methodologies must agree on the ranking.
      const double d = algo::l1_distance(hipa_ranks, ranks);
      if (d > 1e-4 * g.num_vertices()) {
        std::printf("  !! %s diverges from HiPa by %g\n",
                    algo::method_name(m), d);
        return 1;
      }
    }
  }

  std::printf("\nmost influential accounts (HiPa ranking):\n");
  for (vid_t v : algo::top_k(hipa_ranks, 10)) {
    std::printf("  account %-8u influence %.3e, %u followers\n", v,
                hipa_ranks[v], g.in.degree(v));
  }
  return 0;
}
