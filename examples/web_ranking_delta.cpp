// Incremental web ranking with PageRank-Delta (paper §6 extension).
//
// On a web-hyperlink stand-in, compares fixed-iteration PageRank
// against PageRank-Delta at several convergence thresholds: the delta
// variant performs a fraction of the edge work for the same ranking.
#include <cstdio>

#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "graph/datasets.hpp"

int main() {
  using namespace hipa;

  std::printf("building the web-hyperlink stand-in...\n");
  const graph::Graph g = graph::make_dataset("wiki", 128);
  std::printf("graph: %u pages, %llu links\n\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Baseline: 30 fixed iterations of plain PageRank.
  const auto plain = algo::pagerank_reference(g, 30);
  const std::uint64_t plain_work =
      30ull * g.num_edges();  // every edge, every iteration

  std::printf("%-12s %10s %12s %14s %12s\n", "epsilon", "rounds",
              "edge pushes", "vs plain work", "L1 error");
  for (const double eps : {1e-1, 1e-2, 1e-3, 1e-4}) {
    algo::DeltaOptions opt;
    opt.epsilon = eps;
    opt.max_iterations = 200;
    opt.threads = 4;
    engine::NativeBackend backend;
    const auto r = algo::pagerank_delta(g, opt, backend);
    std::printf("%-12.0e %10u %12llu %13.1f%% %12.2e\n", eps,
                r.iterations,
                static_cast<unsigned long long>(r.total_pushes),
                100.0 * static_cast<double>(r.total_pushes) /
                    static_cast<double>(plain_work),
                algo::l1_distance(r.ranks, plain));
  }
  std::printf("\n(tighter epsilon -> more pushes, smaller error; even "
              "1e-4 needs a fraction\n of the fixed-iteration edge "
              "traversals)\n");
  return 0;
}
