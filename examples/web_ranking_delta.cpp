// Incremental web ranking through the serving layer (paper §6
// extension): live link updates flow through the MPSC UpdateQueue into
// the background refresh cycle — small bursts are absorbed by
// PageRank-Delta (only changed mass propagates), a big recrawl batch
// triggers a full exact HiPa run — and every refresh atomically
// republishes the next snapshot epoch while queries keep reading the
// previous one.
//
// The second half keeps the original convergence lesson: the delta
// epsilon trades edge pushes against L1 error relative to the fixed-
// iteration baseline.
#include <cstdio>
#include <random>
#include <utility>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "graph/datasets.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "serve/updates.hpp"

int main() {
  using namespace hipa;

  std::printf("building the web-hyperlink stand-in...\n");
  const graph::Graph g = graph::make_dataset("wiki", 128);
  const vid_t n = g.num_vertices();
  std::printf("graph: %u pages, %llu links\n\n", n,
              static_cast<unsigned long long>(g.num_edges()));

  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : g.out.neighbors(v)) edges.push_back(Edge{v, u});
  }

  // ---- Live updates: queue -> delta refresh -> republish ----------
  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::RefreshOptions ropt;
  ropt.small_batch_max = 64;  // bursts <= 64 edges take the delta path
  ropt.delta.epsilon = 1e-3;
  ropt.full.pr.iterations = 30;
  serve::UpdateRefresher refresher(n, std::move(edges), store, queue,
                                   ropt);
  refresher.publish_initial();
  std::printf("epoch %llu published (full run over the crawl).\n\n",
              static_cast<unsigned long long>(store.epoch()));

  const auto show_top = [&](const char* when) {
    const serve::SnapshotRef snap = store.current();
    const auto top = serve::topk_query(*snap, serve::TopKQuery{.k = 3});
    std::printf("  top pages %s:", when);
    for (const auto& e : top) {
      std::printf("  #%u (%.3e)", e.vertex, e.rank);
    }
    std::printf("   [epoch %llu]\n",
                static_cast<unsigned long long>(snap->epoch()));
  };
  show_top("at launch   ");

  std::printf("\nlive link churn (each burst -> one refresh cycle):\n");
  std::printf("%-18s %8s %8s %7s %8s\n", "burst", "applied", "path",
              "rounds", "seconds");
  std::mt19937 rng(7);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  const std::pair<const char*, unsigned> bursts[] = {
      {"8 new links", 8},
      {"40 new links", 40},
      {"recrawl: 5000", 5000},  // > small_batch_max: exact full run
  };
  for (const auto& [label, count] : bursts) {
    for (unsigned i = 0; i < count; ++i) {
      queue.push_add(Edge{pick(rng), pick(rng)});
    }
    const serve::RefreshReport r = refresher.refresh_now();
    std::printf("%-18s %8zu %8s %7u %8.3f\n", label, r.updates_applied,
                r.full_run ? "full" : "delta", r.iterations, r.seconds);
  }
  show_top("after churn ");
  std::printf("  (%llu delta refreshes, %llu full; readers kept the "
              "previous epoch\n   for the whole recompute — publish is "
              "one atomic swap)\n",
              static_cast<unsigned long long>(refresher.delta_refreshes()),
              static_cast<unsigned long long>(refresher.full_refreshes()));

  // ---- Convergence/work tradeoff of the delta path ----------------
  const graph::Graph& live = refresher.graph();
  std::printf("\ndelta epsilon vs fixed 30-iteration PageRank on the "
              "live graph:\n");
  const auto plain = algo::pagerank_reference(live, 30);
  const std::uint64_t plain_work = 30ull * live.num_edges();

  std::printf("%-12s %10s %12s %14s %12s\n", "epsilon", "rounds",
              "edge pushes", "vs plain work", "L1 error");
  for (const double eps : {1e-1, 1e-2, 1e-3, 1e-4}) {
    algo::DeltaOptions opt;
    opt.epsilon = eps;
    opt.max_iterations = 200;
    opt.threads = 4;
    engine::NativeBackend backend;
    const auto r = algo::pagerank_delta(live, opt, backend);
    std::printf("%-12.0e %10u %12llu %13.1f%% %12.2e\n", eps,
                r.iterations,
                static_cast<unsigned long long>(r.total_pushes),
                100.0 * static_cast<double>(r.total_pushes) /
                    static_cast<double>(plain_work),
                algo::l1_distance(r.ranks, plain));
  }
  std::printf("\n(tighter epsilon -> more pushes, smaller error; even "
              "1e-4 needs a fraction\n of the fixed-iteration edge "
              "traversals — which is why small update bursts\n refresh "
              "with delta and only a recrawl pays for the full run)\n");
  return 0;
}
