// Component structure analysis with HiPa-partitioned WCC: how connected
// is a crawled web graph, and what does its component size distribution
// look like?
#include <cstdio>
#include <map>

#include "algos/wcc.hpp"
#include "graph/datasets.hpp"

int main() {
  using namespace hipa;

  std::printf("building the pld (web hyperlink) stand-in...\n");
  const graph::Graph g = graph::make_dataset("pld", 512);
  std::printf("graph: %u domains, %llu hyperlinks\n\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  engine::NativeBackend backend;
  auto opt = engine::PcpmOptions::hipa(4, 1, 64 * 1024);
  unsigned rounds = 0;
  const auto labels = algo::wcc(g, opt, backend, &rounds);

  // Component size census.
  std::map<vid_t, std::uint64_t> sizes;
  for (vid_t label : labels) ++sizes[label];
  std::uint64_t largest = 0;
  for (const auto& [label, size] : sizes) {
    largest = std::max(largest, size);
  }
  std::map<std::uint64_t, std::uint64_t> histogram;  // size -> count
  for (const auto& [label, size] : sizes) ++histogram[size];

  std::printf("label propagation converged in %u rounds\n", rounds);
  std::printf("%zu weakly-connected components; giant component holds "
              "%.1f%% of all domains\n\n",
              sizes.size(),
              100.0 * static_cast<double>(largest) / g.num_vertices());
  std::printf("component size distribution (size: how many components):\n");
  int shown = 0;
  for (const auto& [size, count] : histogram) {
    if (shown++ >= 8 && size != largest) continue;
    std::printf("  %8llu vertices: %llu component%s\n",
                static_cast<unsigned long long>(size),
                static_cast<unsigned long long>(count),
                count == 1 ? "" : "s");
  }
  std::printf("\n(the classic bow-tie: one giant component plus a dust "
              "of tiny ones)\n");
  return 0;
}
