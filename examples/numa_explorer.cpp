// NUMA placement explorer: uses the simulated machine directly to show
// why data placement matters — the experiment behind the paper's §2.2
// observation that a remote sequential read costs ~7x a local one.
//
// Then demonstrates the partition-size tradeoff of §4.5 on one graph.
#include <cstdio>

#include "algos/pagerank.hpp"
#include "common/aligned_buffer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace hipa;

  // --- part 1: the raw local/remote gap ----------------------------------
  std::printf("=== local vs remote sequential read (paper §2.2) ===\n");
  const std::size_t count = 8u << 20;  // 32 MB of floats
  AlignedBuffer<float> data(count);
  for (const unsigned data_node : {0u, 1u}) {
    sim::SimMachine machine(sim::Topology::skylake_2s());
    machine.numa().register_range(data.data(), count * sizeof(float),
                                  sim::Placement::kNode, data_node);
    // One thread on node 0 streams the whole buffer.
    sim::PlacementVec placement{machine.topology().lcid_of(0, 0, 0)};
    machine.run_phase(placement, [&](unsigned, sim::SimMem& mem) {
      mem.stream_read(data.data(), count);
    });
    std::printf("  data on node %u, reader on node 0: %.4f s per 32 MB "
                "(%.2f GB/s)\n",
                data_node, machine.seconds(),
                count * sizeof(float) / machine.seconds() / 1e9);
  }

  // --- part 2: placement policies under PageRank -------------------------
  std::printf("\n=== HiPa vs placement policies on journal ===\n");
  const unsigned scale = graph::recommended_scale("journal") * 2;
  const graph::Graph g = graph::make_dataset("journal", scale);
  std::printf("graph: %u vertices, %llu edges (1/%u scale)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), scale);

  struct Config {
    const char* label;
    algo::Method method;
  };
  for (const Config& c :
       {Config{"HiPa (NUMA-aware, pinned)", algo::Method::kHipa},
        Config{"p-PR (oblivious, FCFS)", algo::Method::kPpr}}) {
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(scale));
    algo::MethodParams params;
    params.pr.iterations = 4;
    params.scale_denom = scale;
    const auto r = algo::run_method_sim(c.method, g, machine, params).report;
    std::printf("  %-28s %.4f s, %4.1f%% remote traffic\n", c.label,
                r.seconds, r.stats.remote_fraction() * 100.0);
  }

  // --- part 3: the partition-size tradeoff (paper §4.5) ------------------
  std::printf("\n=== partition size tradeoff (paper-equivalent sizes) ===\n");
  for (const std::uint64_t size_eq :
       {32ull << 10, 256ull << 10, 2048ull << 10}) {
    sim::SimMachine machine(sim::Topology::skylake_2s().scaled(scale));
    algo::MethodParams params;
    params.pr.iterations = 4;
    params.scale_denom = scale;
    params.partition_bytes =
        std::max<std::uint64_t>(size_eq / scale, sizeof(rank_t));
    const auto r =
        algo::run_method_sim(algo::Method::kHipa, g, machine, params).report;
    std::printf("  %5lluK-eq partitions: %.4f s, LLC hit ratio %4.1f%%\n",
                static_cast<unsigned long long>(size_eq >> 10), r.seconds,
                r.stats.llc_hit_ratio() * 100.0);
  }
  std::printf("\n(256K — a quarter of the L2 — is the paper's sweet spot; "
              "smaller loses\n compression, larger spills into LLC)\n");
  return 0;
}
