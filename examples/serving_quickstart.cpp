// Serving quickstart: compute → publish → query → update → refresh.
//
// The minimal end-to-end tour of the serve/ subsystem:
//   1. build a graph and a SnapshotStore sized to it,
//   2. publish the first snapshot (full HiPa run via UpdateRefresher),
//   3. answer point / batch / top-k queries through RankService,
//   4. push edge updates into the MPSC queue, refresh, and watch the
//      next epoch answer with fresh ranks.
#include <cstdio>
#include <vector>

#include "graph/datasets.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/updates.hpp"

int main() {
  using namespace hipa;

  // 1. A small web-hyperlink stand-in, flattened to an edge list (the
  //    refresher owns the evolving list).
  const graph::Graph g = graph::make_dataset("wiki", 64);
  const vid_t n = g.num_vertices();
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : g.out.neighbors(v)) edges.push_back(Edge{v, u});
  }
  std::printf("graph: %u pages, %zu links\n", n, edges.size());

  // 2. Store + refresher; the first publish is a full engine run.
  serve::SnapshotStore store(n);
  serve::UpdateQueue queue;
  serve::UpdateRefresher refresher(n, std::move(edges), store, queue);
  const std::uint64_t epoch0 = refresher.publish_initial();
  std::printf("published epoch %llu\n",
              static_cast<unsigned long long>(epoch0));

  // 3. Queries through the batched service (one pinned worker per
  //    NUMA node; every answer carries its snapshot epoch).
  serve::RankService service(store);
  const serve::QueryResult point = service.execute(serve::Query::point(0));
  std::printf("rank(page 0) = %.6f  [epoch %llu]\n", point.ranks[0],
              static_cast<unsigned long long>(point.epoch));

  const serve::QueryResult top = service.execute(serve::Query::top_k(5));
  std::printf("top-5:");
  for (const serve::TopKEntry& e : top.topk) {
    std::printf("  #%u=%.6f", e.vertex, e.rank);
  }
  std::printf("\n");

  // 4. The hottest page gains a few in-links; a small batch refreshes
  //    via PageRank-Delta and republishes.
  const vid_t star = top.topk.front().vertex;
  for (vid_t src = 1; src <= 3; ++src) {
    queue.push_add(Edge{src % n, star});
  }
  const serve::RefreshReport r = refresher.refresh_now();
  std::printf("refresh: %zu updates -> epoch %llu (%s, %u rounds)\n",
              r.updates_applied,
              static_cast<unsigned long long>(r.epoch),
              r.full_run ? "full run" : "delta", r.iterations);

  const serve::QueryResult after = service.execute(serve::Query::top_k(5));
  std::printf("top-5 now:");
  for (const serve::TopKEntry& e : after.topk) {
    std::printf("  #%u=%.6f", e.vertex, e.rank);
  }
  std::printf("\n");

  const serve::RankService::Stats stats = service.stats();
  std::printf("service: %llu requests, p99 %.1f us\n",
              static_cast<unsigned long long>(stats.requests),
              stats.latency.p99_seconds * 1e6);
  return 0;
}
