// Reachability analysis with HiPa-partitioned BFS (paper §6 extension):
// how much of a social network a single account can reach, and how fast
// the frontier grows per hop.
#include <cstdio>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "graph/datasets.hpp"

int main() {
  using namespace hipa;

  std::printf("building the journal (LiveJournal) stand-in...\n");
  const graph::Graph g = graph::make_dataset("journal", 32);
  std::printf("graph: %u users, %llu friendships (directed)\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Start from the most-followed user (rank-0 of a quick PageRank).
  const auto ranks = algo::pagerank_reference(g, 5);
  const vid_t source = algo::top_k(ranks, 1).front();
  std::printf("source: user %u (highest PageRank, %u followers)\n\n",
              source, g.in.degree(source));

  engine::NativeBackend backend;
  algo::BfsOptions opt;
  opt.threads = 4;
  const auto r = algo::bfs(g, source, opt, backend);

  std::printf("reached %llu of %u users (%.1f%%) in %u hops, %.3f s\n",
              static_cast<unsigned long long>(r.reached), g.num_vertices(),
              100.0 * static_cast<double>(r.reached) / g.num_vertices(),
              r.levels, r.report.seconds);

  // Per-hop histogram.
  std::vector<std::uint64_t> per_level(r.levels + 1, 0);
  for (std::uint32_t d : r.distance) {
    if (d != algo::kUnreached) ++per_level[d];
  }
  std::printf("\nfrontier size per hop:\n");
  for (std::uint32_t l = 0; l <= r.levels; ++l) {
    std::printf("  hop %2u: %8llu users ", l,
                static_cast<unsigned long long>(per_level[l]));
    const int bars =
        static_cast<int>(60.0 * static_cast<double>(per_level[l]) /
                         static_cast<double>(r.reached));
    for (int i = 0; i < bars; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n(the small-world effect: nearly everything reachable "
              "within a handful of hops)\n");
  return 0;
}
