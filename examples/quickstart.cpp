// Quickstart: build a graph, run HiPa PageRank natively, inspect the
// result. This is the 60-second tour of the public API.
//
//   ./examples/quickstart [path/to/edge_list.txt]
//
// Without an argument a synthetic social graph is generated.
#include <cstdio>
#include <string>

#include "algos/pagerank.hpp"
#include "common/timer.hpp"
#include "engines/pcpm_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace hipa;

  // 1. Obtain a graph: load an edge list, or generate a stand-in.
  graph::Graph g;
  if (argc > 1) {
    std::printf("loading edge list '%s'...\n", argv[1]);
    const graph::EdgeListFile file = graph::read_edge_list(argv[1]);
    g = graph::build_graph(file.num_vertices, file.edges);
  } else {
    std::printf("generating a synthetic social graph...\n");
    g = graph::build_graph(
        100'000, graph::generate_zipf({.num_vertices = 100'000,
                                       .num_edges = 1'000'000,
                                       .seed = 7}));
  }
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Configure the HiPa engine: hierarchical partitioning with
  //    cache-sized partitions pinned to persistent threads.
  engine::NativeBackend backend;
  engine::PcpmOptions options =
      engine::PcpmOptions::hipa(/*threads=*/4, /*nodes=*/1,
                                /*partition bytes=*/256 * 1024);
  engine::PcpmEngine<engine::NativeBackend> engine(g, options, backend);
  std::printf("preprocessing (plan + bins): %.3f s, %u partitions, "
              "compression %.2f edges/message\n",
              engine.preprocessing_seconds(),
              engine.plan().parts.num_partitions(),
              engine.bins().compression_ratio());

  // 3. Run PageRank — with run-level telemetry, so the report can say
  //    where the time went, not just how much there was.
  engine::PageRankOptions pr;
  pr.iterations = 20;
  pr.telemetry = runtime::Telemetry::kOn;
  const auto [report, ranks] = engine.run(pr);
  std::printf("20 iterations in %.3f s (%.1f M edges/s)\n", report.seconds,
              20.0 * static_cast<double>(g.num_edges()) / report.seconds /
                  1e6);
  for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
    const auto ph = static_cast<runtime::Phase>(pi);
    const auto& agg = report.telemetry[ph];
    std::printf("  %-7s kernel %.3f s (imbalance %.2f), barrier %.3f s, "
                "%llu msgs\n",
                std::string(runtime::phase_name(ph)).c_str(),
                agg.wall_sum_seconds, agg.imbalance(),
                agg.barrier_sum_seconds,
                static_cast<unsigned long long>(agg.messages_produced +
                                                agg.messages_consumed));
  }

  // 4. Inspect the result.
  std::printf("top 5 vertices by rank:\n");
  for (vid_t v : algo::top_k(ranks, 5)) {
    std::printf("  v%-8u rank %.3e (in-degree %u)\n", v, ranks[v],
                g.in.degree(v));
  }
  return 0;
}
