// Centralized and topology-aware sense-reversing barriers.
//
// std::barrier's completion-function machinery is more than the engines
// need. SpinBarrier is the textbook two-counter barrier with per-thread
// sense, safe for repeated reuse by a fixed team; TreeBarrier is its
// two-level NUMA shape — threads rendezvous on a node-local leaf line
// and one representative per node crosses to the root, so the
// all-thread cache-line ping-pong that dominates barrier wait on
// multi-socket hosts collapses to one line per node plus one root
// line. Every wait loop issues a CPU relax hint every spin so a pinned
// SMT sibling sharing the core's issue ports is not starved, and falls
// back to an OS yield once the spin budget is exhausted so
// oversubscribed teams (more threads than logical CPUs) still make
// progress instead of burning whole scheduler quanta.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace hipa::runtime {

/// Which barrier run_loop hands the team.
enum class BarrierKind {
  kAuto,  ///< tree when the topology has >= 2 populated nodes, else flat
  kFlat,  ///< force SpinBarrier
  kTree,  ///< force TreeBarrier (single-node hosts get synthetic groups)
};

/// One pause/yield instruction: cheap, keeps the core's pipeline from
/// speculating down thousands of loop iterations, and frees issue
/// slots for the sibling hyper-thread (critical once every logical
/// core is pinned, paper §3.3.1).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

namespace detail {
/// Roughly the cost of a condvar round trip; past this the thread is
/// better off giving its quantum away.
inline constexpr std::uint32_t kSpinsBeforeYield = 4096;

/// Bounded spin with relax hints, then yield: phases are long and
/// teams are usually ≤ #CPUs, so the fast path never yields; the slow
/// path keeps oversubscribed test/CI boxes responsive.
inline void spin_until(const std::atomic<bool>& flag, bool want) {
  std::uint32_t spins = 0;
  while (flag.load(std::memory_order_acquire) != want) {
    cpu_relax();
    if (++spins >= kSpinsBeforeYield) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}
}  // namespace detail

class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned num_threads)
      : num_threads_(num_threads), waiting_(0), sense_(false) {
    HIPA_CHECK(num_threads >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all `num_threads` threads arrive. Each caller must use
  /// its own `local_sense`, initialized to false.
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_threads_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      detail::spin_until(sense_, local_sense);
    }
  }

  [[nodiscard]] unsigned num_threads() const { return num_threads_; }

 private:
  unsigned num_threads_;
  std::atomic<unsigned> waiting_;
  std::atomic<bool> sense_;
};

/// Two-level topology-aware sense-reversing barrier.
///
/// Construction takes `group_of[tid] -> leaf index` (normally the NUMA
/// node each pinned thread runs on). Arrival: a thread flips its
/// private sense and counts into its leaf line; the LAST arriver at a
/// leaf becomes the group's representative and counts into the root
/// line; the last representative releases the root sense, and each
/// representative then releases its own leaf sense. All other threads
/// only ever touch their node-local leaf line, so the coherence
/// traffic per crossing is O(#nodes) on the root instead of
/// O(#threads) on one global line.
///
/// Callers use the same contract as SpinBarrier: one `local_sense` per
/// thread, initialized false, plus the caller's stable team tid.
class TreeBarrier {
 public:
  /// `group_of[tid]` maps each team thread to its leaf. Groups must be
  /// dense (every index in [0, max_group] populated) and non-empty.
  explicit TreeBarrier(const std::vector<unsigned>& group_of)
      : group_of_(group_of) {
    HIPA_CHECK(!group_of.empty());
    unsigned num_groups = 0;
    for (unsigned g : group_of) num_groups = std::max(num_groups, g + 1);
    leaves_ = std::vector<Line>(num_groups);
    for (unsigned g : group_of) ++leaves_[g].expected;
    for (const Line& leaf : leaves_) {
      HIPA_CHECK(leaf.expected > 0,
                 "tree barrier groups must be dense: every leaf needs "
                 "at least one thread");
    }
    root_.expected = num_groups;
  }

  TreeBarrier(const TreeBarrier&) = delete;
  TreeBarrier& operator=(const TreeBarrier&) = delete;

  /// Block until all team threads arrive. `tid` is the caller's index
  /// into the constructor's group map; `local_sense` is per-thread,
  /// initialized to false (same contract as SpinBarrier).
  void arrive_and_wait(unsigned tid, bool& local_sense) {
    local_sense = !local_sense;
    Line& leaf = leaves_[group_of_[tid]];
    if (leaf.waiting.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        leaf.expected) {
      // Representative: carry this node's arrival to the root.
      if (root_.waiting.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          root_.expected) {
        root_.waiting.store(0, std::memory_order_relaxed);
        root_.sense.store(local_sense, std::memory_order_release);
      } else {
        detail::spin_until(root_.sense, local_sense);
      }
      leaf.waiting.store(0, std::memory_order_relaxed);
      leaf.sense.store(local_sense, std::memory_order_release);
    } else {
      detail::spin_until(leaf.sense, local_sense);
    }
  }

  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(group_of_.size());
  }
  [[nodiscard]] unsigned num_groups() const {
    return static_cast<unsigned>(leaves_.size());
  }

 private:
  /// One rendezvous cache line; padded so leaves never false-share.
  struct alignas(kCacheLine) Line {
    std::atomic<unsigned> waiting{0};
    std::atomic<bool> sense{false};
    unsigned expected = 0;
  };

  std::vector<unsigned> group_of_;
  std::vector<Line> leaves_;
  Line root_;
};

}  // namespace hipa::runtime
