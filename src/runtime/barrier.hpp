// Centralized sense-reversing barrier.
//
// std::barrier's completion-function machinery is more than the engines
// need; this is the textbook two-counter barrier with per-thread sense,
// safe for repeated reuse by a fixed team. The wait loop issues a CPU
// relax hint every spin so a pinned SMT sibling sharing the core's
// issue ports is not starved, and falls back to an OS yield once the
// spin budget is exhausted so oversubscribed teams (more threads than
// logical CPUs) still make progress instead of burning whole scheduler
// quanta.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/error.hpp"

namespace hipa::runtime {

/// One pause/yield instruction: cheap, keeps the core's pipeline from
/// speculating down thousands of loop iterations, and frees issue
/// slots for the sibling hyper-thread (critical once every logical
/// core is pinned, paper §3.3.1).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned num_threads)
      : num_threads_(num_threads), waiting_(0), sense_(false) {
    HIPA_CHECK(num_threads >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all `num_threads` threads arrive. Each caller must use
  /// its own `local_sense`, initialized to false.
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_threads_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      // Bounded spin with relax hints, then yield: phases are long and
      // teams are usually ≤ #CPUs, so the fast path never yields; the
      // slow path keeps oversubscribed test/CI boxes responsive.
      std::uint32_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        cpu_relax();
        if (++spins >= kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  [[nodiscard]] unsigned num_threads() const { return num_threads_; }

 private:
  /// Roughly the cost of a condvar round trip; past this the thread is
  /// better off giving its quantum away.
  static constexpr std::uint32_t kSpinsBeforeYield = 4096;

  unsigned num_threads_;
  std::atomic<unsigned> waiting_;
  std::atomic<bool> sense_;
};

}  // namespace hipa::runtime
