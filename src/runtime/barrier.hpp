// Centralized sense-reversing barrier.
//
// std::barrier's completion-function machinery is more than the engines
// need; this is the textbook two-counter barrier with per-thread sense,
// safe for repeated reuse by a fixed team.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/error.hpp"

namespace hipa::runtime {

class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned num_threads)
      : num_threads_(num_threads), waiting_(0), sense_(false) {
    HIPA_CHECK(num_threads >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all `num_threads` threads arrive. Each caller must use
  /// its own `local_sense`, initialized to false.
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_threads_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        // spin; team sizes are small and phases are long
      }
    }
  }

  [[nodiscard]] unsigned num_threads() const { return num_threads_; }

 private:
  unsigned num_threads_;
  std::atomic<unsigned> waiting_;
  std::atomic<bool> sense_;
};

}  // namespace hipa::runtime
