#include "runtime/hwprof.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define HIPA_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define HIPA_HAVE_PERF_EVENT 0
#endif

namespace hipa::runtime {

namespace {

std::atomic<std::uint64_t> g_open_attempts{0};
std::atomic<PerfEventOpenFn> g_open_override{nullptr};

#if HIPA_HAVE_PERF_EVENT

long real_perf_event_open(perf_event_attr* attr, int pid, int cpu,
                          int group_fd, unsigned long flags) {
  const long fd =
      ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
  if (fd < 0) return -static_cast<long>(errno);
  return fd;
}

long current_tid() { return static_cast<long>(::syscall(SYS_gettid)); }

/// Event descriptors in kHw* bit order. The leader (cycles) must be
/// index 0.
struct EventDesc {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

const EventDesc kEvents[kNumHwEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_NODE, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_NODE, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

/// Group read layout for PERF_FORMAT_GROUP | PERF_FORMAT_ID |
/// TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING.
struct GroupRead {
  std::uint64_t nr;
  std::uint64_t time_enabled;
  std::uint64_t time_running;
  struct Entry {
    std::uint64_t value;
    std::uint64_t id;
  } entries[kNumHwEvents];
};

#endif  // HIPA_HAVE_PERF_EVENT

long dispatch_perf_event_open(perf_event_attr* attr, int pid, int cpu,
                              int group_fd, unsigned long flags) {
  g_open_attempts.fetch_add(1, std::memory_order_relaxed);
  if (PerfEventOpenFn fn = g_open_override.load(std::memory_order_acquire)) {
    return fn(attr, pid, cpu, group_fd, flags);
  }
#if HIPA_HAVE_PERF_EVENT
  return real_perf_event_open(attr, pid, cpu, group_fd, flags);
#else
  (void)attr;
  (void)pid;
  (void)cpu;
  (void)group_fd;
  (void)flags;
  return -ENOSYS;
#endif
}

}  // namespace

const char* hw_event_name(unsigned index) {
  static const char* const kNames[kNumHwEvents] = {
      "cycles",     "instructions",    "llc_loads",
      "llc_misses", "node_loads",      "node_misses"};
  return index < kNumHwEvents ? kNames[index] : "?";
}

void set_perf_event_open_override(PerfEventOpenFn fn) {
  g_open_override.store(fn, std::memory_order_release);
}

std::uint64_t perf_event_open_attempts() {
  return g_open_attempts.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HwCounterGroup

void HwCounterGroup::move_from(HwCounterGroup& other) {
  leader_fd_ = other.leader_fd_;
  fds_ = other.fds_;
  ids_ = other.ids_;
  event_mask_ = other.event_mask_;
  last_errno_ = other.last_errno_;
  tid_ = other.tid_;
  failed_ = other.failed_;
  other.leader_fd_ = -1;
  other.fds_.fill(-1);
  other.event_mask_ = 0;
  other.tid_ = -1;
  other.failed_ = false;
}

void HwCounterGroup::close_group() {
#if HIPA_HAVE_PERF_EVENT
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
#else
  fds_.fill(-1);
#endif
  leader_fd_ = -1;
  event_mask_ = 0;
  tid_ = -1;
  // `failed_` is deliberately preserved: a degraded group stays
  // degraded until reset() provisions a fresh one.
}

bool HwCounterGroup::ensure_open_for_current_thread() {
#if HIPA_HAVE_PERF_EVENT
  const long tid = current_tid();
  if (leader_fd_ >= 0 && tid == tid_) return true;
  if (failed_ && tid == tid_) return false;
  // New thread (fork-join backends recreate workers per phase) or
  // first use: (re)open the whole group bound to this tid.
  close_group();
  tid_ = tid;
  failed_ = false;

  perf_event_attr attr;
  for (unsigned i = 0; i < kNumHwEvents; ++i) {
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = kEvents[i].type;
    attr.config = kEvents[i].config;
    attr.disabled = (i == 0) ? 1 : 0;  // leader starts disabled
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int group_fd = (i == 0) ? -1 : leader_fd_;
    const long fd = dispatch_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                             group_fd, /*flags=*/0);
    if (fd < 0) {
      if (i == 0) {
        // Leader failed: the group is unavailable on this thread.
        last_errno_ = static_cast<int>(-fd);
        failed_ = true;
        return false;
      }
      // Sibling failed (PMU lacks the event, e.g. NODE events on
      // client parts or LLC events in VMs): drop the bit, keep going.
      continue;
    }
    fds_[i] = static_cast<int>(fd);
    if (i == 0) leader_fd_ = static_cast<int>(fd);
    std::uint64_t id = 0;
    if (::ioctl(static_cast<int>(fd), PERF_EVENT_IOC_ID, &id) == 0) {
      ids_[i] = id;
      event_mask_ |= 1u << i;
    } else {
      // Cannot identify the event inside group reads; drop it.
      ::close(static_cast<int>(fd));
      fds_[i] = -1;
      if (i == 0) {
        leader_fd_ = -1;
        last_errno_ = errno;
        failed_ = true;
        return false;
      }
    }
  }
  ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
#else
  if (!failed_) {
    // Record one honest attempt so the accounting matches Linux.
    perf_event_attr* null_attr = nullptr;
    const long rc = dispatch_perf_event_open(null_attr, 0, -1, -1, 0);
    last_errno_ = static_cast<int>(-rc);
    failed_ = true;
  }
  return false;
#endif
}

bool HwCounterGroup::read_group(HwCounters& out) {
#if HIPA_HAVE_PERF_EVENT
  GroupRead buf;
  std::memset(&buf, 0, sizeof(buf));
  const ssize_t n = ::read(leader_fd_, &buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
  out = HwCounters{};
  out.time_enabled_ns = buf.time_enabled;
  out.time_running_ns = buf.time_running;
  const std::uint64_t nr = buf.nr > kNumHwEvents ? kNumHwEvents : buf.nr;
  for (std::uint64_t e = 0; e < nr; ++e) {
    const std::uint64_t id = buf.entries[e].id;
    const std::uint64_t v = buf.entries[e].value;
    for (unsigned i = 0; i < kNumHwEvents; ++i) {
      if (!(event_mask_ & (1u << i)) || ids_[i] != id) continue;
      switch (i) {
        case 0: out.cycles = v; break;
        case 1: out.instructions = v; break;
        case 2: out.llc_loads = v; break;
        case 3: out.llc_load_misses = v; break;
        case 4: out.node_loads = v; break;
        case 5: out.node_load_misses = v; break;
        default: break;
      }
      break;
    }
  }
  return true;
#else
  (void)out;
  return false;
#endif
}

bool HwCounterGroup::begin(HwCounters& snap) {
  if (!ensure_open_for_current_thread()) return false;
  return read_group(snap);
}

void HwCounterGroup::end(const HwCounters& since, HwCounters& into) {
  if (leader_fd_ < 0) return;
  HwCounters now;
  if (!read_group(now)) return;
  HwCounters delta;
  delta.cycles = now.cycles - since.cycles;
  delta.instructions = now.instructions - since.instructions;
  delta.llc_loads = now.llc_loads - since.llc_loads;
  delta.llc_load_misses = now.llc_load_misses - since.llc_load_misses;
  delta.node_loads = now.node_loads - since.node_loads;
  delta.node_load_misses = now.node_load_misses - since.node_load_misses;
  delta.time_enabled_ns = now.time_enabled_ns - since.time_enabled_ns;
  delta.time_running_ns = now.time_running_ns - since.time_running_ns;
  into.add(delta);
}

// ---------------------------------------------------------------------------
// HwProfiler

void HwProfiler::reset(unsigned num_threads, bool enable) {
  slots_.clear();
  enabled_ = enable;
  if (enable) slots_.resize(num_threads);
}

bool HwProfiler::any_open() const {
  for (const Slot& s : slots_) {
    if (s.group.open()) return true;
  }
  return false;
}

unsigned HwProfiler::open_threads() const {
  unsigned n = 0;
  for (const Slot& s : slots_) {
    if (s.group.open()) ++n;
  }
  return n;
}

unsigned HwProfiler::event_mask() const {
  unsigned mask = 0;
  for (const Slot& s : slots_) mask |= s.group.event_mask();
  return mask;
}

}  // namespace hipa::runtime
