#include "runtime/telemetry.hpp"

#include <algorithm>

namespace hipa::runtime {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kInit:
      return "init";
    case Phase::kScatter:
      return "scatter";
    case Phase::kGather:
      return "gather";
    case Phase::kIoWait:
      return "io_wait";
  }
  return "?";
}

void PhaseSample::merge(const PhaseSample& o) {
  wall_seconds += o.wall_seconds;
  barrier_seconds += o.barrier_seconds;
  invocations += o.invocations;
  barrier_crossings += o.barrier_crossings;
  messages_produced += o.messages_produced;
  messages_consumed += o.messages_consumed;
  bytes_produced += o.bytes_produced;
  bytes_consumed += o.bytes_consumed;
  hw.add(o.hw);
}

void PhaseTimeline::reset(unsigned num_threads) {
  threads_.assign(num_threads, ThreadTimeline{});
  regions_.fill(RegionTotals{});
  iteration_seconds_.clear();
  iteration_marks_.clear();
  spans_enabled_ = false;
}

void PhaseTimeline::enable_spans(std::size_t reserve_per_thread) {
  spans_enabled_ = true;
  for (ThreadTimeline& t : threads_) t.spans.reserve(reserve_per_thread);
}

void PhaseTimeline::record_region(Phase p, double seconds,
                                  std::uint64_t local, std::uint64_t remote) {
  RegionTotals& r = regions_[static_cast<unsigned>(p)];
  r.seconds += seconds;
  r.invocations += 1;
  r.sim_local_accesses += local;
  r.sim_remote_accesses += remote;
}

void RunTelemetry::refresh_totals() {
  totals = Totals{};
  for (const PhaseAggregate& p : phases) {
    totals.wall_seconds += p.wall_sum_seconds;
    totals.barrier_seconds += p.barrier_sum_seconds;
    totals.messages_produced += p.messages_produced;
    totals.messages_consumed += p.messages_consumed;
  }
}

RunTelemetry aggregate(const PhaseTimeline& timeline) {
  RunTelemetry out;
  out.enabled = true;
  out.threads = timeline.num_threads();
  out.iteration_seconds = timeline.iteration_seconds();
  for (unsigned pi = 0; pi < kNumPhases; ++pi) {
    const auto ph = static_cast<Phase>(pi);
    PhaseAggregate& agg = out.phases[pi];
    bool any_wall = false;
    for (unsigned t = 0; t < timeline.num_threads(); ++t) {
      const PhaseSample& s = timeline.thread(t)[ph];
      if (s.invocations == 0 && s.barrier_crossings == 0) continue;
      agg.invocations += s.invocations;
      agg.barrier_crossings += s.barrier_crossings;
      agg.messages_produced += s.messages_produced;
      agg.messages_consumed += s.messages_consumed;
      agg.bytes_produced += s.bytes_produced;
      agg.bytes_consumed += s.bytes_consumed;
      agg.barrier_sum_seconds += s.barrier_seconds;
      agg.barrier_max_seconds =
          std::max(agg.barrier_max_seconds, s.barrier_seconds);
      agg.hw.add(s.hw);
      if (s.invocations == 0) continue;
      ++agg.participating_threads;
      agg.wall_sum_seconds += s.wall_seconds;
      agg.wall_max_seconds = std::max(agg.wall_max_seconds, s.wall_seconds);
      agg.wall_min_seconds = any_wall
                                 ? std::min(agg.wall_min_seconds,
                                            s.wall_seconds)
                                 : s.wall_seconds;
      any_wall = true;
    }
    const PhaseTimeline::RegionTotals& r = timeline.region(ph);
    agg.region_seconds = r.seconds;
    agg.regions = r.invocations;
    agg.sim_local_accesses = r.sim_local_accesses;
    agg.sim_remote_accesses = r.sim_remote_accesses;
  }
  out.refresh_totals();
  return out;
}

}  // namespace hipa::runtime
