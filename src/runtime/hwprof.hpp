// Hardware performance-counter groups via perf_event_open(2).
//
// One HwCounterGroup per worker thread opens a *counter group* — a
// leader (cycles) plus grouped siblings (instructions, LLC loads /
// misses and, where the PMU exposes them, node loads / misses as a
// remote-DRAM proxy) — so all events are scheduled onto the PMU
// together and a single group read yields a consistent snapshot.
// Scoped begin()/end() sections bracket the same kernel regions the
// software PhaseTimeline times, and the deltas land in
// PhaseSample::hw right next to the software counters.
//
// Design constraints (mirrors runtime/telemetry.hpp):
//  * soft degradation — when perf_event_paranoid, seccomp, a
//    container runtime, or a non-Linux host denies the syscall, the
//    group stays closed, available() is false, and every section is
//    a cheap no-op. Never aborts, never throws.
//  * zero cost when compiled out — engines instantiate
//    HwSection<false> on the kOff path, which is an empty struct, so
//    the untelemetered binary contains no hwprof calls at all
//    (verified by the attempts-counter test in test_hwprof.cpp).
//  * testable — the raw syscall is routed through an injectable
//    function pointer so tests can simulate EACCES/ENOSYS without
//    touching the kernel, and a global attempt counter proves the
//    off path makes zero calls.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

// Forward-declared; the full definition (from <linux/perf_event.h>)
// is only needed inside hwprof.cpp. Non-Linux builds never complete
// the type.
struct perf_event_attr;

namespace hipa::runtime {

/// Compile-time switch for hardware-counter collection, mirroring
/// `Telemetry`. kOff keeps the build token-identical to a build
/// without hwprof.
enum class HwProf : std::uint8_t { kOff = 0, kOn = 1 };

/// The events a group tries to open, in bit order for
/// HwProfiler::event_mask(). The leader (cycles) is mandatory: if it
/// cannot be opened the whole group degrades. Every other event is
/// best-effort — PMUs without NODE cache events (or VMs without LLC
/// events) simply drop those bits from the mask.
inline constexpr unsigned kNumHwEvents = 6;
[[nodiscard]] const char* hw_event_name(unsigned index);

inline constexpr unsigned kHwCycles = 1u << 0;
inline constexpr unsigned kHwInstructions = 1u << 1;
inline constexpr unsigned kHwLlcLoads = 1u << 2;
inline constexpr unsigned kHwLlcLoadMisses = 1u << 3;
inline constexpr unsigned kHwNodeLoads = 1u << 4;
inline constexpr unsigned kHwNodeLoadMisses = 1u << 5;

/// Accumulated hardware-counter deltas for one phase on one thread
/// (or an aggregate over threads). time_enabled/time_running expose
/// the kernel's multiplexing bookkeeping: when more groups contend
/// for the PMU than it has slots, running < enabled and counts
/// should be read as `count * enabled / running` estimates.
struct HwCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_load_misses = 0;
  std::uint64_t node_loads = 0;
  std::uint64_t node_load_misses = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  void add(const HwCounters& other) {
    cycles += other.cycles;
    instructions += other.instructions;
    llc_loads += other.llc_loads;
    llc_load_misses += other.llc_load_misses;
    node_loads += other.node_loads;
    node_load_misses += other.node_load_misses;
    time_enabled_ns += other.time_enabled_ns;
    time_running_ns += other.time_running_ns;
  }

  /// Fraction of enabled time the group was actually counting
  /// (1.0 = no multiplexing). 0 when the group never ran.
  [[nodiscard]] double multiplex_ratio() const {
    if (time_enabled_ns == 0) return 0.0;
    return static_cast<double>(time_running_ns) /
           static_cast<double>(time_enabled_ns);
  }

  [[nodiscard]] double ipc() const {
    if (cycles == 0) return 0.0;
    return static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

// ---------------------------------------------------------------------------
// Injectable syscall + attempt accounting (test seams).

/// Signature of the perf_event_open entry point. Returns a file
/// descriptor >= 0 on success or a *negative errno* on failure (the
/// wrapper folds the glibc -1/errno convention into one value).
using PerfEventOpenFn = long (*)(perf_event_attr* attr, int pid, int cpu,
                                 int group_fd, unsigned long flags);

/// Replace the syscall used by every subsequently opened group
/// (nullptr restores the real one). Tests inject EACCES/ENOSYS
/// failures here. Not thread-safe against concurrently *opening*
/// groups — install before starting a run.
void set_perf_event_open_override(PerfEventOpenFn fn);

/// Total perf_event_open attempts (real or overridden) since process
/// start. The off-path test asserts this does not move.
[[nodiscard]] std::uint64_t perf_event_open_attempts();

// ---------------------------------------------------------------------------

/// One per-thread counter group. Move-only (owns fds). All methods
/// are cheap no-ops once degraded.
class HwCounterGroup {
 public:
  HwCounterGroup() = default;
  ~HwCounterGroup() { close_group(); }
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;
  HwCounterGroup(HwCounterGroup&& other) noexcept { move_from(other); }
  HwCounterGroup& operator=(HwCounterGroup&& other) noexcept {
    if (this != &other) {
      close_group();
      move_from(other);
    }
    return *this;
  }

  /// Snapshot the group's current counts into `snap` and enable
  /// counting. Called at the top of a kernel region *on the worker
  /// thread itself*; the group is lazily (re)opened for the calling
  /// thread — fork-join backends create fresh OS threads per phase,
  /// so the cached tid detects the change and reopens. Returns false
  /// (and leaves `snap` untouched) when the group is unavailable.
  bool begin(HwCounters& snap);

  /// Read the group again and accumulate the delta from `since` into
  /// `into`. No-op when begin() returned false.
  void end(const HwCounters& since, HwCounters& into);

  /// True once a group has been successfully opened and not lost.
  [[nodiscard]] bool open() const { return leader_fd_ >= 0; }

  /// Bitmask (kHw*) of events that actually opened.
  [[nodiscard]] unsigned event_mask() const { return event_mask_; }

  /// errno of the most recent failed open attempt (0 = none).
  [[nodiscard]] int last_errno() const { return last_errno_; }

  void close_group();

 private:
  void move_from(HwCounterGroup& other);
  bool ensure_open_for_current_thread();
  bool read_group(HwCounters& out);

  int leader_fd_ = -1;
  std::array<int, kNumHwEvents> fds_{{-1, -1, -1, -1, -1, -1}};
  std::array<std::uint64_t, kNumHwEvents> ids_{};
  unsigned event_mask_ = 0;
  int last_errno_ = 0;
  long tid_ = -1;      ///< OS tid the group is bound to.
  bool failed_ = false;  ///< Open failed for this tid; don't retry every call.
};

/// Per-run profiler: one cache-line-padded group slot per worker
/// thread. reset() is called once per run (serial section); begin/end
/// run on the worker threads, each touching only its own slot.
class HwProfiler {
 public:
  /// Drop all groups and, when `enable`, provision `num_threads`
  /// fresh slots. Disabled profilers make zero syscalls.
  void reset(unsigned num_threads, bool enable);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(slots_.size());
  }

  [[nodiscard]] HwCounterGroup& group(unsigned t) { return slots_[t].group; }

  /// True when at least one thread's group opened successfully.
  [[nodiscard]] bool any_open() const;
  /// Number of threads whose group opened.
  [[nodiscard]] unsigned open_threads() const;
  /// Union of per-thread event masks.
  [[nodiscard]] unsigned event_mask() const;

 private:
  struct alignas(kCacheLine) Slot {
    HwCounterGroup group;
  };
  std::vector<Slot> slots_;
  bool enabled_ = false;
};

/// Scoped counter section. The `false` specialization is an empty
/// struct whose methods vanish entirely — the compile-time guarantee
/// that the kOff path contains no hwprof code. The `true` version
/// snapshots on construction and accumulates on finish().
template <bool kEnabled>
class HwSection;

template <>
class HwSection<false> {
 public:
  HwSection() = default;
  template <typename... Args>
  explicit HwSection(Args&&...) {}
  void finish(HwCounters&) {}
};

template <>
class HwSection<true> {
 public:
  HwSection() = default;
  HwSection(HwProfiler& prof, unsigned t) {
    if (prof.enabled()) {
      group_ = &prof.group(t);
      active_ = group_->begin(start_);
    }
  }
  /// Accumulate the section's counter deltas into `into` (typically
  /// PhaseSample::hw). Safe to call when the group degraded.
  void finish(HwCounters& into) {
    if (active_) group_->end(start_, into);
    active_ = false;
  }

 private:
  HwCounterGroup* group_ = nullptr;
  HwCounters start_{};
  bool active_ = false;
};

}  // namespace hipa::runtime
