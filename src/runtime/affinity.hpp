// CPU affinity and machine-topology discovery (best effort; no-ops
// where unsupported).
//
// The paper's thread–data pinning (§3.3.1–3.3.2) needs two facts about
// the host: which logical CPUs exist, and which NUMA node each one
// belongs to. On Linux both come from sysfs
// (/sys/devices/system/node/node*/cpulist); everywhere else — and on
// machines where sysfs is unreadable — discovery degrades to a single
// node holding every available CPU, so binding policies still produce
// a valid (if NUMA-oblivious) map instead of failing.
#pragma once

#include <string_view>
#include <vector>

namespace hipa::runtime {

/// Pin the calling thread to the given OS CPU. Returns false when the
/// platform refuses (e.g. CPU does not exist) — callers treat pinning
/// as an optimization, never a correctness requirement.
bool pin_current_thread(unsigned cpu);

/// Number of CPUs available to this process.
[[nodiscard]] unsigned available_cpus();

/// Logical-CPU layout of the host, grouped by NUMA node.
struct HostTopology {
  /// node_cpus[n] = logical CPU ids of node n, ascending. Never empty;
  /// every inner vector is non-empty.
  std::vector<std::vector<unsigned>> node_cpus;
  /// True when the layout came from sysfs; false for the single-node
  /// fallback.
  bool from_sysfs = false;

  [[nodiscard]] unsigned num_nodes() const {
    return static_cast<unsigned>(node_cpus.size());
  }
  [[nodiscard]] unsigned num_cpus() const {
    unsigned n = 0;
    for (const auto& c : node_cpus) n += static_cast<unsigned>(c.size());
    return n;
  }
};

/// Discover the host topology (uncached). Exposed for tests; normal
/// callers want `topology()`.
[[nodiscard]] HostTopology discover_topology();

/// Cached host topology, discovered once per process.
[[nodiscard]] const HostTopology& topology();

/// Parse a sysfs cpulist string ("0-3,8,10-11") into ascending CPU
/// ids. Malformed input yields the successfully-parsed prefix.
[[nodiscard]] std::vector<unsigned> parse_cpulist(std::string_view s);

/// CPU map for a node-blocked team (paper Algorithm 2): thread ids are
/// grouped per node — threads 0..tpn[0]-1 on node 0, the next tpn[1]
/// on node 1, and so on (the same convention as
/// part::HierarchicalPlan and sim placement_node_blocked). Requested
/// nodes beyond the host's node count wrap modulo the host nodes, and
/// threads beyond a node's CPU count wrap within the node, so the map
/// is always valid on the actual hardware.
[[nodiscard]] std::vector<unsigned> cpus_node_blocked(
    const std::vector<unsigned>& threads_per_node);

/// CPU map that round-robins `num_threads` over every host CPU in
/// node-interleaved order (one CPU from node 0, one from node 1, ...),
/// wrapping when the team is larger than the machine.
[[nodiscard]] std::vector<unsigned> cpus_spread(unsigned num_threads);

}  // namespace hipa::runtime
