// CPU affinity helpers (best effort; no-ops where unsupported).
#pragma once

namespace hipa::runtime {

/// Pin the calling thread to the given OS CPU. Returns false when the
/// platform refuses (e.g. CPU does not exist) — callers treat pinning
/// as an optimization, never a correctness requirement.
bool pin_current_thread(unsigned cpu);

/// Number of CPUs available to this process.
[[nodiscard]] unsigned available_cpus();

}  // namespace hipa::runtime
