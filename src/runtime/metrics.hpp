// Process-lifetime metrics plane: lock-free sharded counters/gauges
// and log-linear (HDR-style) latency histograms with snapshot-on-demand
// aggregation.
//
// Everything the per-run telemetry (runtime/telemetry.hpp) cannot do:
// a RunReport dies with its run, while a long-lived RankService needs
// counters that survive millions of queries and thousands of refreshes
// and can be scraped by an external poller (serve/metrics_export.hpp)
// without perturbing the hot path.
//
// Design:
//  * Registration is cold and mutex-protected; it hands out small
//    value-type handles (Counter / Gauge / Histogram) that hold raw
//    pointers into registry-owned, address-stable storage. Handles are
//    trivially copyable and null-safe: a default-constructed handle is
//    a no-op, which is the entire "metrics off" path — no #ifdef, no
//    template split, byte-identical results (tests assert this).
//  * Hot-path writes are one (counter/gauge) or two (histogram:
//    bucket + sum) relaxed atomic adds into a per-thread shard picked
//    by a thread_local index; shards are cache-line padded so writer
//    threads never bounce a line. No locks, no allocation, TSan-clean.
//  * snapshot() sums shards with relaxed loads under the registration
//    mutex (so the metric list is stable). Counters are monotone per
//    shard, so a concurrent snapshot sees a value between "events
//    started before" and "events finished before" — exactly the
//    consistency a scraper needs.
//
// Histogram bucketing (log-linear, kSubBits = 4):
//   values 0..15 get exact unit buckets; above that each power-of-two
//   octave is split into 16 linear sub-buckets, so the relative bucket
//   width — and therefore the worst-case quantile error — is 1/16.
//   Coverage tops out at 2^40 (~18 min in ns); larger values clamp
//   into the last bucket. 592 buckets total per shard.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hipa::runtime::metrics {

// ---------------------------------------------------------------------------
// Bucket scheme (exposed for tests and the accuracy gate in bench_serve).

inline constexpr unsigned kSubBits = 4;
inline constexpr unsigned kSubBuckets = 1u << kSubBits;  // 16
/// Highest tracked octave: values >= 2^kMaxExp clamp to the last bucket.
inline constexpr unsigned kMaxExp = 40;
inline constexpr unsigned kNumBuckets =
    kSubBuckets + (kMaxExp - kSubBits) * kSubBuckets;  // 592

[[nodiscard]] constexpr unsigned bucket_of(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<unsigned>(v);
  const unsigned m = static_cast<unsigned>(std::bit_width(v)) - 1;
  if (m >= kMaxExp) return kNumBuckets - 1;
  const unsigned shift = m - kSubBits;
  return ((m - kSubBits + 1) << kSubBits) +
         static_cast<unsigned>((v >> shift) & (kSubBuckets - 1));
}

[[nodiscard]] constexpr std::uint64_t bucket_lower(unsigned b) {
  if (b < kSubBuckets) return b;
  const unsigned decade = b >> kSubBits;
  const unsigned pos = b & (kSubBuckets - 1);
  return static_cast<std::uint64_t>(kSubBuckets + pos) << (decade - 1);
}

[[nodiscard]] constexpr std::uint64_t bucket_width(unsigned b) {
  return b < kSubBuckets ? 1 : std::uint64_t{1} << ((b >> kSubBits) - 1);
}

// ---------------------------------------------------------------------------
// Storage cells. One cache line per shard so concurrent writers on
// different shards never share a line.

struct alignas(kCacheLine) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(kCacheLine) HistogramShard {
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
};

namespace detail {
/// Round-robin shard index for the calling thread, masked to the
/// registry's shard count (always a power of two).
[[nodiscard]] unsigned thread_shard_slot();
}  // namespace detail

// ---------------------------------------------------------------------------
// Handles. Value types, trivially copyable, null-safe no-ops when
// default constructed (the "registry off" path).

class Counter {
 public:
  Counter() = default;
  // metrics-hot-path-begin: one relaxed add, no locks, no allocation.
  void inc(std::uint64_t delta = 1) const {
    if (cells_ == nullptr) return;
    cells_[detail::thread_shard_slot() & mask_].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  // metrics-hot-path-end
  [[nodiscard]] bool enabled() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(CounterCell* cells, unsigned mask) : cells_(cells), mask_(mask) {}
  CounterCell* cells_ = nullptr;
  unsigned mask_ = 0;
};

/// Gauges are last-writer-wins (set) or signed deltas (add); they see
/// far less traffic than counters, so a single shared cell suffices.
class Gauge {
 public:
  Gauge() = default;
  // metrics-hot-path-begin: one relaxed store/add, no locks.
  void set(std::int64_t v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) const {
    if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  // metrics-hot-path-end
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }
  [[nodiscard]] std::int64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  // metrics-hot-path-begin: bucket math + three relaxed adds into the
  // calling thread's shard; no locks, no allocation.
  void record(std::uint64_t v) const {
    if (shards_ == nullptr) return;
    HistogramShard& s = shards_[detail::thread_shard_slot() & mask_];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }
  // metrics-hot-path-end
  [[nodiscard]] bool enabled() const { return shards_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(HistogramShard* shards, unsigned mask)
      : shards_(shards), mask_(mask) {}
  HistogramShard* shards_ = nullptr;
  unsigned mask_ = 0;
};

// ---------------------------------------------------------------------------
// Snapshot surface (what exporters consume).

/// Single optional label pair; the serve layer only ever needs one
/// dimension (query class, refresh kind, engine, phase...), and one
/// pair keeps exposition and dedup trivial.
struct MetricLabel {
  std::string key;
  std::string value;
  [[nodiscard]] bool empty() const { return key.empty(); }
  [[nodiscard]] bool operator==(const MetricLabel&) const = default;
};

struct CounterSnapshot {
  std::string name;
  std::string help;
  MetricLabel label;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  MetricLabel label;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  MetricLabel label;
  double scale = 1.0;  ///< multiply raw values by this on export
  std::uint64_t count = 0;
  double sum = 0;   ///< raw units (pre-scale)
  double p50 = 0;   ///< raw units (pre-scale)
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;   ///< upper edge of highest non-empty bucket
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

struct MetricsSnapshot {
  double uptime_seconds = 0;
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterSnapshot* find_counter(
      std::string_view name, std::string_view label_value = {}) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(
      std::string_view name, std::string_view label_value = {}) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name, std::string_view label_value = {}) const;
};

// ---------------------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the serve layer uses by default.
  [[nodiscard]] static MetricsRegistry& global();

  /// Registration is idempotent: the same (name, label) returns a
  /// handle to the same cells, so two components can share a lifetime
  /// counter without coordination. Names must be unique across metric
  /// kinds (a counter and a gauge may not share a name).
  [[nodiscard]] Counter counter(std::string_view name, std::string_view help,
                                MetricLabel label = {});
  [[nodiscard]] Gauge gauge(std::string_view name, std::string_view help,
                            MetricLabel label = {});
  /// `scale` converts raw recorded units on export (e.g. 1e-9 for a
  /// histogram recording nanoseconds but exported in seconds).
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::string_view help,
                                    MetricLabel label = {},
                                    double scale = 1.0);

  /// Consistent cross-shard aggregation; safe to call concurrently
  /// with writers (relaxed reads of monotone per-shard cells).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] unsigned num_shards() const { return num_shards_; }
  [[nodiscard]] std::size_t num_metrics() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  unsigned num_shards_ = 1;
};

/// Nanoseconds from a seconds-denominated duration, saturating at 0.
[[nodiscard]] inline std::uint64_t seconds_to_ns(double s) {
  return s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9);
}

}  // namespace hipa::runtime::metrics
