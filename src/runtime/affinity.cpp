#include "runtime/affinity.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "common/logging.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hipa::runtime {

namespace {

/// NUMA node owning `cpu` per the cached topology; -1 when unknown.
int node_of_cpu(unsigned cpu) {
  const HostTopology& topo = topology();
  if (!topo.from_sysfs) return -1;
  for (std::size_t n = 0; n < topo.node_cpus.size(); ++n) {
    for (unsigned c : topo.node_cpus[n]) {
      if (c == cpu) return static_cast<int>(n);
    }
  }
  return -1;
}

}  // namespace

bool pin_current_thread([[maybe_unused]] unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  const bool ok =
      pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
  // Tag this thread's log lines with its node so `n:<id>` in the log
  // correlates with the per-node structure of the trace timeline.
  if (ok) log_set_thread_node(node_of_cpu(cpu));
  return ok;
#else
  return false;
#endif
}

unsigned available_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::vector<unsigned> parse_cpulist(std::string_view s) {
  std::vector<unsigned> cpus;
  std::size_t i = 0;
  auto parse_num = [&](unsigned& out) {
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    unsigned v = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      v = v * 10 + static_cast<unsigned>(s[i] - '0');
      ++i;
    }
    out = v;
    return true;
  };
  while (i < s.size()) {
    unsigned lo = 0;
    if (!parse_num(lo)) break;
    unsigned hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (!parse_num(hi) || hi < lo) break;
    }
    for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i < s.size() && s[i] == ',') ++i;
  }
  return cpus;
}

namespace {

/// Read one sysfs file into a string; empty on failure.
std::string read_sysfs(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  return std::string(buf, n);
}

HostTopology fallback_topology() {
  HostTopology topo;
  std::vector<unsigned> cpus(available_cpus());
  for (unsigned c = 0; c < cpus.size(); ++c) cpus[c] = c;
  topo.node_cpus.push_back(std::move(cpus));
  topo.from_sysfs = false;
  return topo;
}

}  // namespace

HostTopology discover_topology() {
#if defined(__linux__)
  HostTopology topo;
  for (unsigned node = 0;; ++node) {
    const std::string list = read_sysfs("/sys/devices/system/node/node" +
                                        std::to_string(node) + "/cpulist");
    if (list.empty()) break;
    std::vector<unsigned> cpus = parse_cpulist(list);
    // Memory-only nodes (CXL expanders, HBM tiers) have an empty
    // cpulist; they own no threads, so skip them.
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
  if (!topo.node_cpus.empty()) {
    topo.from_sysfs = true;
    return topo;
  }
#endif
  return fallback_topology();
}

const HostTopology& topology() {
  static const HostTopology topo = discover_topology();
  return topo;
}

std::vector<unsigned> cpus_node_blocked(
    const std::vector<unsigned>& threads_per_node) {
  const HostTopology& topo = topology();
  std::vector<unsigned> map;
  for (std::size_t n = 0; n < threads_per_node.size(); ++n) {
    // Plans built for more nodes than the host has wrap modulo the
    // host (graceful degradation on smaller machines).
    const auto& cpus = topo.node_cpus[n % topo.node_cpus.size()];
    for (unsigned t = 0; t < threads_per_node[n]; ++t) {
      map.push_back(cpus[t % cpus.size()]);
    }
  }
  return map;
}

std::vector<unsigned> cpus_spread(unsigned num_threads) {
  const HostTopology& topo = topology();
  // Node-interleaved flattening: cpu k of node 0, cpu k of node 1, ...
  std::vector<unsigned> order;
  std::size_t longest = 0;
  for (const auto& cpus : topo.node_cpus) {
    longest = std::max(longest, cpus.size());
  }
  for (std::size_t k = 0; k < longest; ++k) {
    for (const auto& cpus : topo.node_cpus) {
      if (k < cpus.size()) order.push_back(cpus[k]);
    }
  }
  std::vector<unsigned> map(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    map[t] = order[t % order.size()];
  }
  return map;
}

}  // namespace hipa::runtime
