#include "runtime/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hipa::runtime {

bool pin_current_thread([[maybe_unused]] unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  return false;
#endif
}

unsigned available_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace hipa::runtime
