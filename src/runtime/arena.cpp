#include "runtime/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "runtime/affinity.hpp"
#include "runtime/placement.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define HIPA_ARENA_HAVE_MMAP 1
#endif

namespace hipa::runtime {

namespace {

constexpr std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

// ---- hot-path bypass hook --------------------------------------------------
//
// Depth is process-global (worker threads allocate on behalf of the
// guarded run, so a thread-local flag on the guard's thread would miss
// them); the in-arena marker is thread-local (the arena's own heap
// fallback runs on whichever thread asked and must be exempt).

std::atomic<int> g_hot_depth{0};
std::atomic<std::uint64_t> g_bypass_count{0};
thread_local int t_in_arena = 0;

struct ScopedInArena {
  ScopedInArena() { ++t_in_arena; }
  ~ScopedInArena() { --t_in_arena; }
};

void alloc_observer(std::size_t bytes, std::size_t alignment) {
  (void)bytes;
  if (alignment < kPageSize) return;  // no placement intent
  if (t_in_arena > 0) return;         // the arena's own fallback
  if (g_hot_depth.load(std::memory_order_relaxed) <= 0) return;
  g_bypass_count.fetch_add(1, std::memory_order_relaxed);
#ifndef NDEBUG
  HIPA_CHECK(false,
             "page-aligned allocation bypassed runtime/arena inside a "
             "hot-path region (HotPathGuard active); allocate through "
             "NumaArena so placement policy stays in one place");
#endif
}

void ensure_observer_installed() {
  static const bool done = [] {
    hipa::detail::set_alloc_observer(&alloc_observer);
    return true;
  }();
  (void)done;
}

}  // namespace

HotPathGuard::HotPathGuard() {
  ensure_observer_installed();
  g_hot_depth.fetch_add(1, std::memory_order_relaxed);
}

HotPathGuard::~HotPathGuard() {
  g_hot_depth.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t hot_path_bypass_count() {
  return g_bypass_count.load(std::memory_order_relaxed);
}

// ---- NumaArena -------------------------------------------------------------

NumaArena::NumaArena(ArenaOptions opt) : opt_(opt) {
  ensure_observer_installed();
  num_nodes_ = opt_.num_nodes != 0 ? opt_.num_nodes
                                   : runtime::topology().num_nodes();
  HIPA_CHECK(num_nodes_ >= 1);
  opt_.initial_slab_bytes =
      std::max<std::size_t>(align_up(opt_.initial_slab_bytes, kPageSize),
                            kPageSize);
  opt_.max_slab_bytes =
      std::max(opt_.max_slab_bytes, opt_.initial_slab_bytes);
  regions_.resize(std::size_t{num_nodes_} + 2);
  for (unsigned n = 0; n < num_nodes_; ++n) {
    regions_[n].label = "node" + std::to_string(n);
    regions_[n].placement = ArenaPlacement::kNode;
    regions_[n].node = n;
  }
  regions_[num_nodes_].label = "interleave";
  regions_[num_nodes_].placement = ArenaPlacement::kInterleave;
  regions_[num_nodes_ + 1].label = "first-touch";
  regions_[num_nodes_ + 1].placement = ArenaPlacement::kFirstTouch;
}

NumaArena::~NumaArena() {
  for (Region& r : regions_) {
    for (Slab& s : r.slabs) {
      if (s.base == nullptr) continue;
#ifdef HIPA_ARENA_HAVE_MMAP
      if (s.mmapped) {
        ::munmap(s.base, s.size);
        continue;
      }
#endif
      detail::aligned_deallocate(s.base);
    }
  }
}

NumaArena::Region& NumaArena::region_for(ArenaPlacement placement,
                                         unsigned node) {
  switch (placement) {
    case ArenaPlacement::kNode:
      return regions_[node % num_nodes_];
    case ArenaPlacement::kInterleave:
      return regions_[num_nodes_];
    case ArenaPlacement::kFirstTouch:
      break;
  }
  return regions_[std::size_t{num_nodes_} + 1];
}

bool NumaArena::grow(Region& region, std::size_t min_bytes) {
  // Geometric growth: double the last slab, clamped to
  // [initial_slab_bytes, max_slab_bytes], but never below the request.
  std::size_t want = opt_.initial_slab_bytes;
  if (!region.slabs.empty()) {
    want = std::min(region.slabs.back().size * 2, opt_.max_slab_bytes);
  }
  want = std::max(want, align_up(min_bytes, kPageSize));
  if (region.reserved + want > opt_.max_region_bytes) return false;

  Slab slab;
  slab.size = want;
#ifdef HIPA_ARENA_HAVE_MMAP
  int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#ifdef MAP_NORESERVE
  flags |= MAP_NORESERVE;
#endif
  void* p = ::mmap(nullptr, want, PROT_READ | PROT_WRITE, flags, -1, 0);
  if (p != MAP_FAILED) {
    slab.base = p;
    slab.mmapped = true;
#ifdef MADV_HUGEPAGE
    if (opt_.advise_hugepages) {
      slab.hugepage = ::madvise(p, want, MADV_HUGEPAGE) == 0;
    }
#endif
  }
#endif
  if (slab.base == nullptr) {
    // mmap unavailable/refused: a heap slab still centralizes the bump
    // allocation and the stats, it just cannot be hugepage-advised.
    ScopedInArena in_arena;
    try {
      slab.base = detail::aligned_allocate(want, kPageSize);
    } catch (const std::bad_alloc&) {
      return false;
    }
  }

  // One placement call per slab: every later bump allocation inherits
  // the slab's policy with zero extra syscalls.
  bool bound = false;
  switch (region.placement) {
    case ArenaPlacement::kNode:
      bound = bind_pages_to_node(slab.base, slab.size, region.node);
      break;
    case ArenaPlacement::kInterleave:
      bound = interleave_pages(slab.base, slab.size);
      break;
    case ArenaPlacement::kFirstTouch:
      bound = true;  // no policy is the policy
      break;
  }
  region.policy_bound = region.policy_bound && bound;
  region.hugepages = region.hugepages && slab.hugepage;
  region.reserved += slab.size;
  region.slabs.push_back(slab);
  return true;
}

void* NumaArena::bump(Region& region, std::size_t bytes,
                      std::size_t alignment) {
  Slab& slab = region.slabs.back();
  const std::size_t off = align_up(slab.used, alignment);
  if (off + bytes > slab.size) return nullptr;
  slab.used = off + bytes;
  region.used += bytes;
  ++region.allocations;
  return static_cast<char*>(slab.base) + off;
}

void* NumaArena::allocate_impl(std::size_t bytes, ArenaPlacement placement,
                               unsigned node, std::size_t alignment,
                               bool* used_fallback) {
  *used_fallback = false;
  if (bytes == 0) return nullptr;
  HIPA_CHECK(is_pow2(alignment), "arena alignment must be a power of two");
  // Slabs are page-aligned, so any power-of-two alignment up to a page
  // is exact by construction; larger alignments work through align_up
  // as long as the slab base is page-aligned (mmap guarantees it).
  std::lock_guard<std::mutex> lock(mu_);
  Region& region = region_for(placement, node);
  void* p = region.slabs.empty() ? nullptr : bump(region, bytes, alignment);
  if (p == nullptr && grow(region, bytes + alignment)) {
    p = bump(region, bytes, alignment);
  }
  if (p == nullptr) {
    // Region cap reached or mapping refused: plain aligned heap, still
    // accounted for so the exhaustion is visible in the stats.
    p = fallback_allocate(bytes, alignment);
    *used_fallback = true;
    return p;
  }
  // Slab-level policy failed (no mbind support): degrade to pinned
  // first-touch zeroing at allocation granularity — contents are dead
  // by contract (AlignedBuffer semantics: uninitialized).
  if (!region.policy_bound) {
    if (region.placement == ArenaPlacement::kNode) {
      first_touch_zero_on_node(p, bytes, region.node);
    } else if (region.placement == ArenaPlacement::kInterleave) {
      first_touch_zero_interleaved(p, bytes);
    }
  }
  return p;
}

void* NumaArena::fallback_allocate(std::size_t bytes,
                                   std::size_t alignment) {
  ScopedInArena in_arena;
  void* p = detail::aligned_allocate(bytes, alignment);
  fallback_bytes_ += bytes;
  ++fallback_allocations_;
  return p;
}

bool NumaArena::owns(const void* p) const {
  std::lock_guard<std::mutex> lock(mu_);
  const char* c = static_cast<const char*>(p);
  for (const Region& r : regions_) {
    for (const Slab& s : r.slabs) {
      const char* b = static_cast<const char*>(s.base);
      if (c >= b && c < b + s.size) return true;
    }
  }
  return false;
}

ArenaStats NumaArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArenaStats st;
  st.regions.reserve(regions_.size());
  for (const Region& r : regions_) {
    ArenaRegionStats rs;
    rs.label = r.label;
    rs.placement = r.placement;
    rs.node = r.node;
    rs.reserved_bytes = r.reserved;
    rs.used_bytes = r.used;
    rs.allocations = r.allocations;
    rs.policy_bound = !r.slabs.empty() && r.policy_bound;
    rs.hugepages_advised = !r.slabs.empty() && r.hugepages;
    st.regions.push_back(std::move(rs));
  }
  st.fallback_bytes = fallback_bytes_;
  st.fallback_allocations = fallback_allocations_;
  return st;
}

void NumaArena::register_with(numa::PlacementAuditor& auditor,
                              std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Region& r : regions_) {
    if (r.placement != ArenaPlacement::kNode) continue;
    for (std::size_t i = 0; i < r.slabs.size(); ++i) {
      const Slab& s = r.slabs[i];
      if (s.used == 0) continue;
      auditor.add(std::string(prefix) + "[" + r.label + ":slab" +
                      std::to_string(i) + "]",
                  s.base, s.used, r.node);
    }
  }
}

}  // namespace hipa::runtime
