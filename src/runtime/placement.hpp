// Physical page placement for the native backend (paper §3.3.2).
//
// Two mechanisms, strongest available wins:
//  * mbind(2) page binding (compiled in under HIPA_WITH_NUMA, which
//    CMake auto-enables when <linux/mempolicy.h> is present — no
//    libnuma link needed, the raw syscall suffices; MPOL_MF_MOVE also
//    migrates pages that were already touched);
//  * first-touch: zero-write the range from a thread pinned to the
//    owning node, so the kernel commits the pages node-locally. Works
//    everywhere but only for ranges whose contents are dead.
//
// All functions are best-effort: on failure data stays wherever the
// allocator put it — slower, never wrong.
#pragma once

#include <cstddef>

namespace hipa::runtime {

/// True when mbind-based binding was compiled in AND the kernel
/// accepts set_mempolicy-family syscalls (false in some sandboxes).
[[nodiscard]] bool numa_binding_available();

/// Bind the full pages inside [p, p+bytes) to `node`, migrating any
/// already-committed pages. Returns false when unsupported or refused.
bool bind_pages_to_node(void* p, std::size_t bytes, unsigned node);

/// Interleave the full pages inside [p, p+bytes) round-robin over all
/// host nodes. Returns false when unsupported or refused.
bool interleave_pages(void* p, std::size_t bytes);

/// Zero `bytes` at `p` from a thread pinned to one of `node`'s CPUs so
/// untouched pages are committed node-locally (first-touch). Single
/// node hosts skip the pinning and just memset. Contents must be dead.
void first_touch_zero_on_node(void* p, std::size_t bytes, unsigned node);

/// Zero page-granular stripes of [p, p+bytes) from per-node pinned
/// threads so consecutive pages land on alternating nodes (first-touch
/// interleave). Contents must be dead.
void first_touch_zero_interleaved(void* p, std::size_t bytes);

}  // namespace hipa::runtime
