// NUMA page-placement auditing: did the pages land where we said?
//
// PR 2's first-touch / mbind placement *asserts* that each node's
// slice of the attribute and bin arrays is resident on that node, but
// never verifies it — and silent mis-placement (THP collapsing a
// range onto one node, a missed first-touch, cgroup mempolicy
// overrides) costs exactly the remote-DRAM traffic the paper's whole
// argument is about. The auditor closes the loop after allocation +
// placement: for every registered (buffer, intended node) range it
// reports how many of its pages are actually resident on that node.
//
// Two sources, strongest wins:
//  * move_pages(2) with a null nodes array — a pure query returning
//    the node of *each individual page*. Precise (page_granular), and
//    the only source that can audit per-node slices of one contiguous
//    mapping.
//  * /proc/self/numa_maps — per-VMA `N<node>=<pages>` counts. No
//    per-page resolution (a perfectly split 2-node buffer inside one
//    VMA reads as 50/50), so slice fractions from this source are
//    VMA-proportional estimates; page_granular stays false and the
//    strict >=90% acceptance test only applies to page-granular data.
//
// Like the rest of the runtime, everything soft-degrades: on
// non-Linux hosts, in sandboxes that filter the syscalls, or on
// single-node machines the audit reports available=false and the run
// proceeds untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hipa::numa {

/// Result for one registered buffer range.
struct BufferAudit {
  std::string name;          ///< e.g. "rank[node0]"
  unsigned intended_node = 0;
  std::uint64_t pages_total = 0;
  std::uint64_t pages_on_node = 0;    ///< resident on intended_node
  std::uint64_t pages_elsewhere = 0;  ///< resident on some other node
  std::uint64_t pages_unmapped = 0;   ///< not yet committed

  /// Fraction of *resident* pages on the intended node (uncommitted
  /// pages have no placement yet and are excluded). 0 when nothing is
  /// resident.
  [[nodiscard]] double fraction_on_node() const {
    const std::uint64_t resident = pages_on_node + pages_elsewhere;
    return resident == 0
               ? 0.0
               : static_cast<double>(pages_on_node) /
                     static_cast<double>(resident);
  }
};

/// Whole-run audit surface (RunReport::placement_audit).
struct PlacementAudit {
  bool available = false;  ///< false: single-node host / syscall denied
  /// "move_pages" or "numa_maps" when available.
  std::string source;
  /// True when per-page placement was queried (move_pages); false for
  /// the VMA-proportional numa_maps estimate.
  bool page_granular = false;
  std::vector<BufferAudit> buffers;

  /// Smallest per-buffer on-node fraction (1.0 when empty).
  [[nodiscard]] double min_fraction() const {
    double m = 1.0;
    for (const BufferAudit& b : buffers) {
      const double f = b.fraction_on_node();
      if (f < m) m = f;
    }
    return m;
  }
};

/// Collects (name, range, intended node) registrations during
/// placement, then audits them all in one pass.
class PlacementAuditor {
 public:
  /// Register a buffer range. Interior page-aligned span is audited
  /// (partial head/tail pages are skipped — their placement is shared
  /// with the neighbour). Empty/ sub-page ranges are recorded with
  /// pages_total=0.
  void add(std::string name, const void* p, std::size_t bytes,
           unsigned intended_node);

  [[nodiscard]] std::size_t num_buffers() const { return ranges_.size(); }
  void clear() { ranges_.clear(); }

  /// Query the kernel for every registered range. Single-node hosts
  /// and denied syscalls yield available=false.
  [[nodiscard]] PlacementAudit audit() const;

 private:
  struct Range {
    std::string name;
    std::uintptr_t begin = 0;  ///< page-aligned (rounded up)
    std::uintptr_t end = 0;    ///< page-aligned (rounded down)
    unsigned node = 0;
  };
  std::vector<Range> ranges_;
};

// ---------------------------------------------------------------------------
// Parsing internals, exposed for unit tests.

/// One parsed /proc/self/numa_maps line.
struct NumaMapsVma {
  std::uintptr_t start = 0;
  /// Pages per node: node_pages[n] = pages resident on node n.
  std::vector<std::uint64_t> node_pages;
  std::uint64_t kernel_page_bytes = 4096;

  [[nodiscard]] std::uint64_t total_pages() const {
    std::uint64_t n = 0;
    for (std::uint64_t p : node_pages) n += p;
    return n;
  }
};

/// Parse the text of /proc/self/numa_maps ("<hex-addr> <policy>
/// [anon=N] [dirty=N] [N0=n N1=m ...] [kernelpagesize_kB=4]" per
/// line). Lines without N<node>= terms still yield a VMA with empty
/// node_pages. Malformed lines are skipped. Pure function — unit
/// tested against synthetic text.
[[nodiscard]] std::vector<NumaMapsVma> parse_numa_maps(std::string_view text);

}  // namespace hipa::numa
