#include "runtime/numa_audit.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/types.hpp"
#include "runtime/affinity.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#define HIPA_HAVE_NUMA_AUDIT 1
#else
#define HIPA_HAVE_NUMA_AUDIT 0
#endif

namespace hipa::numa {

namespace {

constexpr std::uintptr_t kPage = kPageSize;

std::uintptr_t page_up(std::uintptr_t a) { return (a + kPage - 1) & ~(kPage - 1); }
std::uintptr_t page_down(std::uintptr_t a) { return a & ~(kPage - 1); }

#if HIPA_HAVE_NUMA_AUDIT

/// move_pages(2) pure query: pages -> status (node id or -errno).
/// Returns false when the syscall itself is unavailable/denied.
bool query_page_nodes(const std::vector<void*>& pages,
                      std::vector<int>& status) {
  status.assign(pages.size(), -ENOENT);
  if (pages.empty()) return true;
  const long rc =
      ::syscall(SYS_move_pages, /*pid=*/0, pages.size(), pages.data(),
                /*nodes=*/nullptr, status.data(), /*flags=*/0);
  return rc == 0;
}

/// Slurp /proc/self/numa_maps (procfs files report size 0, so read
/// incrementally). Empty string on failure.
std::string read_numa_maps() {
  std::FILE* f = std::fopen("/proc/self/numa_maps", "r");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

#endif  // HIPA_HAVE_NUMA_AUDIT

}  // namespace

std::vector<NumaMapsVma> parse_numa_maps(std::string_view text) {
  std::vector<NumaMapsVma> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    // Leading hex address, no 0x prefix.
    char* endp = nullptr;
    const std::string head(line.substr(0, line.find(' ')));
    const unsigned long long addr = std::strtoull(head.c_str(), &endp, 16);
    if (endp == head.c_str() || (endp != nullptr && *endp != '\0')) continue;

    NumaMapsVma vma;
    vma.start = static_cast<std::uintptr_t>(addr);

    // Tokenize the remainder; we care about N<node>=<pages> and
    // kernelpagesize_kB=<kB>.
    std::size_t tpos = head.size();
    while (tpos < line.size()) {
      while (tpos < line.size() && line[tpos] == ' ') ++tpos;
      std::size_t tend = tpos;
      while (tend < line.size() && line[tend] != ' ') ++tend;
      const std::string_view tok = line.substr(tpos, tend - tpos);
      tpos = tend;
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) continue;
      const std::string_view key = tok.substr(0, eq);
      const std::string val(tok.substr(eq + 1));
      if (key.size() >= 2 && key[0] == 'N' &&
          key.find_first_not_of("0123456789", 1) == std::string_view::npos) {
        char* vend = nullptr;
        const unsigned long node =
            std::strtoul(std::string(key.substr(1)).c_str(), nullptr, 10);
        const unsigned long long pages = std::strtoull(val.c_str(), &vend, 10);
        if (vend == val.c_str()) continue;
        if (node >= vma.node_pages.size()) vma.node_pages.resize(node + 1, 0);
        vma.node_pages[node] = static_cast<std::uint64_t>(pages);
      } else if (key == "kernelpagesize_kB") {
        char* vend = nullptr;
        const unsigned long long kb = std::strtoull(val.c_str(), &vend, 10);
        if (vend != val.c_str() && kb > 0) vma.kernel_page_bytes = kb * 1024;
      }
    }
    out.push_back(std::move(vma));
  }
  std::sort(out.begin(), out.end(),
            [](const NumaMapsVma& a, const NumaMapsVma& b) {
              return a.start < b.start;
            });
  return out;
}

void PlacementAuditor::add(std::string name, const void* p, std::size_t bytes,
                           unsigned intended_node) {
  Range r;
  r.name = std::move(name);
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  r.begin = page_up(addr);
  r.end = page_down(addr + bytes);
  if (r.end < r.begin) r.end = r.begin;
  r.node = intended_node;
  ranges_.push_back(std::move(r));
}

PlacementAudit PlacementAuditor::audit() const {
  PlacementAudit out;
#if HIPA_HAVE_NUMA_AUDIT
  // Nothing registered (NUMA-oblivious engines) or a single-node host
  // (every page trivially "on node 0") has nothing to audit. Per the
  // degradation contract this is available=false rather than a vacuous
  // pass.
  if (ranges_.empty()) return out;
  if (runtime::topology().num_nodes() < 2) return out;

  // --- Primary: move_pages page-status query --------------------------
  {
    std::vector<void*> pages;
    std::vector<std::size_t> owner;  // pages[i] belongs to ranges_[owner[i]]
    for (std::size_t ri = 0; ri < ranges_.size(); ++ri) {
      const Range& r = ranges_[ri];
      for (std::uintptr_t a = r.begin; a < r.end; a += kPage) {
        pages.push_back(reinterpret_cast<void*>(a));
        owner.push_back(ri);
      }
    }
    std::vector<int> status;
    if (query_page_nodes(pages, status)) {
      out.available = true;
      out.source = "move_pages";
      out.page_granular = true;
      out.buffers.reserve(ranges_.size());
      for (const Range& r : ranges_) {
        BufferAudit b;
        b.name = r.name;
        b.intended_node = r.node;
        out.buffers.push_back(std::move(b));
      }
      for (std::size_t i = 0; i < pages.size(); ++i) {
        BufferAudit& b = out.buffers[owner[i]];
        ++b.pages_total;
        if (status[i] < 0) {
          ++b.pages_unmapped;  // -ENOENT: never touched
        } else if (static_cast<unsigned>(status[i]) == b.intended_node) {
          ++b.pages_on_node;
        } else {
          ++b.pages_elsewhere;
        }
      }
      return out;
    }
  }

  // --- Fallback: /proc/self/numa_maps VMA proportions -----------------
  const std::string text = read_numa_maps();
  if (text.empty()) return out;
  const std::vector<NumaMapsVma> vmas = parse_numa_maps(text);
  if (vmas.empty()) return out;

  out.available = true;
  out.source = "numa_maps";
  out.page_granular = false;
  for (const Range& r : ranges_) {
    BufferAudit b;
    b.name = r.name;
    b.intended_node = r.node;
    b.pages_total = (r.end - r.begin) / kPage;
    // Find the last VMA starting at or before the range. numa_maps
    // gives no VMA end, so attribute the VMA's per-node counts to the
    // range proportionally (estimate; flagged via page_granular).
    auto it = std::upper_bound(
        vmas.begin(), vmas.end(), r.begin,
        [](std::uintptr_t a, const NumaMapsVma& v) { return a < v.start; });
    if (it != vmas.begin()) {
      --it;
      const std::uint64_t vma_pages = it->total_pages();
      if (vma_pages > 0 && b.pages_total > 0) {
        const std::uint64_t on_node =
            r.node < it->node_pages.size() ? it->node_pages[r.node] : 0;
        const double frac = static_cast<double>(on_node) /
                            static_cast<double>(vma_pages);
        b.pages_on_node = static_cast<std::uint64_t>(
            frac * static_cast<double>(b.pages_total) + 0.5);
        const std::uint64_t resident =
            std::min<std::uint64_t>(vma_pages, b.pages_total);
        b.pages_elsewhere =
            resident > b.pages_on_node ? resident - b.pages_on_node : 0;
        b.pages_unmapped = b.pages_total - std::min(b.pages_total, resident);
      } else {
        b.pages_unmapped = b.pages_total;
      }
    } else {
      b.pages_unmapped = b.pages_total;
    }
    out.buffers.push_back(std::move(b));
  }
  return out;
#else
  return out;
#endif
}

}  // namespace hipa::numa
