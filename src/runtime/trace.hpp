// Chrome/Perfetto trace export of a run's PhaseTimeline.
//
// Serializes the per-thread span logs (kernel regions + barrier
// waits), per-iteration marks and per-iteration duration samples into
// the Trace Event Format JSON that chrome://tracing and
// https://ui.perfetto.dev load directly:
//
//   { "traceEvents": [
//       {"ph":"M","name":"process_name", ...},          // metadata
//       {"ph":"M","name":"thread_name","tid":T, ...},   // one per track
//       {"ph":"X","name":"scatter","cat":"phase",
//        "ts":<us>,"dur":<us>,"pid":1,"tid":T},         // complete span
//       {"ph":"i","name":"iteration 3", ...},           // instant mark
//       {"ph":"C","name":"iteration_seconds", ...} ] }  // counter track
//
// Timestamps are microseconds on the process-wide steady epoch
// (steady_uptime_seconds()), the same clock the logging layer prints,
// so log lines and trace spans correlate by eyeball.
#pragma once

#include <string>

#include "runtime/telemetry.hpp"

namespace hipa::trace {

/// Stateless writer: one call serializes one run's timeline.
class ChromeTraceWriter {
 public:
  /// Write `timeline` to `path` as Chrome trace-events JSON.
  /// `process_name` labels the pid-1 track group (typically the
  /// method name, e.g. "HiPa"). Spans must have been collected
  /// (PhaseTimeline::enable_spans before the run); a spanless
  /// timeline still produces a valid — just sparse — trace. Returns
  /// false when the file cannot be opened or written; never throws.
  static bool write(const std::string& path,
                    const runtime::PhaseTimeline& timeline,
                    const std::string& process_name);
};

}  // namespace hipa::trace
