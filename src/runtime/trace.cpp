#include "runtime/trace.hpp"

#include <cstdio>
#include <string>

namespace hipa::trace {

namespace {

/// Minimal JSON string escaping for names we control (method names,
/// phase names): quotes, backslashes and control chars.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Seconds → integer microseconds (trace-event ts/dur unit).
long long us(double seconds) {
  const double v = seconds * 1e6;
  return v <= 0.0 ? 0 : static_cast<long long>(v + 0.5);
}

class EventStream {
 public:
  explicit EventStream(std::FILE* f) : f_(f) {}

  void emit(const std::string& body) {
    std::fprintf(f_, "%s  {%s}", first_ ? "" : ",\n", body.c_str());
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

}  // namespace

bool ChromeTraceWriter::write(const std::string& path,
                              const runtime::PhaseTimeline& timeline,
                              const std::string& process_name) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fprintf(f, "{\n\"traceEvents\": [\n");
  EventStream ev(f);
  char buf[256];

  // Process + thread metadata: one named track per worker thread.
  std::snprintf(buf, sizeof(buf),
                "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
                "\"args\":{\"name\":\"%s\"}",
                escape(process_name).c_str());
  ev.emit(buf);
  const unsigned nthreads = timeline.num_threads();
  for (unsigned t = 0; t < nthreads; ++t) {
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"worker %u\"}",
                  t, t);
    ev.emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"sort_index\":%u}",
                  t, t);
    ev.emit(buf);
  }

  // Complete ("X") events: kernel spans named by phase, barrier spans
  // named "barrier:<phase>"; distinct cat so Perfetto colors differ.
  for (unsigned t = 0; t < nthreads; ++t) {
    for (const runtime::SpanEvent& s : timeline.thread(t).spans) {
      const std::string phase{runtime::phase_name(s.phase)};
      const bool barrier = s.kind == runtime::SpanKind::kBarrier;
      const std::string name = barrier ? "barrier:" + phase : phase;
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%lld,\"dur\":%lld",
                    escape(name).c_str(), barrier ? "barrier" : "phase", t,
                    us(s.start_seconds), us(s.dur_seconds));
      ev.emit(buf);
    }
  }

  // Iteration boundaries: instant marks (scoped to the process so the
  // vertical line crosses every track) plus a counter track of
  // per-iteration wall seconds.
  const std::vector<double>& marks = timeline.iteration_marks();
  const std::vector<double>& iters = timeline.iteration_seconds();
  for (std::size_t i = 0; i < marks.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"i\",\"name\":\"iteration %zu\","
                  "\"cat\":\"iteration\",\"s\":\"p\",\"pid\":1,\"tid\":0,"
                  "\"ts\":%lld",
                  i, us(marks[i]));
    ev.emit(buf);
    if (i < iters.size()) {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"C\",\"name\":\"iteration_ms\",\"pid\":1,"
                    "\"tid\":0,\"ts\":%lld,\"args\":{\"ms\":%.6f}",
                    us(marks[i]), iters[i] * 1e3);
      ev.emit(buf);
    }
  }

  std::fprintf(f, "\n],\n\"displayTimeUnit\": \"ms\"\n}\n");
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace hipa::trace
