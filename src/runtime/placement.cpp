#include "runtime/placement.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "runtime/affinity.hpp"

#if defined(HIPA_WITH_NUMA) && defined(__linux__)
#include <linux/mempolicy.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hipa::runtime {

namespace {

/// Page-align a byte range inward; returns false when no whole page
/// fits (tiny ranges are cache-resident anyway — placement is moot).
bool page_interior(void* p, std::size_t bytes, std::uintptr_t& start,
                   std::size_t& len) {
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t hi = lo + bytes;
  start = (lo + kPageSize - 1) & ~(kPageSize - 1);
  const std::uintptr_t end = hi & ~(kPageSize - 1);
  if (end <= start) return false;
  len = end - start;
  return true;
}

#if defined(HIPA_WITH_NUMA) && defined(__linux__)

bool mbind_range(void* p, std::size_t bytes, int mode,
                 unsigned long nodemask) {
  std::uintptr_t start = 0;
  std::size_t len = 0;
  if (!page_interior(p, bytes, start, len)) return true;  // nothing to do
  // Raw syscall: works without libnuma. maxnode counts mask bits.
  return syscall(SYS_mbind, start, len, mode, &nodemask,
                 sizeof(nodemask) * 8, MPOL_MF_MOVE) == 0;
}

bool probe_mempolicy() {
  // get_mempolicy with all-null outputs is the cheapest capability
  // probe; sandboxes that filter mempolicy syscalls return an error.
  return syscall(SYS_get_mempolicy, nullptr, nullptr, 0, nullptr, 0) == 0;
}

#endif  // HIPA_WITH_NUMA && __linux__

}  // namespace

bool numa_binding_available() {
#if defined(HIPA_WITH_NUMA) && defined(__linux__)
  static const bool ok = probe_mempolicy();
  return ok;
#else
  return false;
#endif
}

bool bind_pages_to_node([[maybe_unused]] void* p,
                        [[maybe_unused]] std::size_t bytes,
                        [[maybe_unused]] unsigned node) {
#if defined(HIPA_WITH_NUMA) && defined(__linux__)
  if (!numa_binding_available()) return false;
  if (node >= sizeof(unsigned long) * 8) return false;
  if (node >= topology().num_nodes()) node %= topology().num_nodes();
  return mbind_range(p, bytes, MPOL_BIND, 1UL << node);
#else
  return false;
#endif
}

bool interleave_pages([[maybe_unused]] void* p,
                      [[maybe_unused]] std::size_t bytes) {
#if defined(HIPA_WITH_NUMA) && defined(__linux__)
  if (!numa_binding_available()) return false;
  const unsigned nodes = topology().num_nodes();
  if (nodes <= 1) return bind_pages_to_node(p, bytes, 0);
  unsigned long mask = 0;
  for (unsigned n = 0; n < nodes && n < sizeof(mask) * 8; ++n) {
    mask |= 1UL << n;
  }
  return mbind_range(p, bytes, MPOL_INTERLEAVE, mask);
#else
  return false;
#endif
}

void first_touch_zero_on_node(void* p, std::size_t bytes, unsigned node) {
  if (bytes == 0) return;
  const HostTopology& topo = topology();
  if (topo.num_nodes() <= 1) {
    // Single node: every touch is local; skip the thread round trip.
    std::memset(p, 0, bytes);
    return;
  }
  const auto& cpus = topo.node_cpus[node % topo.num_nodes()];
  std::thread worker([&] {
    pin_current_thread(cpus[0]);  // best effort — memset either way
    std::memset(p, 0, bytes);
  });
  worker.join();
}

void first_touch_zero_interleaved(void* p, std::size_t bytes) {
  if (bytes == 0) return;
  const HostTopology& topo = topology();
  const unsigned nodes = topo.num_nodes();
  if (nodes <= 1 || bytes < 2 * kPageSize) {
    std::memset(p, 0, bytes);
    return;
  }
  // Node k zeroes pages {k, k+nodes, k+2*nodes, ...}; the first-touch
  // rule then commits consecutive pages to alternating nodes.
  char* const base = static_cast<char*>(p);
  const std::size_t pages = (bytes + kPageSize - 1) / kPageSize;
  std::vector<std::thread> workers;
  workers.reserve(nodes);
  for (unsigned k = 0; k < nodes; ++k) {
    workers.emplace_back([&, k] {
      pin_current_thread(topo.node_cpus[k][0]);
      for (std::size_t pg = k; pg < pages; pg += nodes) {
        const std::size_t off = pg * kPageSize;
        std::memset(base + off, 0, std::min(kPageSize, bytes - off));
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace hipa::runtime
