// Partitioned NUMA arena allocator (JArena-style).
//
// Placement policy for every hot-path buffer used to be smeared across
// the engines and the serve layer as ad-hoc page-aligned allocations
// followed by mbind/first-touch calls. The arena puts it in ONE
// auditable place: it reserves one region per NUMA node (plus an
// interleaved region and an unplaced first-touch region), carves
// page-aligned bump allocations out of them, and applies the placement
// policy once per mapped slab —
//
//   region[node n]     mmap'd slab chain, mbind(MPOL_BIND n) when the
//                      syscall is available, else pinned first-touch
//                      zeroing at allocation granularity;
//   region[interleave] slab chain under MPOL_INTERLEAVE (or striped
//                      first-touch);
//   region[first-touch] slab chain with NO policy: pages commit
//                      wherever the first writer runs — the engines'
//                      contiguous attribute arrays rely on exactly this
//                      (each pinned owner touches its own slice).
//
// Slabs are MADV_HUGEPAGE-advised and grow geometrically, so a region
// never needs to be sized in advance; when a region hits its
// configured cap (or mmap fails) allocation falls back to the plain
// aligned heap and the fallback is counted in the stats. Allocations
// are handed out as AlignedBuffer<T>s that do NOT free individually —
// the arena reclaims every slab wholesale at destruction, which is the
// right lifetime for engine attribute/bin buffers (they live exactly
// as long as their engine).
//
// Stats (bytes per node, hugepage status, fallbacks) feed RunReport
// telemetry, and node-bound regions register with numa::
// PlacementAuditor so the ≥90%-node-local acceptance check covers
// arena memory like any other placed buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "runtime/numa_audit.hpp"

namespace hipa::detail {
/// DeallocFn-compatible wrapper over aligned_deallocate (noexcept
/// function pointers do not convert to AlignedBuffer::DeallocFn; the
/// named adapter also reads better at call sites).
inline void aligned_deallocate_adapter(void* p) { aligned_deallocate(p); }
}  // namespace hipa::detail

namespace hipa::runtime {

/// Placement class of an arena allocation (the arena-level mirror of
/// engine::DataPlacement).
enum class ArenaPlacement {
  kNode,        ///< from the node-bound region of one NUMA node
  kInterleave,  ///< from the page-interleaved region
  kFirstTouch,  ///< unplaced; pages commit where first touched
};

struct ArenaOptions {
  /// Node-bound region count; 0 = discovered host topology.
  unsigned num_nodes = 0;
  /// First slab size per region; later slabs double up to
  /// max_slab_bytes. Virtual reservation only until pages are touched.
  std::size_t initial_slab_bytes = std::size_t{8} << 20;
  std::size_t max_slab_bytes = std::size_t{256} << 20;
  /// Cap on total reserved bytes per region; requests past it fall
  /// back to the plain aligned heap (tested exhaustion path).
  std::size_t max_region_bytes = ~std::size_t{0};
  /// madvise(MADV_HUGEPAGE) each slab (recorded, best-effort).
  bool advise_hugepages = true;
};

/// Per-region allocation + placement status.
struct ArenaRegionStats {
  std::string label;             ///< "node3", "interleave", "first-touch"
  ArenaPlacement placement = ArenaPlacement::kFirstTouch;
  unsigned node = 0;             ///< meaningful for kNode regions
  std::size_t reserved_bytes = 0;
  std::size_t used_bytes = 0;
  std::uint64_t allocations = 0;
  /// Explicit mbind/interleave policy applied to every slab (false:
  /// placement degraded to pinned first-touch / none).
  bool policy_bound = false;
  /// Every slab accepted MADV_HUGEPAGE (false when any refused or
  /// hugepage advice is off/unsupported).
  bool hugepages_advised = false;
};

struct ArenaStats {
  std::vector<ArenaRegionStats> regions;
  std::size_t fallback_bytes = 0;  ///< served by the plain aligned heap
  std::uint64_t fallback_allocations = 0;

  [[nodiscard]] std::size_t total_used() const {
    std::size_t b = fallback_bytes;
    for (const ArenaRegionStats& r : regions) b += r.used_bytes;
    return b;
  }
  /// Bytes bump-allocated from node `n`'s bound region.
  [[nodiscard]] std::size_t node_bytes(unsigned n) const {
    for (const ArenaRegionStats& r : regions) {
      if (r.placement == ArenaPlacement::kNode && r.node == n) {
        return r.used_bytes;
      }
    }
    return 0;
  }
};

/// The partitioned arena. Thread-safe (one mutex; allocation is a
/// preprocessing-time operation, never on the iteration hot path).
/// Non-movable: handed-out pointers reference the regions directly.
class NumaArena {
 public:
  explicit NumaArena(ArenaOptions opt = {});
  ~NumaArena();

  NumaArena(const NumaArena&) = delete;
  NumaArena& operator=(const NumaArena&) = delete;

  /// Bump-allocate `bytes` aligned to `alignment` (power of two,
  /// default one page) from the region selected by (placement, node).
  /// `node` wraps modulo num_nodes() like the rest of the runtime.
  /// Returns nullptr only for bytes == 0.
  void* allocate(std::size_t bytes, ArenaPlacement placement,
                 unsigned node = 0, std::size_t alignment = kPageSize) {
    bool fallback = false;
    return allocate_impl(bytes, placement, node, alignment, &fallback);
  }

  /// Typed convenience: an AlignedBuffer viewing arena storage (its
  /// reset() is a no-op; the arena reclaims slabs at destruction —
  /// keep the arena alive for as long as its buffers). Heap-fallback
  /// allocations free individually like a plain AlignedBuffer.
  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc_buffer(
      std::size_t count, ArenaPlacement placement, unsigned node = 0,
      std::size_t alignment = kPageSize) {
    if (count == 0) return {};
    bool fallback = false;
    void* p = allocate_impl(count * sizeof(T), placement, node, alignment,
                            &fallback);
    return AlignedBuffer<T>(
        static_cast<T*>(p), count,
        fallback ? &hipa::detail::aligned_deallocate_adapter : nullptr);
  }

  /// True when `p` points into one of this arena's slabs (heap
  /// fallbacks are NOT owned — they free individually).
  [[nodiscard]] bool owns(const void* p) const;

  [[nodiscard]] unsigned num_nodes() const { return num_nodes_; }

  [[nodiscard]] ArenaStats stats() const;

  /// Register every node-bound region's used spans with the placement
  /// auditor (one entry per slab), so `audit()` verifies arena pages
  /// landed on their intended nodes alongside the engines' buffers.
  void register_with(numa::PlacementAuditor& auditor,
                     std::string_view prefix = "arena") const;

 private:
  struct Slab {
    void* base = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
    bool mmapped = false;   ///< munmap vs aligned free at teardown
    bool hugepage = false;  ///< MADV_HUGEPAGE accepted
  };
  struct Region {
    std::string label;
    ArenaPlacement placement = ArenaPlacement::kFirstTouch;
    unsigned node = 0;
    std::vector<Slab> slabs;
    std::size_t reserved = 0;
    std::size_t used = 0;
    std::uint64_t allocations = 0;
    bool policy_bound = true;  ///< AND of per-slab policy success
    bool hugepages = true;     ///< AND of per-slab MADV_HUGEPAGE
  };

  void* allocate_impl(std::size_t bytes, ArenaPlacement placement,
                      unsigned node, std::size_t alignment,
                      bool* used_fallback);
  Region& region_for(ArenaPlacement placement, unsigned node);
  /// Map a new slab of >= `min_bytes` into `region` and apply its
  /// placement policy; returns false when mapping failed or the
  /// region cap is reached.
  bool grow(Region& region, std::size_t min_bytes);
  void* bump(Region& region, std::size_t bytes, std::size_t alignment);
  void* fallback_allocate(std::size_t bytes, std::size_t alignment);

  mutable std::mutex mu_;
  ArenaOptions opt_;
  unsigned num_nodes_ = 1;
  std::vector<Region> regions_;  ///< nodes..., interleave, first-touch
  std::size_t fallback_bytes_ = 0;
  std::uint64_t fallback_allocations_ = 0;
};

// ---------------------------------------------------------------------------
// Hot-path allocation audit hook (debug builds).

/// RAII marker for an engine's iteration hot path. While any guard is
/// live (process-wide), a page-aligned AlignedBuffer allocation that
/// does NOT come from an arena is counted — and, in assertion-enabled
/// builds, raises HIPA_CHECK — so placement policy cannot silently
/// leak back out of runtime/arena. Cache-line (and smaller) aligned
/// allocations are exempt: only page-aligned buffers carry placement
/// intent.
class HotPathGuard {
 public:
  HotPathGuard();
  ~HotPathGuard();
  HotPathGuard(const HotPathGuard&) = delete;
  HotPathGuard& operator=(const HotPathGuard&) = delete;
};

/// Process-wide count of page-aligned allocations that bypassed the
/// arena while a HotPathGuard was live (diagnostic; also incremented
/// in builds where the assertion is compiled out).
[[nodiscard]] std::uint64_t hot_path_bypass_count();

}  // namespace hipa::runtime
