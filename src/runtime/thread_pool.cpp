#include "runtime/thread_pool.hpp"

#include "common/numeric.hpp"
#include "runtime/affinity.hpp"

namespace hipa::runtime {

PersistentTeam::PersistentTeam(unsigned num_threads,
                               std::vector<unsigned> cpu_of_thread) {
  HIPA_CHECK(num_threads >= 1);
  HIPA_CHECK(cpu_of_thread.empty() || cpu_of_thread.size() == num_threads,
             "cpu list must match team size");
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const int cpu = cpu_of_thread.empty()
                        ? -1
                        : static_cast<int>(cpu_of_thread[t]);
    workers_.emplace_back([this, t, cpu] { worker_loop(t, cpu); });
  }
}

PersistentTeam::~PersistentTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_dispatch_.notify_all();
  for (auto& w : workers_) w.join();
}

void PersistentTeam::run(const std::function<void(unsigned)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  remaining_ = size();
  ++generation_;
  cv_dispatch_.notify_all();
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void PersistentTeam::worker_loop(unsigned tid, int cpu) {
  if (cpu >= 0) pin_current_thread(static_cast<unsigned>(cpu));
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_dispatch_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void fork_join_run(unsigned num_threads,
                   const std::function<void(unsigned)>& fn) {
  HIPA_CHECK(num_threads >= 1);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    threads.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& th : threads) th.join();
}

void parallel_for(unsigned num_threads, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, count));
  const auto bounds = even_chunks<std::size_t>(count, num_threads);
  fork_join_run(num_threads, [&](unsigned t) {
    body(bounds[t], bounds[t + 1]);
  });
}

}  // namespace hipa::runtime
