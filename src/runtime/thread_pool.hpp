// Native thread teams.
//
// PersistentTeam implements the paper's Algorithm 2 thread model: T
// threads created once (optionally pinned), re-dispatched for every
// phase via a generation counter — no creation or migration between
// phases. fork_join_run() implements the Algorithm 1 model: fresh
// threads per parallel region, exactly the overhead HiPa avoids.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace hipa::runtime {

/// Fixed team of persistent worker threads.
class PersistentTeam {
 public:
  /// Create `num_threads` workers. `cpu_of_thread`, when non-empty,
  /// pins worker t to cpu_of_thread[t] (best effort).
  explicit PersistentTeam(unsigned num_threads,
                          std::vector<unsigned> cpu_of_thread = {});
  ~PersistentTeam();

  PersistentTeam(const PersistentTeam&) = delete;
  PersistentTeam& operator=(const PersistentTeam&) = delete;

  /// Run `fn(tid)` once on every worker; blocks until all finish.
  void run(const std::function<void(unsigned)>& fn);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop(unsigned tid, int cpu);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_dispatch_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
};

/// Algorithm 1 style: spawn `num_threads` fresh threads running
/// `fn(tid)` and join them all.
void fork_join_run(unsigned num_threads,
                   const std::function<void(unsigned)>& fn);

/// Simple blocked parallel-for on a fork-join team.
void parallel_for(unsigned num_threads, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace hipa::runtime
