#include "runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace hipa::runtime::metrics {

namespace detail {

unsigned thread_shard_slot() {
  static std::atomic<unsigned> next{0};
  // Assigned once per thread, round-robin, so up to num_shards writer
  // threads land on distinct cache lines; beyond that they wrap.
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

namespace {

[[nodiscard]] unsigned pick_shard_count() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  unsigned shards = std::bit_ceil(hw);
  return std::min(shards, 16u);  // 16 shards bounds per-histogram memory
}

[[nodiscard]] bool matches(std::string_view name, const MetricLabel& label,
                           std::string_view want_name,
                           const MetricLabel& want_label) {
  return name == want_name && label == want_label;
}

/// Representative value for a bucket: exact for unit buckets, midpoint
/// otherwise (halves the worst-case quantile error to width/2).
[[nodiscard]] double bucket_value(unsigned b) {
  const std::uint64_t w = bucket_width(b);
  return w == 1 ? static_cast<double>(bucket_lower(b))
                : static_cast<double>(bucket_lower(b)) +
                      static_cast<double>(w) / 2.0;
}

[[nodiscard]] double quantile_from(
    const std::array<std::uint64_t, kNumBuckets>& merged, std::uint64_t total,
    double q) {
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kNumBuckets; ++b) {
    seen += merged[b];
    if (seen >= rank) return bucket_value(b);
  }
  return bucket_value(kNumBuckets - 1);
}

}  // namespace

struct MetricsRegistry::Impl {
  struct CounterEntry {
    std::string name, help;
    MetricLabel label;
    std::unique_ptr<CounterCell[]> cells;
  };
  struct GaugeEntry {
    std::string name, help;
    MetricLabel label;
    std::unique_ptr<std::atomic<std::int64_t>> cell;
  };
  struct HistEntry {
    std::string name, help;
    MetricLabel label;
    double scale = 1.0;
    std::unique_ptr<HistogramShard[]> shards;
  };

  mutable std::mutex mutex;
  double start_uptime = 0;
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistEntry> histograms;

  /// Names are unique per kind+label and must not straddle kinds —
  /// the Prometheus exposition would otherwise emit conflicting TYPE
  /// lines for one family.
  void check_kind_unique(std::string_view name, int kind) const {
    if (kind != 0)
      for (const CounterEntry& e : counters)
        HIPA_CHECK(e.name != name, "metric name '" << std::string(name)
                                                   << "' already a counter");
    if (kind != 1)
      for (const GaugeEntry& e : gauges)
        HIPA_CHECK(e.name != name,
                   "metric name '" << std::string(name) << "' already a gauge");
    if (kind != 2)
      for (const HistEntry& e : histograms)
        HIPA_CHECK(e.name != name, "metric name '" << std::string(name)
                                                   << "' already a histogram");
  }
};

MetricsRegistry::MetricsRegistry()
    : impl_(std::make_unique<Impl>()), num_shards_(pick_shard_count()) {
  impl_->start_uptime = steady_uptime_seconds();
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::counter(std::string_view name, std::string_view help,
                                 MetricLabel label) {
  std::lock_guard lock(impl_->mutex);
  for (Impl::CounterEntry& e : impl_->counters)
    if (matches(e.name, e.label, name, label))
      return Counter(e.cells.get(), num_shards_ - 1);
  impl_->check_kind_unique(name, 0);
  Impl::CounterEntry& e = impl_->counters.emplace_back(
      Impl::CounterEntry{std::string(name), std::string(help),
                         std::move(label),
                         std::make_unique<CounterCell[]>(num_shards_)});
  return Counter(e.cells.get(), num_shards_ - 1);
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help,
                             MetricLabel label) {
  std::lock_guard lock(impl_->mutex);
  for (Impl::GaugeEntry& e : impl_->gauges)
    if (matches(e.name, e.label, name, label)) return Gauge(e.cell.get());
  impl_->check_kind_unique(name, 1);
  Impl::GaugeEntry& e = impl_->gauges.emplace_back(
      Impl::GaugeEntry{std::string(name), std::string(help), std::move(label),
                       std::make_unique<std::atomic<std::int64_t>>(0)});
  return Gauge(e.cell.get());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::string_view help, MetricLabel label,
                                     double scale) {
  std::lock_guard lock(impl_->mutex);
  for (Impl::HistEntry& e : impl_->histograms)
    if (matches(e.name, e.label, name, label))
      return Histogram(e.shards.get(), num_shards_ - 1);
  impl_->check_kind_unique(name, 2);
  Impl::HistEntry& e = impl_->histograms.emplace_back(
      Impl::HistEntry{std::string(name), std::string(help), std::move(label),
                      scale,
                      std::make_unique<HistogramShard[]>(num_shards_)});
  return Histogram(e.shards.get(), num_shards_ - 1);
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->counters.size() + impl_->gauges.size() +
         impl_->histograms.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(impl_->mutex);
  MetricsSnapshot out;
  out.uptime_seconds = steady_uptime_seconds() - impl_->start_uptime;

  out.counters.reserve(impl_->counters.size());
  for (const Impl::CounterEntry& e : impl_->counters) {
    std::uint64_t total = 0;
    for (unsigned s = 0; s < num_shards_; ++s)
      total += e.cells[s].value.load(std::memory_order_relaxed);
    out.counters.push_back({e.name, e.help, e.label, total});
  }

  out.gauges.reserve(impl_->gauges.size());
  for (const Impl::GaugeEntry& e : impl_->gauges)
    out.gauges.push_back(
        {e.name, e.help, e.label, e.cell->load(std::memory_order_relaxed)});

  out.histograms.reserve(impl_->histograms.size());
  for (const Impl::HistEntry& e : impl_->histograms) {
    HistogramSnapshot h;
    h.name = e.name;
    h.help = e.help;
    h.label = e.label;
    h.scale = e.scale;
    std::array<std::uint64_t, kNumBuckets> merged{};
    std::uint64_t sum = 0;
    for (unsigned s = 0; s < num_shards_; ++s) {
      const HistogramShard& shard = e.shards[s];
      for (unsigned b = 0; b < kNumBuckets; ++b)
        merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
      sum += shard.sum.load(std::memory_order_relaxed);
    }
    // Count is derived from the merged buckets, not the per-shard
    // `count` cells: a writer between its bucket add and count add
    // would otherwise make count lag the buckets and skew quantile
    // ranks. The count cells still serve the hot-path-cheap
    // "anything recorded yet?" probe.
    std::uint64_t total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) total += merged[b];
    h.count = total;
    h.sum = static_cast<double>(sum);
    h.p50 = quantile_from(merged, total, 0.50);
    h.p95 = quantile_from(merged, total, 0.95);
    h.p99 = quantile_from(merged, total, 0.99);
    h.p999 = quantile_from(merged, total, 0.999);
    for (unsigned b = kNumBuckets; b-- > 0;) {
      if (merged[b] != 0) {
        h.max = static_cast<double>(bucket_lower(b) + bucket_width(b) - 1);
        break;
      }
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name, std::string_view label_value) const {
  for (const CounterSnapshot& c : counters)
    if (c.name == name && (label_value.empty() || c.label.value == label_value))
      return &c;
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    std::string_view name, std::string_view label_value) const {
  for (const GaugeSnapshot& g : gauges)
    if (g.name == name && (label_value.empty() || g.label.value == label_value))
      return &g;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name, std::string_view label_value) const {
  for (const HistogramSnapshot& h : histograms)
    if (h.name == name && (label_value.empty() || h.label.value == label_value))
      return &h;
  return nullptr;
}

}  // namespace hipa::runtime::metrics
