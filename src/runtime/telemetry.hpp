// Run-level telemetry: where does a PageRank run spend its time?
//
// The paper explains its wins by *where time goes* — dispatch overhead,
// barrier waits, the scatter/gather split, remote-vs-local traffic
// (HiPa §4.3, Table 3; GPOP's phase-level accounting) — so the engines
// can record, per thread and per sub-phase:
//
//   * kernel wall time (native backends; per-thread),
//   * barrier-wait time + crossing counts (single-dispatch run loop),
//   * messages / bytes produced (scatter side) and consumed (gather),
//   * phase-region totals: region wall time and, on the simulated
//     backend, the local-vs-remote DRAM access delta of the region.
//
// Collection is strictly opt-in through a compile-time guard: engines
// template their run path on `kTel` and every recording site sits
// behind `if constexpr`. With telemetry off the instrumentation
// compiles to literally nothing — the hot loops are token-for-token
// the untelemetered code, which is why kOff ranks are bitwise
// identical and bench_hotpath's overhead section can bound the cost.
//
// Recording is per-thread into cache-line-padded rows (no sharing, no
// atomics on the hot path); aggregation into the `RunReport` surface
// happens once, after the parallel region ends.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "runtime/hwprof.hpp"

namespace hipa::runtime {

/// Run-level telemetry switch carried by the run options. A run either
/// records everything (kOn) or nothing at all (kOff: the guard is
/// constexpr, the instrumentation does not exist in the binary's hot
/// path).
enum class Telemetry : unsigned char { kOff = 0, kOn = 1 };

/// The engine sub-phases every methodology reports through. All five
/// engines map their internal passes onto this shared vocabulary:
/// PCPM init/scatter/gather directly; v-PR contrib→scatter,
/// pull→gather; Polymer replicate→scatter, pull→gather. kIoWait is
/// the out-of-core driver's stall accounting: time compute spent
/// blocked on a segment fetch that the prefetch pipeline had not
/// finished yet (zero for fully resident runs).
enum class Phase : unsigned {
  kInit = 0,
  kScatter = 1,
  kGather = 2,
  kIoWait = 3,
};
inline constexpr unsigned kNumPhases = 4;

[[nodiscard]] std::string_view phase_name(Phase p);

/// One (thread, phase) accumulator. Plain non-atomic fields: each row
/// is written by exactly one thread inside the parallel region and
/// read only after the region's join (which carries the
/// happens-before edge).
struct PhaseSample {
  double wall_seconds = 0.0;     ///< kernel time (native; 0 in sim)
  double barrier_seconds = 0.0;  ///< explicit barrier waits (run_loop)
  std::uint64_t invocations = 0;
  std::uint64_t barrier_crossings = 0;
  std::uint64_t messages_produced = 0;
  std::uint64_t messages_consumed = 0;
  std::uint64_t bytes_produced = 0;
  std::uint64_t bytes_consumed = 0;
  /// Hardware-counter deltas for this (thread, phase), accumulated by
  /// HwSection when PageRankOptions::hw_counters is kOn and the PMU
  /// is accessible; all-zero otherwise.
  HwCounters hw{};

  void merge(const PhaseSample& o);
};

/// What a recorded span covers: a kernel region (init/scatter/gather
/// body) or a barrier wait. Used by the Chrome-trace exporter to give
/// spans distinct categories/colors.
enum class SpanKind : unsigned char { kKernel = 0, kBarrier = 1 };

/// One timeline span on one thread, timestamped against the
/// process-wide steady epoch (steady_uptime_seconds()) so spans from
/// all threads — and log lines — share one clock.
struct SpanEvent {
  double start_seconds = 0.0;
  double dur_seconds = 0.0;
  Phase phase = Phase::kInit;
  SpanKind kind = SpanKind::kKernel;
};

/// One thread's telemetry row. Cache-line padded (alignas rounds
/// sizeof up to the alignment) so two threads recording concurrently
/// never share a line.
struct alignas(kCacheLine) ThreadTimeline {
  std::array<PhaseSample, kNumPhases> phases{};
  /// Per-thread span log (empty unless PhaseTimeline::enable_spans
  /// was called, i.e. a trace file was requested). Appended only by
  /// the owning thread inside the parallel region.
  std::vector<SpanEvent> spans;

  [[nodiscard]] PhaseSample& operator[](Phase p) {
    return phases[static_cast<unsigned>(p)];
  }
  [[nodiscard]] const PhaseSample& operator[](Phase p) const {
    return phases[static_cast<unsigned>(p)];
  }
};

/// Per-run collector: per-thread rows plus phase-region totals and the
/// per-iteration scalars thread 0 publishes. Owned by an engine,
/// reset at the top of every telemetered run.
class PhaseTimeline {
 public:
  /// Phase-region totals recorded by the dispatching context (one
  /// entry per phase kind): region wall time across all invocations
  /// and, on the simulated backend, the DRAM local/remote access
  /// delta of those regions.
  struct RegionTotals {
    double seconds = 0.0;
    std::uint64_t invocations = 0;
    std::uint64_t sim_local_accesses = 0;
    std::uint64_t sim_remote_accesses = 0;
  };

  void reset(unsigned num_threads);

  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(threads_.size());
  }
  [[nodiscard]] ThreadTimeline& thread(unsigned t) { return threads_[t]; }
  [[nodiscard]] const ThreadTimeline& thread(unsigned t) const {
    return threads_[t];
  }

  void record_region(Phase p, double seconds, std::uint64_t local = 0,
                     std::uint64_t remote = 0);
  [[nodiscard]] const RegionTotals& region(Phase p) const {
    return regions_[static_cast<unsigned>(p)];
  }

  /// Per-iteration wall seconds. In the single-dispatch run loop only
  /// thread 0 appends (between barriers, exactly like the convergence
  /// scalars it already publishes); in the per-phase path the
  /// dispatching thread appends. Never written concurrently.
  void reserve_iterations(unsigned n) { iteration_seconds_.reserve(n); }
  void record_iteration(double seconds) {
    iteration_seconds_.push_back(seconds);
    if (spans_enabled_) iteration_marks_.push_back(now());
  }
  [[nodiscard]] const std::vector<double>& iteration_seconds() const {
    return iteration_seconds_;
  }

  // -- Span recording (trace export) ---------------------------------
  /// Turn on span collection for this run (called before the parallel
  /// region when a trace file was requested) and pre-reserve each
  /// thread's span log so the hot path never reallocates for typical
  /// runs. Must be called after reset().
  void enable_spans(std::size_t reserve_per_thread = 256);
  [[nodiscard]] bool spans_enabled() const { return spans_enabled_; }

  /// Timestamp source for spans: process-wide steady uptime.
  [[nodiscard]] static double now() { return steady_uptime_seconds(); }

  /// Append a span to thread `t`'s log (owning thread only).
  void record_span(unsigned t, Phase p, SpanKind kind, double start,
                   double dur) {
    threads_[t].spans.push_back(SpanEvent{start, dur, p, kind});
  }

  /// Steady-uptime instants at which each iteration ended (same
  /// cardinality as iteration_seconds when spans are enabled).
  [[nodiscard]] const std::vector<double>& iteration_marks() const {
    return iteration_marks_;
  }

 private:
  std::vector<ThreadTimeline> threads_;
  std::array<RegionTotals, kNumPhases> regions_{};
  std::vector<double> iteration_seconds_;
  std::vector<double> iteration_marks_;
  bool spans_enabled_ = false;
};

/// Compile-time-optional stopwatch: `MaybeTimer<true>` is a Timer,
/// `MaybeTimer<false>` is an empty type whose calls fold away. Keeps
/// `if constexpr` noise out of the engine kernels.
template <bool kEnabled>
class MaybeTimer;

template <>
class MaybeTimer<true> {
 public:
  void reset() { timer_.reset(); }
  [[nodiscard]] double seconds() const { return timer_.seconds(); }

 private:
  Timer timer_;
};

template <>
class MaybeTimer<false> {
 public:
  void reset() {}
  [[nodiscard]] static constexpr double seconds() { return 0.0; }
};

/// Compile-time-optional span recorder, the trace-export counterpart
/// of MaybeTimer. The enabled version captures the steady-uptime
/// start on construction and, in finish(), appends a SpanEvent iff
/// the timeline is collecting spans; the disabled version is empty
/// and folds away — same token-identity guarantee as the rest of the
/// kOff path.
template <bool kEnabled>
class MaybeSpan;

template <>
class MaybeSpan<true> {
 public:
  explicit MaybeSpan(PhaseTimeline& tl) : timeline_(&tl) {
    if (tl.spans_enabled()) start_ = PhaseTimeline::now();
  }
  void finish(unsigned t, Phase p, SpanKind kind) {
    if (!timeline_->spans_enabled()) return;
    const double end = PhaseTimeline::now();
    timeline_->record_span(t, p, kind, start_, end - start_);
  }

 private:
  PhaseTimeline* timeline_;
  double start_ = 0.0;
};

template <>
class MaybeSpan<false> {
 public:
  template <typename... Args>
  explicit MaybeSpan(Args&&...) {}
  void finish(unsigned, Phase, SpanKind) {}
};

// ---------------------------------------------------------------------------
// Aggregated surface (RunReport::telemetry)
// ---------------------------------------------------------------------------

/// One phase kind aggregated over threads: totals, per-thread extrema
/// and the load-imbalance ratio.
struct PhaseAggregate {
  // Per-thread kernel accounting (native backends).
  std::uint64_t invocations = 0;
  std::uint64_t barrier_crossings = 0;
  unsigned participating_threads = 0;  ///< threads with invocations > 0
  double wall_sum_seconds = 0.0;
  double wall_max_seconds = 0.0;
  double wall_min_seconds = 0.0;  ///< over participating threads
  double barrier_sum_seconds = 0.0;
  double barrier_max_seconds = 0.0;
  // Traffic accounting (both backends).
  std::uint64_t messages_produced = 0;
  std::uint64_t messages_consumed = 0;
  std::uint64_t bytes_produced = 0;
  std::uint64_t bytes_consumed = 0;
  // Region accounting (sim: simulated seconds + DRAM split).
  double region_seconds = 0.0;
  std::uint64_t regions = 0;
  std::uint64_t sim_local_accesses = 0;
  std::uint64_t sim_remote_accesses = 0;
  // Hardware counters summed over threads (native + PMU accessible).
  HwCounters hw{};

  [[nodiscard]] double wall_avg_seconds() const {
    return participating_threads == 0
               ? 0.0
               : wall_sum_seconds / participating_threads;
  }
  /// max/avg per-thread kernel time: 1.0 = perfectly balanced, 0 when
  /// no per-thread wall was recorded (sim backend).
  [[nodiscard]] double imbalance() const {
    const double avg = wall_avg_seconds();
    return avg <= 0.0 ? 0.0 : wall_max_seconds / avg;
  }
};

/// The RunReport-facing bundle: per-phase aggregates plus the
/// iteration timeline. Default-constructed (enabled == false,
/// all-zero) for untelemetered runs, so the field costs nothing to
/// carry.
struct RunTelemetry {
  bool enabled = false;
  unsigned threads = 0;
  std::array<PhaseAggregate, kNumPhases> phases{};
  std::vector<double> iteration_seconds;
  // Hardware-counter availability (filled by the engine from its
  // HwProfiler after aggregation; all-false/zero when hw_counters was
  // kOff, the backend is simulated, or perf_event_open was denied).
  bool hw_available = false;    ///< at least one thread's group opened
  unsigned hw_threads = 0;      ///< threads whose group opened
  unsigned hw_event_mask = 0;   ///< union of per-thread kHw* bits
  int hw_errno = 0;             ///< errno of a failed open (0 if none)

  /// Cross-phase totals, memoized once by aggregate() (and by
  /// refresh_totals() for hand-assembled telemetry) so exporters that
  /// poll these per scrape don't rescan the phase table every call.
  struct Totals {
    double wall_seconds = 0.0;
    double barrier_seconds = 0.0;
    std::uint64_t messages_produced = 0;
    std::uint64_t messages_consumed = 0;
  };
  Totals totals{};

  [[nodiscard]] const PhaseAggregate& operator[](Phase p) const {
    return phases[static_cast<unsigned>(p)];
  }
  [[nodiscard]] PhaseAggregate& operator[](Phase p) {
    return phases[static_cast<unsigned>(p)];
  }
  /// Recompute `totals` from `phases`; call after mutating phase
  /// aggregates outside aggregate().
  void refresh_totals();
  [[nodiscard]] double total_wall_seconds() const {
    return totals.wall_seconds;
  }
  [[nodiscard]] double total_barrier_seconds() const {
    return totals.barrier_seconds;
  }
  [[nodiscard]] std::uint64_t total_messages_produced() const {
    return totals.messages_produced;
  }
  [[nodiscard]] std::uint64_t total_messages_consumed() const {
    return totals.messages_consumed;
  }
};

/// Fold the per-thread rows + region totals into the report surface.
[[nodiscard]] RunTelemetry aggregate(const PhaseTimeline& timeline);

}  // namespace hipa::runtime
