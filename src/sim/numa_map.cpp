#include "sim/numa_map.hpp"

#include "common/error.hpp"

namespace hipa::sim {

void NumaMap::register_range(const void* base, std::size_t bytes,
                             Placement placement, unsigned node) {
  HIPA_CHECK(node < num_nodes_, "placement node out of range");
  const auto begin = reinterpret_cast<std::uint64_t>(base);
  ranges_.push_back(Range{begin, begin + bytes, placement, node});
}

unsigned NumaMap::scatter_node(std::uint64_t page) const {
  // SplitMix-style page hash: deterministic pseudo-random placement.
  std::uint64_t z = page + seed_ + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<unsigned>((z ^ (z >> 31)) % num_nodes_);
}

unsigned NumaMap::node_of(std::uint64_t addr) const {
  const std::uint64_t page = addr / kPageSize;
  // Scan newest-first so re-registrations shadow older ones. Ranges
  // are few (one per engine array), so the linear walk is cheap and
  // only runs on DRAM accesses (cache misses).
  for (auto it = ranges_.rbegin(); it != ranges_.rend(); ++it) {
    if (addr >= it->begin && addr < it->end) {
      switch (it->placement) {
        case Placement::kNode:
          return it->node;
        case Placement::kInterleave: {
          const std::uint64_t first_page = it->begin / kPageSize;
          return static_cast<unsigned>((page - first_page) % num_nodes_);
        }
        case Placement::kScatter:
          return scatter_node(page);
      }
    }
  }
  return scatter_node(page);
}

}  // namespace hipa::sim
