#include "sim/cache.hpp"

#include <algorithm>

#include "common/numeric.hpp"

namespace hipa::sim {

CacheModel::CacheModel(const CacheGeometry& geom) : geom_(geom) {
  HIPA_CHECK(geom.line_bytes >= 8 && is_pow2(geom.line_bytes),
             "cache line must be a power of two");
  std::uint64_t sets = geom.num_sets();
  HIPA_CHECK(sets >= 1, "cache smaller than one set");
  // Round sets down to a power of two so the index is a mask; adjust
  // the recorded size accordingly (exactness of geometry matters less
  // than exact set indexing).
  std::uint64_t pow2_sets = std::uint64_t{1} << log2_floor(sets);
  geom_.size_bytes = pow2_sets * geom.associativity * geom.line_bytes;
  set_mask_ = pow2_sets - 1;
  line_shift_ = log2_floor(geom.line_bytes);
  tags_.assign(pow2_sets * geom.associativity, kEmpty);
  lru_.assign(pow2_sets * geom.associativity, 0);
}

CacheModel::AccessResult CacheModel::access_detailed(
    std::uint64_t addr, unsigned way_begin, unsigned way_count,
    bool low_priority_insert) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & set_mask_;
  const std::uint64_t tag = line;  // full line id: unique, no aliasing
  std::uint64_t* tags = tags_.data() + set * geom_.associativity;
  std::uint32_t* lru = lru_.data() + set * geom_.associativity;

  ++clock_;
  if (clock_ == 0) {
    // Epoch wrap: age everything to zero; ordering within the set is
    // coarsely lost once per 2^32 accesses, which is acceptable noise.
    std::fill(lru_.begin(), lru_.end(), 0);
    clock_ = 1;
  }

  // Empty ways carry age 0 while occupied ways have age >= 1 (the
  // clock starts at 1), so the min-age scan below naturally prefers
  // empty ways as victims.
  const unsigned end = way_begin + way_count;
  unsigned victim = way_begin;
  std::uint32_t victim_age = ~0u;
  for (unsigned w = way_begin; w < end; ++w) {
    if (tags[w] == tag) {
      lru[w] = clock_;
      ++hits_;
      return {.hit = true};
    }
    if (lru[w] < victim_age) {
      victim = w;
      victim_age = lru[w];
    }
  }
  ++misses_;
  AccessResult result;
  if (tags[victim] != kEmpty) {
    result.evicted = true;
    result.evicted_addr = tags[victim] << line_shift_;
  }
  tags[victim] = tag;
  // DRRIP-style insertion: streamed lines age out first unless re-used.
  lru[victim] = low_priority_insert ? 1 : clock_;
  return result;
}

bool CacheModel::invalidate(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & set_mask_;
  std::uint64_t* tags = tags_.data() + set * geom_.associativity;
  std::uint32_t* lru = lru_.data() + set * geom_.associativity;
  for (unsigned w = 0; w < geom_.associativity; ++w) {
    if (tags[w] == line) {
      tags[w] = kEmpty;
      lru[w] = 0;
      return true;
    }
  }
  return false;
}

void CacheModel::flush() {
  std::fill(tags_.begin(), tags_.end(), kEmpty);
  std::fill(lru_.begin(), lru_.end(), 0);
  clock_ = 0;
}

}  // namespace hipa::sim
