// Machine topology descriptions for the simulated NUMA multicore.
//
// Presets mirror the two testbeds of the paper's evaluation
// (Section 4.1 and 4.5):
//  * skylake_2s — 2× Xeon Silver 4210: 10 physical cores × 2 SMT per
//    node, 64 KB L1 + 1 MB L2 private, 13.75 MB shared non-inclusive
//    LLC, 2.2 GHz.
//  * haswell_2s — 2× Xeon E5-2667: 8 cores × 2 SMT, 64 KB L1 + 256 KB
//    L2 private, 2.5 MB/core shared inclusive LLC.
//
// `scaled(f)` shrinks every cache by `f` so that scaled-down graphs
// (DESIGN.md §2) hit the same relative cache-residency operating points.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace hipa::sim {

/// One cache level's geometry.
struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  unsigned associativity = 8;
  unsigned line_bytes = 64;

  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(associativity) *
                         line_bytes);
  }
};

/// Identifies one logical core.
struct LogicalCore {
  unsigned node = 0;  ///< NUMA node (socket)
  unsigned phys = 0;  ///< physical core index within the node
  unsigned smt = 0;   ///< SMT sibling index on the physical core
};

/// Whole-machine topology.
struct Topology {
  std::string name;
  unsigned num_nodes = 2;
  unsigned cores_per_node = 10;  ///< physical cores per node
  unsigned smt_per_core = 2;
  CacheGeometry l1{64 * 1024, 8, 64};
  CacheGeometry l2{1024 * 1024, 16, 64};
  CacheGeometry llc{14080 * 1024, 11, 64};  ///< per node (socket) total
  bool inclusive_llc = false;
  double freq_ghz = 2.2;

  [[nodiscard]] unsigned num_physical_cores() const {
    return num_nodes * cores_per_node;
  }
  [[nodiscard]] unsigned num_logical_cores() const {
    return num_physical_cores() * smt_per_core;
  }

  /// Logical core ids enumerate the first SMT plane over all physical
  /// cores, then the second plane (Linux-style numbering).
  [[nodiscard]] LogicalCore logical_core(unsigned lcid) const;
  [[nodiscard]] unsigned lcid_of(unsigned node, unsigned phys,
                                 unsigned smt) const;
  /// Global physical core index of a logical core.
  [[nodiscard]] unsigned phys_index(unsigned lcid) const;

  /// Shrink all caches by `denom` (graph-scaling companion).
  [[nodiscard]] Topology scaled(unsigned denom) const;

  /// Paper testbed presets.
  static Topology skylake_2s();
  static Topology haswell_2s();
  /// Single-node variant of skylake (paper Section 4.5).
  static Topology skylake_1s();
};

}  // namespace hipa::sim
