// Set-associative LRU cache model.
//
// Supports *way ranges* so two SMT siblings sharing a physical core can
// be modelled as each owning half the ways of L1/L2 (the standard
// static-partitioning approximation of SMT cache contention) — the
// mechanism behind the paper's Fig. 6 scalability cliff for
// NUMA-oblivious partition-centric processing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sim/topology.hpp"

namespace hipa::sim {

/// One cache level. Tag store only (no data); true LRU within a set's
/// way range.
class CacheModel {
 public:
  explicit CacheModel(const CacheGeometry& geom);

  /// Result of one detailed access: hit flag plus the victim line that
  /// was displaced by the fill (valid only when a live line was
  /// evicted) — needed for inclusive-LLC back-invalidation.
  struct AccessResult {
    bool hit = false;
    bool evicted = false;
    std::uint64_t evicted_addr = 0;  ///< base address of the victim line
  };

  /// Look up (and on miss, fill) the line containing `addr`, using ways
  /// [way_begin, way_begin+way_count) of its set. Returns true on hit.
  bool access(std::uint64_t addr, unsigned way_begin, unsigned way_count) {
    return access_detailed(addr, way_begin, way_count).hit;
  }

  /// Full-associativity convenience overload.
  bool access(std::uint64_t addr) {
    return access(addr, 0, geom_.associativity);
  }

  /// Like access(), but reports the evicted victim line.
  /// `low_priority_insert` models streaming-resistant replacement
  /// (Intel DRRIP): the filled line enters near the LRU position, so
  /// streams evict each other instead of washing out resident data.
  AccessResult access_detailed(std::uint64_t addr, unsigned way_begin,
                               unsigned way_count,
                               bool low_priority_insert = false);
  AccessResult access_detailed(std::uint64_t addr,
                               bool low_priority_insert = false) {
    return access_detailed(addr, 0, geom_.associativity,
                           low_priority_insert);
  }

  /// Remove the line containing `addr` if present (back-invalidation
  /// from an inclusive outer level). Returns true if a line was dropped.
  bool invalidate(std::uint64_t addr);

  /// Drop every line (e.g. between independent simulations).
  void flush();

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

 private:
  CacheGeometry geom_;
  std::uint64_t set_mask_;
  unsigned line_shift_;
  // tags_[set * assoc + way]; kEmpty = invalid.
  static constexpr std::uint64_t kEmpty = ~0ULL;
  std::vector<std::uint64_t> tags_;
  // lru_[set * assoc + way]: larger = more recently used.
  std::vector<std::uint32_t> lru_;
  std::uint32_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hipa::sim
