#include "sim/machine.hpp"

#include <algorithm>
#include <numeric>

namespace hipa::sim {

SimMachine::SimMachine(Topology topo, CostModel cost, std::uint64_t seed)
    : topo_(std::move(topo)), cost_(cost),
      numa_map_(topo_.num_nodes, seed ^ 0x9a17ULL), rng_(seed),
      seed_(seed) {
  HIPA_CHECK(topo_.num_nodes >= 1 && topo_.cores_per_node >= 1 &&
                 topo_.smt_per_core >= 1,
             "degenerate topology");
  l1_.reserve(topo_.num_physical_cores());
  l2_.reserve(topo_.num_physical_cores());
  for (unsigned c = 0; c < topo_.num_physical_cores(); ++c) {
    l1_.emplace_back(topo_.l1);
    l2_.emplace_back(topo_.l2);
  }
  llc_.reserve(topo_.num_nodes);
  for (unsigned n = 0; n < topo_.num_nodes; ++n) {
    llc_.emplace_back(topo_.llc);
  }
  phase_node_stream_bytes_.assign(topo_.num_nodes, 0);
}

PlacementVec SimMachine::placement_node_blocked(
    std::span<const unsigned> threads_per_node) const {
  HIPA_CHECK(threads_per_node.size() == topo_.num_nodes,
             "need one thread count per node");
  PlacementVec out;
  for (unsigned n = 0; n < topo_.num_nodes; ++n) {
    HIPA_CHECK(threads_per_node[n] <=
                   topo_.cores_per_node * topo_.smt_per_core,
               "node " << n << " oversubscribed");
    for (unsigned t = 0; t < threads_per_node[n]; ++t) {
      const unsigned smt = t / topo_.cores_per_node;
      const unsigned phys = t % topo_.cores_per_node;
      out.push_back(topo_.lcid_of(n, phys, smt));
    }
  }
  return out;
}

PlacementVec SimMachine::placement_spread(unsigned num_threads) const {
  HIPA_CHECK(num_threads <= topo_.num_logical_cores(),
             "more threads than logical cores");
  PlacementVec out;
  out.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const unsigned plane = t / topo_.num_physical_cores();
    const unsigned idx = t % topo_.num_physical_cores();
    const unsigned node = idx % topo_.num_nodes;
    const unsigned phys = idx / topo_.num_nodes;
    out.push_back(topo_.lcid_of(node, phys, plane));
  }
  return out;
}

PlacementVec SimMachine::placement_random(unsigned num_threads) {
  HIPA_CHECK(num_threads <= topo_.num_logical_cores(),
             "more threads than logical cores");
  PlacementVec all(topo_.num_logical_cores());
  std::iota(all.begin(), all.end(), 0u);
  // Fisher–Yates with the machine RNG: deterministic per seed.
  for (std::size_t i = all.size(); i > 1; --i) {
    const std::size_t j = rng_.bounded(i);
    std::swap(all[i - 1], all[j]);
  }
  all.resize(num_threads);
  return all;
}

SimMem SimMachine::make_mem(unsigned tid, unsigned lcid, unsigned smt_slot,
                            unsigned smt_occupancy) {
  const LogicalCore lc = topo_.logical_core(lcid);
  const unsigned phys = topo_.phys_index(lcid);
  SimMem mem;
  mem.machine_ = this;
  mem.tid_ = tid;
  mem.node_ = lc.node;
  mem.l1_ = &l1_[phys];
  mem.l2_ = &l2_[phys];
  mem.llc_ = &llc_[lc.node];
  // SMT way partitioning: with both siblings active, each owns half the
  // ways of the private levels.
  const unsigned l1_assoc = topo_.l1.associativity;
  const unsigned l2_assoc = topo_.l2.associativity;
  if (smt_occupancy > 1) {
    const unsigned l1_share = std::max(1u, l1_assoc / smt_occupancy);
    const unsigned l2_share = std::max(1u, l2_assoc / smt_occupancy);
    mem.l1_way_begin_ = std::min(smt_slot * l1_share, l1_assoc - l1_share);
    mem.l1_way_count_ = l1_share;
    mem.l2_way_begin_ = std::min(smt_slot * l2_share, l2_assoc - l2_share);
    mem.l2_way_count_ = l2_share;
  } else {
    mem.l1_way_begin_ = 0;
    mem.l1_way_count_ = l1_assoc;
    mem.l2_way_begin_ = 0;
    mem.l2_way_count_ = l2_assoc;
  }
  mem.l1_hit_cy_ = cost_.l1_hit;
  mem.l2_hit_cy_ = cost_.l2_hit;
  mem.llc_hit_cy_ = cost_.llc_hit;
  mem.dram_local_cy_ = static_cast<std::uint32_t>(
      static_cast<double>(cost_.dram_local) / cost_.mlp_random);
  mem.dram_remote_cy_ = static_cast<std::uint32_t>(
      static_cast<double>(cost_.dram_remote) / cost_.mlp_random);
  mem.stream_dram_local_cy_ = static_cast<std::uint32_t>(
      static_cast<double>(cost_.dram_local) * cost_.stream_prefetch_local);
  mem.stream_dram_remote_cy_ = static_cast<std::uint32_t>(
      static_cast<double>(cost_.dram_remote) * cost_.stream_prefetch_remote);
  mem.stream_llc_cy_ = static_cast<std::uint32_t>(
      static_cast<double>(cost_.llc_hit) * 0.25);
  mem.atomic_extra_ = cost_.atomic_extra;
  mem.line_bytes_ = topo_.l1.line_bytes;
  mem.inclusive_llc_ = topo_.inclusive_llc;
  return mem;
}

void SimMem::access(std::uint64_t addr, bool /*is_store*/, bool streaming) {
  // L1
  if (l1_->access(addr, l1_way_begin_, l1_way_count_)) {
    cycles_ += l1_hit_cy_;
    ++counters_.l1_hits;
    return;
  }
  ++counters_.l1_misses;
  // L2
  if (l2_->access(addr, l2_way_begin_, l2_way_count_)) {
    cycles_ += l2_hit_cy_;
    ++counters_.l2_hits;
    return;
  }
  ++counters_.l2_misses;
  // LLC (shared per node; full associativity). An inclusive LLC
  // (Haswell) back-invalidates evicted lines from the node's private
  // caches — the micro-architectural contrast behind paper Table 3.
  const CacheModel::AccessResult llc =
      llc_->access_detailed(addr, /*low_priority_insert=*/streaming);
  if (llc.hit) {
    cycles_ += streaming ? stream_llc_cy_ : llc_hit_cy_;
    ++counters_.llc_hits;
    return;
  }
  if (inclusive_llc_ && llc.evicted) {
    machine_->back_invalidate(node_, llc.evicted_addr);
  }
  ++counters_.llc_misses;
  // DRAM. Streams expose only prefetch-residual latency; random
  // accesses pay the full load-to-use cost. Byte traffic is identical.
  const unsigned home = machine_->numa_map_.node_of(addr);
  if (streaming) {
    // Only prefetched streams contribute sustained bandwidth demand;
    // random misses are latency-bound (their queueing is in the raw
    // latency) and are excluded from the floor/congestion terms.
    machine_->phase_node_stream_bytes_[home] += line_bytes_;
  }
  if (home == node_) {
    cycles_ += streaming ? stream_dram_local_cy_ : dram_local_cy_;
    ++counters_.dram_local_accesses;
    counters_.dram_local_bytes += line_bytes_;
  } else {
    cycles_ += streaming ? stream_dram_remote_cy_ : dram_remote_cy_;
    ++counters_.dram_remote_accesses;
    counters_.dram_remote_bytes += line_bytes_;
    if (streaming) machine_->phase_remote_stream_bytes_ += line_bytes_;
  }
}

void SimMem::stream(std::uint64_t base, std::uint64_t bytes, bool is_store) {
  if (bytes == 0) return;
  const std::uint64_t first = base / line_bytes_;
  const std::uint64_t last = (base + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    access(line * line_bytes_, is_store, /*streaming=*/true);
  }
}

void SimMachine::back_invalidate(unsigned node, std::uint64_t addr) {
  const unsigned first = node * topo_.cores_per_node;
  for (unsigned c = first; c < first + topo_.cores_per_node; ++c) {
    l1_[c].invalidate(addr);
    l2_[c].invalidate(addr);
  }
}

void SimMachine::merge_thread(const SimMem& mem) {
  stats_ += mem.counters_;
}

void SimMachine::finish_phase(std::span<const unsigned> placement,
                              std::span<const std::uint64_t> thread_cycles) {
  // Per-physical-core SMT combine.
  std::vector<std::uint64_t> core_max(topo_.num_physical_cores(), 0);
  std::vector<std::uint64_t> core_sum(topo_.num_physical_cores(), 0);
  for (std::size_t t = 0; t < placement.size(); ++t) {
    const unsigned phys = topo_.phys_index(placement[t]);
    core_max[phys] = std::max(core_max[phys], thread_cycles[t]);
    core_sum[phys] += thread_cycles[t];
  }
  std::uint64_t t_core = 0;
  for (unsigned c = 0; c < topo_.num_physical_cores(); ++c) {
    const std::uint64_t overlap = core_sum[c] - core_max[c];
    const std::uint64_t tc =
        core_max[c] +
        static_cast<std::uint64_t>(cost_.smt_serialization *
                                   static_cast<double>(overlap));
    t_core = std::max(t_core, tc);
  }

  // Bandwidth floors (streaming demand only; see SimMem::access).
  std::uint64_t t_bw = 0;
  for (unsigned n = 0; n < topo_.num_nodes; ++n) {
    t_bw = std::max(
        t_bw, static_cast<std::uint64_t>(
                  static_cast<double>(phase_node_stream_bytes_[n]) /
                  cost_.dram_bw_per_node));
  }
  const auto t_upi = static_cast<std::uint64_t>(
      static_cast<double>(phase_remote_stream_bytes_) / cost_.upi_bw);

  // Queueing: utilization of the busiest channel relative to the
  // *average* thread's latency-derived length (the request arrival
  // rate). Past the knee, memory requests queue and every thread's
  // stalls stretch — a phase gets *slower* than its floor, which is
  // how oversubscribing SMT threads degrades bandwidth-hungry
  // methodologies (paper Fig. 6: "the bandwidth is saturated with
  // approximately half of total threads").
  double penalty = 1.0;
  std::uint64_t cycles_sum = 0;
  for (std::uint64_t c : thread_cycles) cycles_sum += c;
  const double t_avg =
      static_cast<double>(cycles_sum) /
      static_cast<double>(thread_cycles.size());
  if (t_avg > 0) {
    const double util =
        static_cast<double>(std::max(t_bw, t_upi)) / t_avg;
    if (util > cost_.congestion_threshold) {
      const double over = util - cost_.congestion_threshold;
      penalty = 1.0 + cost_.congestion_alpha * over * over;
    }
  }
  // Cap: queueing can stretch a phase, but not without bound.
  penalty = std::min(penalty, 2.5);
  const auto t_congested =
      static_cast<std::uint64_t>(static_cast<double>(t_core) * penalty);

  const std::uint64_t sync =
      cost_.sync_per_thread * static_cast<std::uint64_t>(placement.size());

  const std::uint64_t phase_cycles =
      std::max({t_congested, t_bw, t_upi}) + sync;
  stats_.total_cycles += phase_cycles;
  ++stats_.phases;
  if (phase_log_enabled_) {
    phase_log_.push_back(PhaseRecord{
        .threads = static_cast<unsigned>(placement.size()),
        .t_core = t_core,
        .t_avg = static_cast<std::uint64_t>(t_avg),
        .t_bw = t_bw,
        .t_upi = t_upi,
        .penalty = penalty,
        .cycles = phase_cycles,
    });
  }
}

void SimMachine::charge_thread_creations(std::uint64_t count) {
  stats_.thread_creations += count;
  stats_.total_cycles += count * cost_.thread_create;
}

void SimMachine::charge_thread_migrations(std::uint64_t count,
                                          bool cross_node) {
  stats_.thread_migrations += count;
  stats_.total_cycles += count * (cross_node ? cost_.thread_migrate_remote
                                             : cost_.thread_migrate_local);
}

void SimMachine::charge_preprocessing(std::uint64_t bytes,
                                      std::uint64_t work) {
  stats_.total_cycles +=
      work + static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                        cost_.dram_bw_per_node);
}

void SimMachine::reset() {
  stats_ = SimStats{};
  phase_log_.clear();
  rng_ = Xoshiro256(seed_);  // replays random placements identically
  for (auto& c : l1_) c.flush();
  for (auto& c : l2_) c.flush();
  for (auto& c : llc_) c.flush();
  std::fill(phase_node_stream_bytes_.begin(),
            phase_node_stream_bytes_.end(), 0);
  phase_remote_stream_bytes_ = 0;
}

}  // namespace hipa::sim
