#include "sim/topology.hpp"

#include <algorithm>

namespace hipa::sim {

LogicalCore Topology::logical_core(unsigned lcid) const {
  HIPA_CHECK(lcid < num_logical_cores(), "lcid out of range");
  const unsigned physical = num_physical_cores();
  LogicalCore lc;
  lc.smt = lcid / physical;
  const unsigned p = lcid % physical;
  lc.node = p / cores_per_node;
  lc.phys = p % cores_per_node;
  return lc;
}

unsigned Topology::lcid_of(unsigned node, unsigned phys, unsigned smt) const {
  HIPA_CHECK(node < num_nodes && phys < cores_per_node && smt < smt_per_core);
  return smt * num_physical_cores() + node * cores_per_node + phys;
}

unsigned Topology::phys_index(unsigned lcid) const {
  return lcid % num_physical_cores();
}

Topology Topology::scaled(unsigned denom) const {
  HIPA_CHECK(denom >= 1);
  Topology t = *this;
  t.name += "/" + std::to_string(denom);
  auto shrink = [&](CacheGeometry& c) {
    c.size_bytes = std::max<std::uint64_t>(
        c.size_bytes / denom,
        static_cast<std::uint64_t>(c.associativity) * c.line_bytes);
  };
  shrink(t.l1);
  shrink(t.l2);
  shrink(t.llc);
  return t;
}

Topology Topology::skylake_2s() {
  Topology t;
  t.name = "skylake-2s";
  t.num_nodes = 2;
  t.cores_per_node = 10;
  t.smt_per_core = 2;
  t.l1 = {64 * 1024, 8, 64};
  t.l2 = {1024 * 1024, 16, 64};
  t.llc = {14080 * 1024, 11, 64};  // 13.75 MB per socket
  t.inclusive_llc = false;
  t.freq_ghz = 2.2;
  return t;
}

Topology Topology::haswell_2s() {
  Topology t;
  t.name = "haswell-2s";
  t.num_nodes = 2;
  t.cores_per_node = 8;
  t.smt_per_core = 2;
  t.l1 = {64 * 1024, 8, 64};
  t.l2 = {256 * 1024, 8, 64};
  t.llc = {20 * 1024 * 1024, 20, 64};  // 2.5 MB/core × 8 cores
  t.inclusive_llc = true;
  t.freq_ghz = 3.2;
  return t;
}

Topology Topology::skylake_1s() {
  Topology t = skylake_2s();
  t.name = "skylake-1s";
  t.num_nodes = 1;
  return t;
}

}  // namespace hipa::sim
