// Counter bundle produced by a simulated run.
#pragma once

#include <cstdint>

namespace hipa::sim {

/// Aggregated machine counters. All byte counts are DRAM-side traffic
/// (cache-line granularity), the quantity behind the paper's
/// "memory accesses per edge" (MApE, Fig. 5).
struct SimStats {
  // Access-level counters.
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t atomics = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  // DRAM traffic.
  std::uint64_t dram_local_accesses = 0;
  std::uint64_t dram_remote_accesses = 0;
  std::uint64_t dram_local_bytes = 0;
  std::uint64_t dram_remote_bytes = 0;
  // Thread lifecycle.
  std::uint64_t thread_creations = 0;
  std::uint64_t thread_migrations = 0;
  // Phase bookkeeping.
  std::uint64_t phases = 0;
  std::uint64_t total_cycles = 0;

  [[nodiscard]] std::uint64_t dram_accesses() const {
    return dram_local_accesses + dram_remote_accesses;
  }
  [[nodiscard]] std::uint64_t dram_bytes() const {
    return dram_local_bytes + dram_remote_bytes;
  }
  [[nodiscard]] double remote_fraction() const {
    const std::uint64_t total = dram_bytes();
    return total == 0 ? 0.0
                      : static_cast<double>(dram_remote_bytes) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double llc_hit_ratio() const {
    const std::uint64_t total = llc_hits + llc_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(llc_hits) /
                            static_cast<double>(total);
  }
  /// Memory accesses per edge in bytes (paper Fig. 5 metric).
  [[nodiscard]] double mape(std::uint64_t num_edges) const {
    return num_edges == 0 ? 0.0
                          : static_cast<double>(dram_bytes()) /
                                static_cast<double>(num_edges);
  }

  SimStats& operator+=(const SimStats& o);
};

inline SimStats& SimStats::operator+=(const SimStats& o) {
  loads += o.loads;
  stores += o.stores;
  atomics += o.atomics;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  llc_hits += o.llc_hits;
  llc_misses += o.llc_misses;
  dram_local_accesses += o.dram_local_accesses;
  dram_remote_accesses += o.dram_remote_accesses;
  dram_local_bytes += o.dram_local_bytes;
  dram_remote_bytes += o.dram_remote_bytes;
  thread_creations += o.thread_creations;
  thread_migrations += o.thread_migrations;
  phases += o.phases;
  total_cycles += o.total_cycles;
  return *this;
}

}  // namespace hipa::sim
