// Cost constants for the simulated machine.
//
// Calibration anchors (DESIGN.md §4):
//  * the paper's microbenchmark — 0.06 s local vs 0.40 s remote per
//    sequentially-read GB on the Skylake box — fixes the combined
//    remote latency/bandwidth penalty at ≈ 6.7×;
//  * typical Skylake-SP load-to-use latencies fix the hit costs;
//  * UPI ≈ 20 GB/s effective and ~85 GB/s/socket DRAM fix the
//    bandwidth floors.
// All values are per-cycle at the topology's frequency and can be
// overridden for sensitivity studies.
#pragma once

#include <cstdint>

namespace hipa::sim {

struct CostModel {
  // Hit latencies (cycles).
  std::uint32_t l1_hit = 4;
  std::uint32_t l2_hit = 14;
  std::uint32_t llc_hit = 42;
  // DRAM access latencies (cycles) on top of the cache walk.
  std::uint32_t dram_local = 200;
  std::uint32_t dram_remote = 500;
  /// Latency multipliers for *streaming* (sequential) accesses: the
  /// hardware prefetcher overlaps line fetches, so a streamed miss
  /// exposes only a fraction of the raw latency; remote streams
  /// prefetch worse across the interconnect. Calibrated against the
  /// paper's own microbenchmark — 0.06 s/GB local vs 0.40 s/GB remote
  /// sequential reads, i.e. ~10 vs ~60 cycles per line. Random
  /// accesses pay full latency — the mechanism that makes
  /// partition-centric processing win over vertex-centric pulls.
  double stream_prefetch_local = 0.05;
  double stream_prefetch_remote = 0.12;
  /// Memory-level parallelism of random (pointer-chasing-free) access
  /// loops: out-of-order cores keep several cache misses in flight, so
  /// the *effective* per-access DRAM latency in a pull/update loop is
  /// the raw latency divided by this.
  double mlp_random = 3.0;
  // Extra cost of an atomic RMW beyond its memory access.
  std::uint32_t atomic_extra = 20;

  // Bandwidth floors (bytes per cycle).
  double dram_bw_per_node = 38.0;   ///< ~85 GB/s per socket at 2.2 GHz
  double upi_bw = 9.0;              ///< ~20 GB/s effective interconnect

  // Thread lifecycle events (cycles).
  std::uint64_t thread_create = 30'000;
  std::uint64_t thread_migrate_local = 60'000;
  std::uint64_t thread_migrate_remote = 150'000;
  /// Barrier / phase synchronization per participating thread.
  std::uint64_t sync_per_thread = 500;

  /// SMT co-residency: when both siblings of a physical core are active
  /// in a phase, core time = max(t1,t2) + smt_serialization*min(t1,t2).
  /// Memory-stalled graph threads overlap well on a core (most of a
  /// thread's cycles are stalls the sibling can fill), so the factor is
  /// small; the way-partitioned caches supply the capacity contention.
  double smt_serialization = 0.18;

  /// FCFS partition-claim: cycles per atomic claim, multiplied by the
  /// number of contending threads (models queue cacheline ping-pong).
  std::uint64_t fcfs_claim_base = 150;

  /// Bandwidth queueing: once a phase's demand (bytes per core-cycle)
  /// exceeds `congestion_threshold` of a channel's capacity, latencies
  /// inflate quadratically — "the bandwidth is saturated with
  /// approximately half of total threads; any further addition of
  /// threads would only aggregate the contention" (paper §4.4). This
  /// is what bends the p-PR/GPOP curves upward past ~20 threads while
  /// the mostly-local HiPa stays under the knee.
  double congestion_threshold = 0.75;
  double congestion_alpha = 8.0;
};

}  // namespace hipa::sim
