// NUMA page map: which simulated node owns each page of host memory.
//
// Engines allocate their arrays from ordinary host memory and then
// *register* each range here with a placement policy; on a simulated
// DRAM access the machine asks which node the page lives on to decide
// local vs remote cost. This mirrors mbind()/numa_alloc_onnode() on a
// real box (see runtime/numa.hpp for the native facade).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hipa::sim {

/// Placement of one registered range.
enum class Placement : std::uint8_t {
  kNode,        ///< whole range on one node (numa_alloc_onnode)
  kInterleave,  ///< pages round-robin across nodes (numa_alloc_interleaved)
  kScatter,     ///< pages on pseudo-random nodes (OS first-touch by
                ///< arbitrarily-scheduled threads — the NUMA-oblivious case)
};

class NumaMap {
 public:
  explicit NumaMap(unsigned num_nodes, std::uint64_t seed = 0x9a17ULL)
      : num_nodes_(num_nodes), seed_(seed) {}

  /// Register [base, base+bytes) with a policy. `node` is used by
  /// kNode only. Later registrations shadow earlier overlapping ones.
  void register_range(const void* base, std::size_t bytes,
                      Placement placement, unsigned node = 0);

  /// Remove all registrations.
  void clear() { ranges_.clear(); }

  /// Owning node of the page containing `addr`. Unregistered addresses
  /// fall back to kScatter placement (what an untracked malloc would
  /// get on a busy machine).
  [[nodiscard]] unsigned node_of(std::uint64_t addr) const;

  [[nodiscard]] unsigned num_nodes() const { return num_nodes_; }

 private:
  struct Range {
    std::uint64_t begin;
    std::uint64_t end;
    Placement placement;
    unsigned node;
  };
  unsigned num_nodes_;
  std::uint64_t seed_;
  std::vector<Range> ranges_;

  [[nodiscard]] unsigned scatter_node(std::uint64_t page) const;
};

}  // namespace hipa::sim
