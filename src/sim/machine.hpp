// The simulated NUMA multicore machine.
//
// Engines execute *real* computation on host memory while every graph
// data access is routed through a SimMem bound to a simulated logical
// core; the machine walks its cache hierarchy and NUMA page map,
// accrues per-thread cycles, and applies bandwidth/SMT/sync models per
// phase. Threads of a phase run sequentially on the host (the VM has
// one vCPU) — results are exactly deterministic.
//
// Timing model per phase (DESIGN.md §4):
//   t_core(c)  = max(t_i) + smt_serialization * Σ(other t_i)  over the
//                threads placed on physical core c
//   t_bw(n)    = DRAM bytes homed on node n / dram_bw_per_node
//   t_upi      = cross-node bytes / upi_bw
//   phase      = max(max_c t_core, max_n t_bw, t_upi) + sync·T
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/types.hpp"
#include "sim/cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/numa_map.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"

namespace hipa::sim {

class SimMachine;

/// Per-thread memory interface handed to phase kernels.
///
/// `load`/`store` model one random access; `stream_read`/`stream_write`
/// model a sequential scan (one cache access per 64 B line); `work`
/// charges pure compute cycles.
class SimMem {
 public:
  template <class T>
  [[nodiscard]] T load(const T* p) {
    access(reinterpret_cast<std::uint64_t>(p), false);
    ++counters_.loads;
    return *p;
  }

  template <class T>
  void store(T* p, T v) {
    *p = v;
    access(reinterpret_cast<std::uint64_t>(p), true);
    ++counters_.stores;
  }

  /// Atomic read-modify-write (the simulation itself is sequential, so
  /// plain += is exact); charges the access plus the RMW penalty.
  template <class T>
  void atomic_add(T* p, T v) {
    *p += v;
    access(reinterpret_cast<std::uint64_t>(p), true);
    ++counters_.atomics;
    cycles_ += atomic_extra_;
  }

  /// Sequential read of n elements starting at p: one modeled access
  /// per touched cache line (hardware prefetch keeps line-internal
  /// elements free).
  template <class T>
  void stream_read(const T* p, std::size_t n) {
    stream(reinterpret_cast<std::uint64_t>(p), n * sizeof(T), false);
    counters_.loads += n;
  }

  template <class T>
  void stream_write(const T* p, std::size_t n) {
    stream(reinterpret_cast<std::uint64_t>(p), n * sizeof(T), true);
    counters_.stores += n;
  }

  /// Pure compute cycles (ALU work, branches).
  void work(std::uint64_t cycles) { cycles_ += cycles; }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// NUMA node of the core this thread runs on.
  [[nodiscard]] unsigned node() const { return node_; }

  /// Thread index within the phase.
  [[nodiscard]] unsigned tid() const { return tid_; }

 private:
  friend class SimMachine;
  SimMem() = default;

  void access(std::uint64_t addr, bool is_store, bool streaming = false);
  void stream(std::uint64_t base, std::uint64_t bytes, bool is_store);

  SimMachine* machine_ = nullptr;
  unsigned tid_ = 0;
  unsigned node_ = 0;
  CacheModel* l1_ = nullptr;
  CacheModel* l2_ = nullptr;
  CacheModel* llc_ = nullptr;
  unsigned l1_way_begin_ = 0, l1_way_count_ = 0;
  unsigned l2_way_begin_ = 0, l2_way_count_ = 0;
  std::uint32_t l1_hit_cy_ = 0, l2_hit_cy_ = 0, llc_hit_cy_ = 0;
  std::uint32_t dram_local_cy_ = 0, dram_remote_cy_ = 0;
  std::uint32_t stream_dram_local_cy_ = 0, stream_dram_remote_cy_ = 0;
  std::uint32_t stream_llc_cy_ = 0;
  std::uint32_t atomic_extra_ = 0;
  bool inclusive_llc_ = false;
  unsigned line_bytes_ = 64;
  std::uint64_t cycles_ = 0;
  SimStats counters_;  // per-thread slice, merged by the machine
};

/// How a phase's threads land on logical cores.
using PlacementVec = std::vector<unsigned>;  // lcid per thread

/// One executed phase's timing anatomy (optional diagnostic record).
struct PhaseRecord {
  unsigned threads = 0;
  std::uint64_t t_core = 0;    ///< slowest core (SMT-combined), cycles
  std::uint64_t t_avg = 0;     ///< average thread cycles
  std::uint64_t t_bw = 0;      ///< busiest node's streaming-DRAM floor
  std::uint64_t t_upi = 0;     ///< interconnect streaming floor
  double penalty = 1.0;        ///< congestion multiplier applied
  std::uint64_t cycles = 0;    ///< final phase cost (incl. sync)
};

class SimMachine {
 public:
  explicit SimMachine(Topology topo, CostModel cost = {},
                      std::uint64_t seed = 1);

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }
  [[nodiscard]] NumaMap& numa() { return numa_map_; }
  [[nodiscard]] const NumaMap& numa() const { return numa_map_; }
  [[nodiscard]] Xoshiro256& rng() { return rng_; }

  // ---- placement helpers -------------------------------------------------
  /// Per-node thread counts -> node-blocked placement: node n's threads
  /// fill its physical cores on SMT plane 0, then plane 1 (HiPa's
  /// bound threads).
  [[nodiscard]] PlacementVec placement_node_blocked(
      std::span<const unsigned> threads_per_node) const;
  /// Round-robin across nodes and physical cores, SMT plane last (a
  /// well-behaved OS scheduler spreading unpinned threads).
  [[nodiscard]] PlacementVec placement_spread(unsigned num_threads) const;
  /// Distinct uniformly-random logical cores (the paper's "OS
  /// arbitrarily generates threads from the pool of logic cores").
  [[nodiscard]] PlacementVec placement_random(unsigned num_threads);

  // ---- execution ---------------------------------------------------------
  /// Run one parallel phase. `kernel(tid, SimMem&)` is invoked once per
  /// thread, sequentially, each bound to placement[tid].
  template <class F>
  void run_phase(const PlacementVec& placement, F&& kernel);

  /// Sequential (single-thread) region on the given node.
  template <class F>
  void run_serial(unsigned lcid, F&& kernel);

  // ---- explicit cost events ----------------------------------------------
  void charge_thread_creations(std::uint64_t count);
  void charge_thread_migrations(std::uint64_t count, bool cross_node);
  /// Analytic preprocessing charge: `bytes` streamed at DRAM bandwidth
  /// plus `work` compute cycles, executed serially.
  void charge_preprocessing(std::uint64_t bytes, std::uint64_t work);
  /// Arbitrary serial cycles (e.g. modeled FCFS claim contention).
  void charge_cycles(std::uint64_t cycles) { stats_.total_cycles += cycles; }

  // ---- results -----------------------------------------------------------
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(stats_.total_cycles) /
           (topo_.freq_ghz * 1e9);
  }
  /// Reset counters and flush every cache (fresh run on the same data).
  void reset();

  /// Per-phase anatomy recording (off by default; benches and tests
  /// flip it on to see where time goes).
  void set_phase_log(bool enabled) { phase_log_enabled_ = enabled; }
  [[nodiscard]] const std::vector<PhaseRecord>& phase_log() const {
    return phase_log_;
  }

 private:
  friend class SimMem;

  SimMem make_mem(unsigned tid, unsigned lcid, unsigned smt_slot,
                  unsigned smt_occupancy);
  /// Inclusive-LLC eviction: drop the line from the node's private
  /// caches (L1 + L2 of every physical core on `node`).
  void back_invalidate(unsigned node, std::uint64_t addr);
  void merge_thread(const SimMem& mem);
  void finish_phase(std::span<const unsigned> placement,
                    std::span<const std::uint64_t> thread_cycles);

  Topology topo_;
  CostModel cost_;
  NumaMap numa_map_;
  Xoshiro256 rng_;
  std::uint64_t seed_ = 1;
  std::vector<CacheModel> l1_;   // per physical core (global index)
  std::vector<CacheModel> l2_;   // per physical core
  std::vector<CacheModel> llc_;  // per node
  SimStats stats_;
  // Per-phase *streaming* DRAM byte tallies (home node) + cross-node;
  // random-access bytes are latency-accounted and excluded here.
  std::vector<std::uint64_t> phase_node_stream_bytes_;
  std::uint64_t phase_remote_stream_bytes_ = 0;
  bool phase_log_enabled_ = false;
  std::vector<PhaseRecord> phase_log_;
};

// ---- template bodies -------------------------------------------------------

template <class F>
void SimMachine::run_phase(const PlacementVec& placement, F&& kernel) {
  const unsigned num_threads = static_cast<unsigned>(placement.size());
  HIPA_CHECK(num_threads > 0, "phase needs at least one thread");

  // SMT occupancy per physical core, and each thread's sibling slot.
  std::vector<unsigned> occupancy(topo_.num_physical_cores(), 0);
  std::vector<unsigned> slot(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const unsigned phys = topo_.phys_index(placement[t]);
    slot[t] = occupancy[phys]++;
    HIPA_CHECK(slot[t] < topo_.smt_per_core,
               "more threads than SMT contexts on physical core " << phys);
  }

  std::fill(phase_node_stream_bytes_.begin(),
            phase_node_stream_bytes_.end(), 0);
  phase_remote_stream_bytes_ = 0;

  std::vector<std::uint64_t> thread_cycles(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const unsigned phys = topo_.phys_index(placement[t]);
    SimMem mem = make_mem(t, placement[t], slot[t], occupancy[phys]);
    kernel(t, mem);
    thread_cycles[t] = mem.cycles();
    merge_thread(mem);
  }
  finish_phase(placement, thread_cycles);
}

template <class F>
void SimMachine::run_serial(unsigned lcid, F&& kernel) {
  PlacementVec placement{lcid};
  run_phase(placement, [&](unsigned, SimMem& mem) { kernel(mem); });
}

}  // namespace hipa::sim
