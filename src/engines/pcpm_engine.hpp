// Partition-centric scatter-gather engine (PCPM machinery).
//
// One engine body covers the three partition-centric methodologies of
// the paper through policy switches:
//
//   HiPa  — numa_aware + persistent_threads + pinned_partitions
//           (Algorithm 2: hierarchical plan, thread–data pinning,
//           NUMA-placed layout, all SMT threads usable)
//   p-PR  — NUMA-oblivious, per-phase thread regions, FCFS dynamic
//           partition queue (Algorithm 1; paper's hand-tuned baseline)
//   GPOP  — like p-PR with 1 MB partitions plus framework state
//           (per-partition Flags/State fields, extra indirection)
//
// The engine is kernel-generic (engines/kernels.hpp): any Kernel with
// scatter/gather hooks runs through the same hierarchical plan, bins,
// NUMA placement, telemetry and both execution paths. One iteration is
// two parallel regions (paper Algorithm 1/2):
//   scatter: for each owned source partition, stream its message
//            sources, read the cache-resident per-vertex state, stream
//            the kernel's messages into destination bins;
//   gather : for each owned destination partition, stream its inbox
//            and fold each message into its destination vertices
//            through intra-partition edges; then the kernel's apply
//            epilogue (PageRank-family) updates the vertex state.
// Frontier kernels (BFS/WCC/SSSP) additionally keep per-partition
// active maps: inactive partitions skip their whole scatter stream and
// their stale inbox pairs are skipped in gather.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/prefetch.hpp"
#include "engines/backend.hpp"
#include "engines/kernels.hpp"
#include "graph/csr.hpp"
#include "partition/plan.hpp"
#include "pcp/bins.hpp"
#include "runtime/trace.hpp"

namespace hipa::engine {

/// Policy knobs for the PCPM engine family.
struct PcpmOptions {
  std::uint64_t partition_bytes = 256 * 1024;  ///< paper's Skylake optimum
  unsigned num_threads = 40;
  unsigned num_nodes = 2;  ///< plan granularity (match the machine)
  bool numa_aware = true;
  bool persistent_threads = true;
  bool pinned_partitions = true;  ///< false: FCFS dynamic claiming
  bool framework_overhead = false;  ///< GPOP-style per-partition state
  /// Enter ONE parallel region for the whole run (Backend::run_loop
  /// with in-region barriers) instead of two condvar dispatches per
  /// iteration. Only takes effect on backends that support it AND with
  /// persistent pinned-partition teams (the HiPa configuration);
  /// p-PR/GPOP keep the per-phase Algorithm 1 path. Off exists for A/B
  /// measurement (bench_hotpath) and the bitwise-equivalence tests.
  bool single_dispatch = true;
  /// Edge-balanced (paper Eq. 2) vs even-vertex partitioning (§3.1's
  /// rejected strawman, kept for the balance ablation).
  part::PlanConfig::Balance balance = part::PlanConfig::Balance::kEdges;
  /// Destination-list encoding: kAuto picks the 16-bit compact form
  /// whenever every partition fits 2^15 vertices (halving gather
  /// stream traffic) and falls back to 32-bit otherwise; benches force
  /// kWide to measure the compaction delta.
  pcp::DstEncoding dst_encoding = pcp::DstEncoding::kAuto;
  /// Cycles one FCFS claim costs per contending thread.
  std::uint32_t fcfs_claim_cycles = 150;
  /// Extra framework cycles per message / per partition (GPOP).
  std::uint32_t framework_cycles_per_msg = 3;
  std::uint32_t framework_bytes_per_part = 64;

  /// The paper's named configurations.
  static PcpmOptions hipa(unsigned threads = 40, unsigned nodes = 2,
                          std::uint64_t part_bytes = 256 * 1024) {
    PcpmOptions o;
    o.partition_bytes = part_bytes;
    o.num_threads = threads;
    o.num_nodes = nodes;
    return o;
  }
  static PcpmOptions ppr(unsigned threads = 16, unsigned nodes = 2,
                         std::uint64_t part_bytes = 256 * 1024) {
    PcpmOptions o;
    o.partition_bytes = part_bytes;
    o.num_threads = threads;
    o.num_nodes = nodes;
    o.numa_aware = false;
    o.persistent_threads = false;
    o.pinned_partitions = false;
    return o;
  }
  static PcpmOptions gpop(unsigned threads = 20, unsigned nodes = 2,
                          std::uint64_t part_bytes = 1024 * 1024) {
    PcpmOptions o = ppr(threads, nodes, part_bytes);
    o.framework_overhead = true;
    return o;
  }
};

// RunOptions/PageRankOptions (shared by every engine) live in
// engines/backend.hpp next to RunReport/RunResult — the unified run
// surface; the per-kernel option structs live in engines/kernels.hpp.

template <class Backend>
class PcpmEngine {
 public:
  using Mem = typename Backend::Mem;

  PcpmEngine(const graph::Graph& g, const PcpmOptions& opt,
             Backend& backend)
      : graph_(&g), opt_(opt), backend_(&backend) {
    HIPA_CHECK(opt.num_threads >= 1 && opt.num_nodes >= 1);
    const double t0 = backend.now_seconds();
    build_plan();
    if (!opt_.pinned_partitions) build_fcfs_slots();
    build_bins();
    // The PageRank slot is built eagerly so the constructor carves the
    // arena in the historical order (rank, rank_scaled, acc, values,
    // framework state) and preprocessing_seconds covers it; other
    // kernels' state is built lazily on their first run.
    slot<PageRankKernel>().prep_seconds = 0.0;
    if (opt_.framework_overhead) {
      const std::size_t words_per_part =
          opt_.framework_bytes_per_part / sizeof(std::uint64_t);
      framework_state_ = backend_->template alloc_pages<std::uint64_t>(
          std::size_t{plan_.parts.num_partitions()} * words_per_part);
      framework_state_.fill_zero();
    }
    place_bins();
    charge_preprocessing();
    preprocessing_seconds_ = backend.now_seconds() - t0;
  }

  /// Unified run surface: report + final ranks in one value.
  [[nodiscard]] RunResult run(const PageRankOptions& pr) {
    RunResult result;
    result.report = run_pagerank(pr, &result.ranks);
    return result;
  }

  /// Kernel-generic run surface: one templated entry point for every
  /// kernel (PageRank, PPR, BFS, WCC, SSSP). Instrumentation
  /// (telemetry, hw counters, trace spans) stays a compile-time fork:
  /// the uninstrumented instantiation contains no recording code.
  template <class K>
  [[nodiscard]] KernelResult<K> run(const typename K::Options& ko,
                                    const RunOptions& ro = {}) {
    KernelResult<K> result;
    result.report = ro.instrumented()
                        ? run_kernel_impl<K, true>(ko, ro, &result.values)
                        : run_kernel_impl<K, false>(ko, ro, &result.values);
    return result;
  }

  /// Run PageRank; final ranks land in `ranks_out` when non-null.
  /// Thin wrapper over the generic core — ranks are bitwise identical
  /// to the pre-redesign PageRank-only engine.
  RunReport run_pagerank(const PageRankOptions& pr,
                         std::vector<rank_t>* ranks_out = nullptr) {
    PrOptions ko;
    ko.damping = pr.damping;
    return pr.instrumented()
               ? run_kernel_impl<PageRankKernel, true>(ko, pr, ranks_out)
               : run_kernel_impl<PageRankKernel, false>(ko, pr, ranks_out);
  }

 private:
  /// Per-kernel engine-side state: the kernel's vertex attributes, its
  /// typed message inbox (NUMA-placed like the PageRank values array)
  /// and, for frontier kernels, the double-buffered per-partition
  /// active maps (swapped by the control/0 thread between rounds).
  template <class K>
  struct KernelSlot {
    typename K::State state;
    AlignedBuffer<typename K::Message> values;
    AlignedBuffer<std::uint8_t> active;
    AlignedBuffer<std::uint8_t> next_active;
    std::uint8_t* active_ptr = nullptr;
    std::uint8_t* next_ptr = nullptr;
    /// Wall seconds spent building this slot (0 for the
    /// constructor-built PageRank slot — the engine's
    /// preprocessing_seconds already covers it).
    double prep_seconds = 0.0;
  };

  /// Find-or-create the slot for kernel K. Creation allocates the
  /// kernel's state + inbox from the arena and registers the same
  /// per-node placement the PageRank attributes get.
  template <class K>
  KernelSlot<K>& slot() {
    const std::type_index key(typeid(K));
    for (auto& [k, p] : slots_) {
      if (k == key) return *static_cast<KernelSlot<K>*>(p.get());
    }
    const double t0 = backend_->now_seconds();
    auto sp = std::make_shared<KernelSlot<K>>();
    sp->state = K::make_state(*graph_, *backend_);
    sp->values = backend_->template alloc_pages<typename K::Message>(
        bins_.total_messages());
    if constexpr (K::kUsesFrontier) {
      const std::uint32_t parts = plan_.parts.num_partitions();
      sp->active = backend_->template alloc_pages<std::uint8_t>(parts);
      sp->next_active = backend_->template alloc_pages<std::uint8_t>(parts);
      sp->active_ptr = sp->active.data();
      sp->next_ptr = sp->next_active.data();
    }
    place_slot<K>(*sp);
    sp->prep_seconds = backend_->now_seconds() - t0;
    KernelSlot<K>& ref = *sp;
    slots_.emplace_back(key, std::move(sp));
    return ref;
  }

  template <class K, bool kTel>
  RunReport run_kernel_impl(const typename K::Options& ko,
                            const RunOptions& ro,
                            std::vector<typename K::Value>* values_out) {
    KernelSlot<K>& sl = slot<K>();
    K::begin_run(sl.state, ko, *graph_);
    const unsigned max_iters = K::max_iterations(ko, ro);
    if constexpr (kTel) {
      timeline_.reset(opt_.num_threads);
      timeline_.reserve_iterations(std::min(max_iters, 4096u));
      if constexpr (!Backend::kSimulated) {
        // Hardware counters + trace spans are host-side concepts; the
        // simulated backend keeps its modeled counters instead.
        hwprof_.reset(opt_.num_threads,
                      ro.hw_counters == runtime::HwProf::kOn);
        if (!ro.trace_path.empty()) {
          timeline_.enable_spans(
              4 * std::size_t{std::min(max_iters, 4096u)} + 8);
        }
      }
    }
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = opt_.persistent_threads;
    spec.binding = opt_.numa_aware ? ThreadTeamSpec::Binding::kNodeBlocked
                                   : ThreadTeamSpec::Binding::kRandom;
    // Pad with idle nodes when the plan collapsed to fewer nodes than
    // the machine has (node-blocked placement wants one entry each).
    spec.threads_per_node = plan_.threads_per_node;
    spec.threads_per_node.resize(
        std::max<std::size_t>(spec.threads_per_node.size(),
                              opt_.num_nodes),
        0);

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    // Iteration region: any page-aligned allocation from here on must
    // come from the arena (debug builds assert; all builds count).
    [[maybe_unused]] std::optional<runtime::HotPathGuard> hot_guard;
    if constexpr (!Backend::kSimulated) {
      backend_->set_barrier_kind(ro.barrier);
      hot_guard.emplace();
    }
    phase_salt_ = 0;  // runs replay identically on a reset machine
    backend_->start_team(spec);
    const bool track = K::kHasApply && ro.tolerance > 0.0;
    if (track) deltas_.assign(opt_.num_threads, PaddedDouble{});

    unsigned iters_done = 0;
    double last_delta = 0.0;
    bool single_dispatch = false;
    if constexpr (Backend::kSupportsRunLoop) {
      // Algorithm 2's whole point: one team wakeup for the entire run.
      // FCFS claiming (p-PR/GPOP) keeps per-phase dispatch — its salt
      // rotation and claim-cost model are phase-granular by design.
      single_dispatch = opt_.single_dispatch && opt_.persistent_threads &&
                        opt_.pinned_partitions;
    }
    if (single_dispatch) {
      if constexpr (Backend::kSupportsRunLoop) {
        run_single_dispatch<K, kTel>(sl, ro, track, max_iters, &iters_done,
                                     &last_delta);
      }
    } else {
      timed_phase<kTel>(runtime::Phase::kInit, [&](unsigned t, Mem& mem) {
        init_thread<K, kTel>(sl, t, mem);
      });
      for (unsigned it = 0; it < max_iters; ++it) {
        [[maybe_unused]] double it0 = 0.0;
        if constexpr (kTel) it0 = backend_->now_seconds();
        ++phase_salt_;
        timed_phase<kTel>(runtime::Phase::kScatter,
                          [&](unsigned t, Mem& mem) {
                            scatter_thread<K, kTel>(sl, t, mem);
                          });
        ++phase_salt_;
        timed_phase<kTel>(runtime::Phase::kGather, [&](unsigned t, Mem& mem) {
          if (track) deltas_[t].value = 0.0;
          gather_thread<K, kTel>(sl, t, mem,
                                 track ? &deltas_[t].value : nullptr);
        });
        if constexpr (kTel) {
          timeline_.record_iteration(backend_->now_seconds() - it0);
        }
        iters_done = it + 1;
        if constexpr (K::kUsesFrontier) {
          if (!advance_frontier(sl)) break;
        } else {
          if (track) {
            last_delta = reduce_deltas();
            if (last_delta <= ro.tolerance) break;
          }
        }
      }
    }
    backend_->end_team();

    RunReport report;
    report.seconds = backend_->now_seconds() - t0;
    report.preprocessing_seconds = preprocessing_seconds_ + sl.prep_seconds;
    report.iterations = iters_done;
    report.last_delta = last_delta;
    if constexpr (Backend::kSimulated) {
      report.stats = stats_delta(backend_->machine().stats(), before);
    }
    if constexpr (kTel) {
      report.telemetry = runtime::aggregate(timeline_);
      if constexpr (!Backend::kSimulated) {
        if (ro.hw_counters == runtime::HwProf::kOn) {
          report.telemetry.hw_available = hwprof_.any_open();
          report.telemetry.hw_threads = hwprof_.open_threads();
          report.telemetry.hw_event_mask = hwprof_.event_mask();
          if (!report.telemetry.hw_available && hwprof_.num_threads() > 0) {
            report.telemetry.hw_errno = hwprof_.group(0).last_errno();
          }
        }
        if (!ro.trace_path.empty() &&
            !trace::ChromeTraceWriter::write(ro.trace_path, timeline_,
                                             engine_label())) {
          HIPA_WARN("trace write failed: " << ro.trace_path);
        }
      }
    }
    if constexpr (!Backend::kSimulated) {
      // Plain runtime branch after the parallel region — never on the
      // hot path, works with or without telemetry.
      report.arena = backend_->arena_stats();
      if (ro.audit_placement) report.placement_audit = run_placement_audit(sl);
    }
    if (values_out != nullptr) K::extract(sl.state, *values_out);
    return report;
  }

  /// Human label for traces: which of the three PCPM configurations
  /// this engine instance embodies.
  [[nodiscard]] const char* engine_label() const {
    if (opt_.numa_aware && opt_.persistent_threads &&
        opt_.pinned_partitions) {
      return "HiPa";
    }
    return opt_.framework_overhead ? "GPOP" : "p-PR";
  }

  /// Wrap one phase() dispatch in region accounting: region wall time
  /// (simulated seconds on SimBackend, host seconds on native) plus,
  /// on the simulated backend, the DRAM local/remote access delta the
  /// region produced. The kOff instantiation is exactly
  /// `backend_->phase(kernel)` — zero added code.
  template <bool kTel, class F>
  void timed_phase(runtime::Phase ph, F&& kernel) {
    if constexpr (!kTel) {
      backend_->phase(std::forward<F>(kernel));
    } else {
      [[maybe_unused]] sim::SimStats s0;
      if constexpr (Backend::kSimulated) s0 = backend_->machine().stats();
      const double t0 = backend_->now_seconds();
      backend_->phase(std::forward<F>(kernel));
      const double dt = backend_->now_seconds() - t0;
      if constexpr (Backend::kSimulated) {
        const sim::SimStats d =
            stats_delta(backend_->machine().stats(), s0);
        timeline_.record_region(ph, dt, d.dram_local_accesses,
                                d.dram_remote_accesses);
      } else {
        timeline_.record_region(ph, dt);
      }
    }
  }

 public:
  /// Whether run() will take the single-dispatch run_loop path
  /// (backend capability x policy knobs). Exposed for tests/bench.
  [[nodiscard]] bool uses_single_dispatch() const {
    return Backend::kSupportsRunLoop && opt_.single_dispatch &&
           opt_.persistent_threads && opt_.pinned_partitions;
  }

  /// Field-wise counter subtraction (this run's delta).
  static sim::SimStats stats_delta(sim::SimStats s, const sim::SimStats& b) {
    s.loads -= b.loads;
    s.stores -= b.stores;
    s.atomics -= b.atomics;
    s.l1_hits -= b.l1_hits;
    s.l1_misses -= b.l1_misses;
    s.l2_hits -= b.l2_hits;
    s.l2_misses -= b.l2_misses;
    s.llc_hits -= b.llc_hits;
    s.llc_misses -= b.llc_misses;
    s.dram_local_accesses -= b.dram_local_accesses;
    s.dram_remote_accesses -= b.dram_remote_accesses;
    s.dram_local_bytes -= b.dram_local_bytes;
    s.dram_remote_bytes -= b.dram_remote_bytes;
    s.thread_creations -= b.thread_creations;
    s.thread_migrations -= b.thread_migrations;
    s.phases -= b.phases;
    s.total_cycles -= b.total_cycles;
    return s;
  }

  /// Sparse matrix-vector product over the adjacency matrix:
  /// y[v] = sum of x[u] over edges u->v (paper §6's first listed
  /// extension). Runs one scatter-gather round through the same bins
  /// and thread-data pinning as PageRank, reusing the PageRank slot's
  /// attribute arrays as staging.
  RunReport run_spmv(std::span<const rank_t> x, std::vector<rank_t>& y) {
    const vid_t n = graph_->num_vertices();
    HIPA_CHECK(x.size() == n, "input vector size mismatch");
    KernelSlot<PageRankKernel>& sl = slot<PageRankKernel>();
    typename PageRankKernel::State& st = sl.state;
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = opt_.persistent_threads;
    spec.binding = opt_.numa_aware ? ThreadTeamSpec::Binding::kNodeBlocked
                                   : ThreadTeamSpec::Binding::kRandom;
    spec.threads_per_node = plan_.threads_per_node;
    spec.threads_per_node.resize(
        std::max<std::size_t>(spec.threads_per_node.size(), opt_.num_nodes),
        0);

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    // Stage x into the NUMA-placed rank_scaled array, then reuse the
    // PageRank scatter; gather accumulates into acc and copies to y.
    backend_->start_team(spec);
    ++phase_salt_;
    backend_->phase([&](unsigned t, Mem& mem) {
      for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
        const VertexRange r = plan_.parts.range(p);
        mem.stream_read(x.data() + r.begin, r.size());
        mem.stream_write(st.rank_scaled.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) {
          st.rank_scaled.data()[v] = x[v];
          st.acc.data()[v] = 0.0f;
        }
        mem.work(r.size());
      });
    });
    ++phase_salt_;
    backend_->phase([&](unsigned t, Mem& mem) {
      scatter_thread<PageRankKernel, false>(sl, t, mem);
    });
    ++phase_salt_;
    y.resize(n);
    backend_->phase([&](unsigned t, Mem& mem) {
      gather_accumulate<PageRankKernel, false>(sl, t, mem);
      for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
        const VertexRange r = plan_.parts.range(q);
        mem.stream_read(st.acc.data() + r.begin, r.size());
        mem.stream_write(y.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) {
          y[v] = st.acc.data()[v];
          st.acc.data()[v] = 0.0f;
        }
        mem.work(r.size());
      });
    });
    backend_->end_team();

    RunReport report;
    report.seconds = backend_->now_seconds() - t0;
    report.preprocessing_seconds = preprocessing_seconds_;
    report.iterations = 1;
    if constexpr (Backend::kSimulated) {
      report.stats = stats_delta(backend_->machine().stats(), before);
    }
    return report;
  }

  /// Weakly-connected components through the generic WccKernel (kept
  /// as a named convenience for algo::wcc and older call sites). The
  /// graph must be symmetric for the result to be *weak* connectivity.
  struct WccResult {
    std::vector<vid_t> labels;
    unsigned rounds = 0;
    RunReport report;
  };
  WccResult run_wcc(unsigned max_rounds = 1000) {
    WccOptions ko;
    ko.max_rounds = max_rounds;
    const RunOptions ro;
    WccResult result;
    result.report = run_kernel_impl<WccKernel, false>(ko, ro, &result.labels);
    result.rounds = result.report.iterations;
    return result;
  }

  [[nodiscard]] const part::HierarchicalPlan& plan() const { return plan_; }
  [[nodiscard]] const pcp::PcpmBins& bins() const { return bins_; }
  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }

 private:
  void build_plan() {
    part::PlanConfig cfg;
    cfg.partition_bytes = opt_.partition_bytes;
    cfg.vertex_bytes = sizeof(rank_t);
    // Fewer threads than nodes degenerates to fewer plan nodes (a
    // 1-thread run cannot co-locate with data on two sockets).
    cfg.num_nodes = opt_.numa_aware
                        ? std::max(1u, std::min(opt_.num_nodes,
                                                opt_.num_threads))
                        : 1;
    cfg.threads_per_node.assign(cfg.num_nodes, 0);
    for (unsigned t = 0; t < opt_.num_threads; ++t) {
      ++cfg.threads_per_node[t % cfg.num_nodes];
    }
    cfg.balance = opt_.balance;
    plan_ = part::build_hierarchical_plan(graph_->out, cfg);
  }

  void build_bins() {
    bins_ = pcp::build_bins(graph_->out, plan_.parts, opt_.dst_encoding);
  }

  /// Register the active destination list's [db, de) entry range.
  void register_dst_range(eid_t db, eid_t de, DataPlacement pl,
                          unsigned node = 0) {
    if (bins_.compact()) {
      backend_->register_buffer(bins_.dst_list16().data() + db,
                                (de - db) * sizeof(std::uint16_t), pl, node);
    } else {
      backend_->register_buffer(bins_.dst_list().data() + db,
                                (de - db) * sizeof(vid_t), pl, node);
    }
  }

  /// NUMA placement of one kernel slot: per-node slices of every
  /// vertex-indexed attribute array, and destination-side inbox
  /// first-touch. Attribute arrays are single contiguous allocations;
  /// per-node physical placement is registered over slices (paper
  /// §3.4's contiguous virtual address space with per-node pages). The
  /// inbox is written remotely in scatter and consumed locally in
  /// gather (Fig. 1's "send out updated data") — natural first touch
  /// would happen on the SOURCE node, the wrong side — so its pages
  /// are committed to the consuming node explicitly while their
  /// contents are still dead.
  template <class K>
  void place_slot(KernelSlot<K>& sl) {
    using Message = typename K::Message;
    const vid_t n = graph_->num_vertices();
    if (!opt_.numa_aware) {
      // NUMA-oblivious: pages land wherever the allocator/first-touch
      // scatter them; interleave is the faithful 2-node average.
      K::for_each_vertex_array(
          sl.state, [&](const char*, const void* base, std::size_t elem,
                        bool) {
            backend_->register_buffer(base, std::size_t{n} * elem,
                                      DataPlacement::kInterleave);
          });
      backend_->register_buffer(sl.values.data(),
                                sl.values.size() * sizeof(Message),
                                DataPlacement::kInterleave);
      return;
    }
    for (unsigned node = 0; node < plan_.num_nodes; ++node) {
      const VertexRange vr = plan_.node_vertex_range(node);
      K::for_each_vertex_array(
          sl.state, [&](const char*, const void* base, std::size_t elem,
                        bool) {
            backend_->register_buffer(
                static_cast<const char*>(base) +
                    std::size_t{vr.begin} * elem,
                std::size_t{vr.size()} * elem, DataPlacement::kNode, node);
          });
      const std::uint32_t pb = plan_.node_part_begin[node];
      const std::uint32_t pe = plan_.node_part_begin[node + 1];
      const auto [mb, me] = bins_.msg_slice(pb, pe);
      backend_->first_touch(sl.values.data() + mb,
                            (me - mb) * sizeof(Message), node);
    }
  }

  /// Placement of the kernel-independent bin streams (source lists +
  /// destination lists), registered once at construction.
  void place_bins() {
    if (!opt_.numa_aware) {
      backend_->register_buffer(bins_.src_list().data(),
                                bins_.src_list().size_bytes(),
                                DataPlacement::kInterleave);
      register_dst_range(0, bins_.total_dests(),
                         DataPlacement::kInterleave);
      return;
    }
    for (unsigned node = 0; node < plan_.num_nodes; ++node) {
      const std::uint32_t pb = plan_.node_part_begin[node];
      const std::uint32_t pe = plan_.node_part_begin[node + 1];
      // Source-side stream (read by this node's scatter threads).
      const auto [sb, se] = bins_.src_slice(pb, pe);
      backend_->register_buffer(bins_.src_list().data() + sb,
                                (se - sb) * sizeof(vid_t),
                                DataPlacement::kNode, node);
      const auto [db, de] = bins_.dst_slice(pb, pe);
      register_dst_range(db, de, DataPlacement::kNode, node);
    }
  }

  /// Verify the physical placement place_slot() asked for: register
  /// each per-node slice of the kernel's audited attribute arrays plus
  /// the destination-side inbox with the auditor and query the kernel
  /// for where the pages actually live. NUMA-oblivious configurations
  /// have no intended node per buffer, so they audit nothing
  /// (available stays false unless the host is multi-node AND
  /// numa_aware).
  template <class K>
  [[nodiscard]] numa::PlacementAudit run_placement_audit(
      KernelSlot<K>& sl) const {
    numa::PlacementAuditor auditor;
    backend_->register_arena(auditor);
    if (opt_.numa_aware) {
      for (unsigned node = 0; node < plan_.num_nodes; ++node) {
        const VertexRange vr = plan_.node_vertex_range(node);
        const std::string tag = "[node" + std::to_string(node) + "]";
        K::for_each_vertex_array(
            sl.state, [&](const char* nm, const void* base,
                          std::size_t elem, bool audited) {
              if (!audited) return;
              auditor.add(nm + tag,
                          static_cast<const char*>(base) +
                              std::size_t{vr.begin} * elem,
                          std::size_t{vr.size()} * elem, node);
            });
        const std::uint32_t pb = plan_.node_part_begin[node];
        const std::uint32_t pe = plan_.node_part_begin[node + 1];
        const auto [mb, me] = bins_.msg_slice(pb, pe);
        auditor.add("values" + tag, sl.values.data() + mb,
                    (me - mb) * sizeof(typename K::Message), node);
      }
    }
    return auditor.audit();
  }

  void charge_preprocessing() {
    if constexpr (Backend::kSimulated) {
      // Two CSR passes (count + fill) plus writing the bin structure,
      // all serial-equivalent bandwidth; ~15 cycles of bookkeeping per
      // edge (calibrated so the overhead amortizes within roughly the
      // paper's 10-13 HiPa iterations, §4.2).
      const eid_t e = graph_->num_edges();
      backend_->machine().charge_preprocessing(
          e * 16 + 2 * bins_.footprint_bytes(), e * 15);
    }
  }

  // ---- single-dispatch run loop (Algorithm 2) -----------------------------

  /// One cache line per thread so convergence partials never
  /// false-share.
  struct alignas(kCacheLine) PaddedDouble {
    double value = 0.0;
  };

  /// Deterministic thread-index-order reduction of the per-thread L1
  /// partials — shared by both execution paths so the early-stop
  /// decision is bit-identical.
  [[nodiscard]] double reduce_deltas() const {
    double sum = 0.0;
    for (const PaddedDouble& d : deltas_) sum += d.value;
    return sum;
  }

  /// Frontier bookkeeping between rounds (control thread on the
  /// phase() path, thread 0 between barriers on the single-dispatch
  /// path): scan the next-active map written by this round's gather,
  /// swap the double buffer, and report whether any partition stays
  /// active. Plain byte accesses — the phase barrier/join orders them.
  template <class K>
  bool advance_frontier(KernelSlot<K>& sl) {
    const std::uint32_t parts = plan_.parts.num_partitions();
    const std::uint8_t* nx = sl.next_ptr;
    bool any = false;
    for (std::uint32_t p = 0; p < parts; ++p) any = any || nx[p] != 0;
    std::swap(sl.active_ptr, sl.next_ptr);
    return any;
  }

  /// The whole kernel run inside ONE Backend::run_loop parallel
  /// region: init, then per iteration scatter | barrier | gather+apply
  /// | barrier, with thread 0 publishing the iteration scalars
  /// (executed count, convergence sum or frontier emptiness, stop
  /// flag) between barriers. Eliminates the 2-per-iteration condvar
  /// dispatch latency of the phase() path while computing
  /// bitwise-identical results.
  ///
  /// Telemetry (kTel): each thread times its own barrier waits
  /// (attributed to the phase the barrier closes) and thread 0 appends
  /// per-iteration wall seconds between barriers — the same
  /// happens-before pattern as the convergence scalars. The kOff
  /// instantiation is token-identical to the untelemetered loop.
  template <class K, bool kTel>
  void run_single_dispatch(KernelSlot<K>& sl, const RunOptions& ro,
                           bool track, unsigned max_iters,
                           unsigned* iters_out, double* delta_out) {
    // Published by thread 0 between barriers; the barrier's
    // acquire/release atomics order these plain accesses.
    unsigned iters_done = 0;
    double last_delta = 0.0;
    bool stop = false;
    backend_->run_loop([&](unsigned t, Mem& mem, LoopCtl& ctl) {
      auto timed_barrier = [&](runtime::Phase ph) {
        runtime::MaybeTimer<kTel> bt;
        runtime::MaybeSpan<kTel> bspan(timeline_);
        bt.reset();
        ctl.barrier();
        if constexpr (kTel) {
          runtime::PhaseSample& row = timeline_.thread(t)[ph];
          row.barrier_seconds += bt.seconds();
          ++row.barrier_crossings;
          bspan.finish(t, ph, runtime::SpanKind::kBarrier);
        }
      };
      runtime::MaybeTimer<kTel> iter_timer;
      init_thread<K, kTel>(sl, t, mem);
      // vertex state (and active maps) visible before any scatter
      timed_barrier(runtime::Phase::kInit);
      for (unsigned it = 0; it < max_iters; ++it) {
        if constexpr (kTel) {
          if (t == 0) iter_timer.reset();
        }
        scatter_thread<K, kTel>(sl, t, mem);
        // every inbox written before any gather reads
        timed_barrier(runtime::Phase::kScatter);
        if (track) deltas_[t].value = 0.0;
        gather_thread<K, kTel>(sl, t, mem,
                               track ? &deltas_[t].value : nullptr);
        // new vertex state ready for the next scatter
        timed_barrier(runtime::Phase::kGather);
        if (t == 0) {
          iters_done = it + 1;
          if constexpr (kTel) {
            timeline_.record_iteration(iter_timer.seconds());
          }
          if constexpr (K::kUsesFrontier) {
            stop = !advance_frontier(sl);
          } else {
            if (track) {
              last_delta = reduce_deltas();
              stop = last_delta <= ro.tolerance;
            }
          }
        }
        if constexpr (!K::kUsesFrontier) {
          if (!track) continue;
        }
        // thread 0's stop decision (and swapped active maps for
        // frontier kernels) reaches the team
        timed_barrier(runtime::Phase::kGather);
        if (stop) break;
      }
    });
    *iters_out = iters_done;
    *delta_out = last_delta;
  }

  // ---- per-phase partition->thread assignment -----------------------------

  /// Partitions processed by thread t this phase. Pinned mode: the
  /// plan's fixed groups. FCFS mode: the dynamic first-come-first-serve
  /// queue self-balances load, modeled as a longest-processing-time
  /// assignment whose slot->thread mapping rotates every phase (any
  /// thread may end up owning any partition, the paper's contention
  /// point), plus a claim cost per partition scaled by contender count.
  template <class F>
  void for_owned_partitions(unsigned t, Mem& mem, bool source_side,
                            F&& body) {
    (void)source_side;
    if (opt_.pinned_partitions) {
      const auto [pb, pe] = plan_.table.partitions_of_thread(t);
      for (std::uint32_t p = pb; p < pe; ++p) body(p);
      return;
    }
    const unsigned threads = opt_.num_threads;
    const auto& mine = fcfs_slots_[(t + phase_salt_) % threads];
    for (std::uint32_t p : mine) {
      mem.work(std::uint64_t{opt_.fcfs_claim_cycles} * threads);
      body(p);
    }
  }

  /// LPT schedule of partitions onto FCFS slots (built once).
  void build_fcfs_slots() {
    const unsigned threads = opt_.num_threads;
    fcfs_slots_.assign(threads, {});
    std::vector<std::uint32_t> order(plan_.parts.num_partitions());
    for (std::uint32_t p = 0; p < order.size(); ++p) order[p] = p;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return plan_.partition_weights[a] >
                              plan_.partition_weights[b];
                     });
    std::vector<std::uint64_t> load(threads, 0);
    for (std::uint32_t p : order) {
      unsigned best = 0;
      for (unsigned k = 1; k < threads; ++k) {
        if (load[k] < load[best]) best = k;
      }
      fcfs_slots_[best].push_back(p);
      load[best] += plan_.partition_weights[p] + 1;
    }
  }

  // ---- kernels -------------------------------------------------------------

  template <class K, bool kTel>
  void init_thread(KernelSlot<K>& sl, unsigned t, Mem& mem) {
    // Per-thread kernel wall is only meaningful on native backends
    // (simulated threads run in charged sim time, not host time).
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    [[maybe_unused]] std::uint8_t* act = nullptr;
    [[maybe_unused]] std::uint8_t* nxt = nullptr;
    if constexpr (K::kUsesFrontier) {
      act = sl.active_ptr;
      nxt = sl.next_ptr;
    }
    for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
      const VertexRange r = plan_.parts.range(p);
      K::init(sl.state, mem, r);
      if constexpr (K::kUsesFrontier) {
        act[p] = K::initially_active(sl.state, r) ? 1 : 0;
        nxt[p] = 0;
      }
    });
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kInit];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kInit, runtime::SpanKind::kKernel);
    }
  }

  /// Software-prefetch lookahead in the pair loops (entries, not
  /// bytes). Far enough to cover an L2 hit, close enough to stay
  /// inside the partition's resident slice.
  static constexpr eid_t kPrefetchDist = 16;

  template <class K, bool kTel>
  void scatter_thread(KernelSlot<K>& sl, unsigned t, Mem& mem) {
    using Message = typename K::Message;
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    [[maybe_unused]] std::uint64_t tel_msgs = 0;
    const auto& pairs = bins_.pairs();
    const auto& src_begin = bins_.src_pair_begin();
    const vid_t* src_list = bins_.src_list().data();
    const auto sc = K::scatter_ctx(sl.state);
    Message* vals = sl.values.data();
    [[maybe_unused]] const std::uint8_t* act = nullptr;
    [[maybe_unused]] std::uint8_t* nxt = nullptr;
    if constexpr (K::kUsesFrontier) {
      act = sl.active_ptr;
      nxt = sl.next_ptr;
    }
    for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
      if constexpr (K::kUsesFrontier) {
        // Clearing here (before the gather phase sets bits) keeps the
        // double buffer race-free: every partition is claimed exactly
        // once per phase. An inactive partition skips its whole
        // source stream — the frontier payoff.
        nxt[p] = 0;
        if (act[p] == 0) return;
      }
      for (std::uint32_t k = src_begin[p]; k < src_begin[p + 1]; ++k) {
        const pcp::PairInfo& pr = pairs[k];
        if constexpr (kTel) tel_msgs += pr.msg_count;
        mem.stream_read(&pr, 1);  // bin metadata
        mem.stream_read(src_list + pr.src_off, pr.msg_count);
        mem.stream_write(vals + pr.value_off, pr.msg_count);
        // Hoisted cursors; the per-vertex state read is random but
        // resident in this partition's cache slice — prefetch hides
        // its latency when the slice spills past L1.
        const vid_t* __restrict src = src_list + pr.src_off;
        Message* __restrict out = vals + pr.value_off;
        const eid_t cnt = pr.msg_count;
        const eid_t fenced = cnt > kPrefetchDist ? cnt - kPrefetchDist : 0;
        eid_t i = 0;
        for (; i < fenced; ++i) {
          K::scatter_prefetch(sc, src[i + kPrefetchDist]);
          out[i] = K::scatter(sc, mem, src[i]);
        }
        for (; i < cnt; ++i) out[i] = K::scatter(sc, mem, src[i]);
        mem.work(2 * pr.msg_count);
        if (opt_.framework_overhead) {
          mem.work(std::uint64_t{opt_.framework_cycles_per_msg} *
                   pr.msg_count);
        }
      }
      if (opt_.framework_overhead) framework_touch(p, mem);
    });
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kScatter];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_produced += tel_msgs;
      row.bytes_produced += tel_msgs * sizeof(Message);
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kScatter, runtime::SpanKind::kKernel);
    }
  }

  /// Inbox drain of one thread's destination partitions: fold message
  /// values into the kernel's vertex state (shared by the gather phase
  /// and SpMV). Dispatches once per run to the compact (16-bit) or
  /// wide (32-bit) destination-entry kernel.
  template <class K, bool kTel>
  void gather_accumulate(KernelSlot<K>& sl, unsigned t, Mem& mem) {
    if (bins_.compact()) {
      gather_accumulate_impl<K, kTel>(sl, t, mem, bins_.dst_list16().data());
    } else {
      gather_accumulate_impl<K, kTel>(sl, t, mem, bins_.dst_list().data());
    }
  }

  /// Entry-type-generic drain kernel. The inner loop is branchless in
  /// its message tracking: the new-message flag sits in the entry's
  /// top bit, so `msg += entry >> shift` advances the message index
  /// and the value re-load is L1-resident. Compact entries are
  /// partition-local, so the destination partition's first vertex
  /// (loop-invariant) is added back; wide entries carry global ids
  /// (base 0). Frontier kernels skip pairs whose source partition is
  /// inactive — those inbox slices were not rewritten this round — and
  /// mark the destination partition next-active when any vertex
  /// changed.
  template <class K, bool kTel, class E>
  void gather_accumulate_impl(KernelSlot<K>& sl, unsigned t, Mem& mem,
                              const E* dst_list) {
    static_assert(sizeof(E) == 2 || sizeof(E) == 4);
    using Message = typename K::Message;
    constexpr unsigned kShift = sizeof(E) == 2 ? 15 : 31;
    constexpr std::uint32_t kMask = (std::uint32_t{1} << kShift) - 1;
    [[maybe_unused]] std::uint64_t tel_msgs = 0;
    [[maybe_unused]] std::uint64_t tel_dsts = 0;
    const auto& pairs = bins_.pairs();
    const auto& dpi = bins_.dst_pair_index();
    const auto& dpb = bins_.dst_pair_begin();
    const Message* __restrict vals = sl.values.data();
    const auto gc = K::gather_ctx(sl.state);
    [[maybe_unused]] const std::uint8_t* act = nullptr;
    [[maybe_unused]] std::uint8_t* nxt = nullptr;
    if constexpr (K::kUsesFrontier) {
      act = sl.active_ptr;
      nxt = sl.next_ptr;
    }
    for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
      // Loop-invariant partition base (0 for the wide encoding).
      vid_t vbase = 0;
      if constexpr (sizeof(E) == 2) vbase = plan_.parts.range(q).begin;
      [[maybe_unused]] bool part_changed = false;
      for (std::uint32_t idx = dpb[q]; idx < dpb[q + 1]; ++idx) {
        const pcp::PairInfo& pr = pairs[dpi[idx]];
        if constexpr (K::kUsesFrontier) {
          if (act[pr.src_part] == 0) continue;
        }
        if constexpr (kTel) {
          tel_msgs += pr.msg_count;
          tel_dsts += pr.dst_count;
        }
        mem.stream_read(&pr, 1);
        mem.stream_read(vals + pr.value_off, pr.msg_count);
        mem.stream_read(dst_list + pr.dst_off, pr.dst_count);
        const E* __restrict dl = dst_list + pr.dst_off;
        const eid_t cnt = pr.dst_count;
        // First entry of a pair is always flagged, so the pre-first
        // message index is never read.
        eid_t msg = pr.value_off - 1;
        const eid_t fenced = cnt > kPrefetchDist ? cnt - kPrefetchDist : 0;
        eid_t j = 0;
        for (; j < fenced; ++j) {
          const std::uint32_t e = dl[j];
          K::gather_prefetch(
              gc, vbase + (static_cast<std::uint32_t>(dl[j + kPrefetchDist]) &
                           kMask));
          msg += e >> kShift;
          const vid_t d = vbase + (e & kMask);
          if constexpr (K::kUsesFrontier) {
            part_changed |= K::gather(gc, mem, d, vals[msg]);
          } else {
            K::gather(gc, mem, d, vals[msg]);
          }
        }
        for (; j < cnt; ++j) {
          const std::uint32_t e = dl[j];
          msg += e >> kShift;
          const vid_t d = vbase + (e & kMask);
          if constexpr (K::kUsesFrontier) {
            part_changed |= K::gather(gc, mem, d, vals[msg]);
          } else {
            K::gather(gc, mem, d, vals[msg]);
          }
        }
        mem.work(2 * pr.dst_count + pr.msg_count);
        if (opt_.framework_overhead) {
          mem.work(std::uint64_t{opt_.framework_cycles_per_msg} *
                   pr.msg_count);
        }
      }
      if constexpr (K::kUsesFrontier) {
        if (part_changed) nxt[q] = 1;
      }
    });
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      row.messages_consumed += tel_msgs;
      row.bytes_consumed +=
          tel_msgs * sizeof(Message) + tel_dsts * sizeof(E);
    }
  }

  /// Gather + apply. When `delta_out` is non-null (kHasApply kernels
  /// tracking convergence), accumulates this thread's L1 state change
  /// (sum |new - old| over owned vertices, in vertex order); the
  /// update arithmetic is identical either way.
  template <class K, bool kTel>
  void gather_thread(KernelSlot<K>& sl, unsigned t, Mem& mem,
                     double* delta_out = nullptr) {
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    gather_accumulate<K, kTel>(sl, t, mem);
    if constexpr (K::kHasApply) {
      double l1 = 0.0;
      for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
        const VertexRange r = plan_.parts.range(q);
        if (delta_out == nullptr) {
          K::apply(sl.state, mem, r);
        } else {
          l1 += K::apply_tracked(sl.state, mem, r);
        }
        if (opt_.framework_overhead) framework_touch(q, mem);
      });
      if (delta_out != nullptr) *delta_out += l1;
    }
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kGather, runtime::SpanKind::kKernel);
    }
  }

  /// GPOP-style per-partition framework state (Flags, State, bin
  /// sizes): an extra streamed structure per partition per phase.
  void framework_touch(std::uint32_t p, Mem& mem) {
    const std::size_t words =
        opt_.framework_bytes_per_part / sizeof(std::uint64_t);
    std::uint64_t* state = framework_state_.data() + p * words;
    mem.stream_read(state, words);
    mem.stream_write(state, words);
    mem.work(50);
  }

  const graph::Graph* graph_;
  PcpmOptions opt_;
  Backend* backend_;
  part::HierarchicalPlan plan_;
  pcp::PcpmBins bins_;
  /// Per-kernel state slots (vertex attributes + typed inbox + active
  /// maps), keyed by kernel type; the PageRank slot is built in the
  /// constructor, others on first use.
  std::vector<std::pair<std::type_index, std::shared_ptr<void>>> slots_;
  AlignedBuffer<std::uint64_t> framework_state_;
  std::vector<std::vector<std::uint32_t>> fcfs_slots_;
  /// Per-thread L1 convergence partials (only sized when a run tracks
  /// convergence); cache-line padded against false sharing.
  std::vector<PaddedDouble> deltas_;
  /// Per-thread telemetry rows + phase-region totals; reset at the top
  /// of every telemetered run, untouched (empty) otherwise.
  runtime::PhaseTimeline timeline_;
  /// Per-thread perf_event counter groups; provisioned only when a
  /// native run asks for HwProf::kOn (otherwise empty, zero syscalls).
  runtime::HwProfiler hwprof_;
  double preprocessing_seconds_ = 0.0;
  unsigned phase_salt_ = 0;
};

}  // namespace hipa::engine
