// Partition-centric scatter-gather engine (PCPM machinery).
//
// One engine body covers the three partition-centric methodologies of
// the paper through policy switches:
//
//   HiPa  — numa_aware + persistent_threads + pinned_partitions
//           (Algorithm 2: hierarchical plan, thread–data pinning,
//           NUMA-placed layout, all SMT threads usable)
//   p-PR  — NUMA-oblivious, per-phase thread regions, FCFS dynamic
//           partition queue (Algorithm 1; paper's hand-tuned baseline)
//   GPOP  — like p-PR with 1 MB partitions plus framework state
//           (per-partition Flags/State fields, extra indirection)
//
// PageRank per iteration is two parallel regions (paper Algorithm 1/2):
//   scatter: for each owned source partition, stream its message
//            sources, read the cache-resident scaled ranks, stream the
//            values into destination bins;
//   gather : for each owned destination partition, stream its inbox and
//            propagate each message to its destination vertices through
//            intra-partition edges; then apply the PageRank update.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/prefetch.hpp"
#include "engines/backend.hpp"
#include "graph/csr.hpp"
#include "partition/plan.hpp"
#include "pcp/bins.hpp"
#include "runtime/trace.hpp"

namespace hipa::engine {

/// Policy knobs for the PCPM engine family.
struct PcpmOptions {
  std::uint64_t partition_bytes = 256 * 1024;  ///< paper's Skylake optimum
  unsigned num_threads = 40;
  unsigned num_nodes = 2;  ///< plan granularity (match the machine)
  bool numa_aware = true;
  bool persistent_threads = true;
  bool pinned_partitions = true;  ///< false: FCFS dynamic claiming
  bool framework_overhead = false;  ///< GPOP-style per-partition state
  /// Enter ONE parallel region for the whole PageRank run
  /// (Backend::run_loop with in-region barriers) instead of two
  /// condvar dispatches per iteration. Only takes effect on backends
  /// that support it AND with persistent pinned-partition teams (the
  /// HiPa configuration); p-PR/GPOP keep the per-phase Algorithm 1
  /// path. Off exists for A/B measurement (bench_hotpath) and the
  /// bitwise-equivalence tests.
  bool single_dispatch = true;
  /// Edge-balanced (paper Eq. 2) vs even-vertex partitioning (§3.1's
  /// rejected strawman, kept for the balance ablation).
  part::PlanConfig::Balance balance = part::PlanConfig::Balance::kEdges;
  /// Destination-list encoding: kAuto picks the 16-bit compact form
  /// whenever every partition fits 2^15 vertices (halving gather
  /// stream traffic) and falls back to 32-bit otherwise; benches force
  /// kWide to measure the compaction delta.
  pcp::DstEncoding dst_encoding = pcp::DstEncoding::kAuto;
  /// Cycles one FCFS claim costs per contending thread.
  std::uint32_t fcfs_claim_cycles = 150;
  /// Extra framework cycles per message / per partition (GPOP).
  std::uint32_t framework_cycles_per_msg = 3;
  std::uint32_t framework_bytes_per_part = 64;

  /// The paper's named configurations.
  static PcpmOptions hipa(unsigned threads = 40, unsigned nodes = 2,
                          std::uint64_t part_bytes = 256 * 1024) {
    PcpmOptions o;
    o.partition_bytes = part_bytes;
    o.num_threads = threads;
    o.num_nodes = nodes;
    return o;
  }
  static PcpmOptions ppr(unsigned threads = 16, unsigned nodes = 2,
                         std::uint64_t part_bytes = 256 * 1024) {
    PcpmOptions o;
    o.partition_bytes = part_bytes;
    o.num_threads = threads;
    o.num_nodes = nodes;
    o.numa_aware = false;
    o.persistent_threads = false;
    o.pinned_partitions = false;
    return o;
  }
  static PcpmOptions gpop(unsigned threads = 20, unsigned nodes = 2,
                          std::uint64_t part_bytes = 1024 * 1024) {
    PcpmOptions o = ppr(threads, nodes, part_bytes);
    o.framework_overhead = true;
    return o;
  }
};

// PageRankOptions (shared by every engine) lives in engines/backend.hpp
// next to RunReport/RunResult — the unified run surface.

template <class Backend>
class PcpmEngine {
 public:
  using Mem = typename Backend::Mem;

  PcpmEngine(const graph::Graph& g, const PcpmOptions& opt,
             Backend& backend)
      : graph_(&g), opt_(opt), backend_(&backend) {
    HIPA_CHECK(opt.num_threads >= 1 && opt.num_nodes >= 1);
    const double t0 = backend.now_seconds();
    build_plan();
    if (!opt_.pinned_partitions) build_fcfs_slots();
    build_bins();
    build_attributes();
    place_data();
    charge_preprocessing();
    preprocessing_seconds_ = backend.now_seconds() - t0;
  }

  /// Unified run surface: report + final ranks in one value.
  [[nodiscard]] RunResult run(const PageRankOptions& pr) {
    RunResult result;
    result.report = run_pagerank(pr, &result.ranks);
    return result;
  }

  /// Run PageRank; final ranks land in `ranks_out` when non-null.
  /// Instrumentation (telemetry, hw counters, trace spans) is a
  /// compile-time fork: the uninstrumented instantiation contains no
  /// recording code at all.
  RunReport run_pagerank(const PageRankOptions& pr,
                         std::vector<rank_t>* ranks_out = nullptr) {
    return pr.instrumented() ? run_pagerank_impl<true>(pr, ranks_out)
                             : run_pagerank_impl<false>(pr, ranks_out);
  }

 private:
  template <bool kTel>
  RunReport run_pagerank_impl(const PageRankOptions& pr,
                              std::vector<rank_t>* ranks_out) {
    const vid_t n = graph_->num_vertices();
    if constexpr (kTel) {
      timeline_.reset(opt_.num_threads);
      timeline_.reserve_iterations(pr.iterations);
      if constexpr (!Backend::kSimulated) {
        // Hardware counters + trace spans are host-side concepts; the
        // simulated backend keeps its modeled counters instead.
        hwprof_.reset(opt_.num_threads,
                      pr.hw_counters == runtime::HwProf::kOn);
        if (!pr.trace_path.empty()) {
          timeline_.enable_spans(4 * std::size_t{pr.iterations} + 8);
        }
      }
    }
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = opt_.persistent_threads;
    spec.binding = opt_.numa_aware ? ThreadTeamSpec::Binding::kNodeBlocked
                                   : ThreadTeamSpec::Binding::kRandom;
    // Pad with idle nodes when the plan collapsed to fewer nodes than
    // the machine has (node-blocked placement wants one entry each).
    spec.threads_per_node = plan_.threads_per_node;
    spec.threads_per_node.resize(
        std::max<std::size_t>(spec.threads_per_node.size(),
                              opt_.num_nodes),
        0);

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    // Iteration region: any page-aligned allocation from here on must
    // come from the arena (debug builds assert; all builds count).
    [[maybe_unused]] std::optional<runtime::HotPathGuard> hot_guard;
    if constexpr (!Backend::kSimulated) {
      backend_->set_barrier_kind(pr.barrier);
      hot_guard.emplace();
    }
    phase_salt_ = 0;  // runs replay identically on a reset machine
    backend_->start_team(spec);
    const auto base =
        static_cast<rank_t>((1.0 - pr.damping) / static_cast<double>(n));
    const bool track = pr.tolerance > 0.0;
    if (track) deltas_.assign(opt_.num_threads, PaddedDouble{});

    unsigned iters_done = 0;
    double last_delta = 0.0;
    bool single_dispatch = false;
    if constexpr (Backend::kSupportsRunLoop) {
      // Algorithm 2's whole point: one team wakeup for the entire run.
      // FCFS claiming (p-PR/GPOP) keeps per-phase dispatch — its salt
      // rotation and claim-cost model are phase-granular by design.
      single_dispatch = opt_.single_dispatch && opt_.persistent_threads &&
                        opt_.pinned_partitions;
    }
    if (single_dispatch) {
      if constexpr (Backend::kSupportsRunLoop) {
        run_pagerank_single_dispatch<kTel>(pr, base, track, &iters_done,
                                           &last_delta);
      }
    } else {
      timed_phase<kTel>(runtime::Phase::kInit, [&](unsigned t, Mem& mem) {
        init_thread<kTel>(t, mem);
      });
      for (unsigned it = 0; it < pr.iterations; ++it) {
        [[maybe_unused]] double it0 = 0.0;
        if constexpr (kTel) it0 = backend_->now_seconds();
        ++phase_salt_;
        timed_phase<kTel>(runtime::Phase::kScatter,
                          [&](unsigned t, Mem& mem) {
                            scatter_thread<kTel>(t, mem);
                          });
        ++phase_salt_;
        timed_phase<kTel>(runtime::Phase::kGather, [&](unsigned t, Mem& mem) {
          if (track) deltas_[t].value = 0.0;
          gather_thread<kTel>(t, mem, base, pr.damping,
                              track ? &deltas_[t].value : nullptr);
        });
        if constexpr (kTel) {
          timeline_.record_iteration(backend_->now_seconds() - it0);
        }
        iters_done = it + 1;
        if (track) {
          last_delta = reduce_deltas();
          if (last_delta <= pr.tolerance) break;
        }
      }
    }
    backend_->end_team();

    RunReport report;
    report.seconds = backend_->now_seconds() - t0;
    report.preprocessing_seconds = preprocessing_seconds_;
    report.iterations = iters_done;
    report.last_delta = last_delta;
    if constexpr (Backend::kSimulated) {
      report.stats = stats_delta(backend_->machine().stats(), before);
    }
    if constexpr (kTel) {
      report.telemetry = runtime::aggregate(timeline_);
      if constexpr (!Backend::kSimulated) {
        if (pr.hw_counters == runtime::HwProf::kOn) {
          report.telemetry.hw_available = hwprof_.any_open();
          report.telemetry.hw_threads = hwprof_.open_threads();
          report.telemetry.hw_event_mask = hwprof_.event_mask();
          if (!report.telemetry.hw_available && hwprof_.num_threads() > 0) {
            report.telemetry.hw_errno = hwprof_.group(0).last_errno();
          }
        }
        if (!pr.trace_path.empty() &&
            !trace::ChromeTraceWriter::write(pr.trace_path, timeline_,
                                             engine_label())) {
          HIPA_WARN("trace write failed: " << pr.trace_path);
        }
      }
    }
    if constexpr (!Backend::kSimulated) {
      // Plain runtime branch after the parallel region — never on the
      // hot path, works with or without telemetry.
      report.arena = backend_->arena_stats();
      if (pr.audit_placement) report.placement_audit = run_placement_audit();
    }
    if (ranks_out != nullptr) {
      ranks_out->assign(rank_.begin(), rank_.end());
    }
    return report;
  }

  /// Human label for traces: which of the three PCPM configurations
  /// this engine instance embodies.
  [[nodiscard]] const char* engine_label() const {
    if (opt_.numa_aware && opt_.persistent_threads &&
        opt_.pinned_partitions) {
      return "HiPa";
    }
    return opt_.framework_overhead ? "GPOP" : "p-PR";
  }

  /// Wrap one phase() dispatch in region accounting: region wall time
  /// (simulated seconds on SimBackend, host seconds on native) plus,
  /// on the simulated backend, the DRAM local/remote access delta the
  /// region produced. The kOff instantiation is exactly
  /// `backend_->phase(kernel)` — zero added code.
  template <bool kTel, class F>
  void timed_phase(runtime::Phase ph, F&& kernel) {
    if constexpr (!kTel) {
      backend_->phase(std::forward<F>(kernel));
    } else {
      [[maybe_unused]] sim::SimStats s0;
      if constexpr (Backend::kSimulated) s0 = backend_->machine().stats();
      const double t0 = backend_->now_seconds();
      backend_->phase(std::forward<F>(kernel));
      const double dt = backend_->now_seconds() - t0;
      if constexpr (Backend::kSimulated) {
        const sim::SimStats d =
            stats_delta(backend_->machine().stats(), s0);
        timeline_.record_region(ph, dt, d.dram_local_accesses,
                                d.dram_remote_accesses);
      } else {
        timeline_.record_region(ph, dt);
      }
    }
  }

 public:
  /// Whether run_pagerank will take the single-dispatch run_loop path
  /// (backend capability x policy knobs). Exposed for tests/bench.
  [[nodiscard]] bool uses_single_dispatch() const {
    return Backend::kSupportsRunLoop && opt_.single_dispatch &&
           opt_.persistent_threads && opt_.pinned_partitions;
  }

  /// Field-wise counter subtraction (this run's delta).
  static sim::SimStats stats_delta(sim::SimStats s, const sim::SimStats& b) {
    s.loads -= b.loads;
    s.stores -= b.stores;
    s.atomics -= b.atomics;
    s.l1_hits -= b.l1_hits;
    s.l1_misses -= b.l1_misses;
    s.l2_hits -= b.l2_hits;
    s.l2_misses -= b.l2_misses;
    s.llc_hits -= b.llc_hits;
    s.llc_misses -= b.llc_misses;
    s.dram_local_accesses -= b.dram_local_accesses;
    s.dram_remote_accesses -= b.dram_remote_accesses;
    s.dram_local_bytes -= b.dram_local_bytes;
    s.dram_remote_bytes -= b.dram_remote_bytes;
    s.thread_creations -= b.thread_creations;
    s.thread_migrations -= b.thread_migrations;
    s.phases -= b.phases;
    s.total_cycles -= b.total_cycles;
    return s;
  }

  /// Sparse matrix-vector product over the adjacency matrix:
  /// y[v] = sum of x[u] over edges u->v (paper §6's first listed
  /// extension). Runs one scatter-gather round through the same bins
  /// and thread-data pinning as PageRank.
  RunReport run_spmv(std::span<const rank_t> x, std::vector<rank_t>& y) {
    const vid_t n = graph_->num_vertices();
    HIPA_CHECK(x.size() == n, "input vector size mismatch");
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = opt_.persistent_threads;
    spec.binding = opt_.numa_aware ? ThreadTeamSpec::Binding::kNodeBlocked
                                   : ThreadTeamSpec::Binding::kRandom;
    spec.threads_per_node = plan_.threads_per_node;
    spec.threads_per_node.resize(
        std::max<std::size_t>(spec.threads_per_node.size(), opt_.num_nodes),
        0);

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    // Stage x into the NUMA-placed rank_scaled_ array, then reuse the
    // PageRank scatter; gather accumulates into acc_ and copies to y.
    backend_->start_team(spec);
    ++phase_salt_;
    backend_->phase([&](unsigned t, Mem& mem) {
      for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
        const VertexRange r = plan_.parts.range(p);
        mem.stream_read(x.data() + r.begin, r.size());
        mem.stream_write(rank_scaled_.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) {
          rank_scaled_[v] = x[v];
          acc_[v] = 0.0f;
        }
        mem.work(r.size());
      });
    });
    ++phase_salt_;
    backend_->phase([&](unsigned t, Mem& mem) { scatter_thread(t, mem); });
    ++phase_salt_;
    y.resize(n);
    backend_->phase([&](unsigned t, Mem& mem) {
      gather_accumulate(t, mem);
      for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
        const VertexRange r = plan_.parts.range(q);
        mem.stream_read(acc_.data() + r.begin, r.size());
        mem.stream_write(y.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) {
          y[v] = acc_[v];
          acc_[v] = 0.0f;
        }
        mem.work(r.size());
      });
    });
    backend_->end_team();

    RunReport report;
    report.seconds = backend_->now_seconds() - t0;
    report.preprocessing_seconds = preprocessing_seconds_;
    report.iterations = 1;
    if constexpr (Backend::kSimulated) {
      report.stats = stats_delta(backend_->machine().stats(), before);
    }
    return report;
  }


  /// Weakly-connected components by min-label propagation through the
  /// same bins and pinning (another §6-style generalization). The
  /// graph must be symmetric (every edge present in both directions,
  /// e.g. built with BuildOptions::symmetrize) for the result to be
  /// *weak* connectivity. Returns the converged labels (smallest
  /// vertex id in each component) and the rounds used.
  struct WccResult {
    std::vector<vid_t> labels;
    unsigned rounds = 0;
    RunReport report;
  };
  WccResult run_wcc(unsigned max_rounds = 1000) {
    const vid_t n = graph_->num_vertices();
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = opt_.persistent_threads;
    spec.binding = opt_.numa_aware ? ThreadTeamSpec::Binding::kNodeBlocked
                                   : ThreadTeamSpec::Binding::kRandom;
    spec.threads_per_node = plan_.threads_per_node;
    spec.threads_per_node.resize(
        std::max<std::size_t>(spec.threads_per_node.size(), opt_.num_nodes),
        0);

    // Label attributes and a label-typed message buffer, placed like
    // their PageRank counterparts.
    AlignedBuffer<vid_t> label = backend_->template alloc_pages<vid_t>(n);
    AlignedBuffer<vid_t> lvalues =
        backend_->template alloc_pages<vid_t>(bins_.total_messages());
    if (opt_.numa_aware) {
      for (unsigned node = 0; node < plan_.num_nodes; ++node) {
        const VertexRange vr = plan_.node_vertex_range(node);
        backend_->register_buffer(label.data() + vr.begin,
                                  vr.size() * sizeof(vid_t),
                                  DataPlacement::kNode, node);
        const std::uint32_t pb = plan_.node_part_begin[node];
        const std::uint32_t pe = plan_.node_part_begin[node + 1];
        const auto [mb, me] = bins_.msg_slice(pb, pe);
        backend_->register_buffer(lvalues.data() + mb,
                                  (me - mb) * sizeof(vid_t),
                                  DataPlacement::kNode, node);
      }
    } else {
      backend_->register_buffer(label.data(), n * sizeof(vid_t),
                                DataPlacement::kInterleave);
      backend_->register_buffer(lvalues.data(),
                                lvalues.size() * sizeof(vid_t),
                                DataPlacement::kInterleave);
    }

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    std::vector<std::uint64_t> changed(opt_.num_threads, 0);
    phase_salt_ = 0;
    backend_->start_team(spec);
    backend_->phase([&](unsigned t, Mem& mem) {
      for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
        const VertexRange r = plan_.parts.range(p);
        mem.stream_write(label.data() + r.begin, r.size());
        for (vid_t v = r.begin; v < r.end; ++v) label[v] = v;
        mem.work(r.size());
      });
    });

    WccResult result;
    const auto& pairs = bins_.pairs();
    const auto& src_begin = bins_.src_pair_begin();
    const auto& dpi = bins_.dst_pair_index();
    const auto& dpb = bins_.dst_pair_begin();
    const vid_t* src_list = bins_.src_list().data();
    // Entry-type-generic min-label drain (same branchless message
    // tracking as gather_accumulate_impl); E is deduced from the
    // active destination-list encoding.
    auto drain_labels = [&]<class E>(const E* dst_list, unsigned t,
                                     Mem& mem) -> std::uint64_t {
      constexpr unsigned kShift = sizeof(E) == 2 ? 15 : 31;
      constexpr std::uint32_t kMask = (std::uint32_t{1} << kShift) - 1;
      std::uint64_t local_changed = 0;
      for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
        vid_t vbase = 0;
        if constexpr (sizeof(E) == 2) vbase = plan_.parts.range(q).begin;
        for (std::uint32_t idx = dpb[q]; idx < dpb[q + 1]; ++idx) {
          const pcp::PairInfo& pr = pairs[dpi[idx]];
          mem.stream_read(lvalues.data() + pr.value_off, pr.msg_count);
          mem.stream_read(dst_list + pr.dst_off, pr.dst_count);
          const E* __restrict dl = dst_list + pr.dst_off;
          eid_t msg = pr.value_off - 1;
          for (eid_t j = 0; j < pr.dst_count; ++j) {
            const std::uint32_t e = dl[j];
            msg += e >> kShift;
            const vid_t val = lvalues[msg];
            const vid_t d = vbase + (e & kMask);
            if (val < label[d]) {
              mem.store(label.data() + d, val);
              ++local_changed;
            }
          }
          mem.work(2 * pr.dst_count);
        }
      });
      return local_changed;
    };
    for (; result.rounds < max_rounds; ++result.rounds) {
      ++phase_salt_;
      backend_->phase([&](unsigned t, Mem& mem) {
        for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
          for (std::uint32_t k = src_begin[p]; k < src_begin[p + 1]; ++k) {
            const pcp::PairInfo& pr = pairs[k];
            mem.stream_read(src_list + pr.src_off, pr.msg_count);
            mem.stream_write(lvalues.data() + pr.value_off, pr.msg_count);
            const vid_t* __restrict src = src_list + pr.src_off;
            vid_t* __restrict out = lvalues.data() + pr.value_off;
            for (eid_t i = 0; i < pr.msg_count; ++i) {
              out[i] = mem.load(label.data() + src[i]);
            }
            mem.work(2 * pr.msg_count);
          }
        });
      });
      ++phase_salt_;
      std::fill(changed.begin(), changed.end(), 0);
      backend_->phase([&](unsigned t, Mem& mem) {
        changed[t] = bins_.compact()
                         ? drain_labels(bins_.dst_list16().data(), t, mem)
                         : drain_labels(bins_.dst_list().data(), t, mem);
      });
      std::uint64_t total = 0;
      for (std::uint64_t c : changed) total += c;
      if (total == 0) break;
    }
    backend_->end_team();

    result.report.seconds = backend_->now_seconds() - t0;
    result.report.iterations = result.rounds;
    if constexpr (Backend::kSimulated) {
      result.report.stats = stats_delta(backend_->machine().stats(), before);
    }
    result.labels.assign(label.begin(), label.end());
    return result;
  }

  [[nodiscard]] const part::HierarchicalPlan& plan() const { return plan_; }
  [[nodiscard]] const pcp::PcpmBins& bins() const { return bins_; }
  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }

 private:
  void build_plan() {
    part::PlanConfig cfg;
    cfg.partition_bytes = opt_.partition_bytes;
    cfg.vertex_bytes = sizeof(rank_t);
    // Fewer threads than nodes degenerates to fewer plan nodes (a
    // 1-thread run cannot co-locate with data on two sockets).
    cfg.num_nodes = opt_.numa_aware
                        ? std::max(1u, std::min(opt_.num_nodes,
                                                opt_.num_threads))
                        : 1;
    cfg.threads_per_node.assign(cfg.num_nodes, 0);
    for (unsigned t = 0; t < opt_.num_threads; ++t) {
      ++cfg.threads_per_node[t % cfg.num_nodes];
    }
    cfg.balance = opt_.balance;
    plan_ = part::build_hierarchical_plan(graph_->out, cfg);
  }

  void build_bins() {
    bins_ = pcp::build_bins(graph_->out, plan_.parts, opt_.dst_encoding);
  }

  void build_attributes() {
    const vid_t n = graph_->num_vertices();
    // Attribute arrays are single contiguous allocations; per-node
    // physical placement is registered over slices (paper §3.4's
    // contiguous virtual address space with per-node pages). Carved
    // page-aligned from the arena's first-touch region — fresh,
    // never-touched pages, deliberately NOT eagerly zeroed: the first
    // write to rank_/rank_scaled_/acc_ happens in init_thread, i.e.
    // from the pinned owner of each slice — the classic first-touch
    // placement that keeps pages node-local even without mbind support.
    rank_ = backend_->template alloc_pages<rank_t>(n);
    rank_scaled_ = backend_->template alloc_pages<rank_t>(n);
    acc_ = backend_->template alloc_pages<rank_t>(n);
    // Reciprocal out-degrees, the shared owner of the sink-vertex
    // semantics (inv 0 for sinks): the per-iteration divide in the
    // seed/gather epilogues becomes a branchless multiply. Cold-path
    // heap allocation by design: inverse_degrees computes into a
    // cache-line-aligned buffer during preprocessing, below the
    // page-alignment threshold the arena hook polices.
    inv_deg_ = graph::inverse_degrees<rank_t>(graph_->out);
    values_ = backend_->template alloc_pages<rank_t>(bins_.total_messages());
    if (opt_.framework_overhead) {
      const std::size_t words_per_part =
          opt_.framework_bytes_per_part / sizeof(std::uint64_t);
      framework_state_ = backend_->template alloc_pages<std::uint64_t>(
          std::size_t{plan_.parts.num_partitions()} * words_per_part);
      framework_state_.fill_zero();
    }
  }

  /// Register the active destination list's [db, de) entry range.
  void register_dst_range(eid_t db, eid_t de, DataPlacement pl,
                          unsigned node = 0) {
    if (bins_.compact()) {
      backend_->register_buffer(bins_.dst_list16().data() + db,
                                (de - db) * sizeof(std::uint16_t), pl, node);
    } else {
      backend_->register_buffer(bins_.dst_list().data() + db,
                                (de - db) * sizeof(vid_t), pl, node);
    }
  }

  void place_data() {
    if (!opt_.numa_aware) {
      // NUMA-oblivious: pages land wherever the allocator/first-touch
      // scatter them; interleave is the faithful 2-node average.
      backend_->register_buffer(rank_.data(), rank_.size() * sizeof(rank_t),
                                DataPlacement::kInterleave);
      backend_->register_buffer(rank_scaled_.data(),
                                rank_scaled_.size() * sizeof(rank_t),
                                DataPlacement::kInterleave);
      backend_->register_buffer(acc_.data(), acc_.size() * sizeof(rank_t),
                                DataPlacement::kInterleave);
      backend_->register_buffer(inv_deg_.data(),
                                inv_deg_.size() * sizeof(rank_t),
                                DataPlacement::kInterleave);
      backend_->register_buffer(values_.data(),
                                values_.size() * sizeof(rank_t),
                                DataPlacement::kInterleave);
      backend_->register_buffer(bins_.src_list().data(),
                                bins_.src_list().size_bytes(),
                                DataPlacement::kInterleave);
      register_dst_range(0, bins_.total_dests(),
                         DataPlacement::kInterleave);
      return;
    }
    for (unsigned node = 0; node < plan_.num_nodes; ++node) {
      const VertexRange vr = plan_.node_vertex_range(node);
      auto reg_verts = [&](const void* base, std::size_t elem) {
        backend_->register_buffer(
            static_cast<const char*>(base) + std::size_t{vr.begin} * elem,
            std::size_t{vr.size()} * elem, DataPlacement::kNode, node);
      };
      reg_verts(rank_.data(), sizeof(rank_t));
      reg_verts(rank_scaled_.data(), sizeof(rank_t));
      reg_verts(acc_.data(), sizeof(rank_t));
      reg_verts(inv_deg_.data(), sizeof(rank_t));

      const std::uint32_t pb = plan_.node_part_begin[node];
      const std::uint32_t pe = plan_.node_part_begin[node + 1];
      // Source-side stream (read by this node's scatter threads).
      const auto [sb, se] = bins_.src_slice(pb, pe);
      backend_->register_buffer(bins_.src_list().data() + sb,
                                (se - sb) * sizeof(vid_t),
                                DataPlacement::kNode, node);
      // Destination-side inbox (written remotely in scatter, consumed
      // locally in gather — Fig. 1's "send out updated data"). Natural
      // first touch would happen in scatter, i.e. on the SOURCE node —
      // the wrong side — so commit these pages to the consuming node
      // explicitly while their contents are still dead.
      const auto [mb, me] = bins_.msg_slice(pb, pe);
      backend_->first_touch(values_.data() + mb,
                            (me - mb) * sizeof(rank_t), node);
      const auto [db, de] = bins_.dst_slice(pb, pe);
      register_dst_range(db, de, DataPlacement::kNode, node);
    }
  }

  /// Verify the physical placement place_data() asked for: register
  /// each per-node slice of the attribute arrays plus the
  /// destination-side inbox with the auditor and query the kernel for
  /// where the pages actually live. NUMA-oblivious configurations have
  /// no intended node per buffer, so they audit nothing (available
  /// stays false unless the host is multi-node AND numa_aware).
  [[nodiscard]] numa::PlacementAudit run_placement_audit() const {
    numa::PlacementAuditor auditor;
    backend_->register_arena(auditor);
    if (opt_.numa_aware) {
      for (unsigned node = 0; node < plan_.num_nodes; ++node) {
        const VertexRange vr = plan_.node_vertex_range(node);
        const std::string tag = "[node" + std::to_string(node) + "]";
        auto add_verts = [&](const char* nm, const void* base,
                             std::size_t elem) {
          auditor.add(nm + tag,
                      static_cast<const char*>(base) +
                          std::size_t{vr.begin} * elem,
                      std::size_t{vr.size()} * elem, node);
        };
        add_verts("rank", rank_.data(), sizeof(rank_t));
        add_verts("rank_scaled", rank_scaled_.data(), sizeof(rank_t));
        add_verts("acc", acc_.data(), sizeof(rank_t));
        const std::uint32_t pb = plan_.node_part_begin[node];
        const std::uint32_t pe = plan_.node_part_begin[node + 1];
        const auto [mb, me] = bins_.msg_slice(pb, pe);
        auditor.add("values" + tag, values_.data() + mb,
                    (me - mb) * sizeof(rank_t), node);
      }
    }
    return auditor.audit();
  }

  void charge_preprocessing() {
    if constexpr (Backend::kSimulated) {
      // Two CSR passes (count + fill) plus writing the bin structure,
      // all serial-equivalent bandwidth; ~15 cycles of bookkeeping per
      // edge (calibrated so the overhead amortizes within roughly the
      // paper's 10-13 HiPa iterations, §4.2).
      const eid_t e = graph_->num_edges();
      backend_->machine().charge_preprocessing(
          e * 16 + 2 * bins_.footprint_bytes(), e * 15);
    }
  }

  // ---- single-dispatch run loop (Algorithm 2) -----------------------------

  /// One cache line per thread so convergence partials never
  /// false-share.
  struct alignas(kCacheLine) PaddedDouble {
    double value = 0.0;
  };

  /// Deterministic thread-index-order reduction of the per-thread L1
  /// partials — shared by both execution paths so the early-stop
  /// decision is bit-identical.
  [[nodiscard]] double reduce_deltas() const {
    double sum = 0.0;
    for (const PaddedDouble& d : deltas_) sum += d.value;
    return sum;
  }

  /// The whole PageRank run inside ONE Backend::run_loop parallel
  /// region: init, then per iteration scatter | barrier | gather+apply
  /// | barrier, with thread 0 publishing the iteration scalars
  /// (executed count, convergence sum, stop flag) between barriers.
  /// Eliminates the 2-per-iteration condvar dispatch latency of the
  /// phase() path while computing bitwise-identical ranks.
  ///
  /// Telemetry (kTel): each thread times its own barrier waits
  /// (attributed to the phase the barrier closes) and thread 0 appends
  /// per-iteration wall seconds between barriers — the same
  /// happens-before pattern as the convergence scalars. The kOff
  /// instantiation is token-identical to the untelemetered loop.
  template <bool kTel>
  void run_pagerank_single_dispatch(const PageRankOptions& pr, rank_t base,
                                    bool track, unsigned* iters_out,
                                    double* delta_out) {
    // Published by thread 0 between barriers; the barrier's
    // acquire/release atomics order these plain accesses.
    unsigned iters_done = 0;
    double last_delta = 0.0;
    bool stop = false;
    backend_->run_loop([&](unsigned t, Mem& mem, LoopCtl& ctl) {
      auto timed_barrier = [&](runtime::Phase ph) {
        runtime::MaybeTimer<kTel> bt;
        runtime::MaybeSpan<kTel> bspan(timeline_);
        bt.reset();
        ctl.barrier();
        if constexpr (kTel) {
          runtime::PhaseSample& row = timeline_.thread(t)[ph];
          row.barrier_seconds += bt.seconds();
          ++row.barrier_crossings;
          bspan.finish(t, ph, runtime::SpanKind::kBarrier);
        }
      };
      runtime::MaybeTimer<kTel> iter_timer;
      init_thread<kTel>(t, mem);
      // ranks/scaled ranks visible before any scatter
      timed_barrier(runtime::Phase::kInit);
      for (unsigned it = 0; it < pr.iterations; ++it) {
        if constexpr (kTel) {
          if (t == 0) iter_timer.reset();
        }
        scatter_thread<kTel>(t, mem);
        // every inbox written before any gather reads
        timed_barrier(runtime::Phase::kScatter);
        if (track) deltas_[t].value = 0.0;
        gather_thread<kTel>(t, mem, base, pr.damping,
                            track ? &deltas_[t].value : nullptr);
        // new scaled ranks ready for the next scatter
        timed_barrier(runtime::Phase::kGather);
        if (t == 0) {
          iters_done = it + 1;
          if constexpr (kTel) {
            timeline_.record_iteration(iter_timer.seconds());
          }
          if (track) {
            last_delta = reduce_deltas();
            stop = last_delta <= pr.tolerance;
          }
        }
        if (!track) continue;
        // thread 0's stop decision reaches the team
        timed_barrier(runtime::Phase::kGather);
        if (stop) break;
      }
    });
    *iters_out = iters_done;
    *delta_out = last_delta;
  }

  // ---- per-phase partition->thread assignment -----------------------------

  /// Partitions processed by thread t this phase. Pinned mode: the
  /// plan's fixed groups. FCFS mode: the dynamic first-come-first-serve
  /// queue self-balances load, modeled as a longest-processing-time
  /// assignment whose slot->thread mapping rotates every phase (any
  /// thread may end up owning any partition, the paper's contention
  /// point), plus a claim cost per partition scaled by contender count.
  template <class F>
  void for_owned_partitions(unsigned t, Mem& mem, bool source_side,
                            F&& body) {
    (void)source_side;
    if (opt_.pinned_partitions) {
      const auto [pb, pe] = plan_.table.partitions_of_thread(t);
      for (std::uint32_t p = pb; p < pe; ++p) body(p);
      return;
    }
    const unsigned threads = opt_.num_threads;
    const auto& mine = fcfs_slots_[(t + phase_salt_) % threads];
    for (std::uint32_t p : mine) {
      mem.work(std::uint64_t{opt_.fcfs_claim_cycles} * threads);
      body(p);
    }
  }

  /// LPT schedule of partitions onto FCFS slots (built once).
  void build_fcfs_slots() {
    const unsigned threads = opt_.num_threads;
    fcfs_slots_.assign(threads, {});
    std::vector<std::uint32_t> order(plan_.parts.num_partitions());
    for (std::uint32_t p = 0; p < order.size(); ++p) order[p] = p;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return plan_.partition_weights[a] >
                              plan_.partition_weights[b];
                     });
    std::vector<std::uint64_t> load(threads, 0);
    for (std::uint32_t p : order) {
      unsigned best = 0;
      for (unsigned k = 1; k < threads; ++k) {
        if (load[k] < load[best]) best = k;
      }
      fcfs_slots_[best].push_back(p);
      load[best] += plan_.partition_weights[p] + 1;
    }
  }

  // ---- kernels -------------------------------------------------------------

  template <bool kTel = false>
  void init_thread(unsigned t, Mem& mem) {
    // Per-thread kernel wall is only meaningful on native backends
    // (simulated threads run in charged sim time, not host time).
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    const vid_t n = graph_->num_vertices();
    const auto r0 = static_cast<rank_t>(1.0 / static_cast<double>(n));
    for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
      const VertexRange r = plan_.parts.range(p);
      mem.stream_read(inv_deg_.data() + r.begin, r.size());
      mem.stream_write(rank_.data() + r.begin, r.size());
      mem.stream_write(rank_scaled_.data() + r.begin, r.size());
      mem.stream_write(acc_.data() + r.begin, r.size());
      const rank_t* __restrict inv = inv_deg_.data();
      for (vid_t v = r.begin; v < r.end; ++v) {
        rank_[v] = r0;
        // Branchless sink handling: inv is exactly 0 for sinks.
        rank_scaled_[v] = r0 * inv[v];
        acc_[v] = 0.0f;
      }
      mem.work(r.size());
    });
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kInit];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kInit, runtime::SpanKind::kKernel);
    }
  }

  /// Software-prefetch lookahead in the pair loops (entries, not
  /// bytes). Far enough to cover an L2 hit, close enough to stay
  /// inside the partition's resident slice.
  static constexpr eid_t kPrefetchDist = 16;

  template <bool kTel = false>
  void scatter_thread(unsigned t, Mem& mem) {
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    [[maybe_unused]] std::uint64_t tel_msgs = 0;
    const auto& pairs = bins_.pairs();
    const auto& src_begin = bins_.src_pair_begin();
    const vid_t* src_list = bins_.src_list().data();
    const rank_t* rs = rank_scaled_.data();
    rank_t* vals = values_.data();
    for_owned_partitions(t, mem, true, [&](std::uint32_t p) {
      for (std::uint32_t k = src_begin[p]; k < src_begin[p + 1]; ++k) {
        const pcp::PairInfo& pr = pairs[k];
        if constexpr (kTel) tel_msgs += pr.msg_count;
        mem.stream_read(&pr, 1);  // bin metadata
        mem.stream_read(src_list + pr.src_off, pr.msg_count);
        mem.stream_write(vals + pr.value_off, pr.msg_count);
        // Hoisted cursors; the rank read is random but resident in
        // this partition's cache slice — prefetch hides its latency
        // when the slice spills past L1.
        const vid_t* __restrict src = src_list + pr.src_off;
        rank_t* __restrict out = vals + pr.value_off;
        const eid_t cnt = pr.msg_count;
        const eid_t fenced = cnt > kPrefetchDist ? cnt - kPrefetchDist : 0;
        eid_t i = 0;
        for (; i < fenced; ++i) {
          prefetch_read(rs + src[i + kPrefetchDist]);
          out[i] = mem.load(rs + src[i]);
        }
        for (; i < cnt; ++i) out[i] = mem.load(rs + src[i]);
        mem.work(2 * pr.msg_count);
        if (opt_.framework_overhead) {
          mem.work(std::uint64_t{opt_.framework_cycles_per_msg} *
                   pr.msg_count);
        }
      }
      if (opt_.framework_overhead) framework_touch(p, mem);
    });
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kScatter];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_produced += tel_msgs;
      row.bytes_produced += tel_msgs * sizeof(rank_t);
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kScatter, runtime::SpanKind::kKernel);
    }
  }

  /// Inbox drain of one thread's destination partitions: accumulate
  /// message values into acc_ (shared by PageRank gather and SpMV).
  /// Dispatches once per run to the compact (16-bit) or wide (32-bit)
  /// destination-entry kernel.
  template <bool kTel = false>
  void gather_accumulate(unsigned t, Mem& mem) {
    if (bins_.compact()) {
      gather_accumulate_impl<kTel>(t, mem, bins_.dst_list16().data());
    } else {
      gather_accumulate_impl<kTel>(t, mem, bins_.dst_list().data());
    }
  }

  /// Entry-type-generic accumulate kernel. The inner loop is
  /// branchless: the new-message flag sits in the entry's top bit, so
  /// `msg += entry >> shift` advances the message index and the value
  /// re-load is L1-resident. Compact entries are partition-local, so
  /// the destination partition's first vertex (loop-invariant) is
  /// added back; wide entries carry global ids (base 0).
  template <bool kTel = false, class E>
  void gather_accumulate_impl(unsigned t, Mem& mem, const E* dst_list) {
    static_assert(sizeof(E) == 2 || sizeof(E) == 4);
    constexpr unsigned kShift = sizeof(E) == 2 ? 15 : 31;
    constexpr std::uint32_t kMask = (std::uint32_t{1} << kShift) - 1;
    [[maybe_unused]] std::uint64_t tel_msgs = 0;
    [[maybe_unused]] std::uint64_t tel_dsts = 0;
    const auto& pairs = bins_.pairs();
    const auto& dpi = bins_.dst_pair_index();
    const auto& dpb = bins_.dst_pair_begin();
    const rank_t* __restrict vals = values_.data();
    rank_t* __restrict acc = acc_.data();
    for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
      // Loop-invariant partition base (0 for the wide encoding).
      vid_t vbase = 0;
      if constexpr (sizeof(E) == 2) vbase = plan_.parts.range(q).begin;
      for (std::uint32_t idx = dpb[q]; idx < dpb[q + 1]; ++idx) {
        const pcp::PairInfo& pr = pairs[dpi[idx]];
        if constexpr (kTel) {
          tel_msgs += pr.msg_count;
          tel_dsts += pr.dst_count;
        }
        mem.stream_read(&pr, 1);
        mem.stream_read(vals + pr.value_off, pr.msg_count);
        mem.stream_read(dst_list + pr.dst_off, pr.dst_count);
        const E* __restrict dl = dst_list + pr.dst_off;
        const eid_t cnt = pr.dst_count;
        // First entry of a pair is always flagged, so the pre-first
        // message index is never read.
        eid_t msg = pr.value_off - 1;
        const eid_t fenced = cnt > kPrefetchDist ? cnt - kPrefetchDist : 0;
        eid_t j = 0;
        for (; j < fenced; ++j) {
          const std::uint32_t e = dl[j];
          prefetch_write(
              acc + vbase +
              (static_cast<std::uint32_t>(dl[j + kPrefetchDist]) & kMask));
          msg += e >> kShift;
          const vid_t d = vbase + (e & kMask);
          // Random update, resident in partition q's cache slice.
          mem.store(acc + d, acc[d] + vals[msg]);
        }
        for (; j < cnt; ++j) {
          const std::uint32_t e = dl[j];
          msg += e >> kShift;
          const vid_t d = vbase + (e & kMask);
          mem.store(acc + d, acc[d] + vals[msg]);
        }
        mem.work(2 * pr.dst_count + pr.msg_count);
        if (opt_.framework_overhead) {
          mem.work(std::uint64_t{opt_.framework_cycles_per_msg} *
                   pr.msg_count);
        }
      }
    });
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      row.messages_consumed += tel_msgs;
      row.bytes_consumed +=
          tel_msgs * sizeof(rank_t) + tel_dsts * sizeof(E);
    }
  }

  /// Gather + apply. When `delta_out` is non-null, accumulates this
  /// thread's L1 rank change (sum |new - old| over owned vertices, in
  /// vertex order) for the convergence check; the rank arithmetic is
  /// identical either way.
  template <bool kTel = false>
  void gather_thread(unsigned t, Mem& mem, rank_t base, rank_t damping,
                     double* delta_out = nullptr) {
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    gather_accumulate<kTel>(t, mem);
    double l1 = 0.0;
    for_owned_partitions(t, mem, false, [&](std::uint32_t q) {
      // Apply: finish PageRank for this partition's vertices. All four
      // arrays stream; the body is branchless (sinks have inv == 0)
      // and autovectorizable.
      const VertexRange r = plan_.parts.range(q);
      mem.stream_read(acc_.data() + r.begin, r.size());
      mem.stream_read(inv_deg_.data() + r.begin, r.size());
      mem.stream_write(rank_.data() + r.begin, r.size());
      mem.stream_write(rank_scaled_.data() + r.begin, r.size());
      rank_t* __restrict rank = rank_.data();
      rank_t* __restrict scaled = rank_scaled_.data();
      rank_t* __restrict acc = acc_.data();
      const rank_t* __restrict inv = inv_deg_.data();
      if (delta_out == nullptr) {
        for (vid_t v = r.begin; v < r.end; ++v) {
          const rank_t new_rank = base + damping * acc[v];
          rank[v] = new_rank;
          scaled[v] = new_rank * inv[v];
          acc[v] = 0.0f;
        }
      } else {
        for (vid_t v = r.begin; v < r.end; ++v) {
          const rank_t new_rank = base + damping * acc[v];
          l1 += std::fabs(static_cast<double>(new_rank) -
                          static_cast<double>(rank[v]));
          rank[v] = new_rank;
          scaled[v] = new_rank * inv[v];
          acc[v] = 0.0f;
        }
      }
      mem.work(3 * r.size());
      if (opt_.framework_overhead) framework_touch(q, mem);
    });
    if (delta_out != nullptr) *delta_out += l1;
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kGather, runtime::SpanKind::kKernel);
    }
  }

  /// GPOP-style per-partition framework state (Flags, State, bin
  /// sizes): an extra streamed structure per partition per phase.
  void framework_touch(std::uint32_t p, Mem& mem) {
    const std::size_t words =
        opt_.framework_bytes_per_part / sizeof(std::uint64_t);
    std::uint64_t* state = framework_state_.data() + p * words;
    mem.stream_read(state, words);
    mem.stream_write(state, words);
    mem.work(50);
  }

  const graph::Graph* graph_;
  PcpmOptions opt_;
  Backend* backend_;
  part::HierarchicalPlan plan_;
  pcp::PcpmBins bins_;
  AlignedBuffer<rank_t> rank_;
  AlignedBuffer<rank_t> rank_scaled_;
  AlignedBuffer<rank_t> acc_;
  AlignedBuffer<rank_t> inv_deg_;  ///< 1/out-degree, 0 for sinks
  AlignedBuffer<rank_t> values_;
  AlignedBuffer<std::uint64_t> framework_state_;
  std::vector<std::vector<std::uint32_t>> fcfs_slots_;
  /// Per-thread L1 convergence partials (only sized when a run tracks
  /// convergence); cache-line padded against false sharing.
  std::vector<PaddedDouble> deltas_;
  /// Per-thread telemetry rows + phase-region totals; reset at the top
  /// of every telemetered run, untouched (empty) otherwise.
  runtime::PhaseTimeline timeline_;
  /// Per-thread perf_event counter groups; provisioned only when a
  /// native run asks for HwProf::kOn (otherwise empty, zero syscalls).
  runtime::HwProfiler hwprof_;
  double preprocessing_seconds_ = 0.0;
  unsigned phase_salt_ = 0;
};

}  // namespace hipa::engine
