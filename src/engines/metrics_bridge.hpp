// Folds one engine run's per-run accounting (RunTelemetry phase
// aggregates, HwCounters, ArenaStats, OocoreStats) into the
// process-lifetime metrics registry. Called at run completion by
// whoever owns the run — the serve layer's UpdateRefresher after a
// full recompute, or any embedding host — so a scraper sees engine
// totals accumulate across the service lifetime instead of dying with
// each RunReport.
//
// Registration is idempotent (the registry dedupes by name+label), so
// calling this once per run is cheap: handle lookup under the cold
// mutex plus a handful of counter adds.
#pragma once

#include <string_view>

#include "engines/backend.hpp"
#include "engines/oocore_engine.hpp"
#include "runtime/metrics.hpp"

namespace hipa::engine {

inline void fold_run_metrics(runtime::metrics::MetricsRegistry& reg,
                             const RunReport& report,
                             const OocoreStats* oocore = nullptr) {
  namespace m = runtime::metrics;

  reg.counter("hipa_engine_runs_total", "Engine runs folded into lifetime totals")
      .inc();
  reg.counter("hipa_engine_iterations_total", "Kernel iterations executed")
      .inc(report.iterations);
  reg.counter("hipa_engine_run_ns_total", "Wall time inside engine runs")
      .inc(m::seconds_to_ns(report.seconds));
  reg.counter("hipa_engine_preprocessing_ns_total",
              "Partitioning + bin build + layout time")
      .inc(m::seconds_to_ns(report.preprocessing_seconds));

  const runtime::RunTelemetry& t = report.telemetry;
  if (t.enabled) {
    // Exporter-side consumers read the memoized Totals struct — the
    // whole point of aggregate()-time memoization.
    reg.counter("hipa_engine_phase_wall_ns_total",
                "Per-thread wall time summed over phases")
        .inc(m::seconds_to_ns(t.totals.wall_seconds));
    reg.counter("hipa_engine_barrier_ns_total",
                "Time blocked on phase barriers")
        .inc(m::seconds_to_ns(t.totals.barrier_seconds));
    reg.counter("hipa_engine_messages_produced_total",
                "Scatter messages produced")
        .inc(t.totals.messages_produced);
    reg.counter("hipa_engine_messages_consumed_total",
                "Gather messages consumed")
        .inc(t.totals.messages_consumed);
    for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi) {
      const auto ph = static_cast<runtime::Phase>(pi);
      const runtime::PhaseAggregate& agg = t[ph];
      reg.counter("hipa_engine_phase_ns_total",
                  "Per-thread wall time by phase",
                  {"phase", std::string(runtime::phase_name(ph))})
          .inc(m::seconds_to_ns(agg.wall_sum_seconds));
    }
    if (t.hw_available) {
      runtime::HwCounters hw;
      for (unsigned pi = 0; pi < runtime::kNumPhases; ++pi)
        hw.add(t[static_cast<runtime::Phase>(pi)].hw);
      reg.counter("hipa_engine_hw_cycles_total", "PMU cycles (multiplexed)")
          .inc(hw.cycles);
      reg.counter("hipa_engine_hw_instructions_total",
                  "PMU instructions (multiplexed)")
          .inc(hw.instructions);
      reg.counter("hipa_engine_hw_llc_misses_total",
                  "Last-level cache load misses")
          .inc(hw.llc_load_misses);
      reg.counter("hipa_engine_hw_node_misses_total",
                  "Remote-node load misses")
          .inc(hw.node_load_misses);
    }
  }

  const runtime::ArenaStats& arena = report.arena;
  if (!arena.regions.empty() || arena.fallback_bytes != 0) {
    reg.gauge("hipa_engine_arena_used_bytes",
              "Arena bytes used by the most recent run")
        .set(static_cast<std::int64_t>(arena.total_used()));
    reg.counter("hipa_engine_arena_fallback_allocations_total",
                "Arena requests served by the plain heap")
        .inc(arena.fallback_allocations);
  }

  if (oocore != nullptr) {
    reg.counter("hipa_engine_io_wait_ns_total",
                "Compute blocked on out-of-core segment data")
        .inc(m::seconds_to_ns(oocore->io_wait_seconds));
    reg.counter("hipa_engine_io_fetch_ns_total",
                "Wall time inside segment reads")
        .inc(m::seconds_to_ns(oocore->fetch_seconds));
    reg.counter("hipa_engine_io_bytes_fetched_total",
                "Out-of-core segment payload bytes read")
        .inc(oocore->bytes_fetched);
    reg.counter("hipa_engine_io_segment_fetches_total",
                "Out-of-core segment reads issued")
        .inc(oocore->segment_fetches);
    reg.gauge("hipa_engine_io_peak_resident_bytes",
              "Peak resident segment bytes of the most recent run")
        .set(static_cast<std::int64_t>(oocore->peak_resident_bytes));
  }
}

}  // namespace hipa::engine
