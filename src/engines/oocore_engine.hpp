// Out-of-core segmented PageRank (native backend only — the point is
// real file I/O).
//
// The graph lives in a segmented HCSR v3 file (graph/io.hpp): the
// pull-direction CSR sliced by destination range. Only O(V) vertex
// attributes plus two segment-sized staging slots are resident; the
// edge topology streams through the slots one segment at a time, with
// an async prefetch thread reading segment N+1 while the team computes
// on segment N (double buffering). Per-vertex accumulation order is
// unchanged by segmentation, so ranks are bitwise identical to running
// the same kernel fully in-core — which `streaming = false` does, as
// the comparator.
//
// Time the compute team spends blocked on the prefetch thread is
// charged to the Phase::kIoWait telemetry row (thread 0); the stats()
// accessor reports fetch/wait seconds and the overlap ratio between
// them, plus byte accounting for the budget assertion.
#pragma once

#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/numeric.hpp"
#include "engines/backend.hpp"
#include "graph/io.hpp"
#include "runtime/trace.hpp"

namespace hipa::engine {

struct OocoreOptions {
  unsigned num_threads = 4;
  /// Resident-set ceiling for segment payload staging, in bytes.
  /// 0 = unlimited. Streaming mode needs two staging slots (double
  /// buffering), so the largest segment payload must fit the budget
  /// twice — checked at construction.
  std::size_t resident_budget_bytes = 0;
  /// false = load every segment up front and run the identical kernel
  /// fully in-core (the bitwise comparator for streaming runs).
  bool streaming = true;
  /// Overlap the read of segment N+1 with compute on segment N via a
  /// producer thread. false = synchronous reads on the driving thread
  /// (all fetch time becomes I/O wait). Ignored when !streaming.
  bool prefetch = true;
};

struct OocoreStats {
  unsigned segments = 0;
  std::uint64_t segment_fetches = 0;  ///< read_segment calls issued
  std::uint64_t bytes_fetched = 0;    ///< cumulative payload bytes read
  /// High-water mark of resident segment payload bytes (staging slots
  /// for streaming runs, the whole topology for in-core runs). Vertex
  /// attribute arrays (O(V)) are outside the budget by definition.
  std::size_t peak_resident_bytes = 0;
  std::size_t resident_budget_bytes = 0;  ///< 0 = unlimited
  double io_wait_seconds = 0.0;  ///< compute blocked on segment data
  double fetch_seconds = 0.0;    ///< wall time inside segment reads
  /// Fraction of fetch time hidden behind compute: 1 means every read
  /// finished before the team needed it, 0 means fully synchronous.
  [[nodiscard]] double overlap_ratio() const {
    if (fetch_seconds <= 0.0) return 1.0;
    const double r = 1.0 - io_wait_seconds / fetch_seconds;
    return r < 0.0 ? 0.0 : (r > 1.0 ? 1.0 : r);
  }
};

class OocoreEngine {
 public:
  using Mem = NativeBackend::Mem;

  OocoreEngine(const std::string& segmented_path, const OocoreOptions& opt,
               NativeBackend& backend)
      : opt_(opt), backend_(&backend) {
    HIPA_CHECK(opt.num_threads >= 1);
    const double t0 = backend.now_seconds();
    scsr_ = graph::SegmentedCsr::open(segmented_path);
    const vid_t n = scsr_.num_vertices();
    HIPA_CHECK(n > 0, "'" << segmented_path << "' has no vertices");

    stats_.segments = scsr_.num_segments();
    stats_.resident_budget_bytes = opt.resident_budget_bytes;

    rank_ = backend.template alloc_pages<rank_t>(n);
    new_rank_ = backend.template alloc_pages<rank_t>(n);
    contrib_ = backend.template alloc_pages<rank_t>(n);
    inv_deg_ = backend.template alloc_pages<rank_t>(n);
    const auto degrees = scsr_.out_degrees();
    for (vid_t v = 0; v < n; ++v) {
      inv_deg_[v] = degrees[v] == 0
                        ? rank_t{0}
                        : rank_t{1} / static_cast<rank_t>(degrees[v]);
    }

    if (opt.streaming) {
      const std::size_t slot = scsr_.max_payload_bytes();
      const std::size_t resident = 2 * slot;
      HIPA_CHECK(
          opt.resident_budget_bytes == 0 ||
              resident <= opt.resident_budget_bytes,
          "resident budget " << opt.resident_budget_bytes
                             << " bytes cannot hold two staging slots of "
                             << slot
                             << " bytes (the largest segment payload) — "
                                "re-shard with a smaller segment size or "
                                "raise the budget");
      staging_[0] = backend.template alloc_pages<unsigned char>(slot);
      staging_[1] = backend.template alloc_pages<unsigned char>(slot);
      stats_.peak_resident_bytes = resident;
    } else {
      incore_ = backend.template alloc_pages<unsigned char>(
          scsr_.total_payload_bytes());
      incore_offsets_.reserve(stats_.segments);
      std::size_t pos = 0;
      for (unsigned s = 0; s < stats_.segments; ++s) {
        incore_offsets_.push_back(pos);
        scsr_.read_segment(s, incore_.data() + pos);
        ++stats_.segment_fetches;
        pos += scsr_.segment(s).payload_bytes;
      }
      stats_.peak_resident_bytes = pos;
    }

    vertex_chunks_ = even_chunks<vid_t>(n, opt.num_threads);
    preprocessing_seconds_ = backend.now_seconds() - t0;
  }

  /// Unified run surface (report + final ranks), matching the in-core
  /// engines. RunReport::telemetry includes the Phase::kIoWait row.
  [[nodiscard]] RunResult run(const PageRankOptions& pr) {
    return pr.instrumented() ? run_impl<true>(pr) : run_impl<false>(pr);
  }

  /// I/O accounting of the most recent run (fetch bytes/seconds reset
  /// per run; segments/budget are construction-time facts).
  [[nodiscard]] const OocoreStats& stats() const { return stats_; }

  [[nodiscard]] const graph::SegmentedCsr& graph() const { return scsr_; }
  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }

 private:
  /// Double-buffered segment pipeline: a producer thread preads the
  /// flattened sequence seq = 0 .. iters*S-1 (segment seq % S) into
  /// slot seq % 2; the consumer (driving thread) blocks until its
  /// sequence number lands, runs the gather phase over it, then
  /// releases the slot. Two slots in flight keep exactly one read
  /// ahead of compute, which is all sequential consumption can use.
  struct Pipeline {
    std::mutex mu;
    std::condition_variable filled_cv;
    std::condition_variable freed_cv;
    std::int64_t slot_seq[2] = {-1, -1};  ///< sequence resident per slot
    std::int64_t next_consume = 0;
    bool done = false;
    double fetch_seconds = 0.0;
    std::uint64_t fetches = 0;
  };

  template <bool kTel>
  RunResult run_impl(const PageRankOptions& pr) {
    const vid_t n = scsr_.num_vertices();
    const unsigned num_segments = stats_.segments;
    const unsigned threads = opt_.num_threads;
    stats_.io_wait_seconds = 0.0;
    stats_.fetch_seconds = 0.0;
    if (opt_.streaming) {
      stats_.segment_fetches = 0;
      bytes_fetched_base_ = scsr_.bytes_fetched();
    }

    if constexpr (kTel) {
      timeline_.reset(threads);
      timeline_.reserve_iterations(pr.iterations);
      if (!pr.trace_path.empty()) {
        timeline_.enable_spans(
            (2 + std::size_t{num_segments}) * pr.iterations + 4);
      }
    }

    ThreadTeamSpec spec;
    spec.num_threads = threads;
    spec.persistent = true;
    spec.binding = ThreadTeamSpec::Binding::kSpread;

    const double t0 = backend_->now_seconds();
    [[maybe_unused]] std::optional<runtime::HotPathGuard> hot_guard;
    hot_guard.emplace();
    backend_->start_team(spec);

    const auto r0 = static_cast<rank_t>(1.0 / static_cast<double>(n));
    timed_phase<kTel>(runtime::Phase::kInit, [&](unsigned t, Mem&) {
      runtime::MaybeTimer<kTel> sw;
      sw.reset();
      for (vid_t v = vertex_chunks_[t]; v < vertex_chunks_[t + 1]; ++v) {
        rank_[v] = r0;
      }
      if constexpr (kTel) {
        runtime::PhaseSample& row =
            timeline_.thread(t)[runtime::Phase::kInit];
        ++row.invocations;
        row.wall_seconds += sw.seconds();
      }
    });

    // Spin up the producer once for the whole run; it stays exactly
    // one segment ahead across iteration boundaries too (the last
    // segment of iteration i overlaps the first read of i+1).
    Pipeline pipe;
    std::thread producer;
    const bool async = opt_.streaming && opt_.prefetch && pr.iterations > 0;
    if (async) {
      const std::int64_t total =
          std::int64_t{pr.iterations} * num_segments;
      producer = std::thread([this, &pipe, total, num_segments] {
        produce(pipe, total, num_segments);
      });
    }

    const auto base =
        static_cast<rank_t>((1.0 - pr.damping) / static_cast<double>(n));
    std::vector<PaddedDouble> partials(threads);
    const bool track_delta = pr.tolerance > 0.0;
    double last_delta = 0.0;
    unsigned executed = 0;
    std::int64_t seq = 0;
    for (unsigned it = 0; it < pr.iterations; ++it) {
      [[maybe_unused]] double it0 = 0.0;
      if constexpr (kTel) it0 = backend_->now_seconds();
      timed_phase<kTel>(runtime::Phase::kScatter, [&](unsigned t, Mem&) {
        contrib_pass<kTel>(t);
      });
      if (track_delta) {
        for (PaddedDouble& p : partials) p.v = 0.0;
      }
      for (unsigned s = 0; s < num_segments; ++s, ++seq) {
        const void* payload = acquire_segment<kTel>(pipe, async, s, seq);
        const graph::SegmentedCsr::SegmentView view = scsr_.view(s, payload);
        timed_phase<kTel>(runtime::Phase::kGather, [&](unsigned t, Mem&) {
          gather_pass<kTel>(t, view, base, pr.damping,
                            track_delta ? &partials[t].v : nullptr);
        });
        if (async) release_segment(pipe, seq);
      }
      std::swap(rank_, new_rank_);
      ++executed;
      if constexpr (kTel) {
        timeline_.record_iteration(backend_->now_seconds() - it0);
      }
      if (track_delta) {
        last_delta = 0.0;
        for (const PaddedDouble& p : partials) last_delta += p.v;
        if (last_delta <= pr.tolerance) break;
      }
    }

    if (async) {
      {
        std::lock_guard<std::mutex> lock(pipe.mu);
        pipe.done = true;
      }
      pipe.freed_cv.notify_all();
      producer.join();
      stats_.fetch_seconds = pipe.fetch_seconds;
      stats_.segment_fetches += pipe.fetches;
    }
    backend_->end_team();

    RunResult result;
    result.report.seconds = backend_->now_seconds() - t0;
    result.report.preprocessing_seconds = preprocessing_seconds_;
    result.report.iterations = executed;
    result.report.last_delta = last_delta;
    if constexpr (kTel) {
      result.report.telemetry = runtime::aggregate(timeline_);
      if (!pr.trace_path.empty() &&
          !trace::ChromeTraceWriter::write(pr.trace_path, timeline_,
                                           "oocore")) {
        HIPA_WARN("trace write failed: " << pr.trace_path);
      }
    }
    result.report.arena = backend_->arena_stats();
    if (opt_.streaming) {
      stats_.bytes_fetched = scsr_.bytes_fetched() - bytes_fetched_base_;
    } else {
      stats_.bytes_fetched = 0;  // everything was resident before t0
    }
    result.ranks.assign(rank_.begin(), rank_.end());
    return result;
  }

  /// Producer body: read the flattened segment sequence one slot ahead
  /// of the consumer. Only file I/O happens here — no arena traffic,
  /// no rank access — so it needs no synchronization with the team
  /// beyond the slot protocol.
  void produce(Pipeline& pipe, std::int64_t total, unsigned num_segments) {
    for (std::int64_t seq = 0; seq < total; ++seq) {
      {
        std::unique_lock<std::mutex> lock(pipe.mu);
        pipe.freed_cv.wait(lock, [&] {
          return pipe.done || seq - pipe.next_consume < 2;
        });
        if (pipe.done) return;
      }
      const double f0 = backend_->now_seconds();
      scsr_.read_segment(static_cast<unsigned>(seq % num_segments),
                         staging_[seq % 2].data());
      const double dt = backend_->now_seconds() - f0;
      {
        std::lock_guard<std::mutex> lock(pipe.mu);
        pipe.fetch_seconds += dt;
        ++pipe.fetches;
        pipe.slot_seq[seq % 2] = seq;
      }
      pipe.filled_cv.notify_one();
    }
  }

  /// Block until segment `s` (sequence `seq`) is resident and return
  /// its payload. The blocked interval is the run's I/O wait — charged
  /// to thread 0's Phase::kIoWait telemetry row.
  template <bool kTel>
  const void* acquire_segment(Pipeline& pipe, bool async, unsigned s,
                              std::int64_t seq) {
    if (!opt_.streaming) {
      return incore_.data() + incore_offsets_[s];
    }
    const double w0 = backend_->now_seconds();
    const void* payload = nullptr;
    if (async) {
      std::unique_lock<std::mutex> lock(pipe.mu);
      pipe.filled_cv.wait(lock, [&] { return pipe.slot_seq[seq % 2] == seq; });
      payload = staging_[seq % 2].data();
    } else {
      scsr_.read_segment(s, staging_[0].data());
      ++stats_.segment_fetches;
      payload = staging_[0].data();
    }
    const double wait = backend_->now_seconds() - w0;
    stats_.io_wait_seconds += wait;
    if (!async) stats_.fetch_seconds += wait;
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(0)[runtime::Phase::kIoWait];
      ++row.invocations;
      row.wall_seconds += wait;
      row.bytes_consumed += scsr_.segment(s).payload_bytes;
      timeline_.record_region(runtime::Phase::kIoWait, wait);
    }
    return payload;
  }

  /// Mark `seq` consumed so the producer may overwrite its slot.
  void release_segment(Pipeline& pipe, std::int64_t seq) {
    {
      std::lock_guard<std::mutex> lock(pipe.mu);
      pipe.next_consume = seq + 1;
    }
    pipe.freed_cv.notify_one();
  }

  template <bool kTel>
  void contrib_pass(unsigned t) {
    runtime::MaybeTimer<kTel> sw;
    sw.reset();
    const vid_t b = vertex_chunks_[t];
    const vid_t e = vertex_chunks_[t + 1];
    const rank_t* __restrict rank = rank_.data();
    const rank_t* __restrict inv = inv_deg_.data();
    rank_t* __restrict contrib = contrib_.data();
    for (vid_t v = b; v < e; ++v) contrib[v] = rank[v] * inv[v];
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kScatter];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_produced += e - b;
      row.bytes_produced += std::uint64_t{e - b} * sizeof(rank_t);
    }
  }

  /// Pull pass over one segment's destination range. The split is by
  /// destination vertex, and each vertex's sum runs over its sources
  /// in payload order — per-vertex accumulation is identical no matter
  /// how [v_begin, v_end) is cut across threads or segments, which is
  /// what makes streaming bitwise-equal to in-core.
  template <bool kTel>
  void gather_pass(unsigned t, const graph::SegmentedCsr::SegmentView& view,
                   rank_t base, rank_t damping, double* delta_out) {
    runtime::MaybeTimer<kTel> sw;
    sw.reset();
    const vid_t nv = view.range.size();
    const vid_t b = view.range.begin + chunk_of(nv, t);
    const vid_t e = view.range.begin + chunk_of(nv, t + 1);
    const eid_t* __restrict offsets = view.offsets.data();
    const vid_t* __restrict sources = view.sources.data();
    const rank_t* __restrict contrib = contrib_.data();
    rank_t* __restrict out = new_rank_.data();
    [[maybe_unused]] std::uint64_t tel_edges = 0;
    double delta = 0.0;
    for (vid_t v = b; v < e; ++v) {
      const eid_t lo = offsets[v - view.range.begin];
      const eid_t hi = offsets[v - view.range.begin + 1];
      rank_t sum = 0.0f;
      for (eid_t i = lo; i < hi; ++i) sum += contrib[sources[i]];
      const rank_t r = base + damping * sum;
      out[v] = r;
      if (delta_out != nullptr) {
        delta += std::abs(static_cast<double>(r) -
                          static_cast<double>(rank_[v]));
      }
      if constexpr (kTel) tel_edges += hi - lo;
    }
    if (delta_out != nullptr) *delta_out += delta;
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_consumed += tel_edges;
      row.bytes_consumed += tel_edges * sizeof(rank_t);
    }
  }

  /// Even split boundary: thread t's chunk of nv vertices starts here.
  [[nodiscard]] vid_t chunk_of(vid_t nv, unsigned t) const {
    const auto tt = static_cast<std::uint64_t>(t);
    return static_cast<vid_t>(tt * nv / opt_.num_threads);
  }

  /// Region accounting around one phase() dispatch (vpr/pcpm idiom).
  template <bool kTel, class F>
  void timed_phase(runtime::Phase ph, F&& kernel) {
    if constexpr (!kTel) {
      backend_->phase(std::forward<F>(kernel));
    } else {
      const double t0 = backend_->now_seconds();
      backend_->phase(std::forward<F>(kernel));
      timeline_.record_region(ph, backend_->now_seconds() - t0);
    }
  }

  struct alignas(kCacheLine) PaddedDouble {
    double v = 0.0;
  };

  OocoreOptions opt_;
  NativeBackend* backend_;
  graph::SegmentedCsr scsr_;
  AlignedBuffer<rank_t> rank_;
  AlignedBuffer<rank_t> new_rank_;
  AlignedBuffer<rank_t> contrib_;
  AlignedBuffer<rank_t> inv_deg_;
  AlignedBuffer<unsigned char> staging_[2];  ///< streaming slots
  AlignedBuffer<unsigned char> incore_;      ///< !streaming: all payloads
  std::vector<std::size_t> incore_offsets_;  ///< per-segment offset in ^
  std::vector<vid_t> vertex_chunks_;
  runtime::PhaseTimeline timeline_;
  OocoreStats stats_;
  std::uint64_t bytes_fetched_base_ = 0;
  double preprocessing_seconds_ = 0.0;
};

}  // namespace hipa::engine
