// Kernel-generic facade: one run<Kernel>() entry point over the five
// engine methodologies (HiPa, p-PR, GPOP partition-centric; v-PR,
// Polymer vertex-centric). Every engine exposes the same templated
// `run<K>(kernel_options, run_options)` surface; this header adds the
// one-shot form that also constructs the engine:
//
//   engine::NativeBackend backend;
//   auto r = engine::run<engine::BfsKernel>(g, backend, {.source = 7});
//   // r.values[v] == hop distance, r.report == the usual RunReport
//
// Engine selection, thread count and partition size ride in
// EngineParams. Callers that reuse one engine across runs (or across
// kernels — per-kernel state is cached inside the engine) should
// construct the engine directly; this facade rebuilds the plan and
// bins on every call. Paper-default parameter fill and the reorder
// permute/run/unpermute pipeline live one level up, in
// algo::run_kernel_{sim,native}.
#pragma once

#include "engines/backend.hpp"
#include "engines/kernels.hpp"
#include "engines/pcpm_engine.hpp"
#include "engines/polymer_engine.hpp"
#include "engines/vpr_engine.hpp"
#include "graph/csr.hpp"

namespace hipa::engine {

/// The five methodologies evaluated in the paper (algo::Method is an
/// alias of this — one enum, shared by the facade and the runners).
enum class EngineKind { kHipa, kPpr, kVpr, kGpop, kPolymer };

/// Engine/topology selection for run<K>. Defaults are a small
/// single-node HiPa configuration suitable for examples and tests;
/// benches and the algo runners fill paper defaults instead.
struct EngineParams {
  EngineKind engine = EngineKind::kHipa;
  unsigned threads = 4;
  unsigned num_nodes = 1;
  /// Partition byte budget (partition-centric engines only).
  std::uint64_t partition_bytes = 256 * 1024;
};

/// Construct the selected engine and run one kernel on it.
template <class K, class Backend>
[[nodiscard]] KernelResult<K> run(const graph::Graph& g, Backend& backend,
                                  const typename K::Options& ko = {},
                                  const RunOptions& ro = {},
                                  const EngineParams& ep = {}) {
  switch (ep.engine) {
    case EngineKind::kHipa: {
      const auto opt =
          PcpmOptions::hipa(ep.threads, ep.num_nodes, ep.partition_bytes);
      PcpmEngine<Backend> eng(g, opt, backend);
      return eng.template run<K>(ko, ro);
    }
    case EngineKind::kPpr: {
      const auto opt =
          PcpmOptions::ppr(ep.threads, ep.num_nodes, ep.partition_bytes);
      PcpmEngine<Backend> eng(g, opt, backend);
      return eng.template run<K>(ko, ro);
    }
    case EngineKind::kGpop: {
      const auto opt =
          PcpmOptions::gpop(ep.threads, ep.num_nodes, ep.partition_bytes);
      PcpmEngine<Backend> eng(g, opt, backend);
      return eng.template run<K>(ko, ro);
    }
    case EngineKind::kVpr: {
      VprOptions opt;
      opt.num_threads = ep.threads;
      VprEngine<Backend> eng(g, opt, backend);
      return eng.template run<K>(ko, ro);
    }
    case EngineKind::kPolymer: {
      PolymerOptions opt;
      opt.num_threads = ep.threads;
      opt.num_nodes = ep.num_nodes;
      PolymerEngine<Backend> eng(g, opt, backend);
      return eng.template run<K>(ko, ro);
    }
  }
  HIPA_CHECK(false, "unknown engine kind");
  __builtin_unreachable();
}

/// Native-backend convenience: construct a NativeBackend internally.
template <class K>
[[nodiscard]] KernelResult<K> run(const graph::Graph& g,
                                  const typename K::Options& ko = {},
                                  const RunOptions& ro = {},
                                  const EngineParams& ep = {}) {
  NativeBackend backend;
  return run<K>(g, backend, ko, ro, ep);
}

}  // namespace hipa::engine
