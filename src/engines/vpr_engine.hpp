// v-PR: hand-optimized pull-based vertex-centric engine
// (paper §4.1, "Hand-coded implementation").
//
// Each vertex pulls contributions from its in-neighbors, so "all
// columns of the adjacency matrix are traversed asynchronously in
// parallel without storing the partial sum" — no atomics, no frontier.
// NUMA-oblivious: data interleaves across nodes, threads are unpinned
// per-phase regions. The pull reads `contrib[u]` at random over the
// whole vertex range, which is exactly the cache-hostile pattern the
// partition-centric engines eliminate.
//
// Kernel-generic: the run core is templated on the Kernel concept's
// pull-mode algebra (K::Pull — engines/kernels.hpp), so the same
// contrib/pull structure runs PageRank, PPR, BFS, WCC and SSSP.
// Monotone (frontier) kernels early-stop when an iteration changes no
// vertex value; PageRank keeps its fixed iteration count and bitwise
// ranks.
#pragma once

#include <memory>
#include <optional>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/numeric.hpp"
#include "engines/backend.hpp"
#include "engines/kernels.hpp"
#include "graph/csr.hpp"
#include "partition/edge_balanced.hpp"
#include "runtime/trace.hpp"

namespace hipa::engine {

struct VprOptions {
  unsigned num_threads = 40;
};

template <class Backend>
class VprEngine {
 public:
  using Mem = typename Backend::Mem;

  VprEngine(const graph::Graph& g, const VprOptions& opt, Backend& backend)
      : graph_(&g), opt_(opt), backend_(&backend) {
    HIPA_CHECK(opt.num_threads >= 1);
    const double t0 = backend.now_seconds();
    const vid_t n = g.num_vertices();

    // Balance the contrib pass by vertices and the pull pass by
    // in-degree (the pull does the per-edge work).
    vertex_chunks_ = even_chunks<vid_t>(n, opt.num_threads);
    pull_chunks_ = part::split_vertices_by_degree(g.in, opt.num_threads);

    // PageRank's slot is built eagerly so the constructor's allocation
    // order matches the historical engine; other kernels build lazily.
    slot<PageRankKernel>();
    backend.register_buffer(g.in.offsets().data(),
                            g.in.offsets().size_bytes(),
                            DataPlacement::kInterleave);
    backend.register_buffer(g.in.targets().data(),
                            g.in.targets().size_bytes(),
                            DataPlacement::kInterleave);

    if constexpr (Backend::kSimulated) {
      // Only the degree extraction pass: v-PR runs straight off the CSR.
      backend.machine().charge_preprocessing(n * sizeof(vid_t) * 2, n);
    }
    preprocessing_seconds_ = backend.now_seconds() - t0;
  }

  /// Unified run surface: report + final ranks in one value.
  [[nodiscard]] RunResult run(const PageRankOptions& pr) {
    RunResult result;
    result.report = run_pagerank(pr, &result.ranks);
    return result;
  }

  /// Kernel-generic run surface (see PcpmEngine::run<K>).
  template <class K>
  [[nodiscard]] KernelResult<K> run(const typename K::Options& ko,
                                    const RunOptions& ro = {}) {
    KernelResult<K> result;
    result.report = ro.instrumented()
                        ? run_kernel_impl<K, true>(ko, ro, &result.values)
                        : run_kernel_impl<K, false>(ko, ro, &result.values);
    return result;
  }

  /// Run PageRank; final ranks land in `ranks_out` when non-null.
  /// Instrumentation is a compile-time fork: the uninstrumented
  /// instantiation contains no recording code at all.
  RunReport run_pagerank(const PageRankOptions& pr,
                         std::vector<rank_t>* ranks_out = nullptr) {
    PrOptions ko;
    ko.damping = pr.damping;
    return pr.instrumented()
               ? run_kernel_impl<PageRankKernel, true>(ko, pr, ranks_out)
               : run_kernel_impl<PageRankKernel, false>(ko, pr, ranks_out);
  }

 private:
  /// Per-kernel pull-engine state: the vertex value array, the
  /// per-vertex contribution array the pull reads, and (PageRank
  /// family) reciprocal out-degrees. All interleaved — v-PR is
  /// NUMA-oblivious by definition.
  template <class K>
  struct VprSlot {
    using TV = typename K::Value;
    AlignedBuffer<TV> value;
    AlignedBuffer<typename K::Message> contrib;
    AlignedBuffer<TV> inv_deg;  ///< only allocated when Pull::kNeedsInv
    std::vector<TV> init;
    std::vector<TV> bias;
    rank_t damping = 0.0f;
  };

  template <class K>
  VprSlot<K>& slot() {
    using TV = typename K::Value;
    const std::type_index key(typeid(K));
    for (auto& [k, p] : slots_) {
      if (k == key) return *static_cast<VprSlot<K>*>(p.get());
    }
    const vid_t n = graph_->num_vertices();
    auto sp = std::make_shared<VprSlot<K>>();
    sp->value =
        backend_->template alloc<TV>(n, DataPlacement::kInterleave);
    sp->contrib = backend_->template alloc<typename K::Message>(
        n, DataPlacement::kInterleave);
    if constexpr (K::Pull::kNeedsInv) {
      // Reciprocal out-degrees (0 for sinks): shared sink semantics,
      // one multiply instead of a guarded divide per vertex per
      // iteration. Cold-path heap allocation by design (cache-line
      // aligned, preprocessing time — below the arena hook's page
      // threshold).
      sp->inv_deg = graph::inverse_degrees<TV>(graph_->out);
      backend_->register_buffer(sp->inv_deg.data(),
                                sp->inv_deg.size() * sizeof(TV),
                                DataPlacement::kInterleave);
    }
    slots_.emplace_back(key, sp);
    return *sp;
  }

  template <class K, bool kTel>
  RunReport run_kernel_impl(const typename K::Options& ko,
                            const RunOptions& ro,
                            std::vector<typename K::Value>* values_out) {
    VprSlot<K>& sl = slot<K>();
    sl.damping = K::Pull::setup(ko, *graph_, sl.init, sl.bias);
    const unsigned max_iters = K::max_iterations(ko, ro);
    if constexpr (kTel) {
      timeline_.reset(opt_.num_threads);
      timeline_.reserve_iterations(std::min(max_iters, 4096u));
      if constexpr (!Backend::kSimulated) {
        hwprof_.reset(opt_.num_threads,
                      ro.hw_counters == runtime::HwProf::kOn);
        if (!ro.trace_path.empty()) {
          timeline_.enable_spans(
              2 * std::size_t{std::min(max_iters, 4096u)} + 4);
        }
      }
    }
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = false;  // per-region fork-join, Algorithm 1 style
    // kRandom deliberately leaves scheduling to the OS: on the native
    // backend this means NO CPU pinning (the paper §3.3.1's
    // OS-managed-threads model), matching the simulator's random
    // placement.
    spec.binding = ThreadTeamSpec::Binding::kRandom;

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    // Iteration region: page-aligned allocations must come from the
    // arena (debug builds assert; all builds count bypasses).
    [[maybe_unused]] std::optional<runtime::HotPathGuard> hot_guard;
    if constexpr (!Backend::kSimulated) hot_guard.emplace();
    backend_->start_team(spec);
    if constexpr (K::kUsesFrontier) {
      changes_.assign(opt_.num_threads, PaddedFlag{});
    }
    timed_phase<kTel>(runtime::Phase::kInit, [&](unsigned t, Mem& mem) {
      runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
      runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
      runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
      sw.reset();
      const vid_t b = vertex_chunks_[t];
      const vid_t e = vertex_chunks_[t + 1];
      mem.stream_write(sl.value.data() + b, e - b);
      for (vid_t v = b; v < e; ++v) sl.value.data()[v] = sl.init[v];
      mem.work(e - b);
      if constexpr (kTel) {
        runtime::PhaseSample& row =
            timeline_.thread(t)[runtime::Phase::kInit];
        ++row.invocations;
        row.wall_seconds += sw.seconds();
        hwsec.finish(row.hw);
        span.finish(t, runtime::Phase::kInit, runtime::SpanKind::kKernel);
      }
    });
    unsigned iters_done = 0;
    for (unsigned it = 0; it < max_iters; ++it) {
      [[maybe_unused]] double it0 = 0.0;
      if constexpr (kTel) it0 = backend_->now_seconds();
      // v-PR maps onto the shared phase vocabulary as
      // contrib→scatter (produce per-vertex contributions) and
      // pull→gather (consume one contribution per in-edge).
      timed_phase<kTel>(runtime::Phase::kScatter, [&](unsigned t, Mem& mem) {
        contrib_pass<K, kTel>(sl, t, mem);
      });
      timed_phase<kTel>(runtime::Phase::kGather, [&](unsigned t, Mem& mem) {
        if constexpr (K::kUsesFrontier) changes_[t].value = false;
        pull_pass<K, kTel>(sl, t, mem);
      });
      if constexpr (kTel) {
        timeline_.record_iteration(backend_->now_seconds() - it0);
      }
      iters_done = it + 1;
      if constexpr (K::kUsesFrontier) {
        bool any = false;
        for (const PaddedFlag& f : changes_) any = any || f.value;
        if (!any) break;
      }
    }
    backend_->end_team();

    RunReport report;
    report.seconds = backend_->now_seconds() - t0;
    report.preprocessing_seconds = preprocessing_seconds_;
    report.iterations = iters_done;
    if constexpr (Backend::kSimulated) {
      report.stats = delta(backend_->machine().stats(), before);
    }
    if constexpr (kTel) {
      report.telemetry = runtime::aggregate(timeline_);
      if constexpr (!Backend::kSimulated) {
        if (ro.hw_counters == runtime::HwProf::kOn) {
          report.telemetry.hw_available = hwprof_.any_open();
          report.telemetry.hw_threads = hwprof_.open_threads();
          report.telemetry.hw_event_mask = hwprof_.event_mask();
          if (!report.telemetry.hw_available && hwprof_.num_threads() > 0) {
            report.telemetry.hw_errno = hwprof_.group(0).last_errno();
          }
        }
        if (!ro.trace_path.empty() &&
            !trace::ChromeTraceWriter::write(ro.trace_path, timeline_,
                                             "v-PR")) {
          HIPA_WARN("trace write failed: " << ro.trace_path);
        }
      }
    }
    // v-PR is NUMA-oblivious (interleaved data, no per-buffer owner
    // node), so a placement audit has nothing to verify: the default
    // available=false RunReport::placement_audit stands.
    if constexpr (!Backend::kSimulated) {
      report.arena = backend_->arena_stats();
    }
    if (values_out != nullptr) {
      values_out->assign(sl.value.begin(), sl.value.end());
    }
    return report;
  }

  /// Region accounting around one phase() dispatch (see PcpmEngine for
  /// the rationale); kOff is exactly `backend_->phase(kernel)`.
  template <bool kTel, class F>
  void timed_phase(runtime::Phase ph, F&& kernel) {
    if constexpr (!kTel) {
      backend_->phase(std::forward<F>(kernel));
    } else {
      [[maybe_unused]] sim::SimStats s0;
      if constexpr (Backend::kSimulated) s0 = backend_->machine().stats();
      const double t0 = backend_->now_seconds();
      backend_->phase(std::forward<F>(kernel));
      const double dt = backend_->now_seconds() - t0;
      if constexpr (Backend::kSimulated) {
        const sim::SimStats d = delta(backend_->machine().stats(), s0);
        timeline_.record_region(ph, dt, d.dram_local_accesses,
                                d.dram_remote_accesses);
      } else {
        timeline_.record_region(ph, dt);
      }
    }
  }

 public:

  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }

  /// Field-wise subtraction helper shared by the engine family.
  static sim::SimStats delta(sim::SimStats a, const sim::SimStats& b) {
    a.loads -= b.loads;
    a.stores -= b.stores;
    a.atomics -= b.atomics;
    a.l1_hits -= b.l1_hits;
    a.l1_misses -= b.l1_misses;
    a.l2_hits -= b.l2_hits;
    a.l2_misses -= b.l2_misses;
    a.llc_hits -= b.llc_hits;
    a.llc_misses -= b.llc_misses;
    a.dram_local_accesses -= b.dram_local_accesses;
    a.dram_remote_accesses -= b.dram_remote_accesses;
    a.dram_local_bytes -= b.dram_local_bytes;
    a.dram_remote_bytes -= b.dram_remote_bytes;
    a.thread_creations -= b.thread_creations;
    a.thread_migrations -= b.thread_migrations;
    a.phases -= b.phases;
    a.total_cycles -= b.total_cycles;
    return a;
  }

 private:
  /// One cache line per thread: per-iteration changed flags for the
  /// monotone kernels' early stop.
  struct alignas(kCacheLine) PaddedFlag {
    bool value = false;
  };

  template <class K, bool kTel>
  void contrib_pass(VprSlot<K>& sl, unsigned t, Mem& mem) {
    using TV = typename K::Value;
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    const vid_t b = vertex_chunks_[t];
    const vid_t e = vertex_chunks_[t + 1];
    mem.stream_read(sl.value.data() + b, e - b);
    if constexpr (K::Pull::kNeedsInv) {
      mem.stream_read(sl.inv_deg.data() + b, e - b);
    }
    mem.stream_write(sl.contrib.data() + b, e - b);
    const TV* __restrict value = sl.value.data();
    typename K::Message* __restrict contrib = sl.contrib.data();
    if constexpr (K::Pull::kNeedsInv) {
      const TV* __restrict inv = sl.inv_deg.data();
      // Branchless (sinks have inv == 0) and autovectorizable.
      for (vid_t v = b; v < e; ++v) {
        contrib[v] = K::Pull::contrib(value[v], inv[v], v);
      }
    } else {
      for (vid_t v = b; v < e; ++v) {
        contrib[v] = K::Pull::contrib(value[v], TV{}, v);
      }
    }
    mem.work(e - b);
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kScatter];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_produced += e - b;
      row.bytes_produced +=
          std::uint64_t{e - b} * sizeof(typename K::Message);
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kScatter, runtime::SpanKind::kKernel);
    }
  }

  template <class K, bool kTel>
  void pull_pass(VprSlot<K>& sl, unsigned t, Mem& mem) {
    using TV = typename K::Value;
    using Message = typename K::Message;
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    [[maybe_unused]] std::uint64_t tel_edges = 0;
    [[maybe_unused]] bool any_changed = false;
    const vid_t b = pull_chunks_[t];
    const vid_t e = pull_chunks_[t + 1];
    const graph::CsrGraph& in = graph_->in;
    const eid_t* offsets = in.offsets().data();
    const vid_t* targets = in.targets().data();
    const Message* contrib = sl.contrib.data();
    TV* __restrict value = sl.value.data();
    const rank_t damping = sl.damping;
    const TV* bias = sl.bias.empty() ? nullptr : sl.bias.data();
    mem.stream_read(offsets + b, e - b + 1);
    mem.stream_write(sl.value.data() + b, e - b);
    for (vid_t v = b; v < e; ++v) {
      const eid_t lo = offsets[v];
      const eid_t hi = offsets[v + 1];
      mem.stream_read(targets + lo, hi - lo);
      auto sum = K::Pull::template identity<Message>();
      for (eid_t i = lo; i < hi; ++i) {
        // The defining access: random read over the full vertex range.
        sum = K::Pull::merge(sum, mem.load(contrib + targets[i]));
      }
      const TV next =
          K::Pull::apply(value[v], sum, bias ? bias[v] : TV{}, damping);
      if constexpr (K::kUsesFrontier) {
        any_changed = any_changed || next != value[v];
      }
      value[v] = next;
      mem.work(hi - lo + 2);
      if constexpr (kTel) tel_edges += hi - lo;
    }
    if constexpr (K::kUsesFrontier) {
      if (any_changed) changes_[t].value = true;
    }
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_consumed += tel_edges;
      row.bytes_consumed += tel_edges * sizeof(Message);
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kGather, runtime::SpanKind::kKernel);
    }
  }

  const graph::Graph* graph_;
  VprOptions opt_;
  Backend* backend_;
  std::vector<vid_t> vertex_chunks_;
  std::vector<vid_t> pull_chunks_;
  /// Per-kernel value/contrib arrays, keyed by kernel type (PageRank
  /// built in the constructor, others on first use).
  std::vector<std::pair<std::type_index, std::shared_ptr<void>>> slots_;
  /// Per-thread changed flags (monotone kernels' early stop).
  std::vector<PaddedFlag> changes_;
  /// Per-thread telemetry rows + phase-region totals; reset at the top
  /// of every telemetered run, untouched (empty) otherwise.
  runtime::PhaseTimeline timeline_;
  /// Per-thread perf_event counter groups (native + HwProf::kOn only).
  runtime::HwProfiler hwprof_;
  double preprocessing_seconds_ = 0.0;
};

}  // namespace hipa::engine
