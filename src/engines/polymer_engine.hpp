// Polymer-style engine: NUMA-aware vertex-centric framework model
// (paper ref [38], used as the NUMA-aware framework baseline).
//
// Faithful to Polymer's published design at the methodology level:
//  * vertices are edge-balanced across NUMA nodes; each node holds the
//    in-edges of its own vertices, split per *source* node so a pull
//    sub-pass touches only one source node's contribution range
//    (Polymer's NUMA-aware data layout);
//  * per-node replicas of the contribution vector are rebuilt every
//    iteration (co-locating reads with the reading node, at the price
//    of N× write traffic — why Polymer's total MApE is high while its
//    remote share is the lowest, paper Fig. 5);
//  * frontier (vertex subset) machinery runs even though PageRank
//    keeps every vertex active — the framework tax the paper measures;
//  * persistent threads bound to nodes (Polymer is pthread-based and
//    NUMA-aware).
//
// Kernel-generic: the replicate/pull core is templated on the Kernel
// concept's pull-mode algebra (K::Pull — engines/kernels.hpp). The
// framework's vertex values use K::Pull::PolymerValue (double for the
// PageRank family — Ligra/Polymer compute in double precision, twice
// the attribute traffic of the hand-coded float engines) and the fold
// accumulator uses K::Pull::Acc. Additive kernels combine sub-pass
// folds with Ligra's writeAdd (CAS loop even when uncontended);
// monotone kernels combine with writeMin and early-stop once an
// iteration changes nothing.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/numeric.hpp"
#include "engines/backend.hpp"
#include "engines/kernels.hpp"
#include "engines/vpr_engine.hpp"  // SimStats delta helper
#include "graph/csr.hpp"
#include "partition/edge_balanced.hpp"
#include "runtime/trace.hpp"

namespace hipa::engine {

struct PolymerOptions {
  unsigned num_threads = 40;
  unsigned num_nodes = 2;
  /// Framework indirection costs (user-function dispatch per edge,
  /// frontier membership checks, CAS-based vertex updates — paper
  /// §4.3: "suffering from atomic operations, low graph locality and
  /// irregular memory accesses").
  std::uint32_t framework_cycles_per_edge = 40;
  std::uint32_t framework_cycles_per_vertex = 16;
};

template <class Backend>
class PolymerEngine {
 public:
  using Mem = typename Backend::Mem;

  PolymerEngine(const graph::Graph& g, const PolymerOptions& opt,
                Backend& backend)
      : graph_(&g), opt_(opt), backend_(&backend) {
    HIPA_CHECK(opt.num_threads >= opt.num_nodes && opt.num_nodes >= 1);
    const double t0 = backend.now_seconds();
    build_layout();
    if constexpr (Backend::kSimulated) {
      const eid_t e = graph_->num_edges();
      // Sub-CSC construction: two passes over the in-edges plus the
      // replica allocations.
      backend.machine().charge_preprocessing(
          e * 12 + std::uint64_t{graph_->num_vertices()} * 4 * opt.num_nodes,
          e * 5);
    }
    preprocessing_seconds_ = backend.now_seconds() - t0;
  }

  /// Unified run surface: report + final ranks in one value.
  [[nodiscard]] RunResult run(const PageRankOptions& pr) {
    RunResult result;
    result.report = run_pagerank(pr, &result.ranks);
    return result;
  }

  /// Kernel-generic run surface (see PcpmEngine::run<K>).
  template <class K>
  [[nodiscard]] KernelResult<K> run(const typename K::Options& ko,
                                    const RunOptions& ro = {}) {
    KernelResult<K> result;
    result.report = ro.instrumented()
                        ? run_kernel_impl<K, true>(ko, ro, &result.values)
                        : run_kernel_impl<K, false>(ko, ro, &result.values);
    return result;
  }

  /// Run PageRank; final ranks land in `ranks_out` when non-null.
  /// Instrumentation is a compile-time fork: the uninstrumented
  /// instantiation contains no recording code at all.
  RunReport run_pagerank(const PageRankOptions& pr,
                         std::vector<rank_t>* ranks_out = nullptr) {
    PrOptions ko;
    ko.damping = pr.damping;
    return pr.instrumented()
               ? run_kernel_impl<PageRankKernel, true>(ko, pr, ranks_out)
               : run_kernel_impl<PageRankKernel, false>(ko, pr, ranks_out);
  }

 private:
  /// Per-kernel framework state: node-sliced vertex values and fold
  /// accumulators plus one full contribution replica per node. The
  /// frontier double-buffer is kernel-independent (engine-level).
  template <class K>
  struct PolySlot {
    using TV = typename K::Pull::PolymerValue;
    using Acc = typename K::Pull::Acc;
    AlignedBuffer<TV> value;
    AlignedBuffer<TV> inv_deg;  ///< only allocated when Pull::kNeedsInv
    AlignedBuffer<Acc> acc;
    std::vector<AlignedBuffer<typename K::Message>> replicas;
    std::vector<TV> init;
    std::vector<TV> bias;
    rank_t damping = 0.0f;
    double prep_seconds = 0.0;
  };

  template <class K>
  PolySlot<K>& slot() {
    using TV = typename K::Pull::PolymerValue;
    using Acc = typename K::Pull::Acc;
    const std::type_index key(typeid(K));
    for (auto& [k, p] : slots_) {
      if (k == key) return *static_cast<PolySlot<K>*>(p.get());
    }
    const double t0 = backend_->now_seconds();
    const vid_t n = graph_->num_vertices();
    const unsigned nodes = opt_.num_nodes;
    auto sp = std::make_shared<PolySlot<K>>();

    // Attribute arrays: page-aligned arena carves, sliced onto the
    // owning node below. Reciprocal degrees stay in the framework's
    // value precision (shared sink semantics: 0 for sinks, multiply
    // instead of guarded divide) and on the plain heap — cache-line
    // aligned cold-path preprocessing output.
    sp->value = backend_->template alloc_pages<TV>(n);
    if constexpr (K::Pull::kNeedsInv) {
      sp->inv_deg = graph::inverse_degrees<TV>(graph_->out);
    }
    sp->acc = backend_->template alloc_pages<Acc>(n);
    const bool own_frontier = frontier_.data() == nullptr;
    if (own_frontier) {
      frontier_ = backend_->template alloc_pages<std::uint8_t>(n);
      next_frontier_ = backend_->template alloc_pages<std::uint8_t>(n);
    }
    for (vid_t v = 0; v < n; ++v) {
      sp->acc[v] = K::Pull::template identity<Acc>();
    }
    for (unsigned nd = 0; nd < nodes; ++nd) {
      const vid_t b = node_bounds_[nd];
      const vid_t sz = node_bounds_[nd + 1] - b;
      backend_->register_buffer(sp->value.data() + b, sz * sizeof(TV),
                                DataPlacement::kNode, nd);
      if constexpr (K::Pull::kNeedsInv) {
        backend_->register_buffer(sp->inv_deg.data() + b, sz * sizeof(TV),
                                  DataPlacement::kNode, nd);
      }
      backend_->register_buffer(sp->acc.data() + b, sz * sizeof(Acc),
                                DataPlacement::kNode, nd);
      if (own_frontier) {
        backend_->register_buffer(frontier_.data() + b, sz,
                                  DataPlacement::kNode, nd);
        backend_->register_buffer(next_frontier_.data() + b, sz,
                                  DataPlacement::kNode, nd);
      }
    }

    // Full contribution replica per node, local to its readers.
    for (unsigned nd = 0; nd < nodes; ++nd) {
      sp->replicas.push_back(backend_->template alloc<typename K::Message>(
          n, DataPlacement::kNode, nd));
    }
    sp->prep_seconds = backend_->now_seconds() - t0;
    slots_.emplace_back(key, sp);
    return *sp;
  }

  template <class K, bool kTel>
  RunReport run_kernel_impl(const typename K::Options& ko,
                            const RunOptions& ro,
                            std::vector<typename K::Value>* values_out) {
    const vid_t n = graph_->num_vertices();
    PolySlot<K>& sl = slot<K>();
    sl.damping = K::Pull::setup(ko, *graph_, sl.init, sl.bias);
    const unsigned max_iters = K::max_iterations(ko, ro);
    if constexpr (kTel) {
      timeline_.reset(opt_.num_threads);
      timeline_.reserve_iterations(std::min(max_iters, 4096u));
      if constexpr (!Backend::kSimulated) {
        hwprof_.reset(opt_.num_threads,
                      ro.hw_counters == runtime::HwProf::kOn);
        if (!ro.trace_path.empty()) {
          timeline_.enable_spans(std::size_t{std::min(max_iters, 4096u)} *
                                     (1 + opt_.num_nodes) +
                                 4);
        }
      }
    }
    ThreadTeamSpec spec;
    spec.num_threads = opt_.num_threads;
    spec.persistent = true;
    // Node-blocked + persistent: on the native backend this now pins
    // worker t to a CPU of its node (Polymer is pthread-based and
    // NUMA-aware); thread ids are grouped per node in the same order
    // as threads_per_node_, matching thread_vertex_bounds_.
    spec.binding = ThreadTeamSpec::Binding::kNodeBlocked;
    spec.threads_per_node = threads_per_node_;

    sim::SimStats before;
    if constexpr (Backend::kSimulated) before = backend_->machine().stats();
    const double t0 = backend_->now_seconds();

    // Iteration region: page-aligned allocations must come from the
    // arena (debug builds assert; all builds count bypasses).
    [[maybe_unused]] std::optional<runtime::HotPathGuard> hot_guard;
    if constexpr (!Backend::kSimulated) hot_guard.emplace();
    backend_->start_team(spec);
    if constexpr (K::kUsesFrontier) {
      changes_.assign(opt_.num_threads, PaddedFlag{});
    }
    timed_phase<kTel>(runtime::Phase::kInit, [&](unsigned t, Mem& mem) {
      runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
      runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
      runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
      sw.reset();
      const vid_t b = thread_vertex_bounds_[t];
      const vid_t e = thread_vertex_bounds_[t + 1];
      mem.stream_write(sl.value.data() + b, e - b);
      mem.stream_write(frontier_.data() + b, e - b);
      for (vid_t v = b; v < e; ++v) {
        sl.value[v] = sl.init[v];
        frontier_[v] = 1;
      }
      mem.work(e - b);
      if constexpr (kTel) {
        runtime::PhaseSample& row =
            timeline_.thread(t)[runtime::Phase::kInit];
        ++row.invocations;
        row.wall_seconds += sw.seconds();
        hwsec.finish(row.hw);
        span.finish(t, runtime::Phase::kInit, runtime::SpanKind::kKernel);
      }
    });
    unsigned iters_done = 0;
    for (unsigned it = 0; it < max_iters; ++it) {
      [[maybe_unused]] double it0 = 0.0;
      if constexpr (kTel) it0 = backend_->now_seconds();
      // Polymer maps onto the shared phase vocabulary as
      // replicate→scatter (produce per-node contribution replicas)
      // and pull→gather (consume one replica entry per in-edge).
      timed_phase<kTel>(runtime::Phase::kScatter, [&](unsigned t, Mem& mem) {
        replicate_pass<K, kTel>(sl, t, mem);
      });
      for (unsigned m = 0; m < opt_.num_nodes; ++m) {
        const bool last = (m + 1 == opt_.num_nodes);
        timed_phase<kTel>(runtime::Phase::kGather,
                          [&](unsigned t, Mem& mem) {
                            pull_pass<K, kTel>(sl, t, mem, m, last);
                          });
      }
      // The frontier double-buffer flips once per iteration (framework
      // behavior; contents are all-ones regardless of kernel).
      std::swap(frontier_, next_frontier_);
      if constexpr (kTel) {
        timeline_.record_iteration(backend_->now_seconds() - it0);
      }
      iters_done = it + 1;
      if constexpr (K::kUsesFrontier) {
        bool any = false;
        for (const PaddedFlag& f : changes_) any = any || f.value;
        if (!any) break;
      }
    }
    backend_->end_team();

    RunReport report;
    report.seconds = backend_->now_seconds() - t0;
    report.preprocessing_seconds = preprocessing_seconds_ + sl.prep_seconds;
    report.iterations = iters_done;
    if constexpr (Backend::kSimulated) {
      report.stats =
          VprEngine<Backend>::delta(backend_->machine().stats(), before);
    }
    if constexpr (kTel) {
      report.telemetry = runtime::aggregate(timeline_);
      if constexpr (!Backend::kSimulated) {
        if (ro.hw_counters == runtime::HwProf::kOn) {
          report.telemetry.hw_available = hwprof_.any_open();
          report.telemetry.hw_threads = hwprof_.open_threads();
          report.telemetry.hw_event_mask = hwprof_.event_mask();
          if (!report.telemetry.hw_available && hwprof_.num_threads() > 0) {
            report.telemetry.hw_errno = hwprof_.group(0).last_errno();
          }
        }
        if (!ro.trace_path.empty() &&
            !trace::ChromeTraceWriter::write(ro.trace_path, timeline_,
                                             "Polymer")) {
          HIPA_WARN("trace write failed: " << ro.trace_path);
        }
      }
    }
    if constexpr (!Backend::kSimulated) {
      report.arena = backend_->arena_stats();
      if (ro.audit_placement) {
        report.placement_audit = run_placement_audit<K>(sl);
      }
    }
    if (values_out != nullptr) {
      values_out->resize(n);
      for (vid_t v = 0; v < n; ++v) {
        (*values_out)[v] = static_cast<typename K::Value>(sl.value[v]);
      }
    }
    return report;
  }

  /// Region accounting around one phase() dispatch (see PcpmEngine for
  /// the rationale); kOff is exactly `backend_->phase(kernel)`.
  template <bool kTel, class F>
  void timed_phase(runtime::Phase ph, F&& kernel) {
    if constexpr (!kTel) {
      backend_->phase(std::forward<F>(kernel));
    } else {
      [[maybe_unused]] sim::SimStats s0;
      if constexpr (Backend::kSimulated) s0 = backend_->machine().stats();
      const double t0 = backend_->now_seconds();
      backend_->phase(std::forward<F>(kernel));
      const double dt = backend_->now_seconds() - t0;
      if constexpr (Backend::kSimulated) {
        const sim::SimStats d =
            VprEngine<Backend>::delta(backend_->machine().stats(), s0);
        timeline_.record_region(ph, dt, d.dram_local_accesses,
                                d.dram_remote_accesses);
      } else {
        timeline_.record_region(ph, dt);
      }
    }
  }

 public:
  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }

 private:
  /// One cache line per thread: per-iteration changed flags for the
  /// monotone kernels' early stop.
  struct alignas(kCacheLine) PaddedFlag {
    bool value = false;
  };

  void build_layout() {
    const graph::Graph& g = *graph_;
    const unsigned nodes = opt_.num_nodes;

    threads_per_node_.assign(nodes, 0);
    for (unsigned t = 0; t < opt_.num_threads; ++t) {
      ++threads_per_node_[t % nodes];
    }

    // Node vertex ranges, balanced by in-degree (pull-side work).
    node_bounds_ = part::split_vertices_by_degree(g.in, nodes);

    // Per-thread ranges nested inside the node ranges: vertex-balanced
    // for streaming passes, in-degree-balanced for the pull.
    thread_vertex_bounds_.assign(1, 0);
    thread_pull_bounds_.assign(1, 0);
    unsigned t = 0;
    for (unsigned nd = 0; nd < nodes; ++nd) {
      const vid_t b = node_bounds_[nd];
      const vid_t e = node_bounds_[nd + 1];
      const auto even = even_chunks<vid_t>(e - b, threads_per_node_[nd]);
      std::vector<std::uint64_t> weights(e - b);
      for (vid_t v = b; v < e; ++v) weights[v - b] = g.in.degree(v);
      const auto pull =
          part::split_weighted(weights, threads_per_node_[nd]);
      for (unsigned k = 1; k <= threads_per_node_[nd]; ++k, ++t) {
        thread_vertex_bounds_.push_back(b + even[k]);
        thread_pull_bounds_.push_back(b + pull[k]);
      }
    }

    // PageRank's slot is built eagerly so the constructor's allocation
    // and registration order matches the historical engine (value,
    // inv_deg, acc, frontier pair, per-node slices, replicas); other
    // kernels build lazily on first run.
    slot<PageRankKernel>().prep_seconds = 0.0;

    // Sub-CSCs: for destination node nd and source node m, the
    // in-edges of nd's vertices whose source lies in m's range.
    // Offsets are local to nd's vertex range. Kernel-independent:
    // every kernel pulls over the same per-node layout.
    sub_offsets_.clear();
    sub_offsets_.resize(std::size_t{nodes} * nodes);
    sub_targets_.clear();
    sub_targets_.resize(std::size_t{nodes} * nodes);
    for (unsigned nd = 0; nd < nodes; ++nd) {
      const vid_t b = node_bounds_[nd];
      const vid_t e = node_bounds_[nd + 1];
      for (unsigned m = 0; m < nodes; ++m) {
        auto& offs = sub_offsets_[nd * nodes + m];
        offs = backend_->template alloc_pages<eid_t>(std::size_t{e - b} + 1);
        offs.fill_zero();
      }
      for (vid_t v = b; v < e; ++v) {
        for (vid_t u : g.in.neighbors(v)) {
          const unsigned m = node_of_vertex(u);
          ++sub_offsets_[nd * nodes + m][v - b + 1];
        }
      }
      for (unsigned m = 0; m < nodes; ++m) {
        auto& offs = sub_offsets_[nd * nodes + m];
        for (vid_t i = 1; i <= e - b; ++i) offs[i] += offs[i - 1];
        auto& tgts = sub_targets_[nd * nodes + m];
        tgts = backend_->template alloc_pages<vid_t>(offs[e - b]);
      }
      std::vector<eid_t> cursor(nodes, 0);
      for (vid_t v = b; v < e; ++v) {
        for (unsigned m = 0; m < nodes; ++m) {
          cursor[m] = sub_offsets_[nd * nodes + m][v - b];
        }
        for (vid_t u : g.in.neighbors(v)) {
          const unsigned m = node_of_vertex(u);
          sub_targets_[nd * nodes + m][cursor[m]++] = u;
        }
      }
      for (unsigned m = 0; m < nodes; ++m) {
        backend_->register_buffer(
            sub_offsets_[nd * nodes + m].data(),
            sub_offsets_[nd * nodes + m].size() * sizeof(eid_t),
            DataPlacement::kNode, nd);
        backend_->register_buffer(
            sub_targets_[nd * nodes + m].data(),
            sub_targets_[nd * nodes + m].size() * sizeof(vid_t),
            DataPlacement::kNode, nd);
      }
    }
  }

  /// Verify the per-node placement slot() asked for: each node's slice
  /// of the attribute arrays plus its full contribution replica.
  template <class K>
  [[nodiscard]] numa::PlacementAudit run_placement_audit(
      const PolySlot<K>& sl) const {
    using TV = typename K::Pull::PolymerValue;
    using Acc = typename K::Pull::Acc;
    numa::PlacementAuditor auditor;
    backend_->register_arena(auditor);
    for (unsigned nd = 0; nd < opt_.num_nodes; ++nd) {
      const vid_t b = node_bounds_[nd];
      const vid_t sz = node_bounds_[nd + 1] - b;
      const std::string tag = "[node" + std::to_string(nd) + "]";
      auditor.add("rank" + tag, sl.value.data() + b, sz * sizeof(TV), nd);
      auditor.add("acc" + tag, sl.acc.data() + b, sz * sizeof(Acc), nd);
      auditor.add("replica" + tag, sl.replicas[nd].data(),
                  sl.replicas[nd].size() * sizeof(typename K::Message), nd);
    }
    return auditor.audit();
  }

  [[nodiscard]] unsigned node_of_vertex(vid_t v) const {
    for (unsigned nd = 0; nd < opt_.num_nodes; ++nd) {
      if (v < node_bounds_[nd + 1]) return nd;
    }
    return opt_.num_nodes - 1;
  }

  [[nodiscard]] unsigned node_of_thread(unsigned t) const {
    unsigned first = 0;
    for (unsigned nd = 0; nd < opt_.num_nodes; ++nd) {
      first += threads_per_node_[nd];
      if (t < first) return nd;
    }
    return opt_.num_nodes - 1;
  }

  /// Compute contributions for the thread's own vertices and push them
  /// into every node's replica (Polymer's per-iteration replication).
  template <class K, bool kTel>
  void replicate_pass(PolySlot<K>& sl, unsigned t, Mem& mem) {
    using TV = typename K::Pull::PolymerValue;
    using Message = typename K::Message;
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    const vid_t b = thread_vertex_bounds_[t];
    const vid_t e = thread_vertex_bounds_[t + 1];
    mem.stream_read(sl.value.data() + b, e - b);
    if constexpr (K::Pull::kNeedsInv) {
      mem.stream_read(sl.inv_deg.data() + b, e - b);
    }
    mem.stream_read(frontier_.data() + b, e - b);
    for (unsigned nd = 0; nd < opt_.num_nodes; ++nd) {
      mem.stream_write(sl.replicas[nd].data() + b, e - b);
    }
    for (vid_t v = b; v < e; ++v) {
      // Branchless: inv_deg is exactly 0 for sinks.
      const Message c = [&] {
        if constexpr (K::Pull::kNeedsInv) {
          return K::Pull::contrib(sl.value[v], sl.inv_deg[v], v);
        } else {
          return K::Pull::contrib(sl.value[v], TV{}, v);
        }
      }();
      for (unsigned nd = 0; nd < opt_.num_nodes; ++nd) {
        sl.replicas[nd][v] = c;
      }
    }
    mem.work(std::uint64_t{e - b} *
             (2 + opt_.framework_cycles_per_vertex));
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kScatter];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      // One contribution per vertex per replica (the N× write traffic
      // that defines Polymer's replication cost).
      const std::uint64_t msgs =
          std::uint64_t{e - b} * opt_.num_nodes;
      row.messages_produced += msgs;
      row.bytes_produced += msgs * sizeof(Message);
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kScatter, runtime::SpanKind::kKernel);
    }
  }

  /// One source-node sub-pass of the pull; the last sub-pass applies
  /// the vertex update and refreshes the frontier.
  template <class K, bool kTel>
  void pull_pass(PolySlot<K>& sl, unsigned t, Mem& mem, unsigned m,
                 bool last) {
    using TV = typename K::Pull::PolymerValue;
    using Acc = typename K::Pull::Acc;
    using Message = typename K::Message;
    runtime::MaybeTimer<kTel && !Backend::kSimulated> sw;
    runtime::HwSection<kTel && !Backend::kSimulated> hwsec(hwprof_, t);
    runtime::MaybeSpan<kTel && !Backend::kSimulated> span(timeline_);
    sw.reset();
    [[maybe_unused]] std::uint64_t tel_edges = 0;
    [[maybe_unused]] bool any_changed = false;
    const unsigned nd = node_of_thread(t);
    const vid_t node_begin = node_bounds_[nd];
    const vid_t b = thread_pull_bounds_[t];
    const vid_t e = thread_pull_bounds_[t + 1];
    const auto& offs = sub_offsets_[nd * opt_.num_nodes + m];
    const auto& tgts = sub_targets_[nd * opt_.num_nodes + m];
    const Message* replica = sl.replicas[nd].data();

    mem.stream_read(offs.data() + (b - node_begin), e - b + 1);
    for (vid_t v = b; v < e; ++v) {
      const eid_t lo = offs[v - node_begin];
      const eid_t hi = offs[v - node_begin + 1];
      mem.stream_read(tgts.data() + lo, hi - lo);
      auto sum = K::Pull::template identity<Acc>();
      for (eid_t i = lo; i < hi; ++i) {
        // Random read over one source node's range of the local replica.
        sum = K::Pull::merge(sum, mem.load(replica + tgts[i]));
      }
      if constexpr (K::Pull::kAddCombine) {
        // Ligra's writeAdd: vertex updates go through a CAS loop even
        // when uncontended.
        mem.atomic_add(sl.acc.data() + v, sum);
      } else {
        // Ligra's writeMin equivalent: each vertex is owned by exactly
        // one thread and sub-passes are barrier-separated, so a plain
        // read-merge-write is race-free.
        mem.store(sl.acc.data() + v,
                  K::Pull::merge(mem.load(sl.acc.data() + v), sum));
      }
      mem.work((hi - lo) * (1 + opt_.framework_cycles_per_edge) + 2);
      if constexpr (kTel) tel_edges += hi - lo;
    }
    if (last) {
      mem.stream_read(sl.acc.data() + b, e - b);
      mem.stream_write(sl.value.data() + b, e - b);
      mem.stream_read(frontier_.data() + b, e - b);
      mem.stream_write(next_frontier_.data() + b, e - b);
      const TV* bias = sl.bias.empty() ? nullptr : sl.bias.data();
      for (vid_t v = b; v < e; ++v) {
        const TV next = K::Pull::apply(sl.value[v], sl.acc[v],
                                       bias ? bias[v] : TV{}, sl.damping);
        if constexpr (K::kUsesFrontier) {
          any_changed = any_changed || next != sl.value[v];
        }
        sl.value[v] = next;
        sl.acc[v] = K::Pull::template identity<Acc>();
        next_frontier_[v] = 1;  // framework keeps everything active
      }
      mem.work(std::uint64_t{e - b} *
               (2 + opt_.framework_cycles_per_vertex));
      if constexpr (K::kUsesFrontier) {
        changes_[t].value = any_changed;
      }
    }
    if constexpr (kTel) {
      runtime::PhaseSample& row =
          timeline_.thread(t)[runtime::Phase::kGather];
      ++row.invocations;
      row.wall_seconds += sw.seconds();
      row.messages_consumed += tel_edges;
      row.bytes_consumed += tel_edges * sizeof(Message);
      hwsec.finish(row.hw);
      span.finish(t, runtime::Phase::kGather, runtime::SpanKind::kKernel);
    }
  }

  const graph::Graph* graph_;
  PolymerOptions opt_;
  Backend* backend_;
  std::vector<unsigned> threads_per_node_;
  std::vector<vid_t> node_bounds_;
  std::vector<vid_t> thread_vertex_bounds_;
  std::vector<vid_t> thread_pull_bounds_;
  /// Per-kernel value/acc/replica arrays, keyed by kernel type
  /// (PageRank built in the constructor, others on first use).
  std::vector<std::pair<std::type_index, std::shared_ptr<void>>> slots_;
  AlignedBuffer<std::uint8_t> frontier_;
  AlignedBuffer<std::uint8_t> next_frontier_;
  std::vector<AlignedBuffer<eid_t>> sub_offsets_;
  std::vector<AlignedBuffer<vid_t>> sub_targets_;
  /// Per-thread changed flags (monotone kernels' early stop).
  std::vector<PaddedFlag> changes_;
  /// Per-thread telemetry rows + phase-region totals; reset at the top
  /// of every telemetered run, untouched (empty) otherwise.
  runtime::PhaseTimeline timeline_;
  /// Per-thread perf_event counter groups (native + HwProf::kOn only).
  runtime::HwProfiler hwprof_;
  double preprocessing_seconds_ = 0.0;
};

}  // namespace hipa::engine
