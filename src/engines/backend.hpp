// Execution backends.
//
// Engines are written once against a small backend concept and run
// either natively (real threads, zero-overhead no-op instrumentation)
// or on the simulated NUMA machine (every data access modeled). The
// backend owns three concerns:
//   * allocation + NUMA placement registration,
//   * the thread team model (persistent Algorithm-2 teams vs
//     per-phase Algorithm-1 regions; binding policy),
//   * phase execution and time measurement.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/machine.hpp"

namespace hipa::engine {

/// Where a buffer's pages live (mirrors sim::Placement; the native
/// backend treats it as advisory).
enum class DataPlacement {
  kNode,        ///< bound to one NUMA node
  kInterleave,  ///< round-robin pages
  kScatter,     ///< wherever first touch lands (NUMA-oblivious)
};

/// Thread team description.
struct ThreadTeamSpec {
  unsigned num_threads = 1;
  /// Algorithm 2 (persistent, created once) vs Algorithm 1 (fresh
  /// threads per parallel region).
  bool persistent = true;
  enum class Binding {
    kNodeBlocked,  ///< bound to nodes per threads_per_node (NUMA-aware)
    kSpread,       ///< round-robin over physical cores (good scheduler)
    kRandom,       ///< arbitrary logical cores (paper §3.3.1's OS model)
  } binding = Binding::kSpread;
  /// Required for kNodeBlocked; one entry per node.
  std::vector<unsigned> threads_per_node;
};

// ---------------------------------------------------------------------------
// Native backend
// ---------------------------------------------------------------------------

/// Zero-cost instrumentation: plain loads/stores; atomics are real.
class NoopMem {
 public:
  explicit NoopMem(unsigned tid) : tid_(tid) {}

  template <class T>
  [[nodiscard]] T load(const T* p) const {
    return *p;
  }
  template <class T>
  void store(T* p, T v) const {
    *p = v;
  }
  template <class T>
  void atomic_add(T* p, T v) const {
    std::atomic_ref<T>(*p).fetch_add(v, std::memory_order_relaxed);
  }
  template <class T>
  void stream_read(const T*, std::size_t) const {}
  template <class T>
  void stream_write(const T*, std::size_t) const {}
  void work(std::uint64_t) const {}
  [[nodiscard]] unsigned tid() const { return tid_; }
  [[nodiscard]] unsigned node() const { return 0; }

 private:
  unsigned tid_;
};

/// Real-thread execution. Phase time contributes to wall-clock
/// `now_seconds()`; placement hints map to CPU pinning (best effort).
class NativeBackend {
 public:
  using Mem = NoopMem;
  static constexpr bool kSimulated = false;

  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc(std::size_t n, DataPlacement,
                                       unsigned /*node*/ = 0) {
    return AlignedBuffer<T>(n);
  }
  void register_buffer(const void*, std::size_t, DataPlacement,
                       unsigned /*node*/ = 0) {}

  [[nodiscard]] unsigned num_nodes() const { return 1; }

  void start_team(const ThreadTeamSpec& spec) {
    spec_ = spec;
    if (spec.persistent) {
      team_ = std::make_unique<runtime::PersistentTeam>(spec.num_threads);
    }
  }

  template <class F>
  void phase(F&& kernel) {
    const unsigned threads =
        team_ ? team_->size() : spec_.num_threads;
    auto body = [&](unsigned t) {
      NoopMem mem(t);
      kernel(t, mem);
    };
    if (team_) {
      team_->run(body);
    } else {
      runtime::fork_join_run(threads, body);
    }
  }

  void end_team() { team_.reset(); }

  [[nodiscard]] double now_seconds() const { return timer_.seconds(); }

 private:
  ThreadTeamSpec spec_;
  std::unique_ptr<runtime::PersistentTeam> team_;
  Timer timer_;
};

// ---------------------------------------------------------------------------
// Simulated backend
// ---------------------------------------------------------------------------

/// Runs phases on a sim::SimMachine; allocation registers NUMA
/// placement; team lifecycle charges thread creation/migration.
class SimBackend {
 public:
  using Mem = sim::SimMem;
  static constexpr bool kSimulated = true;

  explicit SimBackend(sim::SimMachine& machine) : machine_(&machine) {}

  [[nodiscard]] sim::SimMachine& machine() { return *machine_; }
  [[nodiscard]] unsigned num_nodes() const {
    return machine_->topology().num_nodes;
  }

  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc(std::size_t n, DataPlacement pl,
                                       unsigned node = 0) {
    AlignedBuffer<T> buf(n);
    register_buffer(buf.data(), n * sizeof(T), pl, node);
    return buf;
  }

  void register_buffer(const void* p, std::size_t bytes, DataPlacement pl,
                       unsigned node = 0) {
    machine_->numa().register_range(p, bytes, to_sim(pl), node);
  }

  void start_team(const ThreadTeamSpec& spec) {
    spec_ = spec;
    machine_->charge_thread_creations(spec.num_threads);
    if (spec.persistent) {
      placement_ = make_placement();
      if (spec.binding == ThreadTeamSpec::Binding::kNodeBlocked) {
        // Worst-case binding: every thread might start on the wrong
        // node; the paper bounds migrations by the team size (§3.3.2).
        machine_->charge_thread_migrations(spec.num_threads / 2, true);
      }
    }
  }

  template <class F>
  void phase(F&& kernel) {
    if (!spec_.persistent) {
      machine_->charge_thread_creations(spec_.num_threads);
      placement_ = make_placement();
      if (spec_.binding == ThreadTeamSpec::Binding::kNodeBlocked) {
        // Algorithm 1 + NUMA binding: threads spawn anywhere, then get
        // migrated to their node — (1 - 1/N) expected per thread.
        const unsigned n = machine_->topology().num_nodes;
        machine_->charge_thread_migrations(
            spec_.num_threads - spec_.num_threads / n, true);
      }
    }
    machine_->run_phase(placement_,
                        [&](unsigned t, sim::SimMem& mem) { kernel(t, mem); });
  }

  void end_team() {}

  [[nodiscard]] double now_seconds() const { return machine_->seconds(); }

 private:
  [[nodiscard]] static sim::Placement to_sim(DataPlacement pl) {
    switch (pl) {
      case DataPlacement::kNode:
        return sim::Placement::kNode;
      case DataPlacement::kInterleave:
        return sim::Placement::kInterleave;
      case DataPlacement::kScatter:
        return sim::Placement::kScatter;
    }
    return sim::Placement::kScatter;
  }

  [[nodiscard]] sim::PlacementVec make_placement() {
    switch (spec_.binding) {
      case ThreadTeamSpec::Binding::kNodeBlocked:
        return machine_->placement_node_blocked(spec_.threads_per_node);
      case ThreadTeamSpec::Binding::kSpread:
        return machine_->placement_spread(spec_.num_threads);
      case ThreadTeamSpec::Binding::kRandom:
        return machine_->placement_random(spec_.num_threads);
    }
    HIPA_CHECK(false, "unknown binding");
    __builtin_unreachable();
  }

  sim::SimMachine* machine_;
  ThreadTeamSpec spec_;
  sim::PlacementVec placement_;
};

/// Result of one engine run.
struct RunReport {
  double seconds = 0.0;                ///< iteration time
  double preprocessing_seconds = 0.0;  ///< partitioning + bins + layout
  unsigned iterations = 0;
  sim::SimStats stats;  ///< simulated backends only (zero for native)
};

}  // namespace hipa::engine
