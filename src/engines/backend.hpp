// Execution backends.
//
// Engines are written once against a small backend concept and run
// either natively (real threads, zero-overhead no-op instrumentation)
// or on the simulated NUMA machine (every data access modeled). The
// backend owns three concerns:
//   * allocation + NUMA placement registration,
//   * the thread team model (persistent Algorithm-2 teams vs
//     per-phase Algorithm-1 regions; binding policy),
//   * phase execution and time measurement.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include <string>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "runtime/affinity.hpp"
#include "runtime/arena.hpp"
#include "runtime/barrier.hpp"
#include "runtime/numa_audit.hpp"
#include "runtime/placement.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/machine.hpp"

namespace hipa::engine {

/// Vertex-id reordering applied by the `algo::` facade before the
/// graph is partitioned (graph/reorder passes); ranks are
/// inverse-permuted on output so callers always see original ids.
enum class Reorder {
  kNone,    ///< run on the graph as given
  kDegree,  ///< descending out-degree sort
  kHub,     ///< hub clustering: hot high-degree prefix, others stable
};

/// Where a buffer's pages live (mirrors sim::Placement; the native
/// backend treats it as advisory).
enum class DataPlacement {
  kNode,        ///< bound to one NUMA node
  kInterleave,  ///< round-robin pages
  kScatter,     ///< wherever first touch lands (NUMA-oblivious)
};

/// Thread team description.
struct ThreadTeamSpec {
  unsigned num_threads = 1;
  /// Algorithm 2 (persistent, created once) vs Algorithm 1 (fresh
  /// threads per parallel region).
  bool persistent = true;
  enum class Binding {
    kNodeBlocked,  ///< bound to nodes per threads_per_node (NUMA-aware)
    kSpread,       ///< round-robin over physical cores (good scheduler)
    kRandom,       ///< arbitrary logical cores (paper §3.3.1's OS model)
  } binding = Binding::kSpread;
  /// Required for kNodeBlocked; one entry per node.
  std::vector<unsigned> threads_per_node;
};

// ---------------------------------------------------------------------------
// Native backend
// ---------------------------------------------------------------------------

/// Zero-cost instrumentation: plain loads/stores; atomics are real.
class NoopMem {
 public:
  explicit NoopMem(unsigned tid) : tid_(tid) {}

  template <class T>
  [[nodiscard]] T load(const T* p) const {
    return *p;
  }
  template <class T>
  void store(T* p, T v) const {
    *p = v;
  }
  template <class T>
  void atomic_add(T* p, T v) const {
    std::atomic_ref<T>(*p).fetch_add(v, std::memory_order_relaxed);
  }
  template <class T>
  void stream_read(const T*, std::size_t) const {}
  template <class T>
  void stream_write(const T*, std::size_t) const {}
  void work(std::uint64_t) const {}
  [[nodiscard]] unsigned tid() const { return tid_; }
  [[nodiscard]] unsigned node() const { return 0; }

 private:
  unsigned tid_;
};

/// Per-thread handle inside a `run_loop` parallel region. Wraps the
/// team-wide barrier (flat SpinBarrier or topology-aware TreeBarrier —
/// run_loop picks) together with this thread's private sense flag, so
/// kernels separate sub-phases with a bare `ctl.barrier()`. Plain
/// (non-atomic) data written before a barrier may be read by any team
/// thread after it — the barrier's acquire/release atomics carry the
/// happens-before edge (this is how thread 0 publishes per-iteration
/// scalars to the team) on both barrier shapes.
class LoopCtl {
 public:
  explicit LoopCtl(runtime::SpinBarrier& barrier) : flat_(&barrier) {}
  LoopCtl(runtime::TreeBarrier& barrier, unsigned tid)
      : tree_(&barrier), tid_(tid) {}

  /// In-region barrier: every team thread arrives before any proceeds.
  void barrier() {
    if (flat_ != nullptr) {
      flat_->arrive_and_wait(sense_);
    } else {
      tree_->arrive_and_wait(tid_, sense_);
    }
  }

 private:
  runtime::SpinBarrier* flat_ = nullptr;
  runtime::TreeBarrier* tree_ = nullptr;
  unsigned tid_ = 0;
  bool sense_ = false;
};

/// Real-thread execution. Phase time contributes to wall-clock
/// `now_seconds()`. NUMA is real here: `start_team` translates the
/// binding policy into concrete CPU pins via the discovered host
/// topology, and placement hints bind pages (mbind when compiled in,
/// pinned first-touch otherwise).
class NativeBackend {
 public:
  using Mem = NoopMem;
  static constexpr bool kSimulated = false;
  static constexpr bool kSupportsRunLoop = true;

  /// Allocate and physically place from the partitioned NUMA arena.
  /// Contents are unspecified (like AlignedBuffer); allocations are
  /// page-aligned bump carves out of the region matching the placement
  /// hint, so the policy governs exactly this allocation's pages.
  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc(std::size_t n, DataPlacement pl,
                                       unsigned node = 0) {
    return arena().template alloc_buffer<T>(n, to_arena(pl), node);
  }

  /// Page-aligned, placement-neutral arena allocation: pages commit
  /// where first touched, which is exactly what the engines' contiguous
  /// attribute arrays want (each pinned owner touches its own slice).
  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc_pages(std::size_t n) {
    return arena().template alloc_buffer<T>(
        n, runtime::ArenaPlacement::kFirstTouch);
  }

  /// The backend's arena (created on first allocation; outlives every
  /// buffer it handed out because engines never outlive their backend).
  [[nodiscard]] runtime::NumaArena& arena() {
    if (!arena_) arena_ = std::make_shared<runtime::NumaArena>();
    return *arena_;
  }

  [[nodiscard]] runtime::ArenaStats arena_stats() const {
    return arena_ ? arena_->stats() : runtime::ArenaStats{};
  }

  /// Add the arena's node-bound spans to a placement audit.
  void register_arena(numa::PlacementAuditor& auditor) const {
    if (arena_) arena_->register_with(auditor);
  }

  /// Which barrier the next run_loop hands its team (from
  /// PageRankOptions::barrier; kAuto picks by topology).
  void set_barrier_kind(runtime::BarrierKind kind) { barrier_kind_ = kind; }

  /// Best-effort physical placement of an existing range. Without
  /// mbind support this can only migrate nothing — untouched pages
  /// still land correctly when their pinned owner touches them first
  /// (the engines' init phases are written to guarantee that), and
  /// already-touched pages stay put (slower, never wrong).
  void register_buffer(const void* p, std::size_t bytes, DataPlacement pl,
                       unsigned node = 0) {
    place(const_cast<void*>(p), bytes, pl, node, /*contents_dead=*/false);
  }

  /// Zero `bytes` at `p` AND commit the pages to `node`: mbind+memset
  /// when available, else a pinned-thread first-touch write. Contents
  /// must be dead. (SimBackend mirrors the zeroing so both backends
  /// leave identical memory images.)
  void first_touch(void* p, std::size_t bytes, unsigned node) {
    if (runtime::bind_pages_to_node(p, bytes, node)) {
      std::memset(p, 0, bytes);
    } else {
      runtime::first_touch_zero_on_node(p, bytes, node);
    }
  }

  [[nodiscard]] unsigned num_nodes() const {
    return runtime::topology().num_nodes();
  }

  void start_team(const ThreadTeamSpec& spec) {
    spec_ = spec;
    if (spec.persistent) {
      team_ = std::make_unique<runtime::PersistentTeam>(spec.num_threads,
                                                        cpu_map(spec));
    }
  }

  template <class F>
  void phase(F&& kernel) {
    const unsigned threads =
        team_ ? team_->size() : spec_.num_threads;
    auto body = [&](unsigned t) {
      NoopMem mem(t);
      kernel(t, mem);
    };
    if (team_) {
      team_->run(body);
    } else {
      runtime::fork_join_run(threads, body);
    }
  }

  /// ONE parallel region for a whole multi-phase run (Algorithm 2's
  /// single dispatch): `kernel(tid, mem, ctl)` runs once per team
  /// thread and separates its internal sub-phases with
  /// `ctl.barrier()`. Replaces `2 × iters` condvar dispatches with one
  /// wakeup plus in-region spin barriers.
  template <class F>
  void run_loop(F&& kernel) {
    const unsigned threads =
        team_ ? team_->size() : spec_.num_threads;
    const std::vector<unsigned> groups = barrier_groups(threads);
    if (!groups.empty()) {
      runtime::TreeBarrier barrier(groups);
      auto body = [&](unsigned t) {
        NoopMem mem(t);
        LoopCtl ctl(barrier, t);
        kernel(t, mem, ctl);
      };
      if (team_) {
        team_->run(body);
      } else {
        runtime::fork_join_run(threads, body);
      }
      return;
    }
    runtime::SpinBarrier barrier(threads);
    auto body = [&](unsigned t) {
      NoopMem mem(t);
      LoopCtl ctl(barrier);
      kernel(t, mem, ctl);
    };
    if (team_) {
      team_->run(body);
    } else {
      runtime::fork_join_run(threads, body);
    }
  }

  void end_team() { team_.reset(); }

  [[nodiscard]] double now_seconds() const { return timer_.seconds(); }

 private:
  /// Binding policy -> concrete OS CPU ids, one per team thread.
  /// kRandom leaves scheduling to the OS (the paper §3.3.1 baseline).
  [[nodiscard]] static std::vector<unsigned> cpu_map(
      const ThreadTeamSpec& spec) {
    switch (spec.binding) {
      case ThreadTeamSpec::Binding::kNodeBlocked: {
        auto map = runtime::cpus_node_blocked(spec.threads_per_node);
        // An inconsistent spec (counts don't sum to the team size)
        // degrades to spread rather than mis-pinning.
        if (map.size() != spec.num_threads) {
          return runtime::cpus_spread(spec.num_threads);
        }
        return map;
      }
      case ThreadTeamSpec::Binding::kSpread:
        return runtime::cpus_spread(spec.num_threads);
      case ThreadTeamSpec::Binding::kRandom:
        return {};
    }
    return {};
  }

  void place(void* p, std::size_t bytes, DataPlacement pl, unsigned node,
             bool contents_dead) {
    switch (pl) {
      case DataPlacement::kScatter:
        return;  // NUMA-oblivious by definition
      case DataPlacement::kNode:
        if (!runtime::bind_pages_to_node(p, bytes, node) && contents_dead) {
          runtime::first_touch_zero_on_node(p, bytes, node);
        }
        return;
      case DataPlacement::kInterleave:
        if (!runtime::interleave_pages(p, bytes) && contents_dead) {
          runtime::first_touch_zero_interleaved(p, bytes);
        }
        return;
    }
  }

  [[nodiscard]] static runtime::ArenaPlacement to_arena(DataPlacement pl) {
    switch (pl) {
      case DataPlacement::kNode:
        return runtime::ArenaPlacement::kNode;
      case DataPlacement::kInterleave:
        return runtime::ArenaPlacement::kInterleave;
      case DataPlacement::kScatter:
        break;
    }
    return runtime::ArenaPlacement::kFirstTouch;
  }

  /// tid -> barrier leaf for the next run_loop, or empty for the flat
  /// SpinBarrier. Node-blocked teams group by their pinned node; kAuto
  /// takes the tree only when that yields >= 2 populated leaves.
  /// Forced kTree on hosts where topology gives one group synthesizes
  /// two balanced halves so the tree protocol is still exercised.
  [[nodiscard]] std::vector<unsigned> barrier_groups(unsigned threads) const {
    if (barrier_kind_ == runtime::BarrierKind::kFlat || threads < 2) {
      return {};
    }
    std::vector<unsigned> groups;
    if (spec_.binding == ThreadTeamSpec::Binding::kNodeBlocked) {
      unsigned sum = 0;
      for (unsigned c : spec_.threads_per_node) sum += c;
      if (sum == threads) {
        unsigned g = 0;
        for (unsigned c : spec_.threads_per_node) {
          if (c == 0) continue;  // keep leaves dense
          groups.insert(groups.end(), c, g);
          ++g;
        }
      }
    }
    const unsigned num_groups = groups.empty() ? 0 : groups.back() + 1;
    if (num_groups >= 2) return groups;
    if (barrier_kind_ == runtime::BarrierKind::kAuto) return {};
    groups.assign(threads, 0);
    for (unsigned t = (threads + 1) / 2; t < threads; ++t) groups[t] = 1;
    return groups;
  }

  ThreadTeamSpec spec_;
  std::unique_ptr<runtime::PersistentTeam> team_;
  std::shared_ptr<runtime::NumaArena> arena_;
  runtime::BarrierKind barrier_kind_ = runtime::BarrierKind::kAuto;
  Timer timer_;
};

// ---------------------------------------------------------------------------
// Simulated backend
// ---------------------------------------------------------------------------

/// Runs phases on a sim::SimMachine; allocation registers NUMA
/// placement; team lifecycle charges thread creation/migration.
class SimBackend {
 public:
  using Mem = sim::SimMem;
  static constexpr bool kSimulated = true;
  /// The simulator charges per-phase costs, so engines keep using the
  /// per-phase dispatch path here (exactly what the paper's model
  /// measures for Algorithm 1 vs 2 thread management).
  static constexpr bool kSupportsRunLoop = false;

  explicit SimBackend(sim::SimMachine& machine) : machine_(&machine) {}

  [[nodiscard]] sim::SimMachine& machine() { return *machine_; }
  [[nodiscard]] unsigned num_nodes() const {
    return machine_->topology().num_nodes;
  }

  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc(std::size_t n, DataPlacement pl,
                                       unsigned node = 0) {
    AlignedBuffer<T> buf(n);
    register_buffer(buf.data(), n * sizeof(T), pl, node);
    return buf;
  }

  /// Mirror of NativeBackend::alloc_pages — page-aligned, no placement
  /// registration (first-touch is scatter in the sim's NUMA model).
  template <class T>
  [[nodiscard]] AlignedBuffer<T> alloc_pages(std::size_t n) {
    // arena-exempt: simulated machine, no physical pages to place
    return AlignedBuffer<T>(n, kPageSize);
  }

  void register_buffer(const void* p, std::size_t bytes, DataPlacement pl,
                       unsigned node = 0) {
    machine_->numa().register_range(p, bytes, to_sim(pl), node);
  }

  /// Mirror of NativeBackend::first_touch: zero the range (so both
  /// backends leave identical memory images) and register it
  /// node-bound in the NUMA model.
  void first_touch(void* p, std::size_t bytes, unsigned node) {
    std::memset(p, 0, bytes);
    register_buffer(p, bytes, DataPlacement::kNode, node);
  }

  void start_team(const ThreadTeamSpec& spec) {
    spec_ = spec;
    machine_->charge_thread_creations(spec.num_threads);
    if (spec.persistent) {
      placement_ = make_placement();
      if (spec.binding == ThreadTeamSpec::Binding::kNodeBlocked) {
        // Worst-case binding: every thread might start on the wrong
        // node; the paper bounds migrations by the team size (§3.3.2).
        machine_->charge_thread_migrations(spec.num_threads / 2, true);
      }
    }
  }

  template <class F>
  void phase(F&& kernel) {
    if (!spec_.persistent) {
      machine_->charge_thread_creations(spec_.num_threads);
      placement_ = make_placement();
      if (spec_.binding == ThreadTeamSpec::Binding::kNodeBlocked) {
        // Algorithm 1 + NUMA binding: threads spawn anywhere, then get
        // migrated to their node — (1 - 1/N) expected per thread.
        const unsigned n = machine_->topology().num_nodes;
        machine_->charge_thread_migrations(
            spec_.num_threads - spec_.num_threads / n, true);
      }
    }
    machine_->run_phase(placement_,
                        [&](unsigned t, sim::SimMem& mem) { kernel(t, mem); });
  }

  void end_team() {}

  [[nodiscard]] double now_seconds() const { return machine_->seconds(); }

 private:
  [[nodiscard]] static sim::Placement to_sim(DataPlacement pl) {
    switch (pl) {
      case DataPlacement::kNode:
        return sim::Placement::kNode;
      case DataPlacement::kInterleave:
        return sim::Placement::kInterleave;
      case DataPlacement::kScatter:
        return sim::Placement::kScatter;
    }
    return sim::Placement::kScatter;
  }

  [[nodiscard]] sim::PlacementVec make_placement() {
    switch (spec_.binding) {
      case ThreadTeamSpec::Binding::kNodeBlocked:
        return machine_->placement_node_blocked(spec_.threads_per_node);
      case ThreadTeamSpec::Binding::kSpread:
        return machine_->placement_spread(spec_.num_threads);
      case ThreadTeamSpec::Binding::kRandom:
        return machine_->placement_random(spec_.num_threads);
    }
    HIPA_CHECK(false, "unknown binding");
    __builtin_unreachable();
  }

  sim::SimMachine* machine_;
  ThreadTeamSpec spec_;
  sim::PlacementVec placement_;
};

/// PageRank run parameters — the one options surface every engine's
/// `run()` / `run_pagerank()` accepts (PCPM family, v-PR, Polymer).
/// Kernel-independent run controls shared by every engine and every
/// kernel (PageRank, PPR, BFS, WCC, SSSP): iteration budget,
/// convergence tracking, instrumentation, placement and reordering.
/// Kernel-specific knobs (damping, seeds, source vertex) live in the
/// per-kernel option structs (engines/kernels.hpp).
struct RunOptions {
  unsigned iterations = 20;  ///< paper's fixed iteration count (a cap
                             ///< when tolerance > 0); frontier kernels
                             ///< use their own max_rounds instead
  /// L1 convergence threshold: stop once sum_v |r_new - r_old| drops
  /// to or below it. 0 (default) keeps the paper's fixed-iteration
  /// behavior. The per-thread partial sums and the early-stop decision
  /// are computed identically on the per-phase and single-dispatch
  /// paths, so both stop after the same iteration with bitwise-equal
  /// ranks.
  double tolerance = 0.0;
  /// Per-phase/per-thread telemetry (RunReport::telemetry). kOff (the
  /// default) compiles the instrumentation out of the run path
  /// entirely — ranks are bitwise identical to an untelemetered build.
  runtime::Telemetry telemetry = runtime::Telemetry::kOff;
  /// Per-thread perf_event counter groups around the same recording
  /// sites (native backends only; implies the telemetered code path).
  /// Soft-degrades — RunTelemetry::hw_available stays false — when the
  /// kernel denies perf_event_open.
  runtime::HwProf hw_counters = runtime::HwProf::kOff;
  /// When non-empty (native backends), collect per-thread spans and
  /// write a Chrome/Perfetto trace-events JSON here after the run.
  /// Implies the telemetered code path.
  std::string trace_path;
  /// Audit physical page placement of the engine's attribute/bin
  /// buffers after allocation (native backends; RunReport::
  /// placement_audit). Reports available=false on single-node hosts or
  /// when both move_pages and numa_maps are inaccessible.
  bool audit_placement = false;
  /// Vertex-id reordering (graph/reorder) applied by the `algo::`
  /// facade: the CSR is permuted before partitioning and ranks are
  /// inverse-permuted on output. Engines themselves ignore the field
  /// (the facade clears it before the inner run).
  Reorder reorder = Reorder::kNone;
  /// run_loop barrier shape (native single-dispatch path only): kAuto
  /// uses the topology-aware tree barrier when the team is node-blocked
  /// across >= 2 nodes, flat SpinBarrier otherwise.
  runtime::BarrierKind barrier = runtime::BarrierKind::kAuto;

  /// True when any instrumentation was requested — the engines'
  /// run-path dispatch: instrumented() picks the kTel=true
  /// instantiation, plain runs pick the token-identical kOff path.
  [[nodiscard]] bool instrumented() const {
    return telemetry == runtime::Telemetry::kOn ||
           hw_counters == runtime::HwProf::kOn || !trace_path.empty();
  }
};

/// PageRank's run surface: the shared run controls plus the damping
/// factor. The (iterations, damping) constructor exists so positional
/// `{20, 0.85f}` initialization keeps meaning (iterations, damping) —
/// without it, aggregate brace elision would silently route the second
/// value into RunOptions::tolerance.
struct PageRankOptions : RunOptions {
  rank_t damping = 0.85f;

  PageRankOptions() = default;
  PageRankOptions(unsigned iters, rank_t d = 0.85f) {
    iterations = iters;
    damping = d;
  }
};

/// Result of one engine run.
struct RunReport {
  double seconds = 0.0;                ///< iteration time
  double preprocessing_seconds = 0.0;  ///< partitioning + bins + layout
  unsigned iterations = 0;  ///< executed (may undershoot with tolerance)
  /// L1 rank delta of the last executed iteration; 0 unless the run
  /// tracked convergence (PageRankOptions::tolerance > 0).
  double last_delta = 0.0;
  sim::SimStats stats;  ///< simulated backends only (zero for native)
  /// Per-phase/per-thread breakdown; default (enabled == false,
  /// all-zero) unless the run requested Telemetry::kOn.
  runtime::RunTelemetry telemetry;
  /// NUMA page-placement verification (PageRankOptions::
  /// audit_placement on a native multi-node run); default
  /// available=false otherwise.
  numa::PlacementAudit placement_audit;
  /// Arena allocation snapshot after the run (native backends; empty
  /// regions vector for simulated runs): bytes per node region,
  /// hugepage/policy status, heap fallbacks.
  runtime::ArenaStats arena;
};

/// The unified PageRank run surface every engine and the `algo::`
/// facade return: the report and the final ranks in one value. The
/// kernel-generic analog is KernelResult<K> (engines/kernels.hpp);
/// RunResult is exactly KernelResult<PageRankKernel> by another name.
struct RunResult {
  RunReport report;
  std::vector<rank_t> ranks;
};

}  // namespace hipa::engine
